"""Differential: monolithic kernel vs. partitioned windows, random ops.

Hypothesis scripts BOTH islands of the toy workload with interleaved
timeout / succeed(send) / interrupt ops, then executes the same script
two ways: once on a single shared kernel (cross sends scheduled
directly, the monolithic reference) and once through the conservative
window protocol. The observable logs must be identical — including the
tie-heavy schedules, same-tick arrival/local races, and reactive
cascades the real workloads may never produce. This is the adversarial
counterpart to the golden-digest byte-identity proof, in the same
spirit as the heap-vs-calendar kernel differential.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.pdes.coordinator import run_partitioned
from repro.pdes.partition import PartitionSpec
from repro.sim import Environment

from tests.pdes.toys import TOY_LOOKAHEAD_US, MonoIsland

#: simulation horizon: past the waiter timeout, past every cascade
UNTIL_US = 20_000.0

#: a tie-heavy time grid: repeated values force same-tick cohorts, and
#: 40.0 lands sends from both islands in the same coordinator window
TIMES = st.sampled_from([0.0, 1.0, 5.0, 5.0, 12.5, 40.0, 40.0, 100.0])

#: one op = [kind, time, aux]; aux widens the send latency past the seam
OPS = st.lists(
    st.tuples(
        st.sampled_from(["timeout", "succeed", "interrupt"]),
        TIMES,
        st.integers(min_value=0, max_value=7),
    ),
    min_size=0,
    max_size=10,
).map(lambda ops: [[kind, when, aux] for kind, when, aux in ops])


def island_specs(ops_a, ops_b):
    return [
        PartitionSpec(
            index=0, name="island0",
            builder="tests.pdes.toys:build_island",
            lookahead_us=TOY_LOOKAHEAD_US,
            config={"peer": 1, "ops": ops_a},
        ),
        PartitionSpec(
            index=1, name="island1",
            builder="tests.pdes.toys:build_island",
            lookahead_us=TOY_LOOKAHEAD_US,
            config={"peer": 0, "ops": ops_b},
        ),
    ]


def run_monolithic(ops_a, ops_b):
    """Both islands on ONE kernel: the causality ground truth."""
    env = Environment()
    registry = {}
    specs = island_specs(ops_a, ops_b)
    islands = [MonoIsland(spec, env, registry) for spec in specs]
    for island in islands:
        registry[island.index] = island
    for island in islands:
        island.build()
    env.run(until=UNTIL_US)
    return {island.index: island.finish() for island in islands}


def run_windows(ops_a, ops_b, workers=None):
    outcome = run_partitioned(
        island_specs(ops_a, ops_b), until=UNTIL_US, workers=workers
    )
    return outcome["fragments"]


@given(ops_a=OPS, ops_b=OPS)
@settings(max_examples=60, deadline=None)
# a message delivering exactly AT a window bound (send at 0, latency 5)
# racing a local event at that bound (timeout at 5): caught the
# inclusive-advance ordering inversion that exclusive windows fix
@example(ops_a=[["timeout", 5.0, 0]], ops_b=[["succeed", 0.0, 0]])
def test_partitioned_logs_match_the_monolithic_kernel(ops_a, ops_b):
    assert run_windows(ops_a, ops_b) == run_monolithic(ops_a, ops_b)


def test_process_executor_matches_the_monolithic_kernel_too():
    """One fixed dense script through spawned workers (spawn is slow, so
    the randomized sweep above stays serial; the executors are proven
    equivalent separately on the hostni workload)."""
    ops_a = [
        ["succeed", 5.0, 0], ["succeed", 5.0, 3], ["timeout", 40.0, 0],
        ["interrupt", 12.5, 0], ["succeed", 100.0, 7],
    ]
    ops_b = [
        ["succeed", 5.0, 0], ["timeout", 5.0, 0], ["succeed", 40.0, 1],
        ["interrupt", 1.0, 0],
    ]
    assert run_windows(ops_a, ops_b, workers=2) == run_monolithic(ops_a, ops_b)
