"""Toy partition harnesses for the pdes test suite.

Importable by ``module:callable`` path (the builder convention), so both
the serial executor and spawned worker processes can reconstruct them.
The island pair is the differential-test workload: hypothesis-chosen
timeout / succeed(send) / interrupt ops on both sides, with reactive
replies so messages cascade across window boundaries.
"""

from __future__ import annotations

from functools import partial

from repro.pdes.partition import MESSAGE_PRIORITY, PartitionHarness
from repro.sim import Interrupt

#: the toy seam lookahead, deliberately tie-friendly
TOY_LOOKAHEAD_US = 5.0


class IslandHarness(PartitionHarness):
    """One island of a two-island toy: replays a scripted op list.

    ``config`` carries ``peer`` (the other island's index) and ``ops``,
    a list of ``[kind, time, aux]`` entries:

    * ``timeout`` — a plain local event at *time* (logs its firing);
    * ``succeed`` — send a message to the peer at *time* with latency
      ``lookahead + aux`` (the peer logs the receipt and replies to
      every third op, so cascades cross window boundaries);
    * ``interrupt`` — spawn a long waiter and interrupt it at *time*
      (exercises the Interrupt delivery path inside a partition).
    """

    def build(self) -> None:
        self.log: list = []
        self.peer = self.spec.config["peer"]
        self._procs: dict = {}
        for k, (kind, when, aux) in enumerate(self.spec.config["ops"]):
            if kind == "timeout":
                self.env.schedule_at(when, partial(self._fire, k), name=f"op{k}")
            elif kind == "succeed":
                self.env.schedule_at(when, partial(self._send_op, k, aux))
            elif kind == "interrupt":
                proc = self.env.process(self._waiter(k), name=f"waiter{k}")
                self._procs[k] = proc
                self.env.schedule_at(when, partial(self._interrupt, k))
            else:  # pragma: no cover - strategy guard
                raise ValueError(f"unknown toy op {kind!r}")

    def _fire(self, k: int) -> None:
        self.log.append(["fire", k, self.env.now])

    def _send_op(self, k: int, aux: int) -> None:
        self.log.append(["send", k, self.env.now])
        self.send(
            self.peer,
            "ping",
            {"op": k},
            latency_us=self.lookahead_us + float(aux),
        )

    def _waiter(self, k: int):
        try:
            yield self.env.timeout(10_000.0)
            self.log.append(["waiter-done", k, self.env.now])
        except Interrupt as it:
            self.log.append(["interrupted", k, it.cause, self.env.now])

    def _interrupt(self, k: int) -> None:
        proc = self._procs[k]
        if proc.is_alive:
            proc.interrupt(k)

    def on_message(self, msg) -> None:
        self.log.append(
            ["recv", msg.kind, msg.payload["op"], msg.src, self.env.now]
        )
        if msg.kind == "ping" and msg.payload["op"] % 3 == 0:
            self.send(msg.src, "pong", {"op": msg.payload["op"]})

    def finish(self) -> dict:
        return {"log": self.log}


def build_island(spec) -> IslandHarness:
    return IslandHarness(spec)


class MonoIsland(IslandHarness):
    """The monolithic reference: both islands share ONE kernel.

    ``send`` short-circuits the coordinator — the peer's ``on_message``
    is scheduled directly on the shared environment at the message's
    delivery time with the same MESSAGE_PRIORITY the partitioned
    delivery path uses. Whatever the window protocol does, the observable
    logs must match this single-kernel execution.
    """

    def __init__(self, spec, env, registry: dict) -> None:
        super().__init__(spec, env=env)
        self._registry = registry

    def send(self, dst, kind, payload, latency_us=None):
        msg = super().send(dst, kind, payload, latency_us)
        peer = self._registry[dst]
        self.env.schedule_at(
            msg.deliver_at,
            partial(peer.on_message, msg),
            priority=MESSAGE_PRIORITY,
            name=f"xmsg:{kind}",
        )
        return msg


class LiarHarness(PartitionHarness):
    """Promises an infinite EOT, then sends early: must be caught."""

    def build(self) -> None:
        self.env.schedule_at(10.0, self._betray)

    def _betray(self) -> None:
        self.send(self.spec.config["peer"], "late", {})

    def eot(self) -> float:
        return float("inf")

    def on_message(self, msg) -> None:  # pragma: no cover - never delivered
        pass

    def finish(self) -> dict:  # pragma: no cover - run aborts first
        return {}


def build_liar(spec) -> LiarHarness:
    return LiarHarness(spec)


class SilentHarness(PartitionHarness):
    """Receives anything, sends nothing, finishes empty."""

    def build(self) -> None:
        self.inbox: list = []

    def on_message(self, msg) -> None:
        self.inbox.append(msg.kind)

    def finish(self) -> dict:
        return {"inbox": list(self.inbox)}


def build_silent(spec) -> SilentHarness:
    return SilentHarness(spec)


#: deliberately not callable: exercises resolve_builder's type guard
NOT_CALLABLE = object()
