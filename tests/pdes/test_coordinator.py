"""Coordinator protocol: causality guards and executor equivalence."""

import json

import pytest

from repro.pdes.coordinator import (
    CausalityError,
    Coordinator,
    run_partitioned,
)
from repro.pdes.hostni import run_hostni
from repro.pdes.partition import PartitionSpec

from tests.pdes.toys import TOY_LOOKAHEAD_US


def island_spec(index, peer, ops):
    return PartitionSpec(
        index=index,
        name=f"island{index}",
        builder="tests.pdes.toys:build_island",
        lookahead_us=TOY_LOOKAHEAD_US,
        config={"peer": peer, "ops": ops},
    )


def canonical_wo_timing(outcome: dict) -> str:
    """The digest-bearing portion of a coordinator result, as bytes.

    ``timing`` is measurement telemetry and ``stats.workers`` names the
    executor that ran — both are digest-exempt by design (they land in
    footers, never in rows/series).
    """
    trimmed = {k: v for k, v in outcome.items() if k != "timing"}
    trimmed["stats"] = {
        k: v for k, v in outcome["stats"].items() if k != "workers"
    }
    return json.dumps(trimmed, sort_keys=True)


# -- construction guards ------------------------------------------------------


def test_coordinator_rejects_empty_spec_list():
    with pytest.raises(ValueError, match="at least one partition spec"):
        Coordinator([], until=10.0)


def test_coordinator_rejects_duplicate_partition_indices():
    a = island_spec(0, 1, [])
    b = island_spec(0, 1, [])
    with pytest.raises(ValueError, match="duplicate partition indices"):
        Coordinator([a, b], until=10.0)


# -- causality guards ---------------------------------------------------------


def test_unsound_eot_promise_raises_causality_error():
    liar = PartitionSpec(
        index=0, name="liar", builder="tests.pdes.toys:build_liar",
        lookahead_us=TOY_LOOKAHEAD_US, config={"peer": 1},
    )
    victim = PartitionSpec(
        index=1, name="victim", builder="tests.pdes.toys:build_silent",
        lookahead_us=TOY_LOOKAHEAD_US,
    )
    with pytest.raises(CausalityError, match="EOT promise"):
        run_partitioned([liar, victim], until=1_000.0)


def test_message_to_unknown_partition_names_valid_indices():
    # island 0 addresses partition 99, which no spec declares
    lone = island_spec(0, 99, [["succeed", 10.0, 0]])
    other = island_spec(1, 0, [])
    with pytest.raises(ValueError, match=r"unknown partition 99.*\[0, 1\]"):
        run_partitioned([lone, other], until=1_000.0)


# -- executor equivalence -----------------------------------------------------


def test_toy_islands_serial_run_is_deterministic():
    ops_a = [["timeout", 0.0, 0], ["succeed", 5.0, 2], ["interrupt", 12.5, 0]]
    ops_b = [["succeed", 5.0, 0], ["timeout", 40.0, 1]]
    specs = [island_spec(0, 1, ops_a), island_spec(1, 0, ops_b)]
    first = run_partitioned(specs, until=20_000.0)
    second = run_partitioned(specs, until=20_000.0)
    assert canonical_wo_timing(first) == canonical_wo_timing(second)
    assert first["stats"]["messages"] >= 3  # pings both ways + pong replies


def test_hostni_process_executor_matches_serial_byte_for_byte():
    serial = run_hostni(n_frames=12, workers=None)
    procs = run_hostni(n_frames=12, workers=2)
    assert canonical_wo_timing(serial) == canonical_wo_timing(procs)
    assert serial["stats"]["workers"] == 0
    assert procs["stats"]["workers"] == 2
    # the window schedule itself is a pure function of the specs
    assert serial["stats"]["bounds"] == procs["stats"]["bounds"]


def test_hostni_completes_the_descriptor_ring():
    outcome = run_hostni(n_frames=12)
    host = outcome["fragments"][0]
    ni = outcome["fragments"][1]
    assert host["posted"] == 12
    assert host["acked"] == 12
    assert ni["served"] == 12


def test_worker_count_is_clamped_to_partition_count():
    # 2 hostni partitions on 8 requested workers -> 2 spawned
    outcome = run_hostni(n_frames=6, workers=8)
    assert outcome["stats"]["workers"] == 2


def test_pdescluster_process_executor_matches_serial(tmp_path):
    from repro.pdes.cluster import run_pdescluster

    serial = run_pdescluster(2_000_000.0, seed=42, n_nodes=2, workers=None)
    procs = run_pdescluster(2_000_000.0, seed=42, n_nodes=2, workers=2)
    assert canonical_wo_timing(serial) == canonical_wo_timing(procs)


def test_timing_block_is_present_but_excluded_from_canonical():
    outcome = run_hostni(n_frames=6, workers=2)
    timing = outcome["timing"]
    assert timing["wall_s"] > 0.0
    assert timing["startup_s"] > 0.0
    assert set(timing["worker_cpu_s"]) == set(timing["worker_build_cpu_s"])
    assert "timing" not in canonical_wo_timing(outcome)
