"""Unit tests for the partition primitives and the seam declarations."""

import pytest

from repro.pdes.boundary import Seam, describe_seams
from repro.pdes.cluster import SAN_LOOKAHEAD_US
from repro.pdes.hostni import PCI_LOOKAHEAD_US
from repro.pdes.partition import (
    MESSAGE_PRIORITY,
    CrossMessage,
    PartitionHarness,
    PartitionSpec,
    resolve_builder,
)
from repro.sim import SimulationError

from tests.pdes.toys import TOY_LOOKAHEAD_US, SilentHarness, build_island


def spec(index=0, lookahead=TOY_LOOKAHEAD_US, **cfg):
    return PartitionSpec(
        index=index,
        name=f"toy{index}",
        builder="tests.pdes.toys:build_silent",
        lookahead_us=lookahead,
        config=cfg,
    )


# -- CrossMessage -------------------------------------------------------------


def test_cross_message_round_trips_through_canonical_dict():
    msg = CrossMessage(
        src=1, dst=0, send_time=3.0, deliver_at=8.0, seq=7,
        kind="ping", payload={"op": 4},
    )
    assert CrossMessage.from_dict(msg.canonical()) == msg


def test_cross_message_order_key_sorts_like_a_monolithic_kernel():
    # deliver_at first, then send_time, then src, then per-source seq
    msgs = [
        CrossMessage(src=1, dst=0, send_time=2.0, deliver_at=9.0, seq=1, kind="a", payload={}),
        CrossMessage(src=0, dst=1, send_time=2.0, deliver_at=8.0, seq=2, kind="b", payload={}),
        CrossMessage(src=1, dst=0, send_time=1.0, deliver_at=8.0, seq=3, kind="c", payload={}),
        CrossMessage(src=0, dst=1, send_time=1.0, deliver_at=8.0, seq=1, kind="d", payload={}),
    ]
    assert [m.kind for m in sorted(msgs, key=lambda m: m.order_key)] == [
        "d", "c", "b", "a"
    ]


# -- PartitionSpec ------------------------------------------------------------


def test_partition_spec_round_trips_through_canonical_dict():
    s = spec(index=3, marker=1)
    assert PartitionSpec.from_dict(s.canonical()) == s


def test_partition_spec_rejects_negative_index():
    with pytest.raises(ValueError, match="index must be >= 0"):
        spec(index=-1)


@pytest.mark.parametrize("lookahead", [0.0, -2.5])
def test_partition_spec_rejects_nonpositive_lookahead(lookahead):
    with pytest.raises(ValueError, match="positive lookahead_us"):
        spec(lookahead=lookahead)


def test_partition_spec_rejects_builder_without_colon():
    with pytest.raises(ValueError, match="module:callable"):
        PartitionSpec(
            index=0, name="x", builder="not_a_path",
            lookahead_us=1.0,
        )


# -- resolve_builder ----------------------------------------------------------


def test_resolve_builder_imports_by_path():
    assert resolve_builder("tests.pdes.toys:build_island") is build_island


@pytest.mark.parametrize(
    "path",
    ["no.such.module:build", "tests.pdes.toys:no_such_builder"],
)
def test_resolve_builder_rejects_unresolvable_paths(path):
    with pytest.raises(ValueError, match="cannot resolve partition builder"):
        resolve_builder(path)


def test_resolve_builder_rejects_non_callable_target():
    with pytest.raises(ValueError, match="is not callable"):
        resolve_builder("tests.pdes.toys:NOT_CALLABLE")


# -- PartitionHarness plumbing ------------------------------------------------


def test_send_below_seam_lookahead_is_refused():
    h = SilentHarness(spec())
    h.build()
    with pytest.raises(ValueError, match="below the declared seam lookahead"):
        h.send(1, "ping", {}, latency_us=TOY_LOOKAHEAD_US / 2)


def test_send_defaults_latency_to_the_seam_lookahead():
    h = SilentHarness(spec())
    h.build()
    msg = h.send(1, "ping", {"op": 0})
    assert msg.deliver_at == msg.send_time + TOY_LOOKAHEAD_US
    assert msg.seq == 1 and h.sent == 1


def test_harvest_drains_the_outbox_once():
    h = SilentHarness(spec())
    h.build()
    h.send(1, "a", {})
    h.send(1, "b", {})
    assert [m.kind for m in h.harvest()] == ["a", "b"]
    assert h.harvest() == []


def test_default_eot_is_next_event_plus_lookahead():
    h = SilentHarness(spec())
    h.build()
    assert h.eot() == float("inf")  # empty queue: peek() is inf
    h.env.schedule_at(12.0, lambda: None)
    assert h.eot() == 12.0 + TOY_LOOKAHEAD_US


def test_deliver_into_the_local_past_raises():
    h = SilentHarness(spec())
    h.build()
    h.env.schedule_at(50.0, lambda: None)
    h.advance(50.0)
    late = CrossMessage(
        src=1, dst=0, send_time=10.0, deliver_at=20.0, seq=1,
        kind="late", payload={},
    )
    with pytest.raises(SimulationError):
        h.deliver([late])


def test_deliver_schedules_at_message_priority():
    """Same-tick arrivals beat local events: the order a monolithic run pins."""
    order = []
    h = SilentHarness(spec())
    h.build()
    h.on_message = lambda msg: order.append("arrival")
    h.env.schedule_at(30.0, lambda: order.append("local"))
    h.deliver([
        CrossMessage(src=1, dst=0, send_time=25.0, deliver_at=30.0, seq=1,
                     kind="tick", payload={})
    ])
    h.advance(31.0)
    assert order == ["arrival", "local"]
    assert MESSAGE_PRIORITY == 0


# -- seams --------------------------------------------------------------------


def test_seam_rejects_nonpositive_lookahead():
    with pytest.raises(ValueError, match="positive lookahead"):
        Seam(name="bad", lookahead_us=0.0, description="zero-width")


def test_describe_seams_reports_the_three_hardware_boundaries():
    seams = {s.name: s for s in describe_seams()}
    assert set(seams) == {"pci", "ethernet", "san"}
    assert all(s.lookahead_us > 0 for s in seams.values())


def test_pci_lookahead_pins_the_bridge_minimum():
    seams = {s.name: s for s in describe_seams()}
    assert PCI_LOOKAHEAD_US == seams["pci"].lookahead_us


def test_san_lookahead_pins_the_cluster_minimum():
    """SAN_LOOKAHEAD_US must track Cluster.min_cross_latency_us()."""
    from repro.server.cluster import Cluster
    from repro.sim import Environment

    cluster = Cluster(Environment(), n_nodes=2, n_cpus_per_node=1)
    assert SAN_LOOKAHEAD_US == cluster.min_cross_latency_us()
    assert SAN_LOOKAHEAD_US == {s.name: s for s in describe_seams()}[
        "san"
    ].lookahead_us
