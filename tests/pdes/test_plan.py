"""Plan layer, sweep partition axis, and bench critical-path arithmetic."""

import pytest

from repro.experiments.bench import (
    PARTITION_TARGET_SPEEDUP,
    critical_path_seconds,
    run_partition_bench,
)
from repro.experiments.golden import (
    SHORT_DURATION_US,
    load_goldens,
    result_digest,
)
from repro.experiments.sweep import parse_partition_axis
from repro.pdes.plan import plan_axes, plans, run_plan


# -- plans --------------------------------------------------------------------


def test_every_headline_campaign_has_a_partition_plan():
    registered = plans()
    for name in (
        "figure9", "figure10", "chaos", "failover", "cluster", "transport",
        "figure6", "figure7", "figure8",
    ):
        assert name in registered, name
        plan = registered[name]
        assert plan.units, name
        assert plan.axis  # --list prints the independence axis


def test_plan_axes_describe_cell_counts():
    axes = plan_axes()
    assert set(axes) == set(plans())
    assert all("cell" in axis for axis in axes.values())


@pytest.mark.parametrize("bad", [0, -3, 1.5, "2"])
def test_run_plan_rejects_non_positive_worker_counts(bad):
    with pytest.raises(ValueError, match="positive worker count"):
        run_plan("figure9", partitions=bad)


def test_partitioned_figure9_reproduces_the_pinned_short_golden():
    """The fan-out/reassemble path must land on the serially-pinned bytes."""
    pinned = load_goldens().get("short", {}).get("digests", {}).get("figure9")
    if pinned is None:
        pytest.skip("no pinned short goldens in this checkout")
    result = run_plan("figure9", seed=42, duration_us=SHORT_DURATION_US, partitions=2)
    assert result_digest(result) == pinned


# -- sweep partition axis -----------------------------------------------------


def test_parse_partition_axis_accepts_serial_and_worker_counts():
    assert parse_partition_axis(["serial", "2", "8"]) == [None, 2, 8]
    assert parse_partition_axis([]) == []


@pytest.mark.parametrize("token", ["0", "-1", "two", "parallel", ""])
def test_parse_partition_axis_names_the_offending_token(token):
    with pytest.raises(ValueError) as err:
        parse_partition_axis(["serial", token])
    assert f"unknown partition-axis value {token!r}" in str(err.value)
    assert "'serial' or a positive worker count" in str(err.value)


# -- bench critical path ------------------------------------------------------


def test_partition_speedup_target_is_pinned():
    assert PARTITION_TARGET_SPEEDUP == 1.3


def test_critical_path_folds_overlap_and_recovers_coordinator_share():
    timing = {
        "wall_s": 10.0,
        "startup_s": 2.0,
        "worker_build_cpu_s": {0: 1.0, 1: 3.0},
        "worker_cpu_s": {0: 2.0, 1: 4.0},
    }
    critical, coord = critical_path_seconds(timing)
    # coordinator share: wall - startup - SUM(window cpu) = 10 - 2 - 6
    assert coord == pytest.approx(2.0)
    # critical path: MAX bring-up + MAX window + coordinator = 3 + 4 + 2
    assert critical == pytest.approx(9.0)


def test_critical_path_clamps_negative_coordinator_share():
    # workers genuinely overlapped: wall < startup + sum(cpu)
    timing = {
        "wall_s": 4.0,
        "startup_s": 1.0,
        "worker_build_cpu_s": {0: 0.5, 1: 0.5},
        "worker_cpu_s": {0: 2.0, 1: 2.0},
    }
    critical, coord = critical_path_seconds(timing)
    assert coord == 0.0
    assert critical == pytest.approx(0.5 + 2.0)


def test_critical_path_degrades_to_serial_shape_without_worker_data():
    # a serial run reports no per-worker CPU: critical path == wall
    timing = {"wall_s": 7.0, "startup_s": 0.0}
    critical, coord = critical_path_seconds(timing)
    assert coord == pytest.approx(7.0)
    assert critical == pytest.approx(7.0)


@pytest.mark.parametrize("bad", [0, -2])
def test_partition_bench_rejects_non_positive_worker_counts(bad):
    with pytest.raises(ValueError, match="positive worker count"):
        run_partition_bench(bad)
