"""Quality ladder and the hysteretic adapter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media import FrameType, MPEGEncoder
from repro.media.adaptation import QualityAdapter, Rendition, quality_ladder
from repro.sim import RandomStreams


@pytest.fixture
def ladder():
    file = MPEGEncoder(rng=RandomStreams(0)).encode("m", 48)
    return quality_ladder(file)


class TestLadder:
    def test_three_rungs_best_first(self, ladder):
        assert [r.name for r in ladder] == ["full", "anchors", "intra"]
        assert len(ladder[0]) > len(ladder[1]) > len(ladder[2])

    def test_byte_fractions_decrease(self, ladder):
        fractions = [r.byte_fraction for r in ladder]
        assert fractions[0] == pytest.approx(1.0)
        assert fractions == sorted(fractions, reverse=True)

    def test_rung_type_composition(self, ladder):
        assert {f.ftype for f in ladder[1].frames} == {FrameType.I, FrameType.P}
        assert {f.ftype for f in ladder[2].frames} == {FrameType.I}


class TestAdapter:
    def test_validation(self, ladder):
        with pytest.raises(ValueError):
            QualityAdapter([])
        with pytest.raises(ValueError):
            QualityAdapter(ladder, degrade_below=0.99, upgrade_above=0.9)
        with pytest.raises(ValueError):
            QualityAdapter(ladder, patience=0)
        with pytest.raises(ValueError):
            QualityAdapter(ladder).observe(-1, 0)

    def test_sustained_loss_steps_down(self, ladder):
        adapter = QualityAdapter(ladder, patience=3)
        for _ in range(3):
            adapter.observe(expected=10, received=5)
        assert adapter.rendition.name == "anchors"
        assert adapter.downgrades == 1

    def test_single_bad_window_is_tolerated(self, ladder):
        adapter = QualityAdapter(ladder, patience=3)
        adapter.observe(10, 4)
        adapter.observe(10, 10)  # recovery resets the bad streak
        adapter.observe(10, 4)
        adapter.observe(10, 4)
        assert adapter.rendition.name == "full"

    def test_recovery_steps_back_up(self, ladder):
        adapter = QualityAdapter(ladder, patience=2)
        for _ in range(4):
            adapter.observe(10, 3)
        assert adapter.level > 0
        before = adapter.level
        for _ in range(2 * before):
            adapter.observe(10, 10)
        assert adapter.level == 0
        assert adapter.upgrades >= 1

    def test_dead_band_prevents_flapping(self, ladder):
        adapter = QualityAdapter(ladder, degrade_below=0.8, upgrade_above=0.98, patience=2)
        # ratios inside (0.8, 0.98): neither streak advances
        for _ in range(20):
            adapter.observe(10, 9)
        assert adapter.downgrades == 0
        assert adapter.upgrades == 0

    def test_floor_and_ceiling(self, ladder):
        adapter = QualityAdapter(ladder, patience=1)
        for _ in range(10):
            adapter.observe(10, 0)
        assert adapter.rendition.name == "intra"  # pinned at the floor
        for _ in range(10):
            adapter.observe(10, 10)
        assert adapter.rendition.name == "full"  # pinned at the ceiling

    def test_empty_window_is_neutral(self, ladder):
        adapter = QualityAdapter(ladder, patience=1)
        adapter.observe(0, 0)
        assert adapter.level == 0

    def test_transitions_recorded_with_time(self, ladder):
        adapter = QualityAdapter(ladder, patience=1)
        adapter.observe(10, 1, now_us=5e6)
        assert adapter.transitions == [(5e6, 1)]

    @given(
        outcomes=st.lists(st.integers(0, 10), min_size=1, max_size=120),
        patience=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_level_always_in_range(self, outcomes, patience):
        # built inline: hypothesis forbids function-scoped fixtures
        file = MPEGEncoder(rng=RandomStreams(0)).encode("m", 48)
        adapter = QualityAdapter(quality_ladder(file), patience=patience)
        n_levels = len(adapter.ladder)
        for got in outcomes:
            adapter.observe(10, got)
            assert 0 <= adapter.level < n_levels
