"""MPEG client reception accounting."""

import pytest

from repro.hw import EthernetPort, EthernetSwitch, NetFrame
from repro.media import MPEGClient
from repro.sim import Environment


@pytest.fixture
def topology():
    env = Environment()
    switch = EthernetSwitch(env)
    server = EthernetPort(env, "server")
    client_port = EthernetPort(env, "client")
    switch.attach(server)
    switch.attach(client_port)
    client = MPEGClient(env, "c0", client_port)
    return env, server, client


def send_frames(env, server, frames, gap_us):
    def sender():
        for f in frames:
            yield from server.send(f, "client")
            yield env.timeout(gap_us)

    env.process(sender())


class TestReception:
    def test_frames_counted_per_stream(self, topology):
        env, server, client = topology
        frames = [NetFrame(1000, stream_id="s1", seqno=i) for i in range(5)]
        frames += [NetFrame(500, stream_id="s2", seqno=i) for i in range(3)]
        send_frames(env, server, frames, gap_us=1000.0)
        env.run()
        assert client.reception("s1").frames_received == 5
        assert client.reception("s2").frames_received == 3
        assert client.total_frames == 8

    def test_bytes_and_bandwidth_recorded(self, topology):
        env, server, client = topology
        frames = [NetFrame(1250, stream_id="s1", seqno=i) for i in range(60)]
        send_frames(env, server, frames, gap_us=50_000.0)  # 20/s
        env.run()
        rec = client.reception("s1")
        assert rec.bytes_received == 75_000
        # steady rate = 1250B * 20/s = 200_000 bps; skip the ramp-up of the
        # 1s sliding window before judging the settled value
        assert rec.settled_bandwidth_bps(after_us=1_200_000.0) == pytest.approx(
            200_000.0, rel=0.10
        )

    def test_interarrival_jitter_tracked(self, topology):
        env, server, client = topology
        frames = [NetFrame(100, stream_id="s1", seqno=i) for i in range(10)]
        send_frames(env, server, frames, gap_us=10_000.0)
        env.run()
        rec = client.reception("s1")
        assert rec.interarrival_us.count == 9
        assert rec.interarrival_us.mean == pytest.approx(10_000.0, rel=0.15)

    def test_out_of_order_detection(self, topology):
        env, server, client = topology
        frames = [
            NetFrame(100, stream_id="s1", seqno=s) for s in (0, 1, 3, 2, 4)
        ]
        send_frames(env, server, frames, gap_us=1000.0)
        env.run()
        assert client.reception("s1").out_of_order == 1

    def test_unknown_stream_raises(self, topology):
        _env, _server, client = topology
        with pytest.raises(KeyError):
            client.reception("nope")

    def test_receive_stack_cost_delays_recording(self, topology):
        env, server, client = topology
        send_frames(env, server, [NetFrame(1000, stream_id="s1")], gap_us=0.0)
        env.run()
        rec = client.reception("s1")
        # arrival recorded after wire + switch + client stack: >> wire alone
        assert rec.last_arrival_us > 300.0
