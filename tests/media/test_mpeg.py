"""Synthetic MPEG encoding and segmentation."""

import pytest

from repro.media import (
    FrameType,
    GOPStructure,
    MPEGEncoder,
    MediaFrame,
    segment,
)
from repro.sim import RandomStreams


class TestGOPStructure:
    def test_default_pattern_is_ibbpbb(self):
        pattern = GOPStructure(n=12, m=3).pattern()
        assert pattern[0] == FrameType.I
        assert pattern[3] == FrameType.P
        assert pattern[1] == pattern[2] == FrameType.B
        assert len(pattern) == 12
        assert pattern.count(FrameType.I) == 1
        assert pattern.count(FrameType.P) == 3
        assert pattern.count(FrameType.B) == 8

    def test_m1_has_no_b_frames(self):
        pattern = GOPStructure(n=6, m=1).pattern()
        assert FrameType.B not in pattern

    def test_invalid_gop_rejected(self):
        with pytest.raises(ValueError):
            GOPStructure(n=0, m=1)
        with pytest.raises(ValueError):
            GOPStructure(n=10, m=3)  # N not multiple of M


class TestMediaFrame:
    def test_validation(self):
        with pytest.raises(ValueError):
            MediaFrame("s", 0, FrameType.I, 0, 0.0)
        with pytest.raises(ValueError):
            MediaFrame("s", -1, FrameType.I, 100, 0.0)


class TestMPEGEncoder:
    def test_frame_count_and_order(self):
        f = MPEGEncoder().encode("movie", 30)
        assert len(f) == 30
        assert [fr.seqno for fr in f] == list(range(30))

    def test_bitrate_close_to_target(self):
        enc = MPEGEncoder(bitrate_bps=1_500_000.0, fps=30.0)
        f = enc.encode("movie", 600)
        assert f.mean_bitrate_bps == pytest.approx(1_500_000.0, rel=0.10)

    def test_low_bitrate_stream(self):
        enc = MPEGEncoder(bitrate_bps=250_000.0, fps=24.0)
        f = enc.encode("s1", 480)
        assert f.mean_bitrate_bps == pytest.approx(250_000.0, rel=0.10)

    def test_i_frames_bigger_than_p_bigger_than_b(self):
        f = MPEGEncoder(size_jitter=0.0).encode("movie", 120)
        mean = lambda t: sum(
            fr.size_bytes for fr in f if fr.ftype == t
        ) / max(1, sum(1 for fr in f if fr.ftype == t))
        assert mean(FrameType.I) > mean(FrameType.P) > mean(FrameType.B)

    def test_deterministic_for_same_seed_and_name(self):
        a = MPEGEncoder(rng=RandomStreams(7)).encode("m", 50)
        b = MPEGEncoder(rng=RandomStreams(7)).encode("m", 50)
        assert [f.size_bytes for f in a] == [f.size_bytes for f in b]

    def test_different_names_differ(self):
        rng = RandomStreams(7)
        enc = MPEGEncoder(rng=rng)
        a = enc.encode("m1", 50)
        b = enc.encode("m2", 50)
        assert [f.size_bytes for f in a] != [f.size_bytes for f in b]

    def test_pts_spacing_matches_fps(self):
        f = MPEGEncoder(fps=25.0).encode("m", 10)
        gaps = {
            round(f.frames[i + 1].pts_us - f.frames[i].pts_us)
            for i in range(9)
        }
        assert gaps == {40_000}

    def test_duration(self):
        f = MPEGEncoder(fps=30.0).encode("m", 90)
        assert f.duration_us == pytest.approx(3_000_000.0)

    def test_batched_draws_match_per_frame_loop_bitwise(self):
        """encode()'s single vectorized lognormal call must be
        bit-identical to the reference one-draw-per-frame loop: same
        generator-stream consumption, same scalar C arithmetic per
        element (a SIMD ufunc substitute would not guarantee this)."""
        import numpy as np

        file = MPEGEncoder(rng=RandomStreams(seed=7)).encode("movie", 97)
        ref = MPEGEncoder(rng=RandomStreams(seed=7))
        gen = ref.rng.stream("mpeg:movie")
        base = ref._base_sizes()
        pattern = ref.gop.pattern()
        expected = []
        for i in range(97):
            mean = base[pattern[i % len(pattern)]]
            mu = np.log(mean) - ref.size_jitter**2 / 2.0
            size = float(gen.lognormal(mu, ref.size_jitter))
            expected.append(max(64, int(round(size))))
        assert [f.size_bytes for f in file.frames] == expected

    def test_zero_jitter_sizes_exact(self):
        f = MPEGEncoder(size_jitter=0.0).encode("m", 24)
        i_sizes = {fr.size_bytes for fr in f if fr.ftype == FrameType.I}
        assert len(i_sizes) == 1  # all I frames identical without jitter

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MPEGEncoder(bitrate_bps=0)
        with pytest.raises(ValueError):
            MPEGEncoder(fps=0)
        with pytest.raises(ValueError):
            MPEGEncoder(size_jitter=-0.1)
        with pytest.raises(ValueError):
            MPEGEncoder().encode("m", 0)


class TestSegment:
    def test_full_segmentation(self):
        f = MPEGEncoder().encode("m", 36)
        assert segment(f) == f.frames

    def test_type_filtered_segmentation(self):
        f = MPEGEncoder().encode("m", 36)
        anchors = segment(f, types=[FrameType.I, FrameType.P])
        assert all(fr.ftype != FrameType.B for fr in anchors)
        assert len(anchors) == 12  # 3 GOPs x (1 I + 3 P)
