"""Byte-level MPEG serialization and the segmentation program."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media import (
    BitstreamError,
    BitstreamSegmenter,
    FrameType,
    MPEGEncoder,
    serialize,
)
from repro.media.bitstream import (
    PICTURE_START,
    SEQUENCE_END,
    SEQUENCE_START,
)
from repro.sim import RandomStreams


def make_file(n=24, seed=0, fps=30.0):
    return MPEGEncoder(fps=fps, rng=RandomStreams(seed)).encode("m", n)


class TestSerialize:
    def test_structure_markers(self):
        data = serialize(make_file(6))
        assert data.startswith(SEQUENCE_START)
        assert data.endswith(SEQUENCE_END)
        # at least one marker per picture; header/payload bytes may emulate
        # the pattern (the parser is position-based, not scanning, so
        # emulated codes are harmless)
        assert data.count(PICTURE_START) >= 6

    def test_size_accounts_for_payloads(self):
        f = make_file(12)
        data = serialize(f)
        assert len(data) > f.size_bytes  # payloads + headers


class TestSegmenter:
    def test_roundtrip_one_shot(self):
        f = make_file(24)
        frames = BitstreamSegmenter("m").segment_all(serialize(f))
        assert len(frames) == 24
        for original, parsed in zip(f.frames, frames):
            assert parsed.seqno == original.seqno
            assert parsed.ftype == original.ftype
            assert parsed.size_bytes == original.size_bytes
            assert parsed.pts_us == pytest.approx(original.pts_us)

    def test_incremental_chunked_parsing(self):
        f = make_file(24)
        data = serialize(f)
        seg = BitstreamSegmenter("m")
        frames = []
        chunk = 1000
        for i in range(0, len(data), chunk):
            frames.extend(seg.push(data[i : i + chunk]))
        assert seg.finished
        assert len(frames) == 24
        assert seg.fps == pytest.approx(30.0)
        assert seg.expected_frames == 24

    def test_truncated_stream_detected(self):
        data = serialize(make_file(6))
        seg = BitstreamSegmenter("m")
        with pytest.raises(BitstreamError, match="truncated"):
            seg.segment_all(data[:-10])

    def test_frame_count_mismatch_detected(self):
        data = bytearray(serialize(make_file(6)))
        # drop the last picture by splicing sequence-end right after frame 4
        second_last = data.rfind(PICTURE_START)
        data[second_last:] = SEQUENCE_END
        with pytest.raises(BitstreamError, match="promised"):
            BitstreamSegmenter("m").segment_all(bytes(data))

    def test_garbage_rejected(self):
        with pytest.raises(BitstreamError, match="bad start code"):
            BitstreamSegmenter("m").push(b"\xde\xad\xbe\xef")

    def test_picture_before_sequence_rejected(self):
        data = serialize(make_file(2))
        body = data[len(SEQUENCE_START) + 8 :]  # skip sequence header
        with pytest.raises(BitstreamError, match="picture before sequence"):
            BitstreamSegmenter("m").push(body)

    def test_push_after_end_rejected(self):
        seg = BitstreamSegmenter("m")
        seg.segment_all(serialize(make_file(2)))
        with pytest.raises(BitstreamError):
            seg.push(b"\x00")

    @given(
        n=st.integers(1, 40),
        fps=st.sampled_from([24.0, 25.0, 30.0]),
        chunk=st.integers(1, 5000),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_any_chunking(self, n, fps, chunk, seed):
        f = MPEGEncoder(fps=fps, rng=RandomStreams(seed)).encode("m", n)
        data = serialize(f)
        seg = BitstreamSegmenter("m")
        frames = []
        for i in range(0, len(data), chunk):
            frames.extend(seg.push(data[i : i + chunk]))
        assert seg.finished
        assert [(x.seqno, x.ftype, x.size_bytes) for x in frames] == [
            (x.seqno, x.ftype, x.size_bytes) for x in f.frames
        ]
