"""Property tests: TCP delivers everything, in order, for any loss seed."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import EthernetPort, EthernetSwitch, HOST_STACK
from repro.net import TCPStack
from repro.sim import Environment, RandomStreams, S


@given(
    seed=st.integers(0, 10_000),
    loss=st.sampled_from([0.0, 0.1, 0.25]),
    n_records=st.integers(1, 15),
    record_bytes=st.integers(1, 6000),
)
@settings(max_examples=25, deadline=None)
def test_reliable_in_order_delivery_under_any_loss(seed, loss, n_records, record_bytes):
    env = Environment()
    switch = EthernetSwitch(
        env, loss_rate=loss, loss_rng=RandomStreams(seed).stream("loss")
    )
    a_port, b_port = EthernetPort(env, "A"), EthernetPort(env, "B")
    switch.attach(a_port)
    switch.attach(b_port)
    # HOST_STACK keeps per-segment costs small so the property runs fast
    a = TCPStack(env, a_port, HOST_STACK, rto_us=50_000.0)
    b = TCPStack(env, b_port, HOST_STACK, rto_us=50_000.0)
    accept = b.listen(1)
    got = []

    def server():
        conn = yield accept.get()
        while True:
            rec = yield conn.recv()
            got.append((rec["data"], rec["nbytes"]))

    def client():
        conn = yield from a.connect("B", 1, src_port=2)
        for i in range(n_records):
            conn.send(record_bytes, data=i)

    env.process(server())
    env.process(client())
    env.run(until=120 * S)
    assert got == [(i, record_bytes) for i in range(n_records)]


@given(
    offset=st.integers(0, 10**6),
    nbytes=st.integers(1, 10**6),
    width=st.integers(1, 8),
    stripe=st.sampled_from([512, 4096, 65_536]),
)
@settings(max_examples=60, deadline=None)
def test_stripe_layout_covers_extent_exactly_once(offset, nbytes, width, stripe):
    """Layout property: pieces are contiguous, non-overlapping, complete,
    and each piece stays inside one stripe unit on its disk."""
    from repro.hw import SCSIDisk
    from repro.hw.striping import StripedVolume

    env = Environment()
    vol = StripedVolume(
        env, [SCSIDisk(env, name=f"d{i}") for i in range(width)], stripe_bytes=stripe
    )
    pieces = vol._layout(offset, nbytes)
    assert sum(length for _d, _l, length in pieces) == nbytes
    # piece k must begin exactly where piece k-1 ended in the logical extent
    pos = offset
    for disk, local, length in pieces:
        stripe_index = pos // stripe
        assert vol.disks[stripe_index % width] is disk
        row = stripe_index // width
        assert local == row * stripe + (pos % stripe)
        assert length <= stripe - (pos % stripe)  # never crosses a unit
        pos += length
    assert pos == offset + nbytes
