"""Property tests: the TTP state machine vs a reference model, and
end-to-end delivery under randomized loss/drop/dup fault interleavings.

Two layers, mirroring test_tcp_properties.py:

* a **differential** against a pure reference receiver: the same packet
  arrival sequence (with hypothesis-chosen losses, duplicates, and local
  reorderings) is fed to a production receiver running a tiny wrapped
  sequence space and to a reference receiver whose sequence space is
  effectively unbounded. The delivered record streams must be equal —
  wraparound must be invisible — and nothing may deliver twice.
* an **end-to-end** property: for any loss seed and any msg-drop/msg-dup
  fault window the plane can draw, every record sent arrives exactly
  once, in order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlane
from repro.hw import EthernetPort, EthernetSwitch, HOST_STACK
from repro.net import TTPError, TTPPacket, TTPStack
from repro.sim import Environment, RandomStreams, S

WINDOW = 2
#: wraps every 16 packets — small enough that a 40-packet run crosses the
#: wrap repeatedly, large enough that the bounded reordering below can
#: never displace a packet far enough to alias (seq_mod // 2 = 8 > any
#: displacement the generator produces)
WRAPPED_SEQ_MOD = 16
REFERENCE_SEQ_MOD = 1 << 30  # never wraps in practice: the reference


def make_receiver(seq_mod):
    """A receiver-side link fed by hand; control replies are swallowed."""
    env = Environment()
    switch = EthernetSwitch(env)
    port = EthernetPort(env, "rx")
    switch.attach(port)
    stack = TTPStack(env, port, HOST_STACK, window=WINDOW, seq_mod=seq_mod)
    link = stack._make_link(1, "peer", 2, tag=5, initiator=False)
    link.state = "open"
    link._send_control = lambda kind: None  # no wire: arrivals only
    return link


def payload(link, seq):
    return TTPPacket(
        kind="payload",
        src_host="peer",
        src_port=2,
        dst_port=1,
        tag=5,
        seq=seq % link.seq_mod,
        payload_bytes=100,
        record_id=seq,
        record_segments=1,
        data=seq,
    )


@given(
    n_packets=st.integers(1, 40),
    drops=st.sets(st.integers(0, 39)),
    dups=st.sets(st.integers(0, 39)),
    swap_seed=st.integers(0, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_wrapped_receiver_matches_unbounded_reference(
    n_packets, drops, dups, swap_seed
):
    """Same arrivals, tiny wrapped seq space vs unbounded: same deliveries."""
    arrivals = []
    for seq in range(n_packets):
        if seq in drops:
            continue
        arrivals.append(seq)
        if seq in dups:
            arrivals.append(seq)  # duplicate rides right behind
    # bounded reordering: each arrival is jittered at most 3 slots (stable
    # sort), so no displacement can reach the wrap ambiguity distance
    rng = RandomStreams(swap_seed).stream("swap")
    keys = [(i + int(rng.random() * 4), i) for i in range(len(arrivals))]
    arrivals = [arrivals[i] for _key, i in sorted(keys)]

    # The go-back-N sender discipline: with window w <= seq_mod // 2, a
    # sender can never be seq_mod // 2 ahead of an unhealed gap (it stalls
    # at send_base until the gap acks). Arrival sequences violating that
    # are unreachable on a real link, and the wrap algebra is allowed to
    # alias them — so the generator enforces the same precondition,
    # tracking the receiver prefix with the reference model itself.
    reference = make_receiver(REFERENCE_SEQ_MOD)
    feasible = []
    for seq in arrivals:
        if seq - reference._rcv_next < WRAPPED_SEQ_MOD // 2:
            feasible.append(seq)
            reference._on_packet(payload(reference, seq))

    wrapped = make_receiver(WRAPPED_SEQ_MOD)
    for seq in feasible:
        wrapped._on_packet(payload(wrapped, seq))

    delivered_wrapped = [item["record_id"] for item in wrapped.inbox.items]
    delivered_reference = [item["record_id"] for item in reference.inbox.items]
    assert delivered_wrapped == delivered_reference
    # no double delivery, ever
    assert len(delivered_wrapped) == len(set(delivered_wrapped))
    # deliveries are the in-order prefix up to the first unhealed gap
    assert delivered_wrapped == sorted(delivered_wrapped)


@given(
    seed=st.integers(0, 10_000),
    loss=st.sampled_from([0.0, 0.1, 0.25]),
    n_records=st.integers(1, 15),
    record_bytes=st.integers(1, 6000),
)
@settings(max_examples=25, deadline=None)
def test_reliable_in_order_delivery_under_any_loss(seed, loss, n_records, record_bytes):
    env = Environment()
    switch = EthernetSwitch(
        env, loss_rate=loss, loss_rng=RandomStreams(seed).stream("loss")
    )
    a_port, b_port = EthernetPort(env, "A"), EthernetPort(env, "B")
    switch.attach(a_port)
    switch.attach(b_port)
    a = TTPStack(env, a_port, HOST_STACK, retx_us=50_000.0)
    b = TTPStack(env, b_port, HOST_STACK, retx_us=50_000.0)
    accept = b.listen(1)
    got = []

    def server():
        link = yield accept.get()
        while True:
            rec = yield link.recv()
            got.append((rec["data"], rec["nbytes"]))

    def client():
        link = yield from a.open("B", 1, src_port=2)
        for i in range(n_records):
            link.send(record_bytes, data=i)

    env.process(server())
    env.process(client())
    env.run(until=120 * S)
    assert got == [(i, record_bytes) for i in range(n_records)]


@given(
    seed=st.integers(0, 10_000),
    drop_rate=st.sampled_from([0.0, 0.3, 1.0]),
    dup_rate=st.sampled_from([0.0, 0.5]),
    window_frac=st.tuples(
        st.floats(0.0, 0.5), st.floats(0.05, 0.4)
    ),
)
@settings(max_examples=25, deadline=None)
def test_exactly_once_delivery_under_fault_windows(
    seed, drop_rate, dup_rate, window_frac
):
    """msg-drop and msg-dup windows against the sending stack: whatever the
    plane does, every record still arrives exactly once, in order."""
    run_us = 60 * S
    start_us = window_frac[0] * run_us
    end_us = start_us + window_frac[1] * run_us
    env = Environment()
    switch = EthernetSwitch(env)
    a_port, b_port = EthernetPort(env, "A"), EthernetPort(env, "B")
    switch.attach(a_port)
    switch.attach(b_port)
    a = TTPStack(env, a_port, HOST_STACK, retx_us=50_000.0, max_retries=50)
    b = TTPStack(env, b_port, HOST_STACK, retx_us=50_000.0, max_retries=50)
    plane = FaultPlane(env, seed=seed)
    if drop_rate > 0.0:
        plane.inject_message_drop(a.name, start_us, end_us, rate=drop_rate)
    if dup_rate > 0.0:
        plane.inject_message_duplication(a.name, start_us, end_us, rate=dup_rate)
    accept = b.listen(1)
    got = []
    open_failed = []

    def server():
        link = yield accept.get()
        while True:
            rec = yield link.recv()
            got.append(rec["data"])

    def client():
        try:
            link = yield from a.open("B", 1, src_port=2)
        except TTPError:
            # a total blackout outlasting the whole open retry budget:
            # the open fails cleanly, so nothing was ever sent — the
            # exactly-once property holds vacuously
            open_failed.append(True)
            return
        for i in range(10):
            link.send(800, data=i)
            yield env.timeout(1 * S)

    env.process(server())
    env.process(client())
    env.run(until=run_us)
    if open_failed:
        assert drop_rate == 1.0  # only a full blackout can starve the open
        assert got == []
    else:
        assert got == list(range(10))
