"""Board-resident TCP carrying cluster traffic over a lossy SAN."""

import pytest

from repro.net import TCPStack
from repro.server import Cluster
from repro.sim import Environment, RandomStreams, S


def test_ni_to_ni_tcp_over_lossy_san():
    """Two cluster nodes move 30 records NI-to-NI through board-resident
    TCP while the SAN drops 15% of frames — everything arrives, in order,
    with zero host-bus involvement."""
    env = Environment()
    cluster = Cluster(env, n_nodes=2)
    # inject loss into the SAN switch
    cluster.san.loss_rate = 0.15
    cluster.san._loss_rng = RandomStreams(21).stream("san-loss")

    src_card, dst_card = cluster.san_cards[0], cluster.san_cards[1]
    src_tcp = TCPStack(env, src_card.eth_ports[1], src_card.stack)
    dst_tcp = TCPStack(env, dst_card.eth_ports[1], dst_card.stack)

    accept = dst_tcp.listen(9000)
    got = []

    def server():
        conn = yield accept.get()
        while True:
            rec = yield conn.recv()
            got.append(rec["data"])

    def client():
        conn = yield from src_tcp.connect(
            cluster.san_port_name(1), 9000, src_port=30_000
        )
        for i in range(30):
            conn.send(4096, data=i)
            yield env.timeout(20_000.0)

    env.process(server())
    env.process(client())
    env.run(until=60 * S)

    assert got == list(range(30))
    assert all(v == 0 for v in cluster.host_bus_traffic().values())
    assert cluster.san.frames_dropped > 0  # the loss was real
