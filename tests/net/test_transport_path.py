"""The pluggable media wire path: udp | tcp | ttp through the services.

Covers the selection funnel, the bit-identity guarantee of the default
path (no transport object is even constructed), delivery parity across
transports, and the zero-leak ledger under the full chaos scenario set.
"""

import pytest

from repro.experiments.chaos import run_chaos_scenario
from repro.experiments.failover import run_failover_scenario
from repro.experiments.figures import run_loading_experiment
from repro.faults import FAILOVER_SCENARIOS, SCENARIOS
from repro.net import VALID_TRANSPORTS, resolve_transport

SHORT_US = 3_000_000.0
CHAOS_US = 8_000_000.0  # every scenario's fault window opens and clears


class TestResolveTransport:
    def test_valid_names_pass_through(self):
        for name in VALID_TRANSPORTS:
            assert resolve_transport(name) == name

    def test_unknown_name_lists_valid_set(self):
        with pytest.raises(
            ValueError, match="unknown transport 'quic'; valid transports: tcp, ttp, udp"
        ):
            resolve_transport("quic")

    def test_service_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="unknown transport"):
            run_loading_experiment(
                "ni", "none", duration_us=SHORT_US, seed=42, transport="sctp"
            )


class TestDefaultPathUntouched:
    def test_udp_builds_no_transport_objects(self):
        """The bit-identity guarantee: transport='udp' must not construct
        books, wire senders, or client endpoints (their processes would
        shift every event id and break the golden digests)."""
        run = run_loading_experiment("ni", "none", duration_us=SHORT_US, seed=42)
        svc = run.service
        assert svc.transport == "udp"
        assert svc.books is None
        assert svc._client_endpoints == {}
        assert svc.runtime.wire is None
        assert svc.transport_unaccounted() == set()
        for client in svc.clients.values():
            assert client._proc is not None  # the raw receive loop runs


class TestDeliveryParity:
    @pytest.mark.parametrize("kind", ["ni", "host"])
    def test_reliable_transports_deliver_the_same_frames(self, kind):
        """On a clean network every transport delivers every frame the
        scheduler dispatched — same count, zero ledger leak."""
        frames = {}
        for transport in VALID_TRANSPORTS:
            run = run_loading_experiment(
                kind, "none", duration_us=SHORT_US, seed=42, transport=transport
            )
            svc = run.service
            frames[transport] = sum(
                c.total_frames for c in svc.clients.values()
            )
            if transport != "udp":
                books = svc.books
                assert books is not None
                assert len(books.sent_ids) == frames[transport]
                assert books.sent_ids == books.delivered_ids
                assert books.lost_ids == set()
                assert books.duplicate_deliveries == 0
                assert svc.transport_unaccounted() == set()
        assert frames["tcp"] == frames["udp"]
        assert frames["ttp"] == frames["udp"]

    def test_ttp_reaches_every_client_stream(self):
        run = run_loading_experiment(
            "ni", "none", duration_us=SHORT_US, seed=42, transport="ttp"
        )
        assert run.service.clients
        for client in run.service.clients.values():
            assert client.total_frames > 0


class TestChaosZeroLeak:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_every_chaos_scenario_accounts_every_record(self, scenario):
        """The acceptance gate: the full chaos set over TTP with zero
        undelivered-frame accounting leaks — every record id ever sent is
        delivered, declared lost, or verifiably in flight at end of run."""
        cr = run_chaos_scenario(
            scenario, duration_us=CHAOS_US, seed=42, transport="ttp"
        )
        books = cr.run.service.books
        assert books is not None
        assert books.unaccounted() == set()
        assert books.sent_ids >= books.delivered_ids
        assert books.delivered_ids.isdisjoint(books.lost_ids)

    def test_link_burst_forces_retransmissions(self):
        cr = run_chaos_scenario(
            "link-burst", duration_us=CHAOS_US, seed=42, transport="ttp"
        )
        books = cr.run.service.books
        assert books.retransmissions > 0
        assert books.unaccounted() == set()

    def test_baseline_over_tcp_is_also_leak_free(self):
        cr = run_chaos_scenario(
            "baseline", duration_us=CHAOS_US, seed=42, transport="tcp"
        )
        books = cr.run.service.books
        assert books.unaccounted() == set()
        assert books.sent_ids == books.delivered_ids


class TestFailoverZeroLeak:
    @pytest.mark.parametrize("scenario", sorted(FAILOVER_SCENARIOS))
    def test_failover_scenarios_account_every_record(self, scenario):
        fr = run_failover_scenario(
            scenario, duration_us=CHAOS_US, seed=42, transport="ttp"
        )
        books = fr.service.books
        assert books is not None
        assert books.unaccounted() == set()
