"""UDP stack: sockets, delivery, loss transparency."""

import pytest

from repro.hw import EthernetPort, EthernetSwitch, I960_STACK
from repro.net import UDPStack
from repro.sim import Environment, RandomStreams, S


def topology(env, loss_rate=0.0):
    switch = EthernetSwitch(
        env, loss_rate=loss_rate, loss_rng=RandomStreams(3).stream("loss")
    )
    a_port, b_port = EthernetPort(env, "hostA"), EthernetPort(env, "hostB")
    switch.attach(a_port)
    switch.attach(b_port)
    a = UDPStack(env, a_port, I960_STACK)
    b = UDPStack(env, b_port, I960_STACK)
    return switch, a, b


class TestSockets:
    def test_bind_and_duplicate(self):
        env = Environment()
        _sw, a, _b = topology(env)
        a.bind(5000)
        with pytest.raises(ValueError):
            a.bind(5000)

    def test_close_unbound_raises(self):
        env = Environment()
        _sw, a, _b = topology(env)
        with pytest.raises(KeyError):
            a.close(5000)

    def test_invalid_payload(self):
        env = Environment()
        _sw, a, _b = topology(env)

        def sender():
            yield from a.sendto(0, "hostB", 5000)

        with pytest.raises(ValueError):
            env.run(until=env.process(sender()))


class TestDelivery:
    def test_datagram_roundtrip(self):
        env = Environment()
        _sw, a, b = topology(env)
        inbox = b.bind(7000)
        received = []

        def receiver():
            d = yield inbox.get()
            received.append(d)

        def sender():
            yield from a.sendto(1200, "hostB", 7000, src_port=41000, data={"k": 1})

        env.process(receiver())
        env.process(sender())
        env.run()
        assert len(received) == 1
        d = received[0]
        assert d.payload_bytes == 1200
        assert d.dst_port == 7000
        assert d.src_port == 41000
        assert d.data == {"k": 1}
        assert d.src_host == "hostA"

    def test_port_demultiplexing(self):
        env = Environment()
        _sw, a, b = topology(env)
        q1, q2 = b.bind(1), b.bind(2)

        def sender():
            yield from a.sendto(100, "hostB", 1, data="one")
            yield from a.sendto(100, "hostB", 2, data="two")

        env.process(sender())
        env.run()
        assert q1.get().value.data == "one"
        assert q2.get().value.data == "two"

    def test_unbound_port_drops(self):
        env = Environment()
        _sw, a, b = topology(env)

        def sender():
            yield from a.sendto(100, "hostB", 999)

        env.process(sender())
        env.run()
        assert b.no_socket_drops == 1
        assert b.datagrams_received == 0

    def test_udp_loses_what_the_network_loses(self):
        env = Environment()
        _sw, a, b = topology(env, loss_rate=0.3)
        inbox = b.bind(5)
        got = []

        def receiver():
            while True:
                d = yield inbox.get()
                got.append(d)

        def sender():
            for _ in range(200):
                yield from a.sendto(500, "hostB", 5)
                yield env.timeout(2_000.0)

        env.process(receiver())
        env.process(sender())
        env.run(until=2 * S)
        assert 100 < len(got) < 180  # ~30% gone, no recovery

    def test_stack_cost_delays_delivery(self):
        env = Environment()
        _sw, a, b = topology(env)
        inbox = b.bind(5)
        arrival = []

        def receiver():
            d = yield inbox.get()
            arrival.append(env.now)

        def sender():
            yield from a.sendto(1000, "hostB", 5)

        env.process(receiver())
        env.process(sender())
        env.run()
        # two i960 stack traversals (~670us each for 1000B) + wire
        assert arrival[0] > 1_300.0


class TestFaultHooks:
    """The fault plane's datagram windows act inside the sending stack."""

    def test_datagram_drop_window_loses_sends(self):
        from repro.faults import FaultPlane

        env = Environment()
        _sw, a, b = topology(env)
        inbox = b.bind(5)
        got = []

        def receiver():
            while True:
                d = yield inbox.get()
                got.append(d)

        def sender():
            for _ in range(100):
                yield from a.sendto(500, "hostB", 5)
                yield env.timeout(2_000.0)

        plane = FaultPlane(env, seed=11)
        plane.inject_datagram_drop(a.name, 0.0, 1 * S, rate=1.0)
        env.process(receiver())
        env.process(sender())
        env.run(until=1 * S)
        assert got == []  # every datagram died in the stack
        assert a.datagrams_dropped == 100
        assert a.datagrams_sent == 0  # never reached the port

    def test_datagram_duplication_delivers_twice(self):
        from repro.faults import FaultPlane

        env = Environment()
        _sw, a, b = topology(env)
        inbox = b.bind(5)
        got = []

        def receiver():
            while True:
                d = yield inbox.get()
                got.append(d)

        def sender():
            for _ in range(50):
                yield from a.sendto(500, "hostB", 5)
                yield env.timeout(2_000.0)

        plane = FaultPlane(env, seed=11)
        plane.inject_datagram_duplication(a.name, 0.0, 1 * S, rate=1.0)
        env.process(receiver())
        env.process(sender())
        env.run(until=1 * S)
        assert a.datagrams_duplicated == 50
        assert len(got) == 100  # UDP has no dedup: both copies arrive

    def test_no_plane_means_no_hook_cost(self):
        env = Environment()
        _sw, a, b = topology(env)
        inbox = b.bind(5)

        def sender():
            yield from a.sendto(500, "hostB", 5)

        env.process(sender())
        env.run()
        assert a.datagrams_dropped == 0
        assert a.datagrams_duplicated == 0
        assert len(inbox.items) == 1

    def test_rate_validation(self):
        from repro.faults import FaultPlane

        env = Environment()
        plane = FaultPlane(env, seed=1)
        with pytest.raises(ValueError):
            plane.inject_datagram_drop("x", 0.0, 1.0, rate=0.0)
        with pytest.raises(ValueError):
            plane.inject_datagram_duplication("x", 0.0, 1.0, rate=1.5)


@pytest.mark.parametrize("kernel", ["heap", "calendar"])
class TestFaultWindowEdges:
    """Fault windows racing socket lifetime, on both event-queue kernels."""

    def test_drop_window_during_port_handoff(self, kernel):
        """A drop window straddling a close+rebind: the datagram in flight
        during the handoff dies in the stack, not on the floor of an
        unbound port — and the rebound socket receives cleanly after."""
        from repro.faults import FaultPlane

        env = Environment(queue=kernel)
        _sw, a, b = topology(env)
        plane = FaultPlane(env, seed=11)
        got = []
        b.bind(9)

        def receiver(inbox):
            while True:
                d = yield inbox.get()
                got.append(d.data)

        def driver():
            yield from a.sendto(500, "hostB", 9, data="before")
            yield env.timeout(5_000.0)
            # handoff: the old socket goes away, a drop window opens over
            # the gap, and the port is bound again before it closes
            b.close(9)
            plane.inject_datagram_drop(a.name, env.now, env.now + 10_000.0, rate=1.0)
            yield from a.sendto(500, "hostB", 9, data="during")
            yield env.timeout(5_000.0)
            inbox = b.bind(9)
            env.process(receiver(inbox))
            yield env.timeout(10_000.0)  # window over
            yield from a.sendto(500, "hostB", 9, data="after")

        # the pre-handoff socket's consumer
        first_inbox = b._sockets[9]
        env.process(receiver(first_inbox))
        env.process(driver())
        env.run(until=1 * S)
        assert got == ["before", "after"]
        assert a.datagrams_dropped == 1  # "during" died inside the stack
        assert b.no_socket_drops == 0  # never reached the unbound port

    def test_duplicate_arrives_after_socket_eviction(self, kernel):
        """A dup window sends two copies; the socket is evicted between
        the arrivals, so copy one delivers and copy two hits no socket."""
        from repro.faults import FaultPlane

        env = Environment(queue=kernel)
        _sw, a, b = topology(env)
        plane = FaultPlane(env, seed=11)
        got = []

        def driver():
            inbox = b.bind(9)

            def receiver():
                d = yield inbox.get()
                got.append(d.data)
                # consumed one copy: the stream is torn down right here
                b.close(9)

            env.process(receiver())
            plane.inject_datagram_duplication(
                a.name, env.now, env.now + 5_000.0, rate=1.0
            )
            yield from a.sendto(500, "hostB", 9, data="x")

        env.process(driver())
        env.run(until=1 * S)
        assert got == ["x"]
        assert a.datagrams_duplicated == 1
        assert b.datagrams_received == 1
        assert b.no_socket_drops == 1  # the late duplicate found no socket

    def test_drop_window_boundary_is_half_open(self, kernel):
        """A send that pays its stack cost past end_us is not dropped: the
        window is evaluated at wire-handoff time, not at sendto() time."""
        from repro.faults import FaultPlane

        env = Environment(queue=kernel)
        _sw, a, b = topology(env)
        plane = FaultPlane(env, seed=11)
        inbox = b.bind(9)
        # I960 stack cost for 500B is 550 + 0.12*500 = 610us
        plane.inject_datagram_drop(a.name, 0.0, 600.0, rate=1.0)

        def sender():
            yield from a.sendto(500, "hostB", 9, data="late")

        env.process(sender())
        env.run(until=1 * S)
        assert a.datagrams_dropped == 0
        assert len(inbox.items) == 1  # delivered: the window had closed
