"""TCP: handshake, reliable delivery over loss, windowing, teardown."""

import pytest

from repro.faults import FaultPlane
from repro.hw import EthernetPort, EthernetSwitch, I960_STACK
from repro.net import TCPError, TCPStack
from repro.sim import Environment, RandomStreams, S, Tracer


def topology(env, loss_rate=0.0, seed=3, **stack_kw):
    switch = EthernetSwitch(
        env, loss_rate=loss_rate, loss_rng=RandomStreams(seed).stream("loss")
    )
    a_port, b_port = EthernetPort(env, "hostA"), EthernetPort(env, "hostB")
    switch.attach(a_port)
    switch.attach(b_port)
    a = TCPStack(env, a_port, I960_STACK, **stack_kw)
    b = TCPStack(env, b_port, I960_STACK, **stack_kw)
    return switch, a, b


def establish(env, a, b, port=80):
    accept = b.listen(port)
    result = {}

    def server():
        conn = yield accept.get()
        result["server"] = conn

    def client():
        conn = yield from a.connect("hostB", port, src_port=40_000)
        result["client"] = conn

    env.process(server())
    env.process(client())
    env.run(until=5 * S)
    return result["client"], result["server"]


class TestHandshake:
    def test_three_way_establishes_both_ends(self):
        env = Environment()
        _sw, a, b = topology(env)
        client, server = establish(env, a, b)
        assert client.state == "established"
        assert server.state == "established"

    def test_connect_without_listener_times_out(self):
        env = Environment()
        _sw, a, _b = topology(env)

        def client():
            yield from a.connect("hostB", 81, src_port=40_000)

        with pytest.raises(TCPError, match="timed out"):
            env.run(until=env.process(client()))

    def test_handshake_survives_syn_loss(self):
        env = Environment()
        _sw, a, b = topology(env, loss_rate=0.4, seed=11)
        client, server = establish(env, a, b)
        assert client.state == "established"

    def test_duplicate_listen_rejected(self):
        env = Environment()
        _sw, _a, b = topology(env)
        b.listen(80)
        with pytest.raises(ValueError):
            b.listen(80)

    def test_parameter_validation(self):
        env = Environment()
        switch = EthernetSwitch(env)
        port = EthernetPort(env, "x")
        switch.attach(port)
        with pytest.raises(ValueError):
            TCPStack(env, port, I960_STACK, mss=0)


class TestReliableDelivery:
    def test_records_arrive_in_order(self):
        env = Environment()
        _sw, a, b = topology(env)
        client, server = establish(env, a, b)
        got = []

        def receiver():
            for _ in range(5):
                rec = yield server.recv()
                got.append(rec["data"])

        for i in range(5):
            client.send(1000, data=f"rec{i}")
        env.process(receiver())
        env.run(until=10 * S)
        assert got == [f"rec{i}" for i in range(5)]

    def test_large_record_segmented_and_reassembled(self):
        env = Environment()
        _sw, a, b = topology(env)
        client, server = establish(env, a, b)
        got = []

        def receiver():
            rec = yield server.recv()
            got.append(rec)

        client.send(10_000, data="big")  # 7 segments at MSS 1460
        env.process(receiver())
        env.run(until=10 * S)
        assert got[0]["data"] == "big"
        assert got[0]["nbytes"] == 10_000

    def test_delivery_over_lossy_network(self):
        """The reason TCP exists: 20% frame loss, zero record loss."""
        env = Environment()
        _sw, a, b = topology(env, loss_rate=0.2, seed=7)
        client, server = establish(env, a, b)
        got = []

        def receiver():
            while True:
                rec = yield server.recv()
                got.append(rec["data"])

        n = 40
        for i in range(n):
            client.send(2000, data=i)
        env.process(receiver())
        env.run(until=60 * S)
        assert got == list(range(n))
        assert client.retransmissions > 0  # loss really happened

    def test_no_retransmissions_on_clean_network(self):
        env = Environment()
        _sw, a, b = topology(env)
        client, server = establish(env, a, b)

        def receiver():
            while True:
                yield server.recv()

        for i in range(20):
            client.send(1000, data=i)
        env.process(receiver())
        env.run(until=30 * S)
        assert client.retransmissions == 0

    def test_window_bounds_outstanding_segments(self):
        env = Environment()
        _sw, a, b = topology(env, window=4)
        client, server = establish(env, a, b)
        # queue far more than the window; never more than 4 unacked
        for i in range(30):
            client.send(1000, data=i)
        max_outstanding = [0]

        def watcher():
            while True:
                max_outstanding[0] = max(max_outstanding[0], len(client._segments))
                yield env.timeout(100.0)

        def receiver():
            while True:
                yield server.recv()

        env.process(watcher())
        env.process(receiver())
        env.run(until=20 * S)
        assert 0 < max_outstanding[0] <= 4

    def test_send_on_unestablished_connection_raises(self):
        env = Environment()
        _sw, a, b = topology(env)
        client, _server = establish(env, a, b)
        client.state = "closed"
        with pytest.raises(TCPError):
            client.send(100)

    def test_invalid_record_size(self):
        env = Environment()
        _sw, a, b = topology(env)
        client, _server = establish(env, a, b)
        with pytest.raises(ValueError):
            client.send(0)


class TestTeardown:
    def test_close_completes_on_clean_network(self):
        env = Environment()
        _sw, a, b = topology(env)
        client, server = establish(env, a, b)
        client.send(500, data="bye")

        def receiver():
            yield server.recv()

        def closer():
            yield from client.close()

        env.process(receiver())
        p = env.process(closer())
        env.run(until=p)
        assert client.state == "closed"
        assert server.state == "closed"

    def test_close_survives_fin_loss(self):
        env = Environment()
        _sw, a, b = topology(env, loss_rate=0.3, seed=5)
        client, _server = establish(env, a, b)

        def closer():
            yield from client.close()

        p = env.process(closer())
        env.run(until=p)
        assert client.state == "closed"


class TestOutageRecovery:
    def test_transfer_survives_transient_total_outage(self):
        """Failure injection: the SAN goes fully dark for 2 s mid-transfer;
        TCP's RTO keeps retrying and the stream completes afterwards."""
        env = Environment()
        _sw, a, b = topology(env)
        switch = _sw
        client, server = establish(env, a, b)
        got = []

        def receiver():
            while True:
                rec = yield server.recv()
                got.append(rec["data"])

        def sender():
            for i in range(20):
                client.send(1000, data=i)
                yield env.timeout(100_000.0)

        def outage():
            yield env.timeout(0.5 * S)
            switch.loss_rate = 0.999999
            switch._loss_rng = RandomStreams(1).stream("outage")
            yield env.timeout(2 * S)
            switch.loss_rate = 0.0

        env.process(receiver())
        env.process(sender())
        env.process(outage())
        env.run(until=30 * S)
        assert got == list(range(20))
        assert client.retransmissions > 0


class TestExponentialBackoff:
    def test_thirty_percent_loss_burst_recovers_with_backoff(self):
        """Acceptance: a 30% injected loss burst recovers with bounded
        retransmissions, and the exponential backoff shows in the trace."""
        env = Environment()
        tracer = Tracer(env)
        plane = FaultPlane(env, seed=13)
        # the burst hits the data direction after the handshake settles
        plane.inject_link_loss("hostB", 6 * S, 8 * S, rate=0.30)
        _sw, a, b = topology(env, rto_us=50_000.0, tracer=tracer)
        client, server = establish(env, a, b)
        got = []

        def receiver():
            while True:
                rec = yield server.recv()
                got.append(rec["data"])

        def sender():
            for i in range(25):
                client.send(1000, data=i)
                yield env.timeout(150_000.0)

        env.process(receiver())
        env.process(sender())
        env.run(until=40 * S)
        assert got == list(range(25))  # every record delivered despite the burst
        assert not client.aborted
        assert client.retransmissions > 0
        assert client.retransmissions < 200  # bounded, not a retransmit storm
        assert plane.injected["link-loss"] > 0
        rtos = tracer.events(category="tcp", name="rto")
        assert rtos  # the timeout machinery engaged
        # exponential backoff observable: attempt k waited base * 2^(k-1)
        for e in rtos:
            expected = min(50_000.0 * 2 ** (e.fields["attempt"] - 1), 16 * 50_000.0)
            assert e.fields["rto_us"] == pytest.approx(expected)
        assert max(e.fields["attempt"] for e in rtos) >= 2

    def test_rto_doubles_up_to_cap_during_partition(self):
        env = Environment()
        tracer = Tracer(env)
        plane = FaultPlane(env, seed=2)
        plane.inject_partition("hostB", 6 * S, 1e12)
        _sw, a, b = topology(
            env, rto_us=10_000.0, rto_max_us=80_000.0, tracer=tracer
        )
        client, server = establish(env, a, b)

        def sender():
            yield env.timeout(1.5 * S)  # well inside the partition (t >= 6.5 s)
            client.send(1000, data="x")

        env.process(sender())
        env.run(until=9 * S)
        waits = [e.fields["rto_us"] for e in tracer.events(category="tcp", name="rto")]
        assert waits[:5] == [10_000.0, 20_000.0, 40_000.0, 80_000.0, 80_000.0]

    def test_retry_exhaustion_aborts_connection(self):
        env = Environment()
        tracer = Tracer(env)
        plane = FaultPlane(env, seed=2)
        plane.inject_partition("hostB", 6 * S, 1e12)
        _sw, a, b = topology(env, rto_us=10_000.0, max_retries=5, tracer=tracer)
        client, server = establish(env, a, b)

        def sender():
            yield env.timeout(1.5 * S)
            client.send(1000, data="x")

        env.process(sender())
        env.run(until=20 * S)
        assert client.aborted
        assert client.state == "reset"
        assert not client._segments and not client._pending
        aborts = tracer.events(category="tcp", name="abort")
        assert len(aborts) == 1
        assert aborts[0].fields["retries"] == 6  # max_retries + the final straw
        with pytest.raises(TCPError, match="reset"):
            client.send(100)

    def test_jittered_rto_stays_within_fraction(self):
        env = Environment()
        tracer = Tracer(env)
        plane = FaultPlane(env, seed=2)
        plane.inject_partition("hostB", 6 * S, 1e12)
        rng = RandomStreams(99).stream("tcp-jitter")
        _sw, a, b = topology(
            env, rto_us=10_000.0, jitter_frac=0.25, rng=rng, tracer=tracer
        )
        client, server = establish(env, a, b)

        def sender():
            yield env.timeout(1.5 * S)
            client.send(1000, data="x")

        env.process(sender())
        env.run(until=8 * S)
        rtos = tracer.events(category="tcp", name="rto")
        assert rtos
        base = 10_000.0
        for e in rtos:
            nominal = min(base * 2 ** (e.fields["attempt"] - 1), 16 * base)
            assert nominal <= e.fields["rto_us"] <= nominal * 1.25
