"""TTP conformance: tagged open, sequencing, NACK recovery, credit flow.

The taxonomy follows docs/ttp-spec.md: handshake scripts (happy path,
refused, duplicate OPEN), sequence-id assignment and wraparound, payload
exchange scripts (NACK retransmit, CLOSE with inflight data), and the
sustained-traffic window/credit invariants.
"""

import pytest

from repro.faults import FaultPlane
from repro.hw import EthernetPort, EthernetSwitch, HOST_STACK, I960_STACK
from repro.net import TTPError, TTPPacket, TTPStack
from repro.sim import Environment, RandomStreams, S


def topology(env, loss_rate=0.0, seed=3, **stack_kw):
    switch = EthernetSwitch(
        env, loss_rate=loss_rate, loss_rng=RandomStreams(seed).stream("loss")
    )
    a_port, b_port = EthernetPort(env, "hostA"), EthernetPort(env, "hostB")
    switch.attach(a_port)
    switch.attach(b_port)
    a = TTPStack(env, a_port, I960_STACK, **stack_kw)
    b = TTPStack(env, b_port, I960_STACK, **stack_kw)
    return switch, a, b


def establish(env, a, b, port=80, run_until=5 * S):
    accept = b.listen(port)
    result = {}

    def server():
        link = yield accept.get()
        result["server"] = link

    def client():
        link = yield from a.open("hostB", port, src_port=40_000)
        result["client"] = link

    env.process(server())
    env.process(client())
    env.run(until=run_until)
    return result["client"], result["server"]


class TestHandshake:
    def test_three_way_establishes_both_ends(self):
        env = Environment()
        _sw, a, b = topology(env)
        client, server = establish(env, a, b)
        assert client.state == "open"
        # the responder completes on the first in-tag packet; nudge one
        client.send(100, data="nudge")
        env.run(until=env.now + 1 * S)
        assert server.state == "open"
        assert client.tag == server.tag

    def test_open_without_listener_refused(self):
        env = Environment()
        _sw, a, b = topology(env)

        def client():
            yield from a.open("hostB", 81, src_port=40_000)

        with pytest.raises(TTPError, match="refused.*no listener on port 81"):
            env.run(until=env.process(client()))
        assert b.open_nacks_sent == 1

    def test_handshake_survives_open_loss(self):
        env = Environment()
        _sw, a, b = topology(env, loss_rate=0.4, seed=11, retx_us=20_000.0)
        client, _server = establish(env, a, b)
        assert client.state == "open"

    def test_duplicate_open_replays_cached_open_ack(self):
        """A retransmitted OPEN must not mint a second link incarnation."""
        env = Environment()
        _sw, a, b = topology(env)
        accept = b.listen(80)
        links = {}

        def server():
            links["server"] = yield accept.get()

        def client():
            links["client"] = yield from a.open("hostB", 80, src_port=40_000)
            # the duplicate OPEN, as the initiator would retransmit it
            b._deliver(
                TTPPacket(
                    kind="open",
                    src_host="hostA",
                    src_port=40_000,
                    dst_port=80,
                    tag=links["client"].tag,
                    credit=a.credits,
                )
            )

        env.process(server())
        env.process(client())
        env.run(until=5 * S)
        assert b.open_ack_replays == 1
        assert len(b._links) == 1  # no second incarnation
        assert accept.items == []  # nothing re-queued for accept

    def test_duplicate_listen_rejected(self):
        env = Environment()
        _sw, _a, b = topology(env)
        b.listen(80)
        with pytest.raises(ValueError):
            b.listen(80)

    def test_parameter_validation(self):
        env = Environment()
        switch = EthernetSwitch(env)
        port = EthernetPort(env, "x")
        switch.attach(port)
        with pytest.raises(ValueError):
            TTPStack(env, port, I960_STACK, mtu=0)
        with pytest.raises(ValueError, match="twice the window"):
            TTPStack(env, port, I960_STACK, window=8, seq_mod=15)


class TestSequenceIds:
    def test_sequence_assignment_is_consecutive_from_zero(self):
        env = Environment()
        _sw, a, b = topology(env)
        client, server = establish(env, a, b)
        got = []

        def receiver():
            while True:
                rec = yield server.recv()
                got.append(rec["data"])

        for i in range(5):
            client.send(500, data=i)
        env.process(receiver())
        env.run(until=10 * S)
        assert got == list(range(5))
        assert client._next_seq == 5  # one packet per record, seqs 0..4
        assert server._rcv_next == 5

    def test_wire_sequence_wraps_at_seq_mod(self):
        """20 packets through a 4-entry wire sequence space, in order."""
        env = Environment()
        _sw, a, b = topology(env, window=2, seq_mod=4)
        client, server = establish(env, a, b)
        got = []

        def receiver():
            while True:
                rec = yield server.recv()
                got.append(rec["data"])

        for i in range(20):
            client.send(500, data=i)
        env.process(receiver())
        env.run(until=30 * S)
        assert got == list(range(20))
        # internal counters are unbounded; only the wire seq wrapped
        assert client._next_seq == 20
        assert server._rcv_next == 20
        assert server.duplicates_dropped == 0

    def test_tags_are_unique_per_link(self):
        env = Environment()
        _sw, a, b = topology(env)
        b.listen(80)
        b.listen(81)
        links = {}

        def client():
            links["one"] = yield from a.open("hostB", 80, src_port=40_000)
            links["two"] = yield from a.open("hostB", 81, src_port=40_001)

        env.process(client())
        env.run(until=5 * S)
        assert links["one"].tag != links["two"].tag

    def test_stale_tag_packet_dropped(self):
        env = Environment()
        _sw, a, b = topology(env)
        client, _server = establish(env, a, b)
        stale = TTPPacket(
            kind="ack",
            src_host="hostB",
            src_port=80,
            dst_port=40_000,
            tag=client.tag + 999,
            ack=1,
        )
        client._on_packet(stale)
        assert client.stale_tag_drops == 1
        assert client._send_base == 0  # the stale ack moved nothing


class TestPacketExchanges:
    def test_happy_path_open_payload_close(self):
        env = Environment()
        _sw, a, b = topology(env)
        accept = b.listen(80)
        got = []
        states = {}

        def server():
            link = yield accept.get()
            states["server"] = link
            while True:
                rec = yield link.recv()
                got.append((rec["data"], rec["nbytes"]))

        def client():
            link = yield from a.open("hostB", 80, src_port=40_000)
            states["client"] = link
            for i in range(3):
                link.send(1000, data=i)
            yield from link.close()

        env.process(server())
        env.process(client())
        env.run(until=10 * S)
        assert got == [(i, 1000) for i in range(3)]
        assert states["client"].state == "closed"
        assert states["server"].state == "closed"

    def test_large_record_segmented_and_reassembled(self):
        env = Environment()
        _sw, a, b = topology(env)
        client, server = establish(env, a, b)
        got = []

        def receiver():
            rec = yield server.recv()
            got.append(rec)

        client.send(10_000, data="big")  # 7 packets at MTU 1460
        env.process(receiver())
        env.run(until=10 * S)
        assert got[0]["data"] == "big"
        assert got[0]["nbytes"] == 10_000
        assert client._next_seq == 7

    def test_gap_triggers_nack_and_immediate_retransmit(self):
        """Script: r0 delivered, r1 dropped on the wire, r2 exposes the
        gap -> exactly one NACK -> go-back-N recovers r1 and r2 without
        waiting out the retransmission timer."""
        env = Environment()
        _sw, a, b = topology(env, retx_us=500_000.0)  # timer out of the picture
        plane = FaultPlane(env, seed=5)
        accept = b.listen(80)
        got = []
        links = {}

        def server():
            link = yield accept.get()
            links["server"] = link
            while True:
                rec = yield link.recv()
                got.append(rec["data"])

        def client():
            link = yield from a.open("hostB", 80, src_port=40_000)
            links["client"] = link
            link.send(1000, data="r0")
            yield env.timeout(5_000.0)  # r0 delivered, window empty
            # a drop window just wide enough to eat r1's transmit
            plane.inject_message_drop(a.name, env.now, env.now + 1_000.0, rate=1.0)
            link.send(1000, data="r1")
            yield env.timeout(5_000.0)  # leave the window
            link.send(1000, data="r2")

        env.process(server())
        env.process(client())
        env.run(until=10 * S)
        assert got == ["r0", "r1", "r2"]
        assert a.packets_dropped_by_fault == 1
        assert links["server"].nacks_sent == 1  # one NACK per gap instance
        assert links["client"].nacks_received == 1
        assert links["client"].nack_retransmissions == 2  # go-back-N: r1+r2
        assert links["server"].duplicates_dropped >= 1  # the re-sent r2

    def test_close_with_inflight_quiesces_first(self):
        """CLOSE must not race the window: everything queued before close()
        is delivered before the link tears down."""
        env = Environment()
        _sw, a, b = topology(env)
        accept = b.listen(80)
        got = []
        links = {}

        def server():
            link = yield accept.get()
            links["server"] = link
            while True:
                rec = yield link.recv()
                got.append(rec["data"])

        def client():
            link = yield from a.open("hostB", 80, src_port=40_000)
            links["client"] = link
            for i in range(5):
                link.send(2_000, data=i)
            yield from link.close()  # called with all five still in flight

        env.process(server())
        env.process(client())
        env.run(until=20 * S)
        assert got == list(range(5))
        assert links["client"].state == "closed"
        assert links["server"].state == "closed"

    def test_retransmitted_close_is_reacked(self):
        env = Environment()
        _sw, a, b = topology(env)
        accept = b.listen(80)
        links = {}

        def server():
            links["server"] = yield accept.get()

        def client():
            link = yield from a.open("hostB", 80, src_port=40_000)
            links["client"] = link
            link.send(100, data="x")
            yield from link.close()

        env.process(server())
        env.process(client())
        env.run(until=10 * S)
        server_link = links["server"]
        assert server_link.state == "closed"
        # the duplicate CLOSE, as a timed-out initiator would resend it
        before = server_link.packets_received
        server_link._on_packet(
            TTPPacket(
                kind="close",
                src_host="hostA",
                src_port=40_000,
                dst_port=80,
                tag=server_link.tag,
            )
        )
        assert server_link.state == "closed"  # still closed, no explosion
        assert server_link.packets_received == before + 1

    def test_send_on_closed_link_raises(self):
        env = Environment()
        _sw, a, b = topology(env)
        accept = b.listen(80)
        links = {}

        def client():
            link = yield from a.open("hostB", 80, src_port=40_000)
            links["client"] = link
            yield from link.close()

        env.process(client())
        env.run(until=10 * S)
        with pytest.raises(TTPError, match="send on closed link"):
            links["client"].send(100)


class TestWindowCredit:
    def _run_sustained(self, env, a, b, n_records, monitor_every_us=100.0):
        """Drive n_records through an a->b link while sampling the sender's
        in-flight count; returns (delivered, max_inflight, client, server)."""
        accept = b.listen(80)
        got = []
        links = {}
        max_inflight = [0]

        def server():
            link = yield accept.get()
            links["server"] = link
            while True:
                rec = yield link.recv()
                got.append(rec["data"])

        def client():
            link = yield from a.open("hostB", 80, src_port=40_000)
            links["client"] = link
            for i in range(n_records):
                link.send(1000, data=i)

        def monitor():
            while True:
                link = links.get("client")
                if link is not None:
                    max_inflight[0] = max(max_inflight[0], len(link._unacked))
                yield env.timeout(monitor_every_us)

        env.process(server())
        env.process(client())
        env.process(monitor())
        env.run(until=60 * S)
        return got, max_inflight[0], links["client"], links["server"]

    def test_window_bounds_inflight_packets(self):
        env = Environment()
        _sw, a, b = topology(env, window=4, credits=64)
        got, max_inflight, client, _server = self._run_sustained(env, a, b, 40)
        assert got == list(range(40))
        assert 0 < max_inflight <= 4

    def test_credit_grant_bounds_inflight_below_window(self):
        """NOC-style flow control: the peer granted 2 slots, so at most 2
        packets ride the wire no matter how wide the sender's window is."""
        env = Environment()
        _sw, a, b = topology(env, window=8, credits=2)
        got, max_inflight, client, _server = self._run_sustained(env, a, b, 30)
        assert got == list(range(30))
        assert 0 < max_inflight <= 2
        assert client.credit_stalls > 0  # the sender actually hit the grant
        assert client._peer_credit == 2  # ACKs kept re-advertising it

    def test_no_losses_means_no_retransmissions(self):
        env = Environment()
        _sw, a, b = topology(env)
        got, _max, client, server = self._run_sustained(env, a, b, 20)
        assert got == list(range(20))
        assert client.retransmissions == 0
        assert server.duplicates_dropped == 0

    def test_delivery_over_lossy_network(self):
        """The reason TTP exists: 20% frame loss, zero record loss."""
        env = Environment()
        _sw, a, b = topology(env, loss_rate=0.2, seed=7, retx_us=20_000.0)
        got, _max, client, _server = self._run_sustained(env, a, b, 30)
        assert got == list(range(30))
        assert client.retransmissions > 0

    def test_abort_after_max_retries_accounts_lost_records(self):
        """A peer that vanishes forever: the sender gives up and declares
        every straggler lost (the zero-leak account's loss side)."""
        env = Environment()
        _sw, a, b = topology(env, retx_us=10_000.0, max_retries=3)
        plane = FaultPlane(env, seed=5)
        accept = b.listen(80)
        links = {}

        def client():
            link = yield from a.open("hostB", 80, src_port=40_000)
            links["client"] = link
            # sever the wire forever, then try to send
            plane.inject_partition("hostB", env.now, 10_000 * S)
            link.send(1000, data="doomed", record_id=777)

        env.process(client())
        env.run(until=30 * S)
        link = links["client"]
        assert link.aborted
        assert link.state == "reset"
        assert link.lost_record_ids == [777]
        assert link.inflight_record_ids() == set()
