"""Arithmetic contexts: identical decisions, different op profiles."""

import pytest

from repro.fixedpoint import (
    FixedPointContext,
    Fraction,
    OpCounter,
    SoftwareFloatContext,
)


@pytest.fixture(params=[SoftwareFloatContext, FixedPointContext])
def ctx(request):
    return request.param()


class TestDecisionEquivalence:
    """Paper: fixed point 'does not affect the quality of scheduling'."""

    CASES = [
        (Fraction(1, 2), Fraction(1, 3), 1),
        (Fraction(1, 3), Fraction(1, 2), -1),
        (Fraction(2, 4), Fraction(1, 2), 0),
        (Fraction(0, 5), Fraction(0, 9), 0),
        (Fraction(0, 5), Fraction(1, 100), -1),
        (Fraction(7, 8), Fraction(6, 7), 1),
    ]

    @pytest.mark.parametrize("a,b,expected", CASES)
    def test_compare(self, ctx, a, b, expected):
        assert ctx.compare(a, b) == expected

    def test_both_contexts_always_agree(self):
        sw, fx = SoftwareFloatContext(), FixedPointContext()
        for num_a in range(0, 6):
            for den_a in range(1, 6):
                for num_b in range(0, 6):
                    for den_b in range(1, 6):
                        a, b = Fraction(num_a, den_a), Fraction(num_b, den_b)
                        assert sw.compare(a, b) == fx.compare(a, b)
                        assert sw.is_zero(a) == fx.is_zero(a)

    def test_lt_eq_helpers(self, ctx):
        assert ctx.lt(Fraction(1, 3), Fraction(1, 2))
        assert ctx.eq(Fraction(1, 2), Fraction(2, 4))

    def test_is_zero(self, ctx):
        assert ctx.is_zero(Fraction(0, 3))
        assert not ctx.is_zero(Fraction(1, 3))


class TestOpAccounting:
    def test_software_fp_tallies_fp_ops(self):
        ctx = SoftwareFloatContext()
        ctx.compare(Fraction(1, 2), Fraction(1, 3))
        assert ctx.ops.fp_ops > 0
        assert ctx.ops.int_ops == 0

    def test_fixed_point_tallies_no_fp_ops(self):
        ctx = FixedPointContext()
        ctx.compare(Fraction(1, 2), Fraction(1, 3))
        ctx.ratio(1, 3)
        assert ctx.ops.fp_ops == 0
        assert ctx.ops.int_ops > 0

    def test_fixed_point_ratio_uses_shift(self):
        ctx = FixedPointContext()
        ctx.ratio(1, 2)
        assert ctx.ops.shifts == 1

    def test_shared_ledger(self):
        ledger = OpCounter()
        ctx = FixedPointContext(ops=ledger)
        ctx.compare(Fraction(1, 2), Fraction(1, 3))
        assert ledger.int_ops > 0

    def test_ratio_values_close(self):
        sw, fx = SoftwareFloatContext(), FixedPointContext()
        for num, den in [(1, 2), (2, 3), (5, 8), (99, 100)]:
            assert fx.ratio(num, den) == pytest.approx(sw.ratio(num, den), abs=1e-3)

    def test_ratio_zero_denominator(self):
        with pytest.raises(ZeroDivisionError):
            FixedPointContext().ratio(1, 0)


class TestOpCounter:
    def test_add_and_iadd(self):
        a = OpCounter(int_ops=1, fp_ops=2)
        b = OpCounter(int_ops=10, mem_reads=5)
        c = a + b
        assert (c.int_ops, c.fp_ops, c.mem_reads) == (11, 2, 5)
        a += b
        assert a.int_ops == 11

    def test_copy_is_independent(self):
        a = OpCounter(int_ops=1)
        b = a.copy()
        b.int_ops += 1
        assert a.int_ops == 1

    def test_reset(self):
        a = OpCounter(int_ops=5, branches=2)
        a.reset()
        assert a.total() == 0

    def test_snapshot_delta(self):
        a = OpCounter(int_ops=10, shifts=4)
        before = a.copy()
        a.int_ops += 5
        delta = a.snapshot_delta(before)
        assert delta.int_ops == 5
        assert delta.shifts == 0

    def test_total_and_as_dict(self):
        a = OpCounter(int_ops=1, fp_ops=2, mmio_reads=3)
        assert a.total() == 6
        assert a.as_dict()["mmio_reads"] == 3
