"""Exact fraction semantics."""

import pytest

from repro.fixedpoint import Fraction


class TestConstruction:
    def test_basic(self):
        f = Fraction(3, 4)
        assert f.num == 3
        assert f.den == 4
        assert f.value == 0.75

    def test_zero_numerator_allowed(self):
        assert Fraction(0, 5).is_zero()

    def test_negative_numerator_rejected(self):
        with pytest.raises(ValueError):
            Fraction(-1, 2)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            Fraction(1, 0)

    def test_negative_denominator_rejected(self):
        with pytest.raises(ValueError):
            Fraction(1, -2)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            Fraction(1.5, 2)


class TestComparison:
    def test_equality_across_representations(self):
        assert Fraction(1, 2) == Fraction(2, 4)
        assert Fraction(3, 4) != Fraction(2, 4)

    def test_ordering(self):
        assert Fraction(1, 3) < Fraction(1, 2)
        assert Fraction(2, 3) > Fraction(1, 2)
        assert Fraction(1, 2) <= Fraction(2, 4)
        assert Fraction(1, 2) >= Fraction(2, 4)

    def test_zero_sorts_lowest(self):
        assert Fraction(0, 7) < Fraction(1, 100)

    def test_hash_consistent_with_eq(self):
        assert hash(Fraction(1, 2)) == hash(Fraction(2, 4))

    def test_not_equal_to_other_types(self):
        assert Fraction(1, 2) != 0.5


class TestArithmetic:
    def test_add(self):
        assert Fraction(1, 2) + Fraction(1, 3) == Fraction(5, 6)

    def test_sub(self):
        assert Fraction(1, 2) - Fraction(1, 3) == Fraction(1, 6)

    def test_sub_negative_rejected(self):
        with pytest.raises(ValueError):
            Fraction(1, 3) - Fraction(1, 2)

    def test_mul(self):
        assert Fraction(2, 3) * Fraction(3, 4) == Fraction(1, 2)

    def test_normalized(self):
        n = Fraction(4, 8).normalized()
        assert (n.num, n.den) == (1, 2)

    def test_normalized_already_canonical_returns_self(self):
        f = Fraction(1, 2)
        assert f.normalized() is f

    def test_bool(self):
        assert Fraction(1, 2)
        assert not Fraction(0, 2)
