"""Q16.16 fixed-point scalar behaviour."""

import pytest

from repro.fixedpoint import SCALE, FixedQ16


class TestConstruction:
    def test_from_int(self):
        assert FixedQ16.from_int(3).to_float() == 3.0
        assert FixedQ16.from_int(-3).to_float() == -3.0

    def test_from_float_rounding(self):
        assert FixedQ16.from_float(0.5).raw == SCALE // 2

    def test_from_fraction_power_of_two_exact(self):
        assert FixedQ16.from_fraction(1, 2).to_float() == 0.5
        assert FixedQ16.from_fraction(3, 4).to_float() == 0.75
        assert FixedQ16.from_fraction(1, 1).to_float() == 1.0

    def test_from_fraction_general_denominator(self):
        # 1/3 to Q16.16 precision
        assert FixedQ16.from_fraction(1, 3).to_float() == pytest.approx(1 / 3, abs=2 / SCALE)

    def test_from_fraction_bad_denominator(self):
        with pytest.raises(ValueError):
            FixedQ16.from_fraction(1, 0)

    def test_raw_must_be_int(self):
        with pytest.raises(TypeError):
            FixedQ16(1.5)

    def test_saturation(self):
        big = FixedQ16.from_int(1 << 20)  # overflows Q16.16
        assert big.raw == (1 << 31) - 1
        small = FixedQ16.from_int(-(1 << 20))
        assert small.raw == -(1 << 31)


class TestArithmetic:
    def test_add_sub(self):
        a, b = FixedQ16.from_float(1.5), FixedQ16.from_float(0.25)
        assert (a + b).to_float() == 1.75
        assert (a - b).to_float() == 1.25

    def test_mul(self):
        a, b = FixedQ16.from_float(1.5), FixedQ16.from_float(2.0)
        assert (a * b).to_float() == 3.0

    def test_truediv(self):
        a, b = FixedQ16.from_float(3.0), FixedQ16.from_float(2.0)
        assert (a / b).to_float() == 1.5

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            FixedQ16.from_int(1) / FixedQ16.from_int(0)

    def test_shift_div(self):
        a = FixedQ16.from_int(10)
        assert a.shift_div(1).to_float() == 5.0
        assert a.shift_div(2).to_float() == 2.5

    def test_shift_div_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            FixedQ16.from_int(1).shift_div(-1)

    def test_neg(self):
        assert (-FixedQ16.from_float(2.5)).to_float() == -2.5

    def test_to_int_truncates_toward_neg_inf(self):
        assert FixedQ16.from_float(2.7).to_int() == 2
        assert FixedQ16.from_float(-2.7).to_int() == -3

    def test_precision_two_decimal_places(self):
        """Paper: scheduler needs 1-2 decimal places; Q16.16 must hold them."""
        for num, den in [(1, 10), (3, 100), (99, 100), (7, 10)]:
            fx = FixedQ16.from_fraction(num, den)
            assert fx.to_float() == pytest.approx(num / den, abs=0.001)


class TestComparisons:
    def test_ordering(self):
        assert FixedQ16.from_float(0.1) < FixedQ16.from_float(0.2)
        assert FixedQ16.from_float(0.2) > FixedQ16.from_float(0.1)
        assert FixedQ16.from_float(0.5) == FixedQ16.from_fraction(1, 2)
        assert FixedQ16.from_int(1) <= FixedQ16.from_int(1)
        assert FixedQ16.from_int(1) >= FixedQ16.from_int(1)

    def test_hash_matches_eq(self):
        assert hash(FixedQ16.from_float(0.5)) == hash(FixedQ16.from_fraction(1, 2))

    def test_not_equal_other_type(self):
        assert FixedQ16.from_int(1) != 1
