"""Property-based tests for the fixed-point substrate."""

from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint import (
    SCALE,
    FixedPointContext,
    FixedQ16,
    Fraction,
    SoftwareFloatContext,
)

fractions = st.builds(
    Fraction,
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=10_000),
)


@given(fractions, fractions)
def test_fraction_ordering_matches_exact_rationals(a, b):
    from fractions import Fraction as PyFraction

    pa, pb = PyFraction(a.num, a.den), PyFraction(b.num, b.den)
    assert (a < b) == (pa < pb)
    assert (a == b) == (pa == pb)
    assert (a > b) == (pa > pb)


@given(fractions, fractions)
def test_fraction_add_mul_match_exact_rationals(a, b):
    from fractions import Fraction as PyFraction

    pa, pb = PyFraction(a.num, a.den), PyFraction(b.num, b.den)
    s, m = a + b, a * b
    assert PyFraction(s.num, s.den) == pa + pb
    assert PyFraction(m.num, m.den) == pa * pb


@given(fractions, fractions)
def test_contexts_always_agree_on_comparison(a, b):
    assert SoftwareFloatContext().compare(a, b) == FixedPointContext().compare(a, b)


@given(st.integers(min_value=-(1 << 14), max_value=1 << 14))
def test_fixed_int_roundtrip(value):
    assert FixedQ16.from_int(value).to_int() == value


@given(
    # keep x+y inside Q16.16's ±32768 range so saturation never kicks in
    st.floats(min_value=-16000.0, max_value=16000.0, allow_nan=False),
    st.floats(min_value=-16000.0, max_value=16000.0, allow_nan=False),
)
def test_fixed_add_tracks_float_within_quantum(x, y):
    fx = FixedQ16.from_float(x) + FixedQ16.from_float(y)
    assert abs(fx.to_float() - (x + y)) <= 2.0 / SCALE


@given(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=10),
)
def test_shift_div_is_division_by_power_of_two(value, power):
    fx = FixedQ16.from_int(value).shift_div(power)
    assert fx.to_float() == value / (2**power)


@given(fractions)
def test_normalized_preserves_value(f):
    n = f.normalized()
    assert n == f
    from math import gcd

    assert gcd(n.num, n.den) in (1, n.num or 1)
