"""Distributed DVCM: cluster-wide instruction invocation over the SAN."""

import pytest

from repro.core import DWCSScheduler, StreamingEngine, StreamSpec
from repro.dvcm import (
    DVCMNode,
    ExtensionModule,
    MediaSchedulerExtension,
    MessageQueuePair,
    RemoteCallError,
    RemoteVCM,
    VCMRuntime,
)
from repro.hw import CPU, EthernetPort, EthernetSwitch, I960RDCard, PCISegment
from repro.media import FrameType, MediaFrame, MPEGClient
from repro.rtos import WindScheduler
from repro.sim import Environment, RandomStreams, S


def build_node(env, san, idx, lossy=False):
    """One cluster node: i960 card, VxWorks, VCM runtime, DVCM export."""
    segment = PCISegment(env, f"n{idx}.pci")
    card = I960RDCard(env, segment, name=f"n{idx}.i2o")
    san.attach(card.eth_ports[1])
    vxworks = WindScheduler(env, cpu_spec=card.cpu.spec, name=f"n{idx}.vx")
    queues = MessageQueuePair(env, segment, name=f"n{idx}.q")
    runtime = VCMRuntime(env, queues, card.cpu, name=f"n{idx}.vcm")
    vxworks.spawn("tVCM", runtime.task_body, priority=60)
    node = DVCMNode(env, runtime, card.eth_ports[1], card.stack)
    return card, vxworks, runtime, node


@pytest.fixture
def cluster():
    env = Environment()
    san = EthernetSwitch(env, name="san")
    nodes = [build_node(env, san, i) for i in range(3)]
    return env, san, nodes


def counter_extension():
    mod = ExtensionModule("ctr")
    state = {"n": 0}

    def bump(payload):
        state["n"] += payload.get("by", 1)
        return state["n"]

    mod.provide("bump", bump)
    mod.provide("read", lambda payload: state["n"])
    return mod


class TestRemoteInvocation:
    def test_call_across_nodes(self, cluster):
        env, _san, nodes = cluster
        _card0, _vx0, runtime0, node0 = nodes[0]
        card1, *_ = nodes[1]
        runtime0.load_extension(counter_extension())
        caller = RemoteVCM(env, card1.eth_ports[1], card1.stack)

        def app():
            a = yield from caller.call(node0.san_address, "ctr.bump", {"by": 5})
            b = yield from caller.call(node0.san_address, "ctr.read")
            return a, b

        a, b = env.run(until=env.process(app()))
        assert (a, b) == (5, 5)
        assert node0.remote_calls_served == 2

    def test_remote_error_propagates(self, cluster):
        env, _san, nodes = cluster
        _c0, _v0, _r0, node0 = nodes[0]
        card1, *_ = nodes[1]
        caller = RemoteVCM(env, card1.eth_ports[1], card1.stack)

        def app():
            yield from caller.call(node0.san_address, "no.such_instruction")

        with pytest.raises(RemoteCallError, match="unknown instruction"):
            env.run(until=env.process(app()))

    def test_two_callers_one_server(self, cluster):
        env, _san, nodes = cluster
        _c0, _v0, runtime0, node0 = nodes[0]
        runtime0.load_extension(counter_extension())
        results = []
        for idx in (1, 2):
            card, *_ = nodes[idx]
            caller = RemoteVCM(env, card.eth_ports[1], card.stack)

            def app(caller=caller):
                got = yield from caller.call(node0.san_address, "ctr.bump")
                results.append(got)

            env.process(app())
        env.run(until=30 * S)
        assert sorted(results) == [1, 2]

    def test_remote_calls_survive_lossy_san(self):
        env = Environment()
        san = EthernetSwitch(
            env, name="san", loss_rate=0.2,
            loss_rng=RandomStreams(17).stream("san"),
        )
        nodes = [build_node(env, san, i) for i in range(2)]
        _c0, _v0, runtime0, node0 = nodes[0]
        card1, *_ = nodes[1]
        runtime0.load_extension(counter_extension())
        caller = RemoteVCM(env, card1.eth_ports[1], card1.stack)

        def app():
            out = []
            for _ in range(10):
                got = yield from caller.call(node0.san_address, "ctr.bump")
                out.append(got)
            return out

        out = env.run(until=env.process(app()))
        assert out == list(range(1, 11))  # exactly-once despite 20% loss


class TestDistributedMediaScheduling:
    def test_remote_node_feeds_the_scheduler_ni(self, cluster):
        """A peer node opens a stream and submits frames to another node's
        media scheduler entirely over the SAN — 'media streams entering the
        NI from the network' (paper §1)."""
        env, san, nodes = cluster
        card0, vx0, runtime0, node0 = nodes[0]
        card1, *_ = nodes[1]
        # node 0 runs the media extension; clients attach on eth0
        client_port = EthernetPort(env, "viewer")
        san.attach(client_port)  # reuse the san switch for delivery
        client = MPEGClient(env, "viewer", client_port)
        scheduler = DWCSScheduler(work_conserving=False)
        sent = []

        def transmit(desc):
            from repro.hw.ethernet import NetFrame

            frame = NetFrame(
                payload_bytes=desc.size_bytes,
                stream_id=desc.stream_id,
                seqno=desc.frame.seqno,
            )
            yield from card0.eth_ports[1].send(frame, "viewer")
            sent.append(desc)

        engine = StreamingEngine(env, scheduler, card0.cpu, transmit)
        vx0.spawn("tDWCS", engine.task_body, priority=100)
        runtime0.load_extension(MediaSchedulerExtension(engine))

        caller = RemoteVCM(env, card1.eth_ports[1], card1.stack)

        def remote_producer():
            yield from caller.call(
                node0.san_address,
                "media.open_stream",
                {"stream_id": "relay", "period_us": 50_000.0, "loss_x": 1, "loss_y": 4},
            )
            for k in range(15):
                frame = MediaFrame("relay", k, FrameType.I, 1500, 0.0)
                yield from caller.call(
                    node0.san_address,
                    "media.submit_frame",
                    {"frame": frame},
                    payload_bytes=1500,
                )
                yield env.timeout(25_000.0)

        env.process(remote_producer())
        env.run(until=5 * S)
        assert len(sent) == 15
        assert client.reception("relay").frames_received == 15
