"""VCMPeerDown: typed fail-fast when the peer card or node is gone."""

import pytest

from repro.dvcm import (
    DVCMNode,
    ExtensionModule,
    MessageQueuePair,
    RemoteVCM,
    VCMInterface,
    VCMPeerDown,
    VCMRuntime,
    VCMTimeout,
)
from repro.faults import FaultPlane
from repro.hw import EthernetSwitch, I960RDCard, PCISegment
from repro.rtos import WindScheduler
from repro.server import ServerNode
from repro.sim import Environment, S


def echo_module():
    mod = ExtensionModule("echo")
    mod.provide("ping", lambda payload: payload.get("value"))
    return mod


def card_rig(env):
    node = ServerNode(env, n_cpus=1)
    card = node.add_i960_card(segment=0)
    queues = MessageQueuePair(env, card.segment, name=card.name)
    runtime = VCMRuntime(env, queues, card.cpu, card=card)
    runtime.load_extension(echo_module())
    rtos = WindScheduler(env)
    rtos.spawn("tVCM", runtime.task_body, priority=60)
    return card, queues, runtime


class TestLocalCardPeerDown:
    def test_call_fails_fast_when_the_card_is_down(self):
        env = Environment()
        card, queues, _runtime = card_rig(env)
        api = VCMInterface(env, queues, card=card)
        card.crash()
        errors = []

        def caller():
            try:
                yield from api.call("echo.ping", {"value": 1})
            except VCMPeerDown as err:
                errors.append((env.now, err))

        env.process(caller())
        env.run(until=10_000_000)
        assert len(errors) == 1
        at, err = errors[0]
        assert at == 0.0  # fail-fast: no retry/backoff burned
        assert card.name in str(err)
        assert api.peer_down_errors == 1
        assert api.retries == 0

    def test_crash_mid_call_raises_peer_down_not_timeout(self):
        env = Environment()
        card, queues, _runtime = card_rig(env)
        api = VCMInterface(env, queues, timeout_us=50_000.0, max_retries=2, card=card)
        outcome = []

        def caller():
            try:
                yield from api.call("echo.ping", {"value": 1}, timeout_us=50_000.0)
            except VCMPeerDown:
                outcome.append("peer-down")
            except VCMTimeout:
                outcome.append("timeout")

        # crash after the first post but before any reply can land: the
        # retry loop must convert to the typed peer-down error
        env.schedule_callback(1.0, card.crash)
        env.process(caller())
        env.run(until=10_000_000)
        assert outcome == ["peer-down"]

    def test_without_card_binding_the_generic_timeout_remains(self):
        env = Environment()
        card, queues, _runtime = card_rig(env)
        api = VCMInterface(env, queues, timeout_us=50_000.0, max_retries=1)
        outcome = []

        def caller():
            try:
                yield from api.call("echo.ping", {"value": 1})
            except VCMTimeout:
                outcome.append("timeout")

        card.crash()
        env.process(caller())
        env.run(until=10_000_000)
        assert outcome == ["timeout"]

    def test_healthy_card_calls_still_roundtrip(self):
        env = Environment()
        card, queues, _runtime = card_rig(env)
        api = VCMInterface(env, queues, card=card)
        got = []

        def caller():
            result = yield from api.call("echo.ping", {"value": 42})
            got.append(result)

        env.process(caller())
        env.run(until=10_000_000)
        assert got == [42]
        assert api.peer_down_errors == 0

    def test_peer_down_is_a_vcm_error_subtype(self):
        from repro.dvcm.api import VCMError

        assert issubclass(VCMPeerDown, VCMError)
        assert not issubclass(VCMPeerDown, VCMTimeout)


def counter_extension():
    mod = ExtensionModule("ctr")
    state = {"n": 0}

    def bump(payload):
        state["n"] += payload.get("by", 1)
        return state["n"]

    mod.provide("bump", bump)
    return mod


def san_rig(env):
    """Two SAN nodes: node 0 serves the counter, node 1 calls it."""
    san = EthernetSwitch(env, name="san")
    nodes = []
    for idx in range(2):
        segment = PCISegment(env, f"n{idx}.pci")
        card = I960RDCard(env, segment, name=f"n{idx}.i2o")
        san.attach(card.eth_ports[1])
        vxworks = WindScheduler(env, cpu_spec=card.cpu.spec, name=f"n{idx}.vx")
        queues = MessageQueuePair(env, segment, name=f"n{idx}.q")
        runtime = VCMRuntime(env, queues, card.cpu, name=f"n{idx}.vcm")
        vxworks.spawn("tVCM", runtime.task_body, priority=60)
        node = DVCMNode(env, runtime, card.eth_ports[1], card.stack)
        nodes.append((card, runtime, node))
    nodes[0][1].load_extension(counter_extension())
    caller = RemoteVCM(env, nodes[1][0].eth_ports[1], nodes[1][0].stack)
    return nodes, caller


class TestRemotePeerDown:
    def test_partitioned_peer_fails_the_dial_with_peer_down(self):
        env = Environment()
        nodes, caller = san_rig(env)
        server_port = nodes[0][2].san_address
        plane = FaultPlane(env, seed=3)
        plane.inject_partition(server_port, 0.0, 600 * S)
        outcome = []

        def app():
            try:
                yield from caller.call(server_port, "ctr.bump")
            except VCMPeerDown:
                outcome.append(env.now)

        env.process(app())
        env.run(until=600 * S)
        assert len(outcome) == 1
        assert caller.peer_down_errors == 1

    def test_partition_mid_call_aborts_then_recovery_redials(self):
        env = Environment()
        nodes, caller = san_rig(env)
        server_port = nodes[0][2].san_address
        plane = FaultPlane(env, seed=3)
        # cut the server's SAN port after the first call completes; the
        # window is long enough for go-back-N to exhaust its retry budget
        plane.inject_partition(server_port, 2 * S, 400 * S)
        log = []

        def app():
            got = yield from caller.call(server_port, "ctr.bump")
            log.append(("ok", got))
            yield env.timeout(3 * S)  # now inside the partition window
            try:
                yield from caller.call(server_port, "ctr.bump")
            except VCMPeerDown:
                log.append(("down", env.now))
            # wait out the partition: the broken connection was discarded,
            # so the next call re-dials and the peer serves again
            while env.now < 401 * S:
                yield env.timeout(1 * S)
            got = yield from caller.call(server_port, "ctr.bump")
            log.append(("ok", got))

        env.process(app())
        env.run(until=500 * S)
        assert [tag for tag, _ in log] == ["ok", "down", "ok"]
        assert log[0][1] == 1 and log[2][1] == 2  # the aborted bump never ran
        assert caller.peer_down_errors == 1
