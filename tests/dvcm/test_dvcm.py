"""DVCM: messaging, runtime dispatch, extensions, host API."""

import pytest

from repro.core import DWCSScheduler, StreamingEngine
from repro.dvcm import (
    ExtensionModule,
    I2OMessage,
    MediaSchedulerExtension,
    MessageQueuePair,
    VCMError,
    VCMInterface,
    VCMRuntime,
)
from repro.hw import CPU, I960RD_66, PCISegment
from repro.media import FrameType, MediaFrame
from repro.rtos import WindScheduler
from repro.sim import Environment


@pytest.fixture
def rig():
    env = Environment()
    segment = PCISegment(env, "pci0")
    queues = MessageQueuePair(env, segment, name="card0")
    cpu = CPU(I960RD_66)
    runtime = VCMRuntime(env, queues, cpu)
    rtos = WindScheduler(env)
    rtos.spawn("tVCM", runtime.task_body, priority=60)
    api = VCMInterface(env, queues)
    return env, segment, runtime, api


def echo_module():
    mod = ExtensionModule("echo")
    mod.provide("ping", lambda payload: payload.get("value"))
    mod.provide("fail", lambda payload: 1 / 0)
    return mod


class TestExtensionModule:
    def test_provide_and_qualify(self):
        mod = echo_module()
        assert "ping" in mod.instructions()
        assert mod.qualified("ping") == "echo.ping"

    def test_duplicate_instruction_rejected(self):
        mod = echo_module()
        with pytest.raises(ValueError):
            mod.provide("ping", lambda p: None)


class TestRuntime:
    def test_load_unload(self, rig):
        _env, _seg, runtime, _api = rig
        runtime.load_extension(echo_module())
        assert "echo.ping" in runtime.instruction_names
        runtime.unload_extension("echo")
        assert runtime.instruction_names == []

    def test_duplicate_extension_rejected(self, rig):
        _env, _seg, runtime, _api = rig
        runtime.load_extension(echo_module())
        with pytest.raises(ValueError):
            runtime.load_extension(echo_module())

    def test_unload_missing_raises(self, rig):
        _env, _seg, runtime, _api = rig
        with pytest.raises(KeyError):
            runtime.unload_extension("ghost")

    def test_call_roundtrip(self, rig):
        env, _seg, runtime, api = rig
        runtime.load_extension(echo_module())

        def app():
            result = yield from api.call("echo.ping", {"value": 42})
            return result

        assert env.run(until=env.process(app())) == 42
        assert runtime.messages_handled == 1
        assert api.calls == 1

    def test_unknown_instruction_errors(self, rig):
        env, _seg, runtime, api = rig

        def app():
            yield from api.call("nope.nothing")

        with pytest.raises(VCMError, match="unknown instruction"):
            env.run(until=env.process(app()))
        assert runtime.errors == 1

    def test_handler_exception_travels_as_error_reply(self, rig):
        env, _seg, runtime, api = rig
        runtime.load_extension(echo_module())

        def app():
            yield from api.call("echo.fail")

        with pytest.raises(VCMError):
            env.run(until=env.process(app()))

    def test_call_consumes_pci_for_message_and_bulk(self, rig):
        env, seg, runtime, api = rig
        runtime.load_extension(echo_module())

        def app():
            yield from api.call("echo.ping", {"value": 1}, bulk_bytes=10_000)

        env.run(until=env.process(app()))
        # 8 header words * 4B + 10000B bulk + reply reads
        assert seg.bytes_transferred >= 10_000 + 32

    def test_execute_local_skips_pci(self, rig):
        _env, seg, runtime, _api = rig
        runtime.load_extension(echo_module())
        assert runtime.execute_local("echo.ping", {"value": 7}) == 7
        assert seg.bytes_transferred == 0

    def test_execute_local_error_raises(self, rig):
        _env, _seg, runtime, _api = rig
        runtime.load_extension(echo_module())
        with pytest.raises(RuntimeError):
            runtime.execute_local("echo.fail", {})

    def test_concurrent_calls_from_two_apps(self, rig):
        env, _seg, runtime, api = rig
        runtime.load_extension(echo_module())
        api2 = VCMInterface(env, runtime.queues, name="app2")
        results = []

        def app(iface, value):
            got = yield from iface.call("echo.ping", {"value": value})
            results.append(got)

        env.process(app(api, 1))
        env.process(app(api2, 2))
        env.run()
        assert sorted(results) == [1, 2]


class TestMediaExtension:
    def _rig_with_media(self, rig):
        env, seg, runtime, api = rig
        scheduler = DWCSScheduler(work_conserving=False)
        sent = []

        def transmit(desc):
            sent.append(desc)
            yield env.timeout(10.0)

        engine = StreamingEngine(env, scheduler, CPU(I960RD_66), transmit)
        rtos = WindScheduler(env, name="vx2")
        rtos.spawn("tDWCS", engine.task_body, priority=100)
        runtime.load_extension(MediaSchedulerExtension(engine))
        return env, runtime, api, engine, sent

    def test_open_submit_stats_close(self, rig):
        env, runtime, api, engine, sent = self._rig_with_media(rig)

        def app():
            yield from api.call(
                "media.open_stream",
                {"stream_id": "s1", "period_us": 10_000.0, "loss_x": 1, "loss_y": 4},
            )
            for k in range(5):
                frame = MediaFrame("s1", k, FrameType.I, 1000, 0.0)
                yield from api.call(
                    "media.submit_frame", {"frame": frame}, bulk_bytes=1000
                )
            yield env.timeout(200_000.0)
            stats = yield from api.call("media.stream_stats", {"stream_id": "s1"})
            return stats

        stats = env.run(until=env.process(app()))
        assert stats["serviced"] == 5
        assert stats["queued"] == 0
        assert len(sent) == 5

    def test_close_nonempty_stream_errors(self, rig):
        env, runtime, api, engine, _sent = self._rig_with_media(rig)

        def app():
            yield from api.call(
                "media.open_stream",
                {"stream_id": "s1", "period_us": 1e9, "loss_x": 0, "loss_y": 1},
            )
            # frame 0 releases immediately, but frame 1's release is a full
            # period away — it is still queued when close arrives
            for k in range(2):
                frame = MediaFrame("s1", k, FrameType.I, 1000, 0.0)
                yield from api.call("media.submit_frame", {"frame": frame})
            yield from api.call("media.close_stream", {"stream_id": "s1"})

        with pytest.raises(VCMError):
            env.run(until=env.process(app()))
