"""MetricsRegistry: counters, gauges, histograms, labels, snapshots."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import DEFAULT_BUCKETS_US, Histogram


class TestCounters:
    def test_count_accumulates(self):
        r = MetricsRegistry()
        r.count("frames")
        r.count("frames", 2.0)
        assert r.value("frames") == 3.0

    def test_labels_are_separate_series(self):
        r = MetricsRegistry()
        r.count("frames", stream="s1")
        r.count("frames", stream="s1")
        r.count("frames", stream="s2")
        assert r.value("frames", stream="s1") == 2.0
        assert r.value("frames", stream="s2") == 1.0
        assert r.value("frames") == 0.0  # unlabeled series never written
        assert len(r) == 2

    def test_counter_cannot_decrease(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.count("frames", -1.0)

    def test_missing_metric_reads_zero(self):
        assert MetricsRegistry().value("nope") == 0.0


class TestGauges:
    def test_set_and_add(self):
        r = MetricsRegistry()
        r.gauge("depth", 5.0)
        r.gauge("depth", 3.0)  # last write wins
        assert r.value("depth") == 3.0
        r.gauge_add("depth", -1.0)
        assert r.value("depth") == 2.0


class TestKindConflicts:
    def test_name_bound_to_one_kind(self):
        r = MetricsRegistry()
        r.count("x")
        with pytest.raises(TypeError):
            r.gauge("x", 1.0)
        with pytest.raises(TypeError):
            r.observe("x", 1.0)

    def test_histogram_not_readable_as_scalar(self):
        r = MetricsRegistry()
        r.observe("lat", 5.0)
        with pytest.raises(TypeError):
            r.value("lat")


class TestHistograms:
    def test_bucket_placement(self):
        h = Histogram("lat", buckets=(10.0, 100.0))
        for v in (1.0, 10.0, 50.0, 500.0):
            h.observe(v)
        # <=10, <=100, overflow
        assert h.counts == [2, 1, 1]
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 561.0
        assert snap["min"] == 1.0
        assert snap["max"] == 500.0

    def test_buckets_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(100.0, 10.0))

    def test_declare_custom_buckets(self):
        r = MetricsRegistry()
        r.declare_histogram("lat", (1.0, 2.0))
        r.observe("lat", 1.5)
        assert r.get("lat").buckets == (1.0, 2.0)

    def test_default_buckets(self):
        r = MetricsRegistry()
        r.observe("lat", 5.0)
        assert r.get("lat").buckets == DEFAULT_BUCKETS_US


class TestSnapshot:
    def test_shape_and_ordering(self):
        r = MetricsRegistry()
        r.count("b.frames", stream="s2")
        r.count("b.frames", stream="s1")
        r.gauge("a.depth", 4.0)
        snap = r.snapshot()
        assert list(snap) == ["a.depth", "b.frames"]  # name-sorted
        series = snap["b.frames"]["series"]
        assert [s["labels"] for s in series] == [{"stream": "s1"}, {"stream": "s2"}]
        assert snap["a.depth"] == {
            "kind": "gauge",
            "series": [{"labels": {}, "value": 4.0}],
        }

    def test_snapshot_is_json_stable(self):
        def build():
            r = MetricsRegistry()
            r.count("frames", stream="s1")
            r.observe("lat", 12.0)
            r.gauge("depth", 2.0, card="rd0")
            return json.dumps(r.snapshot(), sort_keys=True)

        assert build() == build()

    def test_render_lists_every_series(self):
        r = MetricsRegistry()
        r.count("frames", stream="s1")
        r.observe("lat", 12.0)
        text = r.render("t")
        assert "frames{stream=s1}" in text
        assert "lat" in text and "count=1" in text
