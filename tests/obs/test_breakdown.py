"""LatencyBreakdown: span folding, hop tables, critical paths."""

import pytest

from repro.obs import LatencyBreakdown
from repro.obs.breakdown import percentile
from repro.sim.trace import TraceEvent


def B(t, hop, sid, **fields):
    return TraceEvent(t, "span", hop, {**fields, "ph": "B", "span": sid})


def E(t, hop, sid, **fields):
    return TraceEvent(t, "span", hop, {**fields, "ph": "E", "span": sid})


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 95) == 4.0
        assert percentile(values, 100) == 4.0
        assert percentile([7.0], 50) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestFolding:
    def test_pairs_fold_and_fields_merge(self):
        bd = LatencyBreakdown(
            [B(1.0, "read", 1, stream="s1", seq=0), E(5.0, "read", 1, bytes=100)]
        )
        [span] = bd.spans
        assert span.hop == "read"
        assert span.duration_us == 4.0
        assert span.stream == "s1"
        assert span.fields["bytes"] == 100
        assert "ph" not in span.fields and "span" not in span.fields

    def test_orphan_end_skipped(self):
        # the begin fell off the ring: duration unknowable, span ignored
        bd = LatencyBreakdown([E(5.0, "read", 99)])
        assert bd.spans == []
        assert bd.unfinished == 0

    def test_unfinished_counted(self):
        bd = LatencyBreakdown([B(1.0, "read", 1, stream="s1")])
        assert bd.spans == []
        assert bd.unfinished == 1


class TestTables:
    def _bd(self):
        events = []
        # s1: two read spans (2us, 4us) + one wire span (1us)
        events += [B(0.0, "read", 1, stream="s1", seq=0), E(2.0, "read", 1)]
        events += [B(10.0, "read", 2, stream="s1", seq=1), E(14.0, "read", 2)]
        events += [B(2.0, "wire", 3, stream="s1", seq=0), E(3.0, "wire", 3)]
        # s2: one read span (6us)
        events += [B(0.0, "read", 4, stream="s2", seq=0), E(6.0, "read", 4)]
        return LatencyBreakdown(events, label="t")

    def test_hops_in_datapath_order(self):
        assert self._bd().hops() == ["read", "wire"]

    def test_by_hop_all_streams(self):
        stats = {s.hop: s for s in self._bd().by_hop()}
        assert stats["read"].count == 3
        assert stats["read"].total_us == 12.0
        assert stats["read"].mean_us == 4.0
        assert stats["read"].pct(100) == 6.0
        assert stats["wire"].count == 1

    def test_by_hop_one_stream(self):
        stats = {s.hop: s for s in self._bd().by_hop("s2")}
        assert stats["read"].count == 1
        assert "wire" not in stats

    def test_table_rows_scopes(self):
        rows = self._bd().table_rows()
        assert [(r["scope"], r["hop"]) for r in rows] == [
            ("*", "read"), ("*", "wire"),
            ("s1", "read"), ("s1", "wire"),
            ("s2", "read"),
        ]

    def test_render_table_deterministic(self):
        assert self._bd().render_table() == self._bd().render_table()


class TestCriticalPath:
    def test_median_frame_selected(self):
        events = []
        # three frames with e2e 2, 4, 9 — median is seq=1
        for seq, dur in ((0, 2.0), (1, 4.0), (2, 9.0)):
            t0 = seq * 100.0
            events += [
                B(t0, "read", seq * 2 + 1, stream="s1", seq=seq),
                E(t0 + dur, "read", seq * 2 + 1),
            ]
        path = LatencyBreakdown(events).median_path("s1")
        assert path.seq == 1
        assert path.end_to_end_us == 4.0

    def test_unattributed_is_uncovered_gap(self):
        events = [
            B(0.0, "read", 1, stream="s1", seq=0), E(4.0, "read", 1),
            # 4..6 unclaimed, then wire 6..10 overlapping squeue 5..8
            B(5.0, "squeue", 2, stream="s1", seq=0), E(8.0, "squeue", 2),
            B(6.0, "wire", 3, stream="s1", seq=0), E(10.0, "wire", 3),
        ]
        path = LatencyBreakdown(events).median_path("s1")
        assert path.end_to_end_us == 10.0
        # union coverage: [0,4] + [5,10] = 9us; the overlap counts once
        assert path.covered_us == 9.0
        assert path.unattributed_us == 1.0

    def test_no_frames_renders_placeholder(self):
        bd = LatencyBreakdown([])
        assert bd.median_path("s1") is None
        assert "no frames" in bd.render_critical_path("s1")
