"""Exporters: Perfetto trace JSON, breakdown CSV, metrics snapshot, artifacts."""

import json

from repro.obs import (
    LatencyBreakdown,
    ObservabilityPlane,
    render_breakdown_csv,
    render_chrome_trace,
    render_metrics_snapshot,
    write_observe_artifacts,
)
from repro.sim import Environment


def _instrumented_plane():
    env = Environment()
    plane = ObservabilityPlane(env).install()

    def frame():
        sp = plane.begin("read", track="disk:sd0", stream="s1", seq=0)
        yield env.timeout(5.0)
        plane.end(sp, bytes=100)
        plane.instant("card_crash", track="card:rd0")
        plane.count("frames", stream="s1")

    env.process(frame())
    env.run(until=20.0)
    return plane


class TestChromeTrace:
    def test_span_becomes_complete_event(self):
        doc = json.loads(render_chrome_trace(_instrumented_plane().tracer))
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        [x] = xs
        assert x["name"] == "read"
        assert x["ts"] == 0.0
        assert x["dur"] == 5.0
        assert x["args"]["bytes"] == 100
        # ph/span/track internals never leak into args
        assert not {"ph", "span", "track"} & set(x["args"])

    def test_instant_and_metadata(self):
        doc = json.loads(render_chrome_trace(_instrumented_plane().tracer))
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        [i] = instants
        assert i["name"] == "card_crash"
        assert i["s"] == "t"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "disk") in names
        assert ("thread_name", "disk:sd0") in names
        assert ("process_name", "card") in names

    def test_track_pid_tid_consistent(self):
        doc = json.loads(render_chrome_trace(_instrumented_plane().tracer))
        by_track = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "M" and e["name"] == "thread_name":
                by_track[e["args"]["name"]] = (e["pid"], e["tid"])
        [x] = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert (x["pid"], x["tid"]) == by_track["disk:sd0"]

    def test_unfinished_span_closed_and_flagged(self):
        env = Environment()
        plane = ObservabilityPlane(env).install()
        plane.begin("read", track="disk:sd0", stream="s1")
        env.schedule_callback(9.0, lambda: plane.instant("tick"))
        env.run()
        doc = json.loads(render_chrome_trace(plane.tracer))
        [x] = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert x["args"]["unfinished"] is True
        assert x["dur"] == 9.0  # closed at the last recorded timestamp

    def test_byte_identical_across_builds(self):
        a = render_chrome_trace(_instrumented_plane().tracer, label="x")
        b = render_chrome_trace(_instrumented_plane().tracer, label="x")
        assert a == b

    def test_discard_count_exported(self):
        plane = _instrumented_plane()
        doc = json.loads(render_chrome_trace(plane.tracer))
        assert doc["otherData"]["events_discarded"] == 0


class TestCsvAndSnapshot:
    def test_breakdown_csv(self):
        plane = _instrumented_plane()
        bd = LatencyBreakdown(plane.span_events(), label="t")
        lines = render_breakdown_csv(bd).splitlines()
        assert lines[0].startswith("scope,hop,count,")
        assert lines[1].split(",")[:4] == ["*", "read", "1", "5.0"]

    def test_metrics_snapshot_json(self):
        text = render_metrics_snapshot(_instrumented_plane().registry)
        assert text.endswith("\n")
        snap = json.loads(text)
        assert snap["frames"]["series"][0]["value"] == 1.0


class TestArtifacts:
    def test_write_observe_artifacts(self, tmp_path):
        plane = _instrumented_plane()
        written = write_observe_artifacts(str(tmp_path), [("host", plane)])
        names = sorted(p.split("/")[-1] for p in written)
        assert names == [
            "breakdown_host.csv",
            "events_host.jsonl",
            "metrics_host.json",
            "trace_host.json",
        ]
        for p in written:
            assert (tmp_path / p.split("/")[-1]).read_text() != ""
        # the jsonl ring round-trips line by line
        events = [
            json.loads(line)
            for line in (tmp_path / "events_host.jsonl").read_text().splitlines()
        ]
        assert len(events) == len(plane.tracer)
