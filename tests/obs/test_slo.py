"""SLO engine: selectors, verdicts, gates, rendering, JSON artifact."""

import json

import pytest

from repro.obs import (
    CHAOS_SLOS,
    CLUSTER_DETECTION_BUDGET_MS,
    FAILOVER_SLOS,
    MetricsRegistry,
    SLO,
    cluster_slos,
    evaluate,
    metric,
    metric_sum,
    nonzero,
    render_slo_report,
    tracer_stat,
    value,
    write_slo_report,
)
from repro.obs.slo import SLOContext
from repro.sim import Environment
from repro.sim.trace import Tracer


def registry_with(**gauges):
    reg = MetricsRegistry()
    for name, val in gauges.items():
        reg.gauge(name.replace("__", "."), val)
    return reg


class TestSelectors:
    def test_metric_selects_one_series(self):
        reg = MetricsRegistry()
        reg.gauge("ledger", 3.0, state="placed")
        reg.gauge("ledger", 1.0, state="parked")
        ctx = SLOContext(registry=reg)
        assert metric("ledger", state="parked")(ctx) == 1.0
        assert metric("ledger", state="lost")(ctx) is None

    def test_metric_sum_spans_label_sets(self):
        reg = MetricsRegistry()
        reg.count("ops", 2.0, node="a")
        reg.count("ops", 5.0, node="b")
        ctx = SLOContext(registry=reg)
        assert metric_sum("ops")(ctx) == 7.0
        assert metric_sum("absent")(ctx) is None

    def test_metric_histogram_compares_count(self):
        reg = MetricsRegistry()
        reg.observe("lat_us", 12.0)
        reg.observe("lat_us", 90_000.0)
        ctx = SLOContext(registry=reg)
        assert metric("lat_us")(ctx) == 2.0

    def test_tracer_stat_and_missing_tracer(self):
        tracer = Tracer(Environment(), capacity=4)
        for i in range(6):
            tracer.emit("x", "event", t_us=float(i))
        ctx = SLOContext(tracer=tracer)
        assert tracer_stat("discarded")(ctx) == 2.0
        assert tracer_stat("discarded")(SLOContext()) is None

    def test_value_comes_from_runner_context(self):
        ctx = SLOContext(values={"card_lost": 1.0})
        assert value("card_lost")(ctx) == 1.0
        assert value("absent")(ctx) is None

    def test_source_strings_are_stable(self):
        assert metric("a.b").source == "metric a.b"
        assert metric("a.b", state="lost").source == "metric a.b{state=lost}"
        assert metric_sum("a.b").source == "sum(metric a.b)"
        assert tracer_stat("discarded").source == "tracer.discarded"
        assert value("k").source == "value k"


class TestVerdicts:
    def test_pass_fail_missing(self):
        reg = registry_with(**{"det": 3.0})
        rules = [
            SLO("inside", metric("det"), "<", 5.0),
            SLO("outside", metric("det"), "<", 1.0),
            SLO("unmeasured", metric("absent"), "<", 1.0),
        ]
        report = evaluate(rules, registry=reg, title="t")
        assert [v.status for v in report.verdicts] == ["PASS", "FAIL", "MISSING"]
        assert not report.ok  # both FAIL and MISSING count against ok
        assert {v.slo.name for v in report.failed} == {"outside", "unmeasured"}

    def test_missing_is_not_ok(self):
        report = evaluate([SLO("b", metric("absent"), "<", 1.0)], title="t")
        assert report.verdicts[0].status == "MISSING"
        assert not report.verdicts[0].ok

    def test_when_gate_skips_and_skipped_is_ok(self):
        reg = registry_with(fault=0.0)
        rule = SLO("budget", metric("absent"), "<", 1.0, when=nonzero(metric("fault")))
        report = evaluate([rule], registry=reg, title="t")
        assert report.verdicts[0].status == "SKIPPED"
        assert report.ok

    def test_when_gate_applies_on_nonzero(self):
        reg = registry_with(fault=1.0, det=0.5)
        rule = SLO("budget", metric("det"), "<", 1.0, when=nonzero(metric("fault")))
        report = evaluate([rule], registry=reg, title="t")
        assert report.verdicts[0].status == "PASS"

    def test_require_returns_verdict_or_raises(self):
        reg = registry_with(det=3.0)
        report = evaluate(
            [SLO("inside", metric("det"), "<", 5.0), SLO("outside", metric("det"), "<", 1.0)],
            registry=reg,
            title="t",
        )
        assert report.require("inside").measured == 3.0
        with pytest.raises(AssertionError, match="outside"):
            report.require("outside")
        with pytest.raises(KeyError):
            report.verdict("no-such-rule")

    def test_unknown_op_rejected_at_declaration(self):
        with pytest.raises(ValueError, match="unknown SLO op"):
            SLO("bad", metric("x"), "~=", 1.0)


class TestRendering:
    def test_render_is_deterministic(self):
        reg = registry_with(det=3.0)
        rules = [SLO("inside", metric("det"), "<", 5.0, unit="ms", description="d")]
        a = render_slo_report(evaluate(rules, registry=reg, title="t"))
        b = render_slo_report(evaluate(rules, registry=reg, title="t"))
        assert a == b
        assert "== SLO_report: t ==" in a
        assert "PASS" in a and "inside" in a

    def test_summary_line_counts(self):
        reg = registry_with(det=3.0, fault=0.0)
        rules = [
            SLO("p", metric("det"), "<", 5.0),
            SLO("f", metric("det"), ">", 5.0),
            SLO("m", metric("absent"), "<", 5.0),
            SLO("s", metric("det"), "<", 5.0, when=nonzero(metric("fault"))),
        ]
        report = evaluate(rules, registry=reg, title="t")
        assert report.summary_line() == "SLO t: 1 pass, 1 fail, 1 missing, 1 skipped"

    def test_write_slo_report_json(self, tmp_path):
        reg = registry_with(det=3.0)
        report = evaluate([SLO("inside", metric("det"), "<", 5.0)], registry=reg, title="t")
        path = tmp_path / "SLO_report.json"
        write_slo_report(path, report)
        doc = json.loads(path.read_text())
        assert doc["ok"] is True
        [blk] = doc["reports"]
        assert blk["title"] == "t"
        assert blk["verdicts"][0]["status"] == "PASS"
        assert blk["verdicts"][0]["measured"] == 3.0
        # byte-determinism: second write is identical
        first = path.read_text()
        write_slo_report(path, report)
        assert path.read_text() == first


class TestShippedRuleSets:
    def test_cluster_slos_parameterize_by_scenario(self):
        default = {s.name: s for s in cluster_slos("node-crash")}
        brown = {s.name: s for s in cluster_slos("brownout")}
        assert default["detection-budget"].bound == 800.0
        assert brown["detection-budget"].bound == CLUSTER_DETECTION_BUDGET_MS["brownout"]
        assert default["qos-violations"].bound != brown["qos-violations"].bound

    def test_failover_budgets_gate_on_card_lost(self):
        reg = MetricsRegistry()
        reg.gauge("failover.fault_marked", 1.0)
        reg.gauge("failover.migrated", 0.0)
        reg.gauge("failover.partitions", 0.0)
        reg.gauge("failover.frames_lost", 0.0)
        # flap: fault marked but no card stayed lost -> budgets skipped
        rode_out = evaluate(FAILOVER_SLOS, registry=reg, values={"card_lost": 0.0}, title="flap")
        assert rode_out.verdict("detection-budget").status == "SKIPPED"
        assert rode_out.verdict("mttr-budget").status == "SKIPPED"
        assert rode_out.ok
        # permanent crash with no measurement -> MISSING, i.e. failing
        crashed = evaluate(FAILOVER_SLOS, registry=reg, values={"card_lost": 1.0}, title="crash")
        assert crashed.verdict("detection-budget").status == "MISSING"
        assert not crashed.ok

    def test_chaos_slos_pass_on_healthy_run(self):
        reg = MetricsRegistry()
        reg.gauge("chaos.fault_windows", 1.0)
        reg.gauge("chaos.faults_injected", 12.0)
        reg.gauge("chaos.min_settled_bps", 150_000.0)
        report = evaluate(CHAOS_SLOS, registry=reg, title="t")
        assert report.ok
        assert all(v.status == "PASS" for v in report.verdicts)
