"""Wall-clock self-profiler: sampling, artifacts, env gating, bit-identity."""

import time

from repro.obs.profile import (
    PROFILE_CALLS_ENV_VAR,
    PROFILE_ENV_VAR,
    WallClockProfiler,
    maybe_profile,
)


def spin(seconds: float) -> int:
    """A deterministic busy loop the sampler can catch in the act."""
    deadline = time.perf_counter() + seconds
    acc = 0
    while time.perf_counter() < deadline:
        acc += 1
    return acc


class TestSampling:
    def test_samples_capture_this_stack(self):
        with WallClockProfiler(interval_s=0.001) as prof:
            spin(0.12)
        assert prof.samples > 0
        assert prof.wall_s > 0.1
        # the busy loop's frame must appear as a leaf somewhere
        leaves = {stack[-1] for stack in prof.stacks}
        assert any(label.endswith(":spin") for label in leaves), leaves

    def test_collapsed_format(self):
        prof = WallClockProfiler(enabled=False)
        prof.stacks = {("m:a", "m:b"): 3, ("m:a",): 1}
        text = prof.collapsed()
        assert text == "m:a 1\nm:a;m:b 3\n"

    def test_collapsed_empty(self):
        assert WallClockProfiler(enabled=False).collapsed() == ""

    def test_call_counts_hook(self):
        with WallClockProfiler(interval_s=0.01, call_counts=True) as prof:
            for _ in range(5):
                spin(0.001)
        spins = [n for label, n in prof.calls.items() if label.endswith(":spin")]
        assert spins and spins[0] >= 5


class TestInert:
    def test_disabled_profiler_records_nothing(self):
        prof = WallClockProfiler(enabled=False)
        with prof:
            spin(0.02)
        assert prof.samples == 0
        assert prof.stacks == {}
        assert prof.wall_s == 0.0

    def test_stop_without_start_is_noop(self):
        prof = WallClockProfiler(enabled=False)
        assert prof.stop() is prof

    def test_interval_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            WallClockProfiler(interval_s=0.0)


class TestAnalysis:
    def make(self):
        prof = WallClockProfiler(enabled=False)
        prof.stacks = {
            ("repro.experiments.bench:main", "repro.core.dwcs:schedule"): 6,
            ("repro.experiments.bench:main", "repro.sim.environment:run"): 3,
            ("json.encoder:encode",): 1,
        }
        prof.samples = 10
        prof.wall_s = 5.0
        return prof

    def test_hotspots_leaf_attribution(self):
        rows = self.make().hotspots()
        assert rows[0]["module"] == "repro.core.dwcs"
        assert rows[0]["samples"] == 6
        assert rows[0]["share"] == 0.6
        assert rows[0]["est_s"] == 3.0
        assert [r["module"] for r in rows] == [
            "repro.core.dwcs",
            "repro.sim.environment",
            "json.encoder",
        ]

    def test_hotspots_top_truncation(self):
        assert len(self.make().hotspots(top=1)) == 1

    def test_package_rollup_families(self):
        shares = self.make().package_rollup()
        assert shares["repro.core"] == 0.6
        assert shares["repro.sim"] == 0.3
        assert shares["other"] == 0.1
        assert abs(sum(shares.values()) - 1.0) < 1e-9

    def test_render_hotspots_mentions_modules(self):
        text = self.make().render_hotspots()
        assert "repro.core.dwcs" in text
        assert "10 samples" in text


class TestEnvGating:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV_VAR, raising=False)
        assert maybe_profile().enabled is False

    def test_zero_means_off(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "0")
        assert maybe_profile().enabled is False

    def test_flag_arms_profiler(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "1")
        monkeypatch.delenv(PROFILE_CALLS_ENV_VAR, raising=False)
        prof = maybe_profile()
        assert prof.enabled is True
        assert prof.call_counts_enabled is False

    def test_calls_flag_adds_hook(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV_VAR, "1")
        monkeypatch.setenv(PROFILE_CALLS_ENV_VAR, "1")
        assert maybe_profile().call_counts_enabled is True


class TestBitIdentity:
    def test_simulated_results_identical_under_profiler(self):
        """The profiler reads host frames only — a profiled run's simulated
        output must equal the unprofiled run's, bit for bit."""
        from repro.experiments.golden import compute_result, result_digest

        bare = result_digest(compute_result("figure9", duration_us=2_000_000.0))
        with WallClockProfiler(interval_s=0.001):
            profiled = result_digest(compute_result("figure9", duration_us=2_000_000.0))
        assert profiled == bare
