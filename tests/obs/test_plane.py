"""ObservabilityPlane: install/uninstall, span/instant/metric delegation."""

from repro.obs import ObservabilityPlane
from repro.obs.plane import EVENT_CATEGORY, SPAN_CATEGORY
from repro.sim import Environment


class TestInstall:
    def test_env_has_no_plane_by_default(self):
        env = Environment()
        assert getattr(env, "obs", None) is None

    def test_install_binds_env_obs(self):
        env = Environment()
        plane = ObservabilityPlane(env).install()
        assert env.obs is plane
        plane.uninstall()
        assert getattr(env, "obs", None) is None

    def test_uninstall_leaves_other_plane_alone(self):
        env = Environment()
        first = ObservabilityPlane(env).install()
        second = ObservabilityPlane(env).install()
        first.uninstall()  # no longer the bound plane: must not unbind
        assert env.obs is second


class TestSpans:
    def test_begin_end_carries_track(self):
        env = Environment()
        plane = ObservabilityPlane(env).install()
        sp = plane.begin("read", track="disk:sd0", stream="s1", seq=3)
        plane.end(sp, bytes=100)
        begin, end = plane.span_events()
        assert begin.category == SPAN_CATEGORY
        assert begin.name == "read"
        assert begin.fields["track"] == "disk:sd0"
        assert begin.fields["stream"] == "s1"
        assert end.fields["bytes"] == 100

    def test_filtered_category_costs_one_none(self):
        env = Environment()
        plane = ObservabilityPlane(env, categories=["event"]).install()
        sp = plane.begin("read", track="disk:sd0")
        assert sp is None
        plane.end(sp)  # no-op, no unbalanced count
        assert plane.tracer.unbalanced_ends == 0
        assert len(plane.tracer) == 0

    def test_instant_marker(self):
        env = Environment()
        plane = ObservabilityPlane(env).install()
        plane.instant("card_crash", track="card:rd0", card="rd0")
        [e] = plane.tracer.events(category=EVENT_CATEGORY)
        assert e.name == "card_crash"
        assert e.fields["track"] == "card:rd0"


class TestMetricsDelegation:
    def test_count_gauge_observe(self):
        env = Environment()
        plane = ObservabilityPlane(env).install()
        plane.count("frames", stream="s1")
        plane.gauge("depth", 4.0)
        plane.observe("lat_us", 12.5)
        assert plane.registry.value("frames", stream="s1") == 1.0
        assert plane.registry.value("depth") == 4.0
        assert plane.registry.get("lat_us").observations == 1
