"""Bench harness logic that runs without timing anything.

The timed paths (fresh-interpreter children, full digest verification)
are exercised by the CI bench-smoke job; here we pin the pure decision
logic — above all that an incomparable baseline can never yield a
speedup figure.
"""

import pytest

from repro.experiments.bench import QUEUES, WORKLOADS, baseline_comparability


class TestBaselineComparability:
    def test_matching_environment_is_comparable(self):
        base = {"python": "3.11.7", "machine": "x86_64"}
        ok, reason = baseline_comparability(base, python="3.11.7", machine="x86_64")
        assert ok
        assert reason == ""

    def test_python_mismatch_is_incomparable(self):
        base = {"python": "3.11.7", "machine": "x86_64"}
        ok, reason = baseline_comparability(base, python="3.12.1", machine="x86_64")
        assert not ok
        assert "python" in reason
        assert "3.11.7" in reason and "3.12.1" in reason

    def test_machine_mismatch_is_incomparable(self):
        base = {"python": "3.11.7", "machine": "x86_64"}
        ok, reason = baseline_comparability(base, python="3.11.7", machine="aarch64")
        assert not ok
        assert "machine" in reason

    def test_both_mismatched_names_both_fields(self):
        base = {"python": "3.11.7", "machine": "x86_64"}
        ok, reason = baseline_comparability(base, python="3.12.1", machine="aarch64")
        assert not ok
        assert "python" in reason and "machine" in reason

    def test_missing_baseline_fields_are_incomparable(self):
        """A baseline captured before provenance fields existed must not
        silently compare equal."""
        ok, reason = baseline_comparability({}, python="3.11.7", machine="x86_64")
        assert not ok

    def test_no_baseline(self):
        ok, reason = baseline_comparability(None)
        assert not ok
        assert reason == "no baseline"

    def test_checked_in_baseline_has_provenance_fields(self):
        import json

        from repro.experiments.bench import BASELINE_PATH

        baseline = json.loads(BASELINE_PATH.read_text())
        assert "python" in baseline and "machine" in baseline


class TestBenchConstants:
    def test_queue_variants(self):
        assert QUEUES == ("heap", "calendar")

    def test_headline_is_a_workload(self):
        from repro.experiments.bench import HEADLINE

        assert HEADLINE in WORKLOADS
