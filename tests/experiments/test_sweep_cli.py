"""The sweep CLI end to end: artifacts, caching, determinism.

Kept cheap: `sens_costs` is the fastest registry experiment, so the
matrix here is 2 seeds of it — enough to exercise the full path
(job build → pool → cache → merge → artifacts → summary line).
"""

import json

import pytest

from repro.experiments import sweep


def run_sweep(tmp_path, capsys, extra=()):
    argv = [
        "--experiments", "sens_costs",
        "--seeds", "2",
        "--jobs", "1",
        "--cache-dir", str(tmp_path / "cache"),
        "--out", str(tmp_path / "sweep"),
        "--quiet",
        *extra,
    ]
    rc = sweep.main(argv)
    return rc, capsys.readouterr().out


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("sweep-cli")


def test_cold_run_writes_artifacts_and_summary(sweep_dir, capsys):
    rc, out = run_sweep(sweep_dir, capsys)
    assert rc == 0
    assert (sweep_dir / "sweep" / "SWEEP_result.txt").exists()
    assert (sweep_dir / "sweep" / "SWEEP_report.json").exists()
    assert "sweep: 2 jobs" in out
    report = json.loads((sweep_dir / "sweep" / "SWEEP_report.json").read_text())
    assert report["cache"]["misses"] == 2
    assert all(j["status"] == "ran" for j in report["jobs"])
    assert all(j["peak_rss_kb"] > 0 for j in report["jobs"])


def test_warm_run_hits_cache_and_is_byte_identical(sweep_dir, capsys):
    cold_text = (sweep_dir / "sweep" / "SWEEP_result.txt").read_text()
    rc, out = run_sweep(sweep_dir, capsys)
    assert rc == 0
    assert "2 cached" in out and "hit-rate=100%" in out
    assert (sweep_dir / "sweep" / "SWEEP_result.txt").read_text() == cold_text


def test_no_cache_recomputes_but_stays_identical(sweep_dir, capsys):
    warm_text = (sweep_dir / "sweep" / "SWEEP_result.txt").read_text()
    rc, out = run_sweep(sweep_dir, capsys, extra=["--no-cache"])
    assert rc == 0
    assert "0 cached" in out
    assert (sweep_dir / "sweep" / "SWEEP_result.txt").read_text() == warm_text


def test_merged_result_carries_ci_and_provenance(sweep_dir):
    text = (sweep_dir / "sweep" / "SWEEP_result.txt").read_text()
    assert "mean of 2 seeds, 95% CI" in text
    assert text.count("result digest") == 2  # one provenance note per job
    assert "merged digest: " in text


def test_out_none_writes_nothing(tmp_path, capsys):
    rc = sweep.main(
        [
            "--experiments", "sens_costs",
            "--seeds", "1",
            "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", "none",
            "--quiet",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "wrote" not in out
    assert not (tmp_path / "sweep").exists()


def test_job_matrices_shapes():
    jobs = sweep.replicate_jobs(["a", "b"], seeds=3, seed_base=10)
    assert len(jobs) == 6
    assert [j.seed for j in jobs[:3]] == [10, 11, 12]
    sens = sweep.sensitivity_jobs(scales=[1.5, 2.0], seeds=2)
    assert [j.experiment for j in sens] == [
        "sens_costs", "sens_costs", "sens_knockouts", "sens_knockouts"
    ]
    scen = sweep.scenario_jobs()
    assert all(j.experiment in ("chaos", "failover", "cluster") for j in scen)
    assert {j.experiment for j in scen} == {"chaos", "failover", "cluster"}
    assert all(len(j.config["scenarios"]) == 1 for j in scen)
    assert len({j.digest for j in scen}) == len(scen)
    clus = sweep.cluster_jobs(nodes=[2, 3], scenarios=("baseline",))
    assert [j.config["n_nodes"] for j in clus] == [2, 3]
    assert all(j.experiment == "cluster" for j in clus)
