"""The failover experiment: determinism, detection budget, migration."""

from repro.experiments import run_loading_experiment
from repro.experiments.failover import failover, run_failover_scenario
from repro.faults import FAILOVER_SCENARIOS
from repro.sim import S

SHORT_US = 10 * S


class TestScenarioCatalogue:
    def test_campaigns_cover_crash_partition_and_flap(self):
        names = set(FAILOVER_SCENARIOS)
        assert {"baseline", "card-crash", "hb-partition", "card-flap"} <= names

    def test_scenarios_are_well_formed(self):
        for name, sc in FAILOVER_SCENARIOS.items():
            assert sc.name == name
            assert sc.description
            assert 0.0 <= sc.start_frac <= sc.end_frac <= 1.0


class TestDeterminism:
    def test_same_seed_replays_identical_failover(self):
        a = run_failover_scenario("card-crash", duration_us=SHORT_US, seed=7)
        b = run_failover_scenario("card-crash", duration_us=SHORT_US, seed=7)
        # identical migration order, detection time, and violation counts
        assert a.meter.migrated == b.meter.migrated
        assert a.meter.detected_at_us == b.meter.detected_at_us
        assert a.meter.recovered_at_us == b.meter.recovered_at_us
        assert a.violations == b.violations
        assert a.injected == b.injected
        for sid in ("s1", "s2"):
            assert a.delivered_bps(sid, 0.0, 1.0) == b.delivered_bps(sid, 0.0, 1.0)

    def test_rendered_result_is_byte_identical_across_runs(self):
        kw = dict(duration_us=SHORT_US, seed=5, scenarios=["baseline", "card-crash"])
        assert failover(**kw).render() == failover(**kw).render()


class TestControlBaseline:
    def test_control_is_the_plain_figure9_run(self):
        result = failover(duration_us=SHORT_US, seed=7, scenarios=["baseline"])
        plain = run_loading_experiment("ni", "none", duration_us=SHORT_US, seed=7)
        rows = {r.label: r.measured for r in result.rows}
        for sid in ("s1", "s2"):
            assert rows[f"control: {sid} settled bandwidth"] == plain.settled_bandwidth(sid)

    def test_ha_baseline_draws_no_faults(self):
        fr = run_failover_scenario("baseline", duration_us=SHORT_US, seed=7)
        assert fr.injected == 0
        assert fr.meter.fault_at_us is None
        assert fr.meter.migrated == []
        assert all(p.watchdog.state == "alive" for p in fr.service.planes)


class TestCardCrashCampaign:
    def test_detection_within_budget_and_all_streams_migrate(self):
        fr = run_failover_scenario("card-crash", duration_us=SHORT_US, seed=7)
        service, meter = fr.service, fr.meter
        assert service.planes[0].watchdog.state == "dead"
        assert meter.detection_latency_us is not None
        assert meter.detection_latency_us <= service.detection_budget_us
        # every stream checkpointed on the dead card was migrated
        assert meter.migrated == ["s1"]
        assert meter.parked == []
        assert service.runtime_of("s1") is service.runtimes[1]
        # delivery resumed after recovery
        assert fr.delivered_bps("s1", 0.7, 0.95) > 0.0

    def test_partition_is_classified_not_migrated(self):
        fr = run_failover_scenario("hb-partition", duration_us=SHORT_US, seed=7)
        assert fr.meter.partitions >= 1
        assert fr.meter.migrated == []
        assert all(p.watchdog.state == "alive" for p in fr.service.planes)

    def test_flap_inside_the_budget_is_ridden_out(self):
        fr = run_failover_scenario("card-flap", duration_us=SHORT_US, seed=7)
        assert fr.service.runtimes[0].card.crash_count == 1
        assert not fr.service.runtimes[0].card.crashed  # reset happened
        assert fr.meter.migrated == []
        assert fr.service.planes[0].watchdog.state == "alive"
