"""Serialization round-trip: digests must survive to_dict/JSON/from_dict.

This is the contract the result cache and the process-pool boundary both
stand on: a result that crosses either one must digest identically to
the in-process original, bit for bit.
"""

import json
import math

import numpy as np

from repro.experiments.golden import compute_result, result_digest
from repro.experiments.report import ExperimentResult, Row, Series


def roundtrip(result: ExperimentResult) -> ExperimentResult:
    return ExperimentResult.from_dict(
        json.loads(json.dumps(result.to_dict()))
    )


def test_synthetic_result_roundtrips_exactly():
    r = ExperimentResult(exp_id="rt", title="round trip")
    r.add_row("plain", 1.5, "µs", paper=2.0, note="a note")
    r.add_row("awkward float", 0.1 + 0.2, "x")  # 0.30000000000000004
    r.add_row("huge", 1.23456789e18, "bps")
    r.add_row("no paper", 7.0)
    r.series.append(
        Series("s", np.array([0.0, 1e-9, 3.14159]), np.array([1.0, 2.0, 3.0]))
    )
    r.notes.append("note one")
    assert result_digest(roundtrip(r)) == result_digest(r)


def test_nan_series_roundtrips_exactly():
    # NaN is not JSON, but float64 tobytes() in the digest covers it, and
    # Series.to_dict goes through tolist() -> json turns nan into NaN
    # literal only via allow_nan (default True in json.dumps)
    r = ExperimentResult(exp_id="rt-nan", title="nan series")
    r.series.append(Series("gaps", np.array([0.0, 1.0]), np.array([math.nan, 2.0])))
    rt = roundtrip(r)
    assert result_digest(rt) == result_digest(r)
    assert math.isnan(rt.series[0].y[0])


def test_real_experiment_roundtrips_exactly():
    r = compute_result("sens_costs", seed=42)
    assert result_digest(roundtrip(r)) == result_digest(r)


def test_row_values_are_plain_floats():
    """The repr-based digest relies on this: a numpy scalar would repr as
    np.float64(x) and silently fork serial vs parallel digests."""
    r = compute_result("sens_costs", seed=42)
    for row in r.rows:
        assert type(row.measured) is float, row.label


def test_row_dict_shape():
    row = Row(label="l", measured=1.0, unit="u", paper=2.0, note="n")
    d = row.to_dict()
    assert d == {"label": "l", "measured": 1.0, "unit": "u", "paper": 2.0, "note": "n"}
    assert Row.from_dict(d) == row
