"""Figures 6-10 shape checks (reduced duration to keep the suite fast).

The full-length (100 s) runs are exercised by the benchmark harness; here
we verify the qualitative structure the paper reports at 60 simulated
seconds: utilization ordering, host degradation under load, NI immunity,
and the delay ramps.
"""

import numpy as np
import pytest

from repro.experiments import run_loading_experiment
from repro.experiments.figures import LoadedRun
from repro.sim import S

DURATION = 60 * S
# at 60 s the loaded window (starting at 40 s) is shorter; measure its tail
WINDOW = (0.72, 1.0)


@pytest.fixture(scope="module")
def host_none():
    return run_loading_experiment("host", "none", duration_us=DURATION)


@pytest.fixture(scope="module")
def host_45():
    return run_loading_experiment("host", "45%", duration_us=DURATION)


@pytest.fixture(scope="module")
def host_60():
    return run_loading_experiment("host", "60%", duration_us=DURATION)


@pytest.fixture(scope="module")
def ni_none():
    return run_loading_experiment("ni", "none", duration_us=DURATION)


@pytest.fixture(scope="module")
def ni_60():
    return run_loading_experiment("ni", "60%", duration_us=DURATION)


class TestFigure6Shape:
    def test_no_load_baseline_under_20pct(self, host_none):
        assert host_none.meter.average() < 20.0

    def test_utilization_orders_with_load(self, host_none, host_45, host_60):
        a = host_none.meter.average()
        b = host_45.meter.average()
        c = host_60.meter.average()
        assert a < b < c

    def test_60_window_bursts_past_80(self, host_60):
        window_util = host_60.meter.series.mean(45 * S, 60 * S)
        assert window_util > 80.0


class TestFigure7Shape:
    def test_no_load_settles_near_natural_rate(self, host_none):
        bw = host_none.settled_bandwidth("s1", window=WINDOW)
        assert bw == pytest.approx(250_000.0, rel=0.15)

    def test_load_cuts_host_bandwidth_in_order(self, host_none, host_45, host_60):
        bw_n = host_none.settled_bandwidth("s1", window=WINDOW)
        bw_45 = host_45.settled_bandwidth("s1", window=WINDOW)
        bw_60 = host_60.settled_bandwidth("s1", window=WINDOW)
        assert bw_60 < bw_45 <= bw_n * 1.02
        assert bw_60 < 0.8 * bw_n

    def test_loss_tolerance_bounds_worst_case(self, host_60):
        """Drops can halve the stream, not erase it: the 1/2 window means
        every other packet still goes out (possibly late)."""
        st = host_60.service.scheduler.streams["s1"]
        consumed = st.serviced + st.sent_late + st.dropped
        if consumed:
            assert st.dropped / consumed <= 0.55


class TestFigure8Shape:
    def test_delay_ramps_with_backlog(self, host_none):
        ts = host_none.service.engine.queuing_delay_us["s1"]
        values = ts.values
        # later frames wait longer (allow jitter): compare thirds
        first = values[: len(values) // 3].mean()
        last = values[-len(values) // 3 :].mean()
        assert last > first

    def test_load_grows_delays(self, host_none, host_60):
        base = host_none.service.engine.delay_stats["s1"].max
        loaded = host_60.service.engine.delay_stats["s1"].max
        assert loaded > 1.2 * base


class TestFigure9Shape:
    def test_ni_bandwidth_immune_to_load(self, ni_none, ni_60):
        bw_none = ni_none.settled_bandwidth("s1", window=WINDOW)
        bw_60 = ni_60.settled_bandwidth("s1", window=WINDOW)
        assert bw_60 == pytest.approx(bw_none, rel=0.05)

    def test_ni_delivers_both_streams(self, ni_60):
        for sid in ("s1", "s2"):
            assert ni_60.service.reception(sid).frames_received > 100


class TestFigure10Shape:
    def test_ni_delay_immune_to_load(self, ni_none, ni_60):
        base = ni_none.service.engine.delay_stats["s1"].max
        loaded = ni_60.service.engine.delay_stats["s1"].max
        assert loaded == pytest.approx(base, rel=0.10)

    def test_ni_no_drops_no_violations(self, ni_60):
        st = ni_60.service.scheduler.streams["s1"]
        assert st.dropped == 0
        assert st.violations == 0


class TestLoadedRunInterface:
    def test_series_extraction(self, host_none):
        bw = host_none.bandwidth_series("s1")
        delay = host_none.delay_series("s1")
        assert len(bw.x) > 0
        assert len(delay.x) > 0
        assert delay.x_label == "frame # sent"

    def test_invalid_kind_and_level(self):
        with pytest.raises(ValueError):
            run_loading_experiment("gpu", "none", duration_us=1 * S)
        with pytest.raises(ValueError):
            run_loading_experiment("host", "99%", duration_us=1 * S)
