"""Headline overhead comparison and report rendering utilities."""

import numpy as np
import pytest

from repro.experiments import headline, scheduling_overhead
from repro.experiments.report import ExperimentResult, Row, Series
from repro.hw.cpu import I960RD_66, ULTRASPARC_300
from repro.server.streaming import HOST_DWCS_COSTS


@pytest.fixture(scope="module")
def h():
    return headline()


class TestHeadline:
    def test_ni_overhead_about_65us(self, h):
        assert h.row("i960 RD (66 MHz) scheduling overhead").measured == pytest.approx(
            65.0, abs=8.0
        )

    def test_host_overhead_about_50us(self, h):
        assert h.row(
            "UltraSPARC (300 MHz) host scheduling overhead"
        ).measured == pytest.approx(50.0, abs=8.0)

    def test_comparable_despite_clock_gap(self, h):
        ratio = h.row("overhead ratio (NI/host)").measured
        clock = h.row("clock ratio (host/NI)").measured
        assert ratio < 2.0  # "comparable"
        assert clock > 4.0  # "a much slower processor (factor of 4)"

    def test_overhead_under_half_ethernet_frame_time(self, h):
        """Paper: 65us corresponds to ~half an Ethernet frame time (~120us)."""
        ni = h.row("i960 RD (66 MHz) scheduling overhead").measured
        assert ni < 120.0

    def test_scheduling_overhead_monotone_in_costs(self):
        light = scheduling_overhead(ULTRASPARC_300)
        heavy = scheduling_overhead(ULTRASPARC_300, costs=HOST_DWCS_COSTS)
        assert heavy > light


class TestReportRendering:
    def _result(self):
        r = ExperimentResult(exp_id="T", title="demo")
        r.add_row("alpha", 10.0, "µs", paper=9.5)
        r.add_row("beta", 3.0, "ms")
        r.series.append(Series("s", np.array([0.0, 1.0, 2.0]), np.array([1.0, 4.0, 2.0])))
        r.notes.append("a note")
        return r

    def test_render_includes_rows_series_notes(self):
        text = self._result().render()
        assert "alpha" in text and "9.50" in text
        assert "beta" in text and text.count("-") > 0  # missing paper value
        assert "series 's'" in text
        assert "note: a note" in text

    def test_row_ratio(self):
        r = Row("x", measured=11.0, paper=10.0)
        assert r.ratio == pytest.approx(1.1)
        assert np.isnan(Row("y", measured=1.0).ratio)

    def test_row_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            self._result().row("gamma")

    def test_ascii_plot(self):
        plot = self._result().ascii_plot("s", width=20, height=5)
        assert "*" in plot
        assert plot.count("|") >= 5

    def test_ascii_plot_missing_series(self):
        with pytest.raises(KeyError):
            self._result().ascii_plot("nope")

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("bad", np.array([1.0]), np.array([1.0, 2.0]))
