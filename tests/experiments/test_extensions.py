"""Extension experiments: stream scaling, jitter, admission sweep."""

import pytest

from repro.experiments import admission_sweep, jitter_comparison, stream_scaling
from repro.sim import S


@pytest.fixture(scope="module")
def scaling():
    return stream_scaling(stream_counts=(2, 8), duration_us=25 * S)


class TestStreamScaling:
    def test_every_stream_gets_its_rate(self, scaling):
        for n in (2, 8):
            row = scaling.row(f"mean per-stream bandwidth (n={n})")
            assert row.measured == pytest.approx(200_000.0, rel=0.10)

    def test_fairness_near_one(self, scaling):
        for n in (2, 8):
            assert scaling.row(f"Jain fairness index (n={n})").measured > 0.98

    def test_decision_cost_grows_with_n(self, scaling):
        small = scaling.row("per-frame scheduling time (n=2)").measured
        big = scaling.row("per-frame scheduling time (n=8)").measured
        assert big > small

    def test_series_present(self, scaling):
        assert any(s.name == "decision-cost" for s in scaling.series)


class TestAdmissionSweep:
    def test_lossier_classes_admit_more(self):
        result = admission_sweep()
        zero = result.row("admitted streams (zero-loss 30fps)").measured
        quarter = result.row("admitted streams (1/4-loss 30fps)").measured
        half = result.row("admitted streams (1/2-loss 30fps)").measured
        assert zero < quarter < half

    def test_longer_periods_admit_more(self):
        result = admission_sweep()
        fast = result.row("admitted streams (1/2-loss 30fps)").measured
        slow = result.row("admitted streams (1/2-loss 4fps)").measured
        assert slow > 5 * fast

    def test_counts_match_closed_form(self):
        result = admission_sweep(utilization_bound=0.85, service_time_us=95.0)
        # zero-loss 30fps: share = 95/33333 each
        expected = int(0.85 / (95.0 / 33_333.0))
        assert result.row("admitted streams (zero-loss 30fps)").measured == expected


class TestJitter:
    def test_ni_jitter_no_worse_than_host_under_load(self):
        result = jitter_comparison(duration_us=60 * S)
        host = result.row("host: inter-arrival stdev").measured
        ni = result.row("ni: inter-arrival stdev").measured
        assert ni <= host


class TestNIBalance:
    def test_second_scheduler_ni_raises_the_ceiling(self):
        from repro.experiments import ni_balance

        result = ni_balance(stream_counts=(8, 32), duration_us=12 * S)
        # underloaded: one card suffices
        one_small = result.row("delivered, 1 scheduler NI (n=8)").measured
        two_small = result.row("delivered, 2 scheduler NIs (n=8)").measured
        assert one_small == pytest.approx(two_small, rel=0.05)
        assert one_small == pytest.approx(8_000_000.0, rel=0.10)
        # overloaded: the second card roughly doubles delivery
        one_big = result.row("delivered, 1 scheduler NI (n=32)").measured
        two_big = result.row("delivered, 2 scheduler NIs (n=32)").measured
        assert two_big > 1.6 * one_big
        # and the single card's ceiling binds well below offered load
        assert one_big < 0.6 * result.row("offered (n=32)").measured
