"""The transport comparison experiment: determinism, rows, registry."""

import pytest

from repro.experiments import REGISTRY
from repro.experiments import golden
from repro.experiments.sweep import transport_jobs
from repro.experiments.transport import TRANSPORT_LOAD_LEVEL, transport

SHORT_US = 3_000_000.0


@pytest.fixture(scope="module")
def result():
    return transport(duration_us=SHORT_US, seed=42)


class TestRows:
    def test_every_transport_and_kind_reports(self, result):
        rows = {r.label for r in result.rows}
        for tname in ("udp", "tcp", "ttp"):
            for kind in ("host", "ni"):
                assert f"{tname}/{kind}: frames delivered" in rows
            assert f"{tname}: NI/host delivery ratio" in rows

    def test_reliable_transports_report_ledger_rows(self, result):
        rows = {r.label: r.measured for r in result.rows}
        for tname in ("tcp", "ttp"):
            for kind in ("host", "ni"):
                assert rows[f"{tname}/{kind}: records unaccounted"] == 0.0
                sent = rows[f"{tname}/{kind}: records sent"]
                delivered = rows[f"{tname}/{kind}: frames delivered"]
                assert sent == delivered  # clean network: nothing pending
        # the raw path keeps no books
        assert "udp/host: records sent" not in rows

    def test_udp_rows_match_the_raw_path(self, result):
        """The comparison's udp column IS the shipped path: same loading
        cell, same seed => same delivered-frame count as a direct run."""
        from repro.experiments.figures import run_loading_experiment

        run = run_loading_experiment(
            "ni", TRANSPORT_LOAD_LEVEL, duration_us=SHORT_US, seed=42
        )
        direct = float(sum(c.total_frames for c in run.service.clients.values()))
        rows = {r.label: r.measured for r in result.rows}
        assert rows["udp/ni: frames delivered"] == direct


class TestDeterminism:
    def test_double_run_digest_identical(self, result):
        again = transport(duration_us=SHORT_US, seed=42)
        assert golden.result_digest(result) == golden.result_digest(again)

    def test_transport_subset_argument(self):
        sub = transport(duration_us=SHORT_US, seed=42, transports=["udp"])
        names = {r.label for r in sub.rows}
        assert any(n.startswith("udp/") for n in names)
        assert not any(n.startswith("tcp/") or n.startswith("ttp/") for n in names)

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="valid transports"):
            transport(duration_us=SHORT_US, seed=42, transports=["quic"])


class TestRegistration:
    def test_in_registry(self):
        assert REGISTRY["transport"] is transport

    def test_in_golden_id_sets(self):
        assert "transport" in golden.GOLDEN_IDS
        assert "transport" in golden.SHORT_IDS

    def test_sweep_jobs_cover_matrix_and_chaos(self):
        jobs = transport_jobs()
        exps = [(j.experiment, j.config) for j in jobs]
        assert ("transport", {"transports": ["udp"]}) in exps
        assert ("transport", {"transports": ["ttp"]}) in exps
        assert any(
            e == "chaos" and c.get("transport") == "ttp" for e, c in exps
        )
        # the raw path's chaos column is the existing golden chaos run
        assert not any(
            e == "chaos" and c.get("transport") == "udp" for e, c in exps
        )

    def test_sweep_jobs_reject_unknown_transport(self):
        with pytest.raises(ValueError, match="valid transports"):
            transport_jobs(transports=["quic"])
