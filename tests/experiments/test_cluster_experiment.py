"""The cluster experiment: scenarios, determinism, CLI surface."""

import pytest

from repro.experiments.__main__ import main
from repro.experiments.cluster import (
    cluster_stream_specs,
    run_cluster_scenario,
)

SHORT_US = 10_000_000.0


class TestRunner:
    def test_unknown_scenario_names_the_valid_set(self):
        with pytest.raises(ValueError) as err:
            run_cluster_scenario("meteor-strike", duration_us=SHORT_US)
        message = str(err.value)
        assert "meteor-strike" in message
        for name in ("baseline", "node-crash", "fd-partition", "brownout"):
            assert name in message

    def test_baseline_places_every_stream(self):
        run = run_cluster_scenario("baseline", duration_us=SHORT_US)
        specs = cluster_stream_specs(3)
        census = run.plane.account()
        # initial wave + the two late-wave streams, nothing parked or lost
        assert census["placed"] == len(specs) + 2
        assert census["parked"] == 0
        assert census["lost"] == 0
        assert run.plane.account()["unaccounted"] == 0
        for spec in specs:
            assert run.settled_bandwidth(spec.stream_id) > 0.0

    def test_node_crash_detection_and_reaccounting(self):
        """The acceptance bar, enforced through the SLO engine's verdicts:
        detection < 800 ms, zero unaccounted, at-most-once placement."""
        run = run_cluster_scenario("node-crash", duration_us=SHORT_US)
        assert run.slo is not None
        run.slo.require("detection-budget")
        run.slo.require("mttr-budget")
        run.slo.require("zero-unaccounted")
        run.slo.require("no-double-place")
        run.slo.require("rpc-at-most-once")
        # a crash run actually measures its budgets (not SKIPPED/vacuous)
        assert run.slo.verdict("detection-budget").status == "PASS"
        assert run.slo.verdict("detection-budget").measured < 800.0
        dead = run.plane.nodes[1].name
        assert run.plane.ledger.placed_count(dead) == 0
        assert run.plane.meter.migrated  # somebody actually moved

    def test_scenarios_are_deterministic(self):
        """Same seed ⇒ identical migration order, detection time, census."""
        runs = [
            run_cluster_scenario("node-crash", duration_us=SHORT_US, seed=42)
            for _ in range(2)
        ]
        a, b = (r.plane for r in runs)
        assert a.meter.detection_latency_us == b.meter.detection_latency_us
        assert a.meter.migrated == b.meter.migrated
        assert a.meter.parked == b.meter.parked
        assert a.account() == b.account()
        assert a.rpc.telemetry() == b.rpc.telemetry()
        sids = [s.stream_id for s in cluster_stream_specs(3)]
        assert {s: a.ledger.node_of(s) for s in sids} == {
            s: b.ledger.node_of(s) for s in sids
        }

    def test_partition_is_classified_not_migrated(self):
        run = run_cluster_scenario("fd-partition", duration_us=SHORT_US)
        assert run.plane.meter.partitions >= 1
        assert run.plane.meter.migrated == []
        run.slo.require("zero-unaccounted")


class TestInstrumentation:
    def test_instrumentation_is_bit_identical(self):
        """The tentpole invariant: the observability plane must not perturb
        simulated time. An instrumented run and an uninstrumented run of
        the same scenario agree on every simulated-domain observable."""
        on = run_cluster_scenario("node-crash", duration_us=SHORT_US, instrument=True)
        off = run_cluster_scenario("node-crash", duration_us=SHORT_US, instrument=False)
        assert on.obs is not None and off.obs is None
        a, b = on.plane, off.plane
        assert a.meter.fault_at_us == b.meter.fault_at_us
        assert a.meter.detected_at_us == b.meter.detected_at_us
        assert a.meter.recovered_at_us == b.meter.recovered_at_us
        assert a.meter.migrated == b.meter.migrated
        assert a.account() == b.account()
        assert a.rpc.telemetry() == b.rpc.telemetry()
        assert a.total_violations == b.total_violations
        sids = [s.stream_id for s in cluster_stream_specs(3)]
        for sid in sids:
            assert on.settled_bandwidth(sid) == off.settled_bandwidth(sid)

    def test_trace_stitches_a_stream_lifecycle(self):
        """Cross-node stitching: a migrated stream's admit and failover
        legs share one correlation id and land on one ``stream:`` track."""
        run = run_cluster_scenario("node-crash", duration_us=SHORT_US)
        victim = run.plane.meter.migrated[0]
        track = f"stream:{victim}"
        events = [
            e
            for e in run.obs.tracer.events()
            if e.fields.get("track") == track and "corr" in e.fields
        ]
        corrs = {e.fields["corr"] for e in events}
        assert corrs, f"no correlated events on {track}"
        names = {e.name for e in events}
        assert "admit" in names
        assert "failover" in names or "migrate" in names

    def test_slo_report_is_deterministic(self):
        from repro.obs import render_slo_report

        a = run_cluster_scenario("node-crash", duration_us=SHORT_US, seed=42)
        b = run_cluster_scenario("node-crash", duration_us=SHORT_US, seed=42)
        assert render_slo_report(a.slo) == render_slo_report(b.slo)

    def test_trace_ring_kept_everything(self):
        run = run_cluster_scenario("node-crash", duration_us=SHORT_US)
        run.slo.require("trace-complete")
        run.slo.require("trace-balanced")
        assert run.obs.tracer.discarded == 0


class TestCLI:
    def test_cluster_listed_in_registry(self, capsys):
        assert main(["--list"]) == 0
        assert "cluster" in capsys.readouterr().out

    def test_list_scenarios_per_experiment(self, capsys):
        assert main(["--list", "cluster", "chaos", "failover"]) == 0
        out = capsys.readouterr().out
        assert "cluster:" in out
        assert "node-crash" in out
        assert "fd-partition" in out
        assert "brownout" in out
        # chaos + failover enumerate too (satellite: --list for all three)
        assert "chaos:" in out
        assert "failover:" in out

    def test_list_non_scenario_experiment(self, capsys):
        assert main(["--list", "table5"]) == 0
        assert "not scenario-driven" in capsys.readouterr().out

    def test_scenarios_flag_runs_the_subset(self, capsys):
        assert main(["cluster", "--scenarios", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "node-crash: detection latency" not in out

    def test_bad_scenario_name_is_a_cli_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", "--scenarios", "meteor-strike"])
        err = capsys.readouterr().err
        assert "meteor-strike" in err
        assert "baseline" in err

    def test_scenarios_flag_rejected_for_non_scenario_experiment(self):
        with pytest.raises(SystemExit):
            main(["table5", "--scenarios", "baseline"])
