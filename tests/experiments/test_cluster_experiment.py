"""The cluster experiment: scenarios, determinism, CLI surface."""

import pytest

from repro.experiments.__main__ import main
from repro.experiments.cluster import (
    cluster_stream_specs,
    run_cluster_scenario,
)

SHORT_US = 10_000_000.0


class TestRunner:
    def test_unknown_scenario_names_the_valid_set(self):
        with pytest.raises(ValueError) as err:
            run_cluster_scenario("meteor-strike", duration_us=SHORT_US)
        message = str(err.value)
        assert "meteor-strike" in message
        for name in ("baseline", "node-crash", "fd-partition", "brownout"):
            assert name in message

    def test_baseline_places_every_stream(self):
        run = run_cluster_scenario("baseline", duration_us=SHORT_US)
        specs = cluster_stream_specs(3)
        census = run.plane.account()
        # initial wave + the two late-wave streams, nothing parked or lost
        assert census["placed"] == len(specs) + 2
        assert census["parked"] == 0
        assert census["lost"] == 0
        assert run.plane.account()["unaccounted"] == 0
        for spec in specs:
            assert run.settled_bandwidth(spec.stream_id) > 0.0

    def test_node_crash_detection_and_reaccounting(self):
        """The acceptance bar: detection < 800 ms, zero unaccounted."""
        run = run_cluster_scenario("node-crash", duration_us=SHORT_US)
        meter = run.plane.meter
        assert meter.detection_latency_us is not None
        assert meter.detection_latency_us < 800_000.0
        assert meter.recovered_at_us is not None
        assert run.plane.account()["unaccounted"] == 0
        dead = run.plane.nodes[1].name
        assert run.plane.ledger.placed_count(dead) == 0
        assert meter.migrated  # somebody actually moved

    def test_scenarios_are_deterministic(self):
        """Same seed ⇒ identical migration order, detection time, census."""
        runs = [
            run_cluster_scenario("node-crash", duration_us=SHORT_US, seed=42)
            for _ in range(2)
        ]
        a, b = (r.plane for r in runs)
        assert a.meter.detection_latency_us == b.meter.detection_latency_us
        assert a.meter.migrated == b.meter.migrated
        assert a.meter.parked == b.meter.parked
        assert a.account() == b.account()
        assert a.rpc.telemetry() == b.rpc.telemetry()
        sids = [s.stream_id for s in cluster_stream_specs(3)]
        assert {s: a.ledger.node_of(s) for s in sids} == {
            s: b.ledger.node_of(s) for s in sids
        }

    def test_partition_is_classified_not_migrated(self):
        run = run_cluster_scenario("fd-partition", duration_us=SHORT_US)
        assert run.plane.meter.partitions >= 1
        assert run.plane.meter.migrated == []
        assert run.plane.account()["unaccounted"] == 0


class TestCLI:
    def test_cluster_listed_in_registry(self, capsys):
        assert main(["--list"]) == 0
        assert "cluster" in capsys.readouterr().out

    def test_list_scenarios_per_experiment(self, capsys):
        assert main(["--list", "cluster", "chaos", "failover"]) == 0
        out = capsys.readouterr().out
        assert "cluster:" in out
        assert "node-crash" in out
        assert "fd-partition" in out
        assert "brownout" in out
        # chaos + failover enumerate too (satellite: --list for all three)
        assert "chaos:" in out
        assert "failover:" in out

    def test_list_non_scenario_experiment(self, capsys):
        assert main(["--list", "table5"]) == 0
        assert "not scenario-driven" in capsys.readouterr().out

    def test_scenarios_flag_runs_the_subset(self, capsys):
        assert main(["cluster", "--scenarios", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "node-crash: detection latency" not in out

    def test_bad_scenario_name_is_a_cli_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["cluster", "--scenarios", "meteor-strike"])
        err = capsys.readouterr().err
        assert "meteor-strike" in err
        assert "baseline" in err

    def test_scenarios_flag_rejected_for_non_scenario_experiment(self):
        with pytest.raises(SystemExit):
            main(["table5", "--scenarios", "baseline"])
