"""The python -m repro.experiments command-line runner."""

import pytest

from repro.experiments.__main__ import main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "figure10" in out
    assert "ext_ni_balance" in out


def test_run_selected(capsys):
    assert main(["table5"]) == 0
    out = capsys.readouterr().out
    assert "PCI Card-to-Card" in out
    assert "66.27" in out


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["not_a_table"])


def test_plots_artifacts(tmp_path, capsys):
    assert main(["table5", "--plots", str(tmp_path)]) == 0
    artifact = tmp_path / "table5.txt"
    assert artifact.exists()
    text = artifact.read_text()
    assert "PCI Card-to-Card" in text


def test_plots_include_ascii_series(tmp_path, capsys):
    assert main(["figure6", "--plots", str(tmp_path)]) == 0
    text = (tmp_path / "figure6.txt").read_text()
    assert "util:none" in text
    assert "*" in text  # a plotted point


class TestTransportFlag:
    def test_list_includes_transport(self, capsys):
        assert main(["--list"]) == 0
        assert "transport" in capsys.readouterr().out

    def test_unknown_transport_names_valid_set(self, capsys):
        with pytest.raises(SystemExit):
            main(["transport", "--transport", "quic"])
        err = capsys.readouterr().err
        assert "unknown transport 'quic'" in err
        assert "valid transports: tcp, ttp, udp" in err

    def test_multi_transport_rejected_for_single_transport_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--transport", "udp,ttp"])
        assert "takes a single --transport" in capsys.readouterr().err

    def test_transport_flag_rejected_where_unsupported(self, capsys):
        with pytest.raises(SystemExit):
            main(["table5", "--transport", "ttp"])
        assert "does not take --transport" in capsys.readouterr().err
