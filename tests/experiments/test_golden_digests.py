"""Golden-trace regression tests.

The kernel fast-path work claims bit-identical behaviour; these tests hold
it to that. The ``short`` digest set (figure9 / chaos / failover at 10
simulated seconds, seed 42) is *recomputed on every tier-1 run* and
compared byte-for-byte against the checked-in ``golden_digests.json``. The
``full`` set is too slow for tier-1 — the bench harness
(``python -m repro.experiments bench``) verifies it — so here we only
check its shape.

If one of these fails after an *intentional* behaviour change, refresh
with::

    PYTHONPATH=src python -m repro.experiments.golden --refresh short
"""

import pytest

from repro.experiments import golden
from repro.sim import Environment
from repro.sim.trace import Tracer


# -- checked-in digest file shape ------------------------------------------


class TestGoldenFile:
    def test_both_sections_present(self):
        goldens = golden.load_goldens()
        assert set(goldens) >= {"short", "full"}

    def test_short_section_covers_short_ids(self):
        goldens = golden.load_goldens()
        assert set(goldens["short"]["digests"]) == set(golden.SHORT_IDS)
        assert goldens["short"]["seed"] == 42
        assert goldens["short"]["duration_us"] == golden.SHORT_DURATION_US

    def test_full_section_covers_all_golden_ids(self):
        goldens = golden.load_goldens()
        assert set(goldens["full"]["digests"]) == set(golden.GOLDEN_IDS)
        assert goldens["full"]["seed"] == 42

    def test_digests_are_sha256_hex(self):
        goldens = golden.load_goldens()
        for section in ("short", "full"):
            for name, digest in goldens[section]["digests"].items():
                assert len(digest) == 64, name
                int(digest, 16)  # raises on non-hex


# -- the regression proper: recompute the short set --------------------------


@pytest.mark.parametrize("name", golden.SHORT_IDS)
def test_short_digest_is_byte_identical(name):
    """Recompute one short-set experiment and compare to the pinned digest.

    ``out_dir=None`` matches how the digests were captured: the digest
    covers the result object, never exporter side effects.
    """
    goldens = golden.load_goldens()
    want = goldens["short"]["digests"][name]
    got = golden.compute_digest(
        name, seed=42, duration_us=golden.SHORT_DURATION_US, out_dir=None
    )
    assert got == want, (
        f"{name} drifted from its golden digest — simulated behaviour "
        "changed. If intentional, refresh with "
        "`python -m repro.experiments.golden --refresh short`."
    )


def test_compute_digest_is_deterministic():
    """Two in-process runs of the same experiment produce the same digest."""
    kwargs = dict(seed=42, duration_us=golden.SHORT_DURATION_US, out_dir=None)
    assert golden.compute_digest("figure9", **kwargs) == golden.compute_digest(
        "figure9", **kwargs
    )


# -- trace_digest ------------------------------------------------------------


def _traced_run(order):
    """A tiny deterministic sim emitting trace events in a given order."""
    env = Environment()
    tracer = Tracer(env)

    def emitter(label, delay):
        yield env.timeout(delay)
        tracer.emit("test", label, step=delay)

    for label, delay in order:
        env.process(emitter(label, delay))
    env.run()
    return tracer


class TestTraceDigest:
    EVENTS = [("a", 10.0), ("b", 20.0), ("c", 30.0)]

    def test_deterministic_across_runs(self):
        d1 = golden.trace_digest(_traced_run(self.EVENTS))
        d2 = golden.trace_digest(_traced_run(self.EVENTS))
        assert d1 == d2

    def test_insensitive_to_emission_order(self):
        """Same events, different spawn (= emission) order: same digest."""
        d1 = golden.trace_digest(_traced_run(self.EVENTS))
        d2 = golden.trace_digest(_traced_run(list(reversed(self.EVENTS))))
        assert d1 == d2

    def test_sensitive_to_timestamps(self):
        shifted = [(label, delay + 1.0) for label, delay in self.EVENTS]
        assert golden.trace_digest(_traced_run(self.EVENTS)) != golden.trace_digest(
            _traced_run(shifted)
        )

    def test_sensitive_to_field_values(self):
        env = Environment()
        t1, t2 = Tracer(env), Tracer(env)
        t1.emit("test", "x", value=1)
        t2.emit("test", "x", value=2)
        assert golden.trace_digest(t1) != golden.trace_digest(t2)

    def test_empty_tracers_agree(self):
        env = Environment()
        assert golden.trace_digest(Tracer(env)) == golden.trace_digest(Tracer(env))
