"""Tables 1-5 reproduce the paper's cells within tolerance."""

import pytest

from repro.experiments import table1, table2, table3, table4, table5


@pytest.fixture(scope="module")
def t1():
    return table1()


@pytest.fixture(scope="module")
def t2():
    return table2()


@pytest.fixture(scope="module")
def t3():
    return table3()


@pytest.fixture(scope="module")
def t4():
    return table4(transfers=200)


@pytest.fixture(scope="module")
def t5():
    return table5()


def assert_all_rows_close(result, rel):
    for row in result.rows:
        if row.paper is None:
            continue
        assert row.measured == pytest.approx(row.paper, rel=rel), (
            f"{result.exp_id} {row.label}: measured {row.measured:.2f} vs "
            f"paper {row.paper:.2f}"
        )


class TestTable1:
    def test_all_cells_within_10_percent(self, t1):
        assert_all_rows_close(t1, rel=0.10)

    def test_software_fp_penalty_about_20us(self, t1):
        penalty = (
            t1.row("Avg frame Sched time (Software FP)").measured
            - t1.row("Avg frame Sched time (Fixed Point)").measured
        )
        assert penalty == pytest.approx(21.19, abs=6.0)  # paper: 129.67-108.48

    def test_scheduler_overhead_fixed_point(self, t1):
        overhead = (
            t1.row("Avg frame Sched time (Fixed Point)").measured
            - t1.row("Avg frame time w/o Scheduler (Fixed Point)").measured
        )
        assert overhead == pytest.approx(78.13, abs=10.0)  # paper ~75-78


class TestTable2:
    def test_all_cells_within_10_percent(self, t2):
        assert_all_rows_close(t2, rel=0.10)

    def test_cache_saves_about_14us_per_frame(self, t1, t2):
        for build in ("Software FP", "Fixed Point"):
            saving = (
                t1.row(f"Avg frame Sched time ({build})").measured
                - t2.row(f"Avg frame Sched time ({build})").measured
            )
            assert saving == pytest.approx(14.2, abs=6.0)  # paper: 14.47/13.88

    def test_scheduler_overhead_66_82us(self, t2):
        """Paper: 'a scheduler overhead of ~66.82us' for cache-on fixed point."""
        overhead = (
            t2.row("Avg frame Sched time (Fixed Point)").measured
            - t2.row("Avg frame time w/o Scheduler (Fixed Point)").measured
        )
        assert overhead == pytest.approx(66.82, abs=10.0)


class TestTable3:
    def test_all_cells_within_10_percent(self, t3):
        assert_all_rows_close(t3, rel=0.10)

    def test_hardware_queue_comparable_to_memory_rings(self, t2, t3):
        """Paper: 'results in Table 3 are comparable to ... Table 2'."""
        mem = t2.row("Avg frame Sched time (Fixed Point)").measured
        hw = t3.row("Avg frame Sched time (Fixed Point)").measured
        assert hw == pytest.approx(mem, rel=0.15)


class TestTable4:
    def test_all_cells_within_tolerance(self, t4):
        assert_all_rows_close(t4, rel=0.20)

    def test_ufs_much_faster_than_vxworks_fs(self, t4):
        ufs = t4.row("I: Disk-Host CPU-I/O Bus-Network (ufs)").measured
        dosfs = t4.row("I: Disk-Host CPU-I/O Bus-Network (VxWorks fs)").measured
        assert dosfs > 5 * ufs

    def test_path_b_within_tens_of_us_of_path_c(self, t4):
        """Paper: 'the difference is ~0.015ms' (PCI arbitration + sync)."""
        ii = t4.row("II: NI Disk-NI CPU-Network").measured
        iii = t4.row("III: Disk-I/O Bus-NI CPU-Network").measured
        assert 0.0 < iii - ii < 0.05  # ms

    def test_disk_component_dominates_ni_paths(self, t4):
        disk = t4.row("III component: disk").measured
        total = t4.row("III: Disk-I/O Bus-NI CPU-Network").measured
        assert disk / total > 0.6


class TestTable5:
    def test_all_cells_within_5_percent(self, t5):
        assert_all_rows_close(t5, rel=0.05)

    def test_render_contains_all_rows(self, t5):
        text = t5.render()
        assert "MPEG File Transfer by DMA" in text
        assert "Memory Word Read (PIO)" in text
