"""The observe runner: hop coverage, determinism, zero perturbation."""

import json

import pytest

from repro.experiments import run_loading_experiment
from repro.experiments.observe import observe, run_observed
from repro.sim import S

SHORT_US = 4 * S


@pytest.fixture(scope="module")
def host_run():
    return run_observed("host", duration_us=SHORT_US, seed=7)


@pytest.fixture(scope="module")
def ni_run():
    return run_observed("ni", duration_us=SHORT_US, seed=7)


class TestHopCoverage:
    def test_host_path_hops(self, host_run):
        hops = set(host_run.breakdown.hops())
        # host datapath: disk read → DMA to host → segmentation →
        # scheduler queue → dispatch → host stack → bridge to NIC → wire
        assert {"read", "xfer", "seg", "squeue", "dispatch",
                "stack", "txbridge", "wire"} <= hops

    def test_ni_path_hops(self, ni_run):
        hops = set(ni_run.breakdown.hops())
        # NI datapath: disk read → card memory wait → peer DMA →
        # on-card queue → dispatch → card stack → wire (no host bridge hop)
        assert {"read", "memwait", "xfer", "squeue", "dispatch",
                "stack", "wire"} <= hops
        assert "txbridge" not in hops

    def test_both_streams_observed(self, host_run, ni_run):
        assert host_run.breakdown.streams() == ["s1", "s2"]
        assert ni_run.breakdown.streams() == ["s1", "s2"]

    def test_frames_dispatched_counted(self, ni_run):
        reg = ni_run.plane.registry
        assert reg.value("engine.frames_dispatched", stream="s1") > 0
        # hw-level activity lands in the same registry
        assert {"net.frames_sent", "disk.bytes_read", "bus.bytes"} <= set(reg.names())

    def test_ring_kept_everything(self, host_run, ni_run):
        assert host_run.plane.tracer.discarded == 0
        assert ni_run.plane.tracer.discarded == 0


class TestZeroPerturbation:
    def test_instrumented_run_delivers_identical_bytes(self, ni_run):
        base = run_loading_experiment("ni", "none", duration_us=SHORT_US, seed=7)
        for sid in ("s1", "s2"):
            b = base.service.reception(sid).mean_bandwidth_bps(0, SHORT_US)
            i = ni_run.run.service.reception(sid).mean_bandwidth_bps(0, SHORT_US)
            assert b == i
        assert (base.service.engine.scheduler.stats.violations
                == ni_run.run.service.engine.scheduler.stats.violations)


class TestDeterminism:
    def test_rendered_result_byte_identical(self, tmp_path):
        kw = dict(duration_us=SHORT_US, seed=5, kinds=("ni",))
        a = observe(out_dir=str(tmp_path / "a"), **kw)
        b = observe(out_dir=str(tmp_path / "b"), **kw)
        # stdout modulo the artifact-directory note
        strip = lambda r: [n for n in r.render().splitlines() if "artifacts in" not in n]
        assert strip(a) == strip(b)
        for name in ("trace_ni.json", "events_ni.jsonl",
                     "breakdown_ni.csv", "metrics_ni.json"):
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name).read_bytes()

    def test_trace_artifact_is_valid_chrome_trace(self, tmp_path):
        observe(duration_us=SHORT_US, seed=5, kinds=("ni",),
                out_dir=str(tmp_path / "o"))
        doc = json.loads((tmp_path / "o" / "trace_ni.json").read_text())
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X"} <= phases
        # every event resolves to a named track
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "M"}
        assert pids
