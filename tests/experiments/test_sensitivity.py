"""Sensitivity and knockout experiments behave as CALIBRATION.md claims."""

import pytest

from repro.experiments import cost_sensitivity, mechanism_knockouts
from repro.sim import S


@pytest.fixture(scope="module")
def costs():
    return cost_sensitivity()


class TestCostSensitivity:
    def test_fp_constant_moves_only_the_fp_build(self, costs):
        moved_soft = costs.row(
            "software-FP cell under x1.5 fp_emulation_cycles"
        ).measured
        unchanged_fixed = costs.row(
            "fixed-point cell under x1.5 fp_emulation_cycles"
        ).measured
        base = costs.row("baseline avg frame (fixed, cache off)").measured
        assert moved_soft > base + 5.0
        assert unchanged_fixed == pytest.approx(base, abs=0.01)

    def test_uncached_memory_constant_barely_touches_cached_cell(self, costs):
        off = costs.row("cache-off cell under x1.5 mem_uncached_cycles").measured
        on = costs.row("cache-on cell under x1.5 mem_uncached_cycles").measured
        base = costs.row("baseline avg frame (fixed, cache off)").measured
        assert off > base + 5.0
        assert on < off  # the cache keeps absorbing most of the increase

    def test_decision_base_moves_the_with_scheduler_cell(self, costs):
        bumped = costs.row("cache-off cell under x1.5 decision_base").measured
        base = costs.row("baseline avg frame (fixed, cache off)").measured
        # +50% of 2570 int ops at 66 MHz ≈ +19.5 µs, linearly
        assert bumped - base == pytest.approx(0.5 * 2570 / 66.0, rel=0.05)


class TestKnockouts:
    def test_priority_decay_is_the_necessary_mechanism(self):
        result = mechanism_knockouts(duration_us=50 * S)
        full = result.row("full model (both mechanisms)").measured
        fresh = result.row("priority decay knocked out").measured
        # degradation present with the full model, gone with fresh priority
        assert full < 0.75 * fresh
        assert fresh == pytest.approx(250_000.0, rel=0.15)

    def test_seed_moves_the_workload(self):
        a = mechanism_knockouts(duration_us=20 * S, seed=0)
        b = mechanism_knockouts(duration_us=20 * S, seed=1)
        again = mechanism_knockouts(duration_us=20 * S, seed=0)
        label = "full model (both mechanisms)"
        assert a.row(label).measured == again.row(label).measured
        assert a.row(label).measured != b.row(label).measured


class TestSeedPlumbing:
    def test_cost_sensitivity_is_seed_invariant_by_construction(self, costs):
        """The microbench drains deterministic pre-filled rings, so a
        different seed must not move any cell — the explicit plumbing is
        for honest sweep cache keys, not for variance."""
        from repro.experiments.golden import result_digest

        other = cost_sensitivity(seed=123)
        for row in costs.rows:
            assert other.row(row.label).measured == row.measured
        # digest-identical too: notes and labels carry no seed leakage
        assert result_digest(other) == result_digest(costs)
