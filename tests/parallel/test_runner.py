"""SweepRunner: fidelity, determinism, and failure containment.

The pool tests use the dotted-path experiments in
``tests.parallel.crashers`` — tiny cells that misbehave on command —
because a spawn-fresh worker can import them by name, and because real
experiments would make every pool round-trip pay a full simulation.
"""

import pytest

from repro.experiments import golden
from repro.parallel import Job, ResultCache, SweepRunner
from repro.parallel.worker import run_job

OK = "tests.parallel.crashers:ok"
BOOM = "tests.parallel.crashers:boom"
DIE = "tests.parallel.crashers:die"
HANG = "tests.parallel.crashers:hang"
SLOW = "tests.parallel.crashers:slow"
FLAKY = "tests.parallel.crashers:flaky"


def ok_jobs(n=3):
    return [Job(experiment=OK, seed=s) for s in range(n)]


class TestWorkerFidelity:
    def test_roundtrip_matches_in_process_golden_digest(self):
        """A worker-computed result digests identically to the in-process
        path the golden suite uses — the core serial==parallel claim."""
        payload = run_job({"job": Job(experiment="sens_costs", seed=42).canonical()})
        assert payload["ok"], payload.get("error")
        expected = golden.result_digest(golden.compute_result("sens_costs", seed=42))
        assert payload["result_digest"] == expected

    def test_error_envelope_never_raises(self):
        payload = run_job({"job": Job(experiment=BOOM).canonical()})
        assert payload["ok"] is False
        assert "RuntimeError: boom" in payload["error"]
        assert "traceback" in payload

    def test_metrics_ride_along(self):
        payload = run_job({"job": Job(experiment=OK).canonical()})
        assert payload["import_s"] >= 0.0
        assert payload["peak_rss_kb"] > 0


class TestDeterminism:
    def test_parallel_matches_serial(self):
        jobs = ok_jobs(4)
        serial = SweepRunner(workers=1, cache=None).run(jobs)
        parallel = SweepRunner(workers=2, cache=None).run(jobs)
        assert [o.status for o in serial.outcomes] == ["ran"] * 4
        assert [o.result_digest for o in serial.outcomes] == [
            o.result_digest for o in parallel.outcomes
        ]

    def test_outcomes_in_input_order(self):
        jobs = [Job(experiment=OK, seed=s) for s in (7, 3, 5)]
        report = SweepRunner(workers=2, cache=None).run(jobs)
        assert [o.job.seed for o in report.outcomes] == [7, 3, 5]


class TestFailureContainment:
    def test_raising_job_reports_without_killing_the_sweep(self):
        jobs = [Job(experiment=OK, seed=0), Job(experiment=BOOM, retries=0)]
        report = SweepRunner(workers=2, cache=None).run(jobs)
        assert report.outcomes[0].ok
        assert report.outcomes[1].status == "failed"
        assert "RuntimeError: boom" in report.outcomes[1].error

    def test_dead_worker_fails_only_its_job(self):
        jobs = [
            Job(experiment=OK, seed=0),
            Job(experiment=DIE, retries=0),
            Job(experiment=OK, seed=1),
        ]
        report = SweepRunner(workers=2, cache=None, retries=1).run(jobs)
        by_exp = {o.job.experiment: o for o in report.outcomes}
        assert by_exp[DIE].status == "failed"
        assert "died" in by_exp[DIE].error
        assert by_exp[OK].ok  # survivors completed despite the broken pool

    def test_timeout_budget_enforced(self):
        jobs = [Job(experiment=HANG, timeout_s=1.0, retries=0)]
        report = SweepRunner(workers=1, cache=None).run(jobs)
        assert report.outcomes[0].status == "failed"
        assert "JobTimeout" in report.outcomes[0].error

    def test_flaky_job_succeeds_on_retry(self, tmp_path):
        marker = tmp_path / "first-attempt"
        jobs = [Job(experiment=FLAKY, config={"marker": str(marker)}, retries=1)]
        report = SweepRunner(workers=1, cache=None).run(jobs)
        assert report.outcomes[0].status == "ran"
        assert report.outcomes[0].attempts == 2
        assert marker.exists()


class TestExecutorSideDeadline:
    """The fallback budget for platforms/threads where SIGALRM can't fire.

    ``REPRO_DISABLE_SIGALRM`` forces the spawn-fresh workers onto the
    no-alarm path so the fallback is exercised even on POSIX.
    """

    def test_wedged_job_is_killed_on_the_fallback_path(self, monkeypatch):
        import time

        monkeypatch.setenv("REPRO_DISABLE_SIGALRM", "1")
        jobs = [Job(experiment=HANG, timeout_s=0.5, retries=0)]
        t0 = time.monotonic()
        report = SweepRunner(workers=1, cache=None, deadline_grace_s=0.5).run(jobs)
        assert time.monotonic() - t0 < 60  # far below the 300 s hang
        assert report.outcomes[0].status == "failed"
        assert "executor-side deadline" in report.outcomes[0].error

    def test_innocent_jobs_survive_a_deadline_kill(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_SIGALRM", "1")
        jobs = [
            Job(experiment=HANG, timeout_s=0.5, retries=0),
            Job(experiment=OK, seed=0),
        ]
        report = SweepRunner(workers=2, cache=None, deadline_grace_s=0.5).run(jobs)
        by_exp = {o.job.experiment: o for o in report.outcomes}
        assert by_exp[HANG].status == "failed"
        assert "JobTimeout" in by_exp[HANG].error
        assert by_exp[OK].ok

    def test_queued_job_does_not_expire_while_pending(self, monkeypatch):
        """A job's deadline clock starts when a worker picks it up, not at
        submit: queued behind a slow batch-mate on a one-worker pool, a
        short-budget job must run and succeed, not be falsely settled as
        an executor-side timeout (with retries=0 that would be a
        permanent failure for a job that never ran)."""
        monkeypatch.setenv("REPRO_DISABLE_SIGALRM", "1")
        jobs = [
            Job(experiment=SLOW, config={"sleep_s": 0.8}),
            Job(experiment=OK, seed=1, timeout_s=0.3, retries=0),
        ]
        report = SweepRunner(workers=1, cache=None, deadline_grace_s=0.1).run(jobs)
        assert [o.status for o in report.outcomes] == ["ran", "ran"]

    def test_deadlines_arm_only_for_running_futures(self):
        """The deadline memo ignores futures the pool has not started."""

        class FakeFuture:
            def __init__(self, is_running):
                self._is_running = is_running

            def running(self):
                return self._is_running

        runner = SweepRunner(workers=1, cache=None, deadline_grace_s=0.0)
        running, queued = FakeFuture(True), FakeFuture(False)
        budgets = {running: 0.0, queued: 0.0}
        deadlines = {}
        # the zero budget expires the running future on the next check;
        # the queued one must never be armed, however long it waits
        runner._check_deadlines({running, queued}, budgets, deadlines)
        expired = runner._check_deadlines({running, queued}, budgets, deadlines)
        assert expired == [running]
        assert queued not in deadlines

    def test_alarm_available_guards(self, monkeypatch):
        import signal
        import threading

        from repro.parallel import worker

        monkeypatch.setenv(worker.DISABLE_ALARM_ENV_VAR, "1")
        assert not worker.alarm_available()
        monkeypatch.delenv(worker.DISABLE_ALARM_ENV_VAR)
        if hasattr(signal, "SIGALRM"):
            assert worker.alarm_available()
            seen_in_thread = []
            t = threading.Thread(
                target=lambda: seen_in_thread.append(worker.alarm_available())
            )
            t.start()
            t.join()
            assert seen_in_thread == [False], "non-main thread must not arm SIGALRM"


class TestStrictConfig:
    """Unknown config keys fail the job instead of silently running a
    different cell than the job digest claims."""

    def test_dotted_path_unknown_key_fails_with_accepted_names(self):
        payload = run_job(
            {"job": Job(experiment=OK, config={"bogus": 1}).canonical()}
        )
        assert payload["ok"] is False
        assert "unknown config key(s) 'bogus'" in payload["error"]
        assert "accepted parameters" in payload["error"]
        assert "seed" in payload["error"]

    def test_registry_unknown_key_fails_too(self):
        payload = run_job(
            {"job": Job(experiment="sens_costs", config={"bogus": 1}).canonical()}
        )
        assert payload["ok"] is False
        assert "unknown config key(s) 'bogus'" in payload["error"]

    def test_known_config_key_still_accepted(self):
        payload = run_job(
            {"job": Job(experiment=SLOW, config={"sleep_s": 0.01}).canonical()}
        )
        assert payload["ok"], payload.get("error")


class TestCacheIntegration:
    def test_second_run_is_all_hits_with_identical_digests(self, tmp_path):
        jobs = ok_jobs(3)
        cache = ResultCache(root=tmp_path / "cache")
        cold = SweepRunner(workers=1, cache=cache).run(jobs)
        assert cold.ran == 3 and cold.hits == 0
        warm = SweepRunner(workers=1, cache=ResultCache(root=tmp_path / "cache")).run(jobs)
        assert warm.hits == 3 and warm.ran == 0
        assert [o.result_digest for o in cold.outcomes] == [
            o.result_digest for o in warm.outcomes
        ]

    def test_corrupted_entry_is_recomputed(self, tmp_path):
        jobs = ok_jobs(2)
        cache = ResultCache(root=tmp_path / "cache")
        SweepRunner(workers=1, cache=cache).run(jobs)
        cache.path_for(jobs[0]).write_text("garbage")
        rerun_cache = ResultCache(root=tmp_path / "cache")
        report = SweepRunner(workers=1, cache=rerun_cache).run(jobs)
        assert report.outcomes[0].status == "ran"
        assert report.outcomes[1].status == "hit"
        assert rerun_cache.stats.evictions == 1
        # the recompute healed the cache: entry is valid again
        assert ResultCache(root=tmp_path / "cache").get(jobs[0]) is not None

    def test_failed_jobs_are_never_cached(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        job = Job(experiment=BOOM, retries=0)
        SweepRunner(workers=1, cache=cache).run([job])
        assert not cache.path_for(job).exists()


class TestReport:
    def test_summary_line_contents(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        jobs = ok_jobs(2)
        SweepRunner(workers=1, cache=cache).run(jobs)
        warm = SweepRunner(workers=1, cache=ResultCache(root=tmp_path / "cache"))
        line = warm.run(jobs).summary_line()
        assert "2 jobs" in line
        assert "2 cached" in line
        assert "hit-rate=100%" in line
        assert "wall=" in line and "speedup-est=" in line
