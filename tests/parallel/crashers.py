"""Dotted-path test experiments for worker fault-tolerance tests.

The sweep worker resolves ``"module:function"`` experiment ids, which is
how these land inside spawn-fresh worker processes (monkeypatching the
parent's REGISTRY would not survive the process boundary).
"""

from __future__ import annotations

import os
import time


def _tiny(seed: int = 0, tag: str = "ok"):
    from repro.experiments.report import ExperimentResult

    result = ExperimentResult(exp_id=f"crashers.{tag}", title="tiny test cell")
    result.add_row("seed", float(seed))
    return result


def ok(seed: int = 0):
    """A well-behaved, instant experiment."""
    return _tiny(seed, "ok")


def boom(seed: int = 0):
    """Raises — must come back as an error payload, not kill the pool."""
    raise RuntimeError("boom")


def die(seed: int = 0):
    """Kills the worker process outright — breaks the pool."""
    os._exit(13)


def hang(seed: int = 0):
    """Sleeps far past any test timeout — exercises the SIGALRM budget."""
    time.sleep(300)
    return _tiny(seed, "hang")  # pragma: no cover - alarm fires first


def slow(seed: int = 0, sleep_s: float = 0.5):
    """Sleeps briefly then succeeds — a well-behaved but long job."""
    time.sleep(sleep_s)
    return _tiny(seed, "slow")


def flaky(seed: int = 0, marker: str = ""):
    """Fails on the first attempt (creates *marker*), succeeds after."""
    if marker and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("first attempt fails")
    return _tiny(seed, "flaky")
