"""Job spec: canonical form and digest semantics."""

import pytest

from repro.parallel import Job


class TestJobDigest:
    def test_stable_across_instances(self):
        a = Job(experiment="figure9", seed=42, duration_us=1e7)
        b = Job(experiment="figure9", seed=42, duration_us=1e7)
        assert a.digest == b.digest

    def test_config_order_insensitive(self):
        a = Job(experiment="chaos", config={"a": 1, "b": [2, 3]})
        b = Job(experiment="chaos", config={"b": [2, 3], "a": 1})
        assert a.digest == b.digest

    @pytest.mark.parametrize(
        "other",
        [
            Job(experiment="figure10", seed=42, duration_us=1e7),
            Job(experiment="figure9", seed=43, duration_us=1e7),
            Job(experiment="figure9", seed=42, duration_us=2e7),
            Job(experiment="figure9", seed=42, duration_us=1e7, config={"x": 1}),
        ],
    )
    def test_content_changes_move_the_digest(self, other):
        base = Job(experiment="figure9", seed=42, duration_us=1e7)
        assert base.digest != other.digest

    def test_policy_fields_do_not_move_the_digest(self):
        base = Job(experiment="figure9", seed=42)
        tuned = Job(experiment="figure9", seed=42, timeout_s=5.0, retries=3)
        assert base.digest == tuned.digest

    def test_int_vs_float_duration_agree(self):
        # canonicalization coerces duration to float: 1e7 == 10_000_000
        assert (
            Job(experiment="figure9", duration_us=10_000_000).digest
            == Job(experiment="figure9", duration_us=1e7).digest
        )

    def test_non_json_config_rejected(self):
        with pytest.raises(TypeError):
            Job(experiment="figure9", config={"bad": object()}).digest

    def test_label_names_the_cell(self):
        job = Job(experiment="chaos", seed=7, duration_us=1e7, config={"k": 2})
        assert "chaos" in job.label
        assert "seed=7" in job.label
        assert "k=2" in job.label
