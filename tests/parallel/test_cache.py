"""The content-addressed result cache: hits, misses, self-healing."""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.golden import result_digest
from repro.experiments.report import ExperimentResult
from repro.parallel import Job, ResultCache, code_digest


def tiny_result(value: float = 1.0) -> ExperimentResult:
    r = ExperimentResult(exp_id="cache-test", title="tiny")
    r.add_row("value", value, "unit")
    return r


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path / "cache")


def put(cache, job, value=1.0):
    result = tiny_result(value)
    cache.put(job, result.to_dict(), result_digest(result), {"compute_s": 0.25})
    return result


class TestCodeDigest:
    def test_is_sha256_hex(self):
        digest = code_digest()
        assert len(digest) == 64
        int(digest, 16)

    def test_stable_within_process(self):
        assert code_digest() == code_digest()


class TestHitsAndMisses:
    def test_hit_on_identical_job(self, cache):
        job = Job(experiment="x", seed=1, config={"a": 1})
        result = put(cache, job)
        entry = cache.get(Job(experiment="x", seed=1, config={"a": 1}))
        assert entry is not None
        assert entry["result_digest"] == result_digest(result)
        assert ExperimentResult.from_dict(entry["result"]).row("value").measured == 1.0
        assert cache.stats.hits == 1 and cache.stats.misses == 0

    def test_miss_on_changed_seed(self, cache):
        put(cache, Job(experiment="x", seed=1))
        assert cache.get(Job(experiment="x", seed=2)) is None
        assert cache.stats.misses == 1

    def test_miss_on_changed_config(self, cache):
        put(cache, Job(experiment="x", seed=1, config={"a": 1}))
        assert cache.get(Job(experiment="x", seed=1, config={"a": 2})) is None

    def test_miss_on_changed_code_digest(self, tmp_path):
        job = Job(experiment="x", seed=1)
        old = ResultCache(root=tmp_path / "cache", code="a" * 64)
        put(old, job)
        assert old.get(job) is not None
        new = ResultCache(root=tmp_path / "cache", code="b" * 64)
        assert new.get(job) is None
        assert new.stats.misses == 1
        # the old code version's entry is untouched (different directory)
        assert old.path_for(job).exists()


class TestSelfHealing:
    def test_truncated_entry_is_evicted(self, cache):
        job = Job(experiment="x", seed=1)
        put(cache, job)
        path = cache.path_for(job)
        path.write_text(path.read_text()[:40])
        assert cache.get(job) is None
        assert not path.exists(), "corrupt entry must be unlinked"
        assert cache.stats.evictions == 1

    def test_tampered_result_is_evicted(self, cache):
        """Valid JSON whose stored result no longer matches its digest."""
        job = Job(experiment="x", seed=1)
        put(cache, job)
        path = cache.path_for(job)
        entry = json.loads(path.read_text())
        entry["result"]["rows"][0]["measured"] = 999.0
        path.write_text(json.dumps(entry))
        assert cache.get(job) is None
        assert cache.stats.evictions == 1

    def test_recompute_after_eviction_restores_the_entry(self, cache):
        job = Job(experiment="x", seed=1)
        put(cache, job)
        cache.path_for(job).write_text("garbage")
        assert cache.get(job) is None
        put(cache, job)  # the runner recomputes and re-stores
        assert cache.get(job) is not None

    def test_wrong_job_entry_is_evicted(self, cache):
        """An entry renamed over another job's key fails validation."""
        a, b = Job(experiment="x", seed=1), Job(experiment="x", seed=2)
        put(cache, a)
        cache.path_for(b).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(a).rename(cache.path_for(b))
        assert cache.get(b) is None
        assert cache.stats.evictions == 1

    def test_partially_written_entry_is_evicted(self, cache):
        """A torn write — only a prefix of the entry reached disk — reads
        as a miss and is evicted, never served."""
        job = Job(experiment="x", seed=1)
        put(cache, job)
        path = cache.path_for(job)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])
        assert cache.get(job) is None
        assert not path.exists(), "torn entry must be unlinked"
        assert cache.stats.evictions == 1


class TestAtomicPut:
    def test_put_leaves_no_temp_droppings(self, cache):
        job = Job(experiment="x", seed=1)
        put(cache, job)
        leftovers = [
            p for p in cache.path_for(job).parent.iterdir() if p.name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_failed_put_removes_its_temp_file_and_raises(self, cache, monkeypatch):
        job = Job(experiment="x", seed=1)

        def refuse(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.parallel.cache.os.replace", refuse)
        with pytest.raises(OSError):
            put(cache, job)
        parent = cache.path_for(job).parent
        assert not any(p.name.endswith(".tmp") for p in parent.iterdir())
        assert not cache.path_for(job).exists()

    def test_concurrent_writers_use_distinct_same_dir_temp_names(
        self, tmp_path, monkeypatch
    ):
        """Two caches publishing the same entry must not share a temp path
        (a fixed ``.tmp`` name lets interleaved writers publish a torn
        entry); each temp file sits next to the entry so the final rename
        stays within one filesystem (atomic)."""
        seen = []
        real_replace = os.replace

        def spy(src, dst):
            seen.append(Path(src))
            return real_replace(src, dst)

        monkeypatch.setattr("repro.parallel.cache.os.replace", spy)
        job = Job(experiment="x", seed=1)
        a = ResultCache(root=tmp_path / "cache")
        b = ResultCache(root=tmp_path / "cache")
        put(a, job)
        put(b, job)
        assert len(seen) == 2
        assert seen[0] != seen[1]
        assert all(p.parent == a.path_for(job).parent for p in seen)
        # and the published entry is valid
        assert a.get(job) is not None
