"""The fault plane: windows, oracles, determinism, hardware hooks."""

import pytest

from repro.dvcm import MessageQueuePair, VCMInterface, VCMRuntime, VCMTimeout
from repro.faults import FaultPlane, FaultWindow
from repro.hw import DiskMediaError, EthernetPort, EthernetSwitch, I960RDCard, SCSIDisk
from repro.hw.pci import PCISegment
from repro.rtos import WindScheduler
from repro.sim import Environment, S, Tracer


class TestWindows:
    def test_window_matches_time_and_pattern(self):
        w = FaultWindow("link-loss", "client_*", 10.0, 20.0, rate=0.5)
        assert w.matches(10.0, "client_s1")
        assert w.matches(19.9, "client_s2")
        assert not w.matches(20.0, "client_s1")  # end exclusive
        assert not w.matches(9.9, "client_s1")
        assert not w.matches(15.0, "server")

    def test_invalid_windows_rejected(self):
        env = Environment()
        plane = FaultPlane(env)
        with pytest.raises(ValueError):
            plane.inject_link_loss("x", 10.0, 10.0, rate=0.5)  # empty window
        with pytest.raises(ValueError):
            plane.inject_link_loss("x", 0.0, 1.0, rate=0.0)  # rate out of range
        with pytest.raises(ValueError):
            plane.inject_disk_latency("x", 0.0, 1.0, mult=0.5)  # speed-up
        with pytest.raises(ValueError):
            plane.inject_disk_errors("x", 0.0, 1.0, rate=1.5)

    def test_one_plane_per_environment(self):
        env = Environment()
        FaultPlane(env)
        with pytest.raises(RuntimeError):
            FaultPlane(env)

    def test_plane_installs_on_environment(self):
        env = Environment()
        plane = FaultPlane(env, seed=7)
        assert env.fault_plane is plane


class TestOracles:
    def test_no_window_never_fires_and_never_draws(self):
        env = Environment()
        plane = FaultPlane(env, seed=1)
        assert not plane.frame_lost("client_s1")
        assert plane.disk_delay_us("disk0", 100.0) == 0.0
        assert not plane.disk_error("disk0")
        assert not plane.message_dropped("q")
        assert plane.total_injected == 0

    def test_partition_is_certain_loss_without_rng(self):
        env = Environment()
        plane = FaultPlane(env, seed=1)
        plane.inject_partition("client_s1", 0.0, 100.0)
        assert all(plane.frame_lost("client_s1") for _ in range(20))
        assert not plane.frame_lost("client_s2")
        assert plane.injected["link-loss"] == 20

    def test_loss_rate_is_seed_deterministic(self):
        def draws(seed):
            env = Environment()
            plane = FaultPlane(env, seed=seed)
            plane.inject_link_loss("c", 0.0, 100.0, rate=0.3)
            return [plane.frame_lost("c") for _ in range(200)]

        a, b = draws(5), draws(5)
        assert a == b
        c = draws(6)
        assert a != c
        assert 20 < sum(a) < 100  # ~30% of 200

    def test_disk_latency_window(self):
        env = Environment()
        plane = FaultPlane(env, seed=1)
        plane.inject_disk_latency("d0", 0.0, 50.0, mult=3.0, extra_us=7.0)
        assert plane.disk_delay_us("d0", 100.0) == pytest.approx(207.0)
        env.run(until=60.0)
        assert plane.disk_delay_us("d0", 100.0) == 0.0  # window over

    def test_tracer_receives_fault_events(self):
        env = Environment()
        tracer = Tracer(env)
        plane = FaultPlane(env, seed=1, tracer=tracer)
        plane.inject_partition("c", 0.0, 10.0)
        plane.frame_lost("c")
        events = tracer.events(category="fault")
        assert len(events) == 1
        assert events[0].name == "link-loss"


class TestHardwareHooks:
    def test_switch_drops_frames_in_window(self):
        from repro.hw.ethernet import NetFrame

        env = Environment()
        plane = FaultPlane(env, seed=2)
        plane.inject_partition("b", 100.0, 1000.0)
        switch = EthernetSwitch(env)
        a, b = EthernetPort(env, "a"), EthernetPort(env, "b")
        switch.attach(a)
        switch.attach(b)
        got = []

        def rx():
            while True:
                frame = yield b.receive()
                got.append(frame.seqno)

        def tx():
            for i in range(6):
                yield from a.send(NetFrame(payload_bytes=100, seqno=i), "b")
                yield env.timeout(400.0)

        env.process(rx())
        env.process(tx())
        env.run(until=5_000.0)
        # frames sent inside [100, 1000) vanished; dropped counter moved
        assert len(got) < 6
        assert switch.frames_dropped > 0
        assert plane.injected["link-loss"] == 6 - len(got)

    def test_disk_media_error_and_latency(self):
        env = Environment()
        plane = FaultPlane(env, seed=3)
        disk = SCSIDisk(env, name="d0")
        plane.inject_disk_errors("d0", 0.0, 1e12, rate=1.0)
        outcome = {}

        def io():
            try:
                yield from disk.read(4096)
            except DiskMediaError:
                outcome["error"] = True

        env.run(until=env.process(io()))
        assert outcome.get("error")
        assert disk.stats.media_errors == 1

    def test_disk_latency_slows_access(self):
        def run(mult):
            env = Environment()
            plane = FaultPlane(env, seed=3)
            if mult > 1.0:
                plane.inject_disk_latency("d0", 0.0, 1e12, mult=mult)
            disk = SCSIDisk(env, name="d0")

            def io():
                yield from disk.read(65536)

            env.run(until=env.process(io()))
            return env.now

        assert run(10.0) > 2 * run(1.0)

    def test_card_crash_and_reset_callbacks(self):
        env = Environment()
        plane = FaultPlane(env, seed=4)
        segment = PCISegment(env, "pci0")
        card = I960RDCard(env, segment, name="i2o0")
        seen = []
        card.on_crash.append(lambda: seen.append(("crash", env.now)))
        card.on_reset.append(lambda: seen.append(("reset", env.now)))
        plane.schedule_card_crash(card, at_us=1_000.0, down_us=500.0)
        env.run(until=400.0)
        assert not card.crashed
        env.run(until=1_200.0)
        assert card.crashed
        env.run(until=2_000.0)
        assert not card.crashed
        assert card.crash_count == 1
        assert seen == [("crash", 1_000.0), ("reset", 1_500.0)]
        assert plane.injected == {"card-crash": 1, "card-reset": 1}


class TestMessagingFaults:
    def _vcm(self, seed):
        env = Environment()
        plane = FaultPlane(env, seed=seed)
        segment = PCISegment(env, "pci0")
        card = I960RDCard(env, segment, name="i2o0")
        queues = MessageQueuePair(env, segment, name="q0")
        runtime = VCMRuntime(env, queues, card.cpu)
        vxworks = WindScheduler(env, cpu_spec=card.cpu.spec)
        vxworks.spawn("tVCM", runtime.task_body, priority=60)
        from repro.dvcm.extension import ExtensionModule

        mod = ExtensionModule("echo")
        mod.provide("ping", lambda payload: payload.get("x"))
        runtime.load_extension(mod)
        api = VCMInterface(env, queues, timeout_us=20_000.0, max_retries=3)
        return env, plane, queues, runtime, api

    def test_dropped_request_is_retried_and_served(self):
        env, plane, queues, runtime, api = self._vcm(seed=9)
        # drop everything for the first 10 ms, then heal
        plane.inject_message_drop("q0", 0.0, 10_000.0, rate=1.0)
        result = {}

        def app():
            result["x"] = yield from api.call("echo.ping", {"x": 41})

        env.run(until=env.process(app()))
        assert result["x"] == 41
        assert queues.dropped >= 1
        assert api.timeouts >= 1

    def test_duplicated_request_executes_once(self):
        env, plane, queues, runtime, api = self._vcm(seed=9)
        plane.inject_message_duplication("q0", 0.0, 1e12, rate=1.0)
        result = {}

        def app():
            result["x"] = yield from api.call("echo.ping", {"x": 7})

        env.run(until=env.process(app()))
        env.run(until=env.now + 100_000.0)  # let the duplicate drain
        assert result["x"] == 7
        assert queues.duplicated >= 1
        assert runtime.duplicates_deduped >= 1
        assert runtime.messages_handled == 1  # at-most-once execution

    def test_permanent_blackout_raises_vcm_timeout(self):
        env, plane, queues, runtime, api = self._vcm(seed=9)
        plane.inject_message_drop("q0", 0.0, 1e12, rate=1.0)
        outcome = {}

        def app():
            try:
                yield from api.call("echo.ping", {"x": 1})
            except VCMTimeout:
                outcome["timeout"] = True

        env.run(until=env.process(app()))
        assert outcome.get("timeout")
        # exponential backoff: 20 + 40 + 80 + 160 ms before giving up
        assert env.now >= 300_000.0
