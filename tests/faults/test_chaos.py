"""The chaos harness: named scenarios, scoring, and seed determinism."""

import pytest

from repro.experiments import run_loading_experiment
from repro.experiments.chaos import chaos, run_chaos_scenario
from repro.faults import SCENARIOS
from repro.sim import S

#: short runs keep the suite fast; scenario windows are duration fractions,
#: so every scenario scales down cleanly
SHORT_US = 10 * S


class TestScenarioCatalogue:
    def test_at_least_three_fault_scenarios_plus_baseline(self):
        names = set(SCENARIOS)
        assert "baseline" in names
        assert len(names - {"baseline"}) >= 3

    def test_scenarios_are_well_formed(self):
        for name, sc in SCENARIOS.items():
            assert sc.name == name
            assert sc.description
            assert 0.0 <= sc.start_frac <= sc.end_frac <= 1.0
            start, end = sc.fault_window_us(100 * S)
            assert start == pytest.approx(sc.start_frac * 100 * S)
            assert end == pytest.approx(sc.end_frac * 100 * S)


class TestDeterminism:
    def test_same_seed_replays_identical_scores(self):
        a = run_chaos_scenario("link-burst", duration_us=SHORT_US, seed=7)
        b = run_chaos_scenario("link-burst", duration_us=SHORT_US, seed=7)
        assert a.ref_bps == b.ref_bps
        assert a.dip_bps == b.dip_bps
        assert a.recovery_us == b.recovery_us
        assert a.violations == b.violations
        assert a.dropped == b.dropped
        assert a.injected == b.injected

    def test_baseline_reproduces_the_plane_less_figure9_run(self):
        cr = run_chaos_scenario("baseline", duration_us=SHORT_US, seed=7)
        plain = run_loading_experiment("ni", "none", duration_us=SHORT_US, seed=7)
        assert cr.injected == 0
        chaos_stats = cr.run.service.engine.scheduler.stats
        plain_stats = plain.service.engine.scheduler.stats
        assert chaos_stats.violations == plain_stats.violations
        assert chaos_stats.dropped == plain_stats.dropped
        for sid in cr.ref_bps:
            want = plain.service.reception(sid).mean_bandwidth_bps(0.0, SHORT_US)
            got = cr.run.service.reception(sid).mean_bandwidth_bps(0.0, SHORT_US)
            assert got == want  # bit-identical: an idle plane draws nothing


class TestScoring:
    def test_link_burst_dips_then_recovers(self):
        cr = run_chaos_scenario("link-burst", duration_us=SHORT_US, seed=7)
        assert cr.injected > 0
        # at least one stream was visibly degraded inside the window ...
        assert any(cr.dip_bps[sid] < cr.ref_bps[sid] for sid in cr.ref_bps)
        # ... and every stream got back to >= 90% of its pre-fault rate
        assert all(rec is not None for rec in cr.recovery_us.values())

    def test_partition_starves_only_the_cut_client(self):
        cr = run_chaos_scenario("partition", duration_us=SHORT_US, seed=7)
        assert cr.dip_bps["s1"] == 0.0  # fully dark during the cut
        assert cr.dip_bps["s2"] > 0.0  # the other stream keeps flowing

    def test_ni_crash_sheds_and_readmits(self):
        cr = run_chaos_scenario("ni-crash", duration_us=SHORT_US, seed=7)
        service = cr.run.service
        assert service.card.crash_count == 1
        assert not service.card.crashed  # reset happened
        assert not service.admission.suspended_streams  # everyone re-admitted
        assert all(rec is not None for rec in cr.recovery_us.values())


class TestExperimentRunner:
    def test_chaos_result_rows_are_seed_deterministic(self):
        kw = dict(duration_us=SHORT_US, seed=5, scenarios=["baseline", "disk-spike"])
        a, b = chaos(**kw), chaos(**kw)
        assert [(r.label, r.measured) for r in a.rows] == [
            (r.label, r.measured) for r in b.rows
        ]
        labels = [r.label for r in a.rows]
        assert "disk-spike: violations" in labels
        assert "disk-spike: faults injected" in labels
        assert any(s.name == "disk-spike:s1:bw" for s in a.series)
