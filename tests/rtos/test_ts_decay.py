"""Solaris TS priority decay (the dynamic mechanism behind Figures 7/8)."""

import pytest

from repro.hw.cpu import CPUSpec
from repro.rtos import SolarisHostOS
from repro.sim import Environment, S

FREE = CPUSpec(
    name="ideal", clock_mhz=100.0, has_fpu=True,
    context_switch_us=0.0, cache_pollution_us=0.0,
)


@pytest.fixture
def env():
    return Environment()


def test_decay_parameters_validated(env):
    os = SolarisHostOS(env, n_cpus=1, cpu_spec=FREE)
    with pytest.raises(ValueError):
        os.enable_ts_decay(window_us=0)
    with pytest.raises(ValueError):
        os.enable_ts_decay(max_penalty=0)


def test_cpu_hog_accumulates_penalty(env):
    os = SolarisHostOS(env, n_cpus=1, cpu_spec=FREE)
    os.enable_ts_decay(window_us=1 * S, max_penalty=30)

    def hog(task):
        while True:
            yield task.compute(100_000.0)

    t = os.spawn("hog", hog, priority=100)
    env.run(until=3 * S)
    assert t.decay_offset == 30  # full-share hog sinks to the bottom


def test_sleeper_keeps_fresh_priority(env):
    os = SolarisHostOS(env, n_cpus=1, cpu_spec=FREE)
    os.enable_ts_decay(window_us=1 * S, max_penalty=30)

    def sleeper(task):
        while True:
            yield task.compute(1_000.0)  # 0.1% duty
            yield env.timeout(1_000_000.0)

    t = os.spawn("sleeper", sleeper, priority=100)
    env.run(until=3 * S)
    assert t.decay_offset <= 1


def test_decayed_hog_yields_to_fresh_interactive_task(env):
    """Once decayed, a hog loses the dispatch race to an equal-base-priority
    interactive task — the inverse of the static placement the figure
    experiments use, shown working dynamically."""
    os = SolarisHostOS(env, n_cpus=1, cpu_spec=FREE)
    os.enable_ts_decay(window_us=500_000.0, max_penalty=30)
    latencies = []

    def hog(task):
        while True:
            yield task.compute(100_000.0)

    def interactive(task):
        while True:
            yield env.timeout(200_000.0)
            t0 = env.now
            yield task.compute(1_000.0)
            latencies.append(env.now - t0 - 1_000.0)

    os.spawn("hog", hog, priority=100)
    os.spawn("inter", interactive, priority=100)
    env.run(until=5 * S)
    # after the first decay window the interactive task's waits shrink to
    # at most the hog's in-service remainder; early waits could be a full
    # quantum behind the equal-priority hog
    early = latencies[0]
    late_avg = sum(latencies[-5:]) / 5
    assert late_avg <= early + 1.0


def test_penalty_recovers_when_hog_stops(env):
    os = SolarisHostOS(env, n_cpus=1, cpu_spec=FREE)
    os.enable_ts_decay(window_us=1 * S, max_penalty=30)
    stop_at = 2 * S

    def phased(task):
        while env.now < stop_at:
            yield task.compute(100_000.0)
        yield env.timeout(10 * S)

    t = os.spawn("phased", phased, priority=100)
    env.run(until=2.5 * S)
    assert t.decay_offset > 10
    env.run(until=6 * S)
    assert t.decay_offset == 0  # idle windows wash the penalty out
