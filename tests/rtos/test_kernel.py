"""OS kernel mechanics: compute service, quanta, affinity, accounting."""

import pytest

from repro.hw.cpu import CPUSpec
from repro.rtos import SolarisHostOS, WindScheduler
from repro.sim import Environment

# A spec with zero switch overhead keeps arithmetic exact in these tests.
FREE_SWITCH = CPUSpec(
    name="ideal", clock_mhz=100.0, has_fpu=True, context_switch_us=0.0, cache_pollution_us=0.0
)


@pytest.fixture
def env():
    return Environment()


def test_single_task_served_exactly(env):
    os = WindScheduler(env, cpu_spec=FREE_SWITCH)
    done = []

    def body(task):
        yield task.compute(500.0)
        done.append(env.now)

    os.spawn("t", body)
    env.run()
    assert done == [500.0]


def test_zero_compute_completes_immediately(env):
    os = WindScheduler(env, cpu_spec=FREE_SWITCH)
    done = []

    def body(task):
        yield task.compute(0.0)
        done.append(env.now)

    os.spawn("t", body)
    env.run()
    assert done == [0.0]


def test_negative_compute_rejected(env):
    os = WindScheduler(env, cpu_spec=FREE_SWITCH)
    errors = []

    def body(task):
        try:
            yield task.compute(-1.0)
        except ValueError as e:
            errors.append(e)
            yield env.timeout(0)

    os.spawn("t", body)
    env.run()
    assert len(errors) == 1


def test_cpu_time_accounting(env):
    os = WindScheduler(env, cpu_spec=FREE_SWITCH)

    def body(task):
        yield task.compute(300.0)
        yield env.timeout(1000.0)  # sleeping: no CPU
        yield task.compute(200.0)

    t = os.spawn("t", body)
    env.run()
    assert t.cpu_time_us == pytest.approx(500.0)
    assert t.requests == 2


def test_two_tasks_share_one_cpu_serially(env):
    os = WindScheduler(env, cpu_spec=FREE_SWITCH)
    finish = {}

    def body(task):
        yield task.compute(1000.0)
        finish[task.name] = env.now

    os.spawn("a", body, priority=100)
    os.spawn("b", body, priority=100)
    env.run()
    assert finish["a"] == pytest.approx(1000.0)
    assert finish["b"] == pytest.approx(2000.0)


def test_multicpu_runs_in_parallel(env):
    os = SolarisHostOS(env, n_cpus=2, cpu_spec=FREE_SWITCH)
    finish = {}

    def body(task):
        yield task.compute(1000.0)
        finish[task.name] = env.now

    os.spawn("a", body)
    os.spawn("b", body)
    env.run()
    assert finish["a"] == pytest.approx(1000.0)
    assert finish["b"] == pytest.approx(1000.0)


def test_context_switch_cost_charged(env):
    spec = CPUSpec(
        name="costly", clock_mhz=100.0, has_fpu=True,
        context_switch_us=10.0, cache_pollution_us=15.0,
    )
    os = WindScheduler(env, cpu_spec=spec)
    finish = {}

    def body(task):
        yield task.compute(100.0)
        finish[task.name] = env.now

    os.spawn("a", body)
    env.run()
    # one switch (idle->a) at 25us + 100us work
    assert finish["a"] == pytest.approx(125.0)
    assert os.context_switches == 1


def test_round_robin_interleaves_long_jobs(env):
    os = SolarisHostOS(env, n_cpus=1, cpu_spec=FREE_SWITCH)
    finish = {}

    def body(task):
        yield task.compute(250_000.0)
        finish[task.name] = env.now

    os.spawn("a", body)
    os.spawn("b", body)
    env.run()
    # With 100ms quanta both finish near the end, not serially:
    # serial would be a@250ms, b@500ms; RR gives a@450ms, b@500ms.
    assert finish["a"] > 400_000.0
    assert finish["b"] == pytest.approx(500_000.0)


def test_wind_runs_to_completion_no_timeslicing(env):
    os = WindScheduler(env, cpu_spec=FREE_SWITCH)
    finish = {}

    def body(task):
        yield task.compute(25_000.0)
        finish[task.name] = env.now

    os.spawn("a", body, priority=100)
    os.spawn("b", body, priority=100)
    env.run()
    assert finish["a"] == pytest.approx(25_000.0)
    assert finish["b"] == pytest.approx(50_000.0)


def test_wind_priority_preemption(env):
    os = WindScheduler(env, cpu_spec=FREE_SWITCH)
    finish = {}

    def low(task):
        yield task.compute(10_000.0)
        finish["low"] = env.now

    def high(task):
        yield env.timeout(1_000.0)
        yield task.compute(500.0)
        finish["high"] = env.now

    os.spawn("low", low, priority=200)
    os.spawn("high", high, priority=10)
    env.run()
    # high arrives at t=1000, preempts, finishes at 1500;
    # low resumes and finishes at 10500.
    assert finish["high"] == pytest.approx(1_500.0)
    assert finish["low"] == pytest.approx(10_500.0)


def test_no_preemption_in_time_sharing_class(env):
    os = SolarisHostOS(env, n_cpus=1, cpu_spec=FREE_SWITCH)
    finish = {}

    def first(task):
        yield task.compute(5_000.0)
        finish["first"] = env.now

    def second(task):
        yield env.timeout(100.0)
        yield task.compute(100.0)
        finish["second"] = env.now

    os.spawn("first", first)
    os.spawn("second", second)
    env.run()
    # second waits for first's slice (5ms < quantum) to finish
    assert finish["second"] == pytest.approx(5_100.0)


def test_pbind_restricts_task_to_cpu(env):
    os = SolarisHostOS(env, n_cpus=2, cpu_spec=FREE_SWITCH)
    finish = {}

    def body(task):
        yield task.compute(1000.0)
        finish[task.name] = env.now

    # Three tasks bound to cpu 0 serialize even though cpu 1 is idle.
    for name in ("a", "b", "c"):
        os.spawn(name, body, bound_cpu=0)
    env.run()
    assert finish["c"] == pytest.approx(3000.0)


def test_pbind_validates_cpu_index(env):
    os = SolarisHostOS(env, n_cpus=2, cpu_spec=FREE_SWITCH)

    def body(task):
        yield task.compute(1.0)

    t = os.spawn("t", body)
    with pytest.raises(ValueError):
        os.pbind(t, 5)
    with pytest.raises(ValueError):
        os.spawn("u", body, bound_cpu=9)


def test_busy_accounting_matches_work(env):
    os = WindScheduler(env, cpu_spec=FREE_SWITCH)

    def body(task):
        yield task.compute(2_000.0)

    os.spawn("t", body)
    env.run()
    assert os.cumulative_busy_us() == pytest.approx(2_000.0)


def test_unbound_work_drains_on_any_cpu(env):
    os = SolarisHostOS(env, n_cpus=4, cpu_spec=FREE_SWITCH)
    finish = []

    def body(task):
        yield task.compute(1000.0)
        finish.append(env.now)

    for i in range(8):
        os.spawn(f"t{i}", body)
    env.run()
    assert max(finish) == pytest.approx(2000.0)  # 8 jobs / 4 cpus / 1ms


def test_invalid_cpu_count():
    with pytest.raises(ValueError):
        SolarisHostOS(Environment(), n_cpus=0)


def test_system_tasks_light_load(env):
    os = WindScheduler(env, cpu_spec=FREE_SWITCH)
    os.spawn_system_tasks()
    env.run(until=1_000_000.0)  # 1s
    # ~2 tasks * 100us per 50ms = ~0.4% utilization
    assert os.cumulative_busy_us() < 10_000.0


def test_daemons_produce_background_load(env):
    os = SolarisHostOS(env, n_cpus=2, cpu_spec=FREE_SWITCH)
    os.spawn_daemons()
    env.run(until=2_000_000.0)
    busy = os.cumulative_busy_us()
    assert busy > 0.0
    # a few percent at most
    assert busy / (2 * 2_000_000.0) < 0.10
