"""Service-tag intra-stream ordering (paper §3.1.1's FCFS alternative)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DWCSScheduler, QueueFullError, StreamSpec, TaggedQueue
from repro.fixedpoint import OpCounter
from repro.media import FrameType, MediaFrame
from repro.media.frames import FrameDescriptor


def desc(seq, pts, stream="s1"):
    return FrameDescriptor(
        frame=MediaFrame(stream, seq, FrameType.I, 1000, pts_us=pts),
        deadline_us=float(seq),
    )


class TestTaggedQueue:
    def test_serves_lowest_tag_first(self):
        q = TaggedQueue("s1", capacity=8)
        ops = OpCounter()
        for seq, pts in [(0, 300.0), (1, 100.0), (2, 200.0)]:
            q.enqueue(desc(seq, pts), ops)
        order = [q.pop(ops).frame.pts_us for _ in range(3)]
        assert order == [100.0, 200.0, 300.0]

    def test_equal_tags_fifo(self):
        q = TaggedQueue("s1", capacity=8)
        ops = OpCounter()
        for seq in range(4):
            q.enqueue(desc(seq, 50.0), ops)
        assert [q.pop(ops).frame.seqno for _ in range(4)] == [0, 1, 2, 3]

    def test_head_peeks(self):
        q = TaggedQueue("s1", capacity=8)
        ops = OpCounter()
        q.enqueue(desc(0, 900.0), ops)
        q.enqueue(desc(1, 100.0), ops)
        assert q.head(ops).frame.seqno == 1
        assert len(q) == 2

    def test_capacity_enforced(self):
        q = TaggedQueue("s1", capacity=2)
        ops = OpCounter()
        q.enqueue(desc(0, 1.0), ops)
        q.enqueue(desc(1, 2.0), ops)
        assert q.full
        with pytest.raises(QueueFullError):
            q.enqueue(desc(2, 3.0), ops)

    def test_empty_behaviour(self):
        q = TaggedQueue("s1")
        assert q.empty
        assert q.head(OpCounter()) is None
        with pytest.raises(IndexError):
            q.pop(OpCounter())

    def test_counters(self):
        q = TaggedQueue("s1")
        ops = OpCounter()
        q.enqueue(desc(0, 1.0), ops)
        q.enqueue(desc(1, 2.0), ops)
        q.pop(ops)
        assert q.enqueued_total == 2
        assert q.dequeued_total == 1
        assert len(q) == 1

    def test_ops_charged_logarithmically(self):
        q = TaggedQueue("s1", capacity=1024)
        ops = OpCounter()
        for i in range(512):
            q.enqueue(desc(i, float(i)), ops)
        # ~log2(n) charges per op, far below O(n) per op
        assert ops.mem_writes < 512 * 16

    @given(pts=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=64))
    def test_drains_in_tag_order(self, pts):
        q = TaggedQueue("s1", capacity=128)
        ops = OpCounter()
        for i, p in enumerate(pts):
            q.enqueue(desc(i, p), ops)
        out = [q.pop(ops).frame.pts_us for _ in range(len(pts))]
        assert out == sorted(out)


class TestSchedulerWithTaggedQueues:
    def test_intra_stream_reordering_by_pts(self):
        """A stream whose frames arrive out of presentation order (e.g.
        decode order) is served in pts order under the tagged discipline."""
        s = DWCSScheduler(
            queue_factory=lambda sid: TaggedQueue(sid), work_conserving=True
        )
        s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=1, loss_y=4))
        # decode order: I(0ms) P(99ms) B(33ms) B(66ms)
        arrival = [(0, 0.0), (1, 99_000.0), (2, 33_000.0), (3, 66_000.0)]
        for seq, pts in arrival:
            s.enqueue(MediaFrame("s1", seq, FrameType.I, 1000, pts_us=pts), 0.0)
        served = []
        while s.backlog:
            d = s.schedule(0.0)
            if d.serviced:
                served.append(d.serviced.frame.pts_us)
        assert served == [0.0, 33_000.0, 66_000.0, 99_000.0]

    def test_fcfs_ring_keeps_arrival_order(self):
        s = DWCSScheduler(work_conserving=True)  # default ring = FCFS
        s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=1, loss_y=4))
        for seq, pts in [(0, 0.0), (1, 99_000.0), (2, 33_000.0)]:
            s.enqueue(MediaFrame("s1", seq, FrameType.I, 1000, pts_us=pts), 0.0)
        served = []
        while s.backlog:
            d = s.schedule(0.0)
            if d.serviced:
                served.append(d.serviced.frame.seqno)
        assert served == [0, 1, 2]
