"""Microbenchmark and streaming engines."""

import pytest

from repro.core import (
    DWCSScheduler,
    MicrobenchEngine,
    StreamingEngine,
    StreamSpec,
)
from repro.fixedpoint import FixedPointContext, SoftwareFloatContext
from repro.hw import CPU, DataCache, I960RD_66
from repro.media import FrameType, MediaFrame
from repro.rtos import WindScheduler
from repro.sim import Environment


def make_scheduler(ctx=None, n_streams=4, frames_per_stream=38, period_us=33_333.0):
    s = DWCSScheduler(ctx=ctx, work_conserving=True)
    for i in range(n_streams):
        s.add_stream(StreamSpec(f"s{i}", period_us=period_us, loss_x=1, loss_y=4))
    for i in range(n_streams):
        for k in range(frames_per_stream):
            s.enqueue(MediaFrame(f"s{i}", k, FrameType.I, 1000, 0.0), 0.0)
    return s


class TestMicrobenchEngine:
    def test_requires_work_conserving(self):
        env = Environment()
        s = DWCSScheduler(work_conserving=False)
        with pytest.raises(ValueError):
            MicrobenchEngine(env, s, CPU(I960RD_66))

    def test_drains_all_frames(self):
        env = Environment()
        s = make_scheduler()
        engine = MicrobenchEngine(env, s, CPU(I960RD_66))
        result = env.run(until=env.process(engine.run_with_scheduler()))
        assert result.frames == 4 * 38
        assert s.backlog == 0
        assert result.total_us > 0
        assert result.avg_frame_us == pytest.approx(result.total_us / result.frames)

    def test_bypass_is_much_cheaper_per_frame(self):
        env = Environment()
        s1, s2 = make_scheduler(), make_scheduler()
        with_s = env.run(
            until=env.process(MicrobenchEngine(env, s1, CPU(I960RD_66)).run_with_scheduler())
        )
        without = env.run(
            until=env.process(MicrobenchEngine(env, s2, CPU(I960RD_66)).run_without_scheduler())
        )
        assert without.frames == with_s.frames
        assert without.avg_frame_us < with_s.avg_frame_us / 2

    def test_scheduling_overhead_in_paper_band(self):
        """Fixed point, cache off: overhead (with - without) ≈ 70-80 µs."""
        env = Environment()
        cpu = CPU(I960RD_66, cache=DataCache(enabled=False))
        s1 = make_scheduler(ctx=FixedPointContext())
        s2 = make_scheduler(ctx=FixedPointContext())
        with_s = env.run(
            until=env.process(MicrobenchEngine(env, s1, cpu).run_with_scheduler())
        )
        without = env.run(
            until=env.process(MicrobenchEngine(env, s2, cpu).run_without_scheduler())
        )
        overhead = with_s.avg_frame_us - without.avg_frame_us
        assert 50.0 < overhead < 110.0

    def test_software_fp_slower_than_fixed_point(self):
        env = Environment()
        cpu = CPU(I960RD_66, cache=DataCache(enabled=False))
        fixed = env.run(
            until=env.process(
                MicrobenchEngine(env, make_scheduler(ctx=FixedPointContext()), cpu).run_with_scheduler()
            )
        )
        soft = env.run(
            until=env.process(
                MicrobenchEngine(
                    env, make_scheduler(ctx=SoftwareFloatContext()), cpu
                ).run_with_scheduler()
            )
        )
        delta = soft.avg_frame_us - fixed.avg_frame_us
        assert 10.0 < delta < 40.0  # paper: ~20 µs

    def test_cache_enabled_saves_per_frame_time(self):
        env = Environment()
        cold = CPU(I960RD_66, cache=DataCache(enabled=False))
        warm = CPU(I960RD_66, cache=DataCache(hit_ratio=0.9, enabled=True))
        off = env.run(
            until=env.process(
                MicrobenchEngine(env, make_scheduler(ctx=FixedPointContext()), cold).run_with_scheduler()
            )
        )
        on = env.run(
            until=env.process(
                MicrobenchEngine(env, make_scheduler(ctx=FixedPointContext()), warm).run_with_scheduler()
            )
        )
        saving = off.avg_frame_us - on.avg_frame_us
        assert 8.0 < saving < 25.0  # paper: ~14 µs


class TestStreamingEngine:
    def _build(self, env):
        scheduler = DWCSScheduler(work_conserving=False)
        scheduler.add_stream(StreamSpec("s1", period_us=40_000.0, loss_x=1, loss_y=4))
        sent = []

        def transmit(desc):
            sent.append((env.now, desc))
            yield env.timeout(80.0)

        cpu = CPU(I960RD_66, cache=DataCache(enabled=False))
        engine = StreamingEngine(env, scheduler, cpu, transmit)
        rtos = WindScheduler(env)
        rtos.spawn("tDWCS", engine.task_body, priority=100)
        return engine, sent

    def test_paced_delivery_at_stream_rate(self):
        env = Environment()
        engine, sent = self._build(env)

        def producer():
            for k in range(20):
                engine.submit(MediaFrame("s1", k, FrameType.I, 1000, 0.0))
                yield env.timeout(1.0)  # inject quickly (backlogged stream)

        env.process(producer())
        env.run(until=2_000_000.0)
        engine.stop()
        # ~2s / 40ms period = ~50 release slots, 20 frames available
        assert len(sent) == 20
        # paced: consecutive sends ~period apart, not back-to-back
        gaps = [b[0] - a[0] for a, b in zip(sent, sent[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(40_000.0, rel=0.1)

    def test_queuing_delay_recorded(self):
        env = Environment()
        engine, _sent = self._build(env)

        def producer():
            for k in range(10):
                engine.submit(MediaFrame("s1", k, FrameType.I, 1000, 0.0))
                yield env.timeout(1.0)

        env.process(producer())
        env.run(until=1_000_000.0)
        engine.stop()
        stats = engine.delay_stats["s1"]
        assert stats.count == 10
        # backlogged: later frames wait ~k*period
        assert stats.max > 5 * 40_000.0 * 0.8
        assert engine.frames_sent["s1"] == 10

    def test_engine_sleeps_when_idle(self):
        env = Environment()
        engine, sent = self._build(env)
        env.run(until=500_000.0)
        # no producers: nothing sent, simulation didn't spin forever
        assert sent == []

    def test_wakeup_on_submit(self):
        env = Environment()
        engine, sent = self._build(env)

        def late_producer():
            yield env.timeout(300_000.0)
            engine.submit(MediaFrame("s1", 0, FrameType.I, 1000, 0.0))

        env.process(late_producer())
        env.run(until=400_000.0)
        assert len(sent) == 1
        # served promptly after submit (release = enqueue time for frame 0
        # is anchor+period-period = anchor)
        assert sent[0][0] < 310_000.0
