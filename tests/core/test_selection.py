"""Selection structures: rule order and dual-heaps/linear-scan equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DWCSScheduler, DualHeaps, LinearScan, StreamSpec
from repro.core.selection import Entry, compare_entries
from repro.core.attributes import StreamState
from repro.fixedpoint import FixedPointContext, OpCounter
from repro.media import FrameType, MediaFrame


def entry(stream_id, deadline, x, y, enq=0.0, seq=0):
    state = StreamState(
        StreamSpec(stream_id, period_us=1000.0, loss_x=x, loss_y=y),
        created_seq=seq,
    )
    state.deadline_us = deadline
    return Entry(state, head_enqueued_at=enq)


class TestCompareEntries:
    def cmp(self, a, b):
        return compare_entries(a, b, FixedPointContext(), OpCounter())

    def test_total_order_antisymmetry(self):
        a = entry("a", 100.0, 1, 4, seq=0)
        b = entry("b", 100.0, 2, 4, seq=1)
        assert self.cmp(a, b) == -self.cmp(b, a)

    def test_deadline_dominates_constraint(self):
        early_loose = entry("a", 100.0, 3, 4)
        late_strict = entry("b", 200.0, 0, 4)
        assert self.cmp(early_loose, late_strict) < 0

    def test_self_compare_zero(self):
        a = entry("a", 100.0, 1, 4)
        assert self.cmp(a, a) == 0

    def test_none_deadline_sorts_last(self):
        anchored = entry("a", 100.0, 1, 4)
        floating = entry("b", None, 1, 4, seq=1)
        assert self.cmp(anchored, floating) < 0


class TestStructureEquivalence:
    @given(
        specs=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e6),  # deadline
                st.integers(0, 5),  # x
                st.integers(1, 6),  # y (adjusted to >= x)
                st.floats(min_value=0.0, max_value=1e5),  # head enqueue time
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=100)
    def test_dual_heaps_and_linear_scan_agree(self, specs):
        ctx1, ctx2 = FixedPointContext(), FixedPointContext()
        scan, heaps = LinearScan(ctx1), DualHeaps(ctx2)
        ops = OpCounter()
        for i, (dl, x, y, enq) in enumerate(specs):
            y = max(y, x)
            if y == 0:
                y = 1
            e1 = entry(f"s{i}", dl, x, y, enq=enq, seq=i)
            e2 = entry(f"s{i}", dl, x, y, enq=enq, seq=i)
            scan.add(e1, ops)
            heaps.add(e2, ops)
        a = scan.select(ops)
        b = heaps.select(ops)
        assert a is not None and b is not None
        assert a.stream_id == b.stream_id

    @given(
        n_streams=st.integers(2, 6),
        n_frames=st.integers(1, 12),
        periods=st.lists(st.sampled_from([100.0, 250.0, 400.0]), min_size=6, max_size=6),
        step=st.sampled_from([50.0, 150.0, 350.0]),
    )
    @settings(max_examples=40, deadline=None)
    def test_full_scheduler_runs_identically(self, n_streams, n_frames, periods, step):
        """Whole-run equivalence: same service/drop history either way."""
        histories = []
        for factory in (LinearScan, DualHeaps):
            s = DWCSScheduler(selection_factory=factory, work_conserving=True)
            for i in range(n_streams):
                s.add_stream(
                    StreamSpec(f"s{i}", period_us=periods[i], loss_x=i % 3, loss_y=(i % 3) + 2)
                )
            for i in range(n_streams):
                for k in range(n_frames):
                    s.enqueue(MediaFrame(f"s{i}", k, FrameType.I, 1000, 0.0), 0.0)
            hist = []
            t = 0.0
            guard = 0
            while s.backlog and guard < 1000:
                d = s.schedule(t)
                hist.append(
                    (
                        d.serviced.stream_id if d.serviced else None,
                        d.serviced.frame.seqno if d.serviced else -1,
                        tuple((x.stream_id, x.frame.seqno) for x in d.dropped),
                    )
                )
                t += step
                guard += 1
            histories.append(hist)
        assert histories[0] == histories[1]

    def test_heap_structure_charges_fewer_scan_ops_at_scale(self):
        """The dual-heap build exists for O(log n) selection."""
        ctxs = (FixedPointContext(), FixedPointContext())
        scan, heaps = LinearScan(ctxs[0]), DualHeaps(ctxs[1])
        scan_ops, heap_ops = OpCounter(), OpCounter()
        n = 64
        for i in range(n):
            scan.add(entry(f"s{i}", float(i * 10), 1, 4, seq=i), scan_ops)
            heaps.add(entry(f"s{i}", float(i * 10), 1, 4, seq=i), heap_ops)
        scan_before = scan_ops.total() + ctxs[0].ops.total()
        heap_before = heap_ops.total() + ctxs[1].ops.total()
        scan.select(scan_ops)
        heaps.select(heap_ops)
        scan_cost = scan_ops.total() + ctxs[0].ops.total() - scan_before
        heap_cost = heap_ops.total() + ctxs[1].ops.total() - heap_before
        assert heap_cost < scan_cost / 2

    def test_remove_and_reorder(self):
        ctx = FixedPointContext()
        heaps = DualHeaps(ctx)
        ops = OpCounter()
        entries = [entry(f"s{i}", float(100 + i), 1, 4, seq=i) for i in range(5)]
        for e in entries:
            heaps.add(e, ops)
        heaps.remove(entries[0], ops)
        assert heaps.select(ops).stream_id == "s1"
        entries[4].state.deadline_us = 1.0
        heaps.reorder(entries[4], ops)
        assert heaps.select(ops).stream_id == "s4"
        assert len(heaps) == 4
