"""Per-stream ring buffers: pinned memory and hardware-queue builds."""

import pytest

from repro.core import CircularBufferQueue, HardwareQueueRing, QueueFullError
from repro.fixedpoint import OpCounter
from repro.hw import HardwareQueueFile
from repro.media import FrameType, MediaFrame
from repro.media.frames import FrameDescriptor


def desc(seq, stream="s1"):
    return FrameDescriptor(
        frame=MediaFrame(stream, seq, FrameType.I, 1000, 0.0),
        deadline_us=float(seq),
    )


@pytest.fixture(
    params=["memory", "hardware"],
    ids=["circular-buffer", "hardware-queue"],
)
def ring(request):
    if request.param == "memory":
        return CircularBufferQueue("s1", capacity=4)
    return HardwareQueueRing("s1", HardwareQueueFile(), base=0, capacity=4)


class TestRingSemantics:
    def test_fifo_order(self, ring):
        ops = OpCounter()
        for i in range(3):
            ring.enqueue(desc(i), ops)
        assert [ring.pop(ops).frame.seqno for _ in range(3)] == [0, 1, 2]

    def test_head_peeks_without_consuming(self, ring):
        ops = OpCounter()
        ring.enqueue(desc(7), ops)
        assert ring.head(ops).frame.seqno == 7
        assert len(ring) == 1

    def test_empty_head_is_none(self, ring):
        assert ring.head(OpCounter()) is None

    def test_pop_empty_raises(self, ring):
        with pytest.raises(IndexError):
            ring.pop(OpCounter())

    def test_full_ring_rejects(self, ring):
        ops = OpCounter()
        for i in range(4):
            ring.enqueue(desc(i), ops)
        assert ring.full
        with pytest.raises(QueueFullError):
            ring.enqueue(desc(9), ops)

    def test_wraparound(self, ring):
        ops = OpCounter()
        for i in range(4):
            ring.enqueue(desc(i), ops)
        ring.pop(ops)
        ring.pop(ops)
        ring.enqueue(desc(4), ops)
        ring.enqueue(desc(5), ops)
        assert [ring.pop(ops).frame.seqno for _ in range(4)] == [2, 3, 4, 5]

    def test_counters(self, ring):
        ops = OpCounter()
        for i in range(3):
            ring.enqueue(desc(i), ops)
        ring.pop(ops)
        assert ring.enqueued_total == 3
        assert ring.dequeued_total == 1
        assert len(ring) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CircularBufferQueue("s", capacity=0)


class TestOpProfiles:
    def test_memory_ring_charges_mem_ops(self):
        ring = CircularBufferQueue("s1", capacity=4)
        ops = OpCounter()
        ring.enqueue(desc(0), ops)
        ring.pop(ops)
        assert ops.mem_writes > 0
        assert ops.mem_reads > 0
        assert ops.mmio_reads == 0
        assert ops.mmio_writes == 0

    def test_hardware_ring_charges_mmio_for_slots(self):
        ring = HardwareQueueRing("s1", HardwareQueueFile(), base=0, capacity=4)
        ops = OpCounter()
        ring.enqueue(desc(0), ops)
        ring.pop(ops)
        assert ops.mmio_writes >= 1
        assert ops.mmio_reads >= 1

    def test_hardware_ring_register_window_bounds(self):
        hq = HardwareQueueFile()
        with pytest.raises(ValueError):
            HardwareQueueRing("s1", hq, base=1000, capacity=10)
        # exactly at the end is fine
        HardwareQueueRing("s1", hq, base=1000, capacity=4)

    def test_hardware_ring_handle_table_bounded(self):
        ring = HardwareQueueRing("s1", HardwareQueueFile(), base=0, capacity=4)
        ops = OpCounter()
        for i in range(100):
            ring.enqueue(desc(i), ops)
            ring.pop(ops)
        assert len(ring._handles) <= ring.capacity

    def test_two_rings_share_register_file(self):
        hq = HardwareQueueFile()
        r1 = HardwareQueueRing("s1", hq, base=0, capacity=8)
        r2 = HardwareQueueRing("s2", hq, base=8, capacity=8)
        ops = OpCounter()
        r1.enqueue(desc(1, "s1"), ops)
        r2.enqueue(desc(2, "s2"), ops)
        assert r1.pop(ops).frame.stream_id == "s1"
        assert r2.pop(ops).frame.stream_id == "s2"


class TestHandleLifecycle:
    """HardwareQueueRing's 32-bit handle space and side table."""

    def test_next_handle_wraps_past_32_bits_skipping_zero(self):
        ring = HardwareQueueRing("s1", HardwareQueueFile(), base=0, capacity=4)
        ring._next_handle = 0xFFFFFFFF
        ops = OpCounter()
        ring.enqueue(desc(0), ops)  # consumes 0xFFFFFFFF
        # the increment wrapped to 0, which means "empty register" and must
        # be skipped — the next handle issued is 1
        assert ring._next_handle == 1
        ring.enqueue(desc(1), ops)
        assert ring.registers.inspect(0) == 0xFFFFFFFF
        assert ring.registers.inspect(1) == 1
        assert ring.pop(ops).frame.seqno == 0
        assert ring.pop(ops).frame.seqno == 1

    def test_pop_releases_stale_handle(self):
        ring = HardwareQueueRing("s1", HardwareQueueFile(), base=0, capacity=4)
        ops = OpCounter()
        ring.enqueue(desc(0), ops)
        handle = ring.registers.inspect(0)
        assert handle in ring._handles
        ring.pop(ops)
        assert handle not in ring._handles

    def test_side_table_bounded_under_interleaved_churn(self):
        """Mixed enqueue/pop traffic (not strict lock-step) must never grow
        the handle table past the ring capacity."""
        ring = HardwareQueueRing("s1", HardwareQueueFile(), base=0, capacity=8)
        ops = OpCounter()
        seq = 0
        for round_ in range(50):
            burst = (round_ % 8) + 1
            for _ in range(burst):
                if not ring.full:
                    ring.enqueue(desc(seq), ops)
                    seq += 1
            drain = (round_ % 5) + 1
            for _ in range(drain):
                if not ring.empty:
                    ring.pop(ops)
            assert len(ring._handles) <= ring.capacity
        while not ring.empty:
            ring.pop(ops)
        assert len(ring._handles) == 0

    def test_handle_reuse_after_wraparound_churn(self):
        """Handles stay resolvable across the 32-bit wrap even with live
        descriptors in the ring."""
        ring = HardwareQueueRing("s1", HardwareQueueFile(), base=0, capacity=4)
        ring._next_handle = 0xFFFFFFFE
        ops = OpCounter()
        for i in range(8):  # crosses the wrap with a part-full ring
            ring.enqueue(desc(i), ops)
            if i % 2 == 1:
                ring.pop(ops)
                ring.pop(ops)
        assert ring.empty
        assert len(ring._handles) == 0
