"""Coupled vs asynchronous dispatch strategies."""

import pytest

from repro.core import (
    AsyncDispatcher,
    CoupledDispatcher,
    DWCSScheduler,
    StreamingEngine,
    StreamSpec,
)
from repro.hw import CPU, DataCache, I960RD_66
from repro.media import FrameType, MediaFrame
from repro.rtos import WindScheduler
from repro.sim import Environment, S


def build(env, dispatcher_cls, **disp_kw):
    scheduler = DWCSScheduler(work_conserving=False)
    scheduler.add_stream(StreamSpec("s1", period_us=10_000.0, loss_x=1, loss_y=4))
    cpu = CPU(I960RD_66, cache=DataCache(enabled=False))
    sent = []

    def transmit(desc):
        sent.append((env.now, desc))
        yield env.timeout(10.0)

    dispatcher = dispatcher_cls(env, scheduler, cpu, transmit, **disp_kw)
    engine = StreamingEngine(env, scheduler, cpu, transmit, dispatcher=dispatcher)
    rtos = WindScheduler(env)
    rtos.spawn("tDWCS", engine.task_body, priority=100)
    if isinstance(dispatcher, AsyncDispatcher):
        rtos.spawn("tDispatch", dispatcher.task_body, priority=90)
    return engine, dispatcher, sent


@pytest.mark.parametrize("dispatcher_cls", [CoupledDispatcher, AsyncDispatcher])
def test_all_frames_delivered(dispatcher_cls):
    env = Environment()
    engine, dispatcher, sent = build(env, dispatcher_cls)

    def producer():
        for k in range(12):
            engine.submit(MediaFrame("s1", k, FrameType.I, 1000, 0.0))
            yield env.timeout(1.0)

    env.process(producer())
    env.run(until=1 * S)
    assert len(sent) == 12
    assert dispatcher.dispatched == 12
    assert dispatcher.backlog == 0


def test_coupled_has_zero_queue_residence():
    env = Environment()
    engine, dispatcher, _sent = build(env, CoupledDispatcher)

    def producer():
        for k in range(6):
            engine.submit(MediaFrame("s1", k, FrameType.I, 1000, 0.0))
            yield env.timeout(1.0)

    env.process(producer())
    env.run(until=1 * S)
    assert dispatcher.queue_residence_us.max == 0.0


def test_async_records_queue_residence():
    env = Environment()
    engine, dispatcher, _sent = build(env, AsyncDispatcher)

    def producer():
        for k in range(6):
            engine.submit(MediaFrame("s1", k, FrameType.I, 1000, 0.0))
            yield env.timeout(1.0)

    env.process(producer())
    env.run(until=1 * S)
    assert dispatcher.queue_residence_us.count == 6
    assert dispatcher.queue_residence_us.max > 0.0


def test_async_capacity_validation():
    env = Environment()
    scheduler = DWCSScheduler()
    cpu = CPU(I960RD_66)
    with pytest.raises(ValueError):
        AsyncDispatcher(env, scheduler, cpu, lambda d: iter(()), capacity=0)


def test_async_lets_scheduler_decide_while_dispatch_lags():
    """The paper's stated benefit: decisions at a higher rate. Make the
    dispatch task slow (low priority behind a hog) and check the scheduler
    keeps handing frames over."""
    env = Environment()
    scheduler = DWCSScheduler(work_conserving=True)
    scheduler.add_stream(StreamSpec("s1", period_us=1e9, loss_x=1, loss_y=4))
    cpu = CPU(I960RD_66, cache=DataCache(enabled=False))
    sent = []

    def transmit(desc):
        sent.append(desc)
        yield env.timeout(1.0)

    dispatcher = AsyncDispatcher(env, scheduler, cpu, transmit)
    engine = StreamingEngine(env, scheduler, cpu, transmit, dispatcher=dispatcher)
    rtos = WindScheduler(env)
    rtos.spawn("tDWCS", engine.task_body, priority=100)
    rtos.spawn("tDispatch", dispatcher.task_body, priority=150)  # worse prio

    def hog(task):
        # a continuously-runnable task between the two priorities: the
        # scheduler (100) preempts it, the dispatch task (150) never runs
        while True:
            yield task.compute(500.0)

    rtos.spawn("tHog", hog, priority=120)
    for k in range(20):
        scheduler.enqueue(MediaFrame("s1", k, FrameType.I, 1000, 0.0), 0.0)
    env.run(until=50_000.0)
    # every frame left the scheduler (decisions at full rate); one of them
    # sits in the starved dispatch task's hands, the rest in the queue
    assert scheduler.backlog == 0
    assert dispatcher.dispatched + dispatcher.backlog >= 19
    # ...while dispatch itself never ran behind the hog
    assert dispatcher.dispatched == 0
    assert sent == []
