"""Property-based invariants of the DWCS window-constraint machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DWCSScheduler, StreamSpec
from repro.media import FrameType, MediaFrame

stream_params = st.tuples(
    st.sampled_from([100.0, 200.0, 400.0, 800.0]),  # period
    st.integers(0, 3),  # x
    st.integers(1, 5),  # extra window beyond x
    st.booleans(),  # drop_late
)


def build(specs):
    s = DWCSScheduler(work_conserving=True)
    for i, (period, x, extra, drop_late) in enumerate(specs):
        y = max(1, x + extra)
        s.add_stream(
            StreamSpec(f"s{i}", period_us=period, loss_x=x, loss_y=y, drop_late=drop_late)
        )
    return s


def run(s, n_frames, step):
    for sid in list(s.streams):
        for k in range(n_frames):
            s.enqueue(MediaFrame(sid, k, FrameType.I, 1000, 0.0), 0.0)
    t, guard = 0.0, 0
    while s.backlog and guard < 2000:
        s.schedule(t)
        # window invariant must hold after every cycle
        for state in s.streams.values():
            assert 0 <= state.x_cur <= state.y_cur
            assert state.y_cur >= 1
        t += step
        guard += 1
    return s


@given(
    specs=st.lists(stream_params, min_size=1, max_size=5),
    n_frames=st.integers(1, 20),
    step=st.sampled_from([30.0, 120.0, 500.0]),
)
@settings(max_examples=60, deadline=None)
def test_window_invariant_and_conservation(specs, n_frames, step):
    s = run(build(specs), n_frames, step)
    for sid, state in s.streams.items():
        q = s.queues[sid]
        accounted = state.serviced + state.sent_late + state.dropped + len(q)
        assert accounted == q.enqueued_total == n_frames


@given(
    specs=st.lists(stream_params, min_size=1, max_size=4),
    n_frames=st.integers(2, 25),
    step=st.sampled_from([30.0, 250.0, 900.0]),
)
@settings(max_examples=60, deadline=None)
def test_loss_bound_without_violations(specs, n_frames, step):
    """With zero violations, drops per stream obey the x/y window bound."""
    s = run(build(specs), n_frames, step)
    for state in s.streams.values():
        if state.violations == 0:
            x, y = state.spec.loss_x, state.spec.loss_y
            consumed = state.serviced + state.sent_late + state.dropped
            windows = -(-consumed // y) if y else 0  # ceil
            assert state.dropped <= windows * x + x  # current window slack


@given(
    specs=st.lists(stream_params, min_size=1, max_size=4),
    n_frames=st.integers(1, 15),
)
@settings(max_examples=40, deadline=None)
def test_fast_service_never_drops(specs, n_frames):
    """Serving faster than every period ⇒ no misses, drops, or violations."""
    s = run(build(specs), n_frames, step=10.0)  # far faster than min period
    for state in s.streams.values():
        assert state.dropped == 0
        assert state.violations == 0
        assert state.sent_late == 0
        assert state.serviced == n_frames


@given(
    x=st.integers(0, 4),
    extra=st.integers(0, 4),
    n_windows=st.integers(1, 6),
)
@settings(max_examples=50, deadline=None)
def test_all_serviced_window_cycles_exactly(x, extra, n_windows):
    """On-time service cycles the window with period (y - x) for lossy
    streams (once y-x packets are served the rest may all be lost, so the
    window resets early) and period y for zero-tolerance streams."""
    y = max(1, x + extra)
    cycle = max(1, y - x) if x > 0 else y
    s = DWCSScheduler(work_conserving=True)
    state = s.add_stream(StreamSpec("s", period_us=1e6, loss_x=x, loss_y=y))
    for k in range(cycle * n_windows):
        s.enqueue(MediaFrame("s", k, FrameType.I, 100, 0.0), 0.0)
    while s.backlog:
        s.schedule(0.0)
    assert (state.x_cur, state.y_cur) == (x, y)
    assert state.violations == 0
    assert state.window_resets == n_windows
