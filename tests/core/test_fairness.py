"""DWCS bandwidth-sharing semantics under persistent overload.

Related-work framing in the paper: DWCS "has the ability to share bandwidth
among competing clients in strict proportion to their deadlines and
loss-tolerances". These tests pin the sharing behaviour the figures rely
on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DWCSScheduler, StreamSpec
from repro.media import FrameType, MediaFrame


def overload_run(specs, n_frames=60, service_period=None):
    """Serve *specs* at half the aggregate required rate; return states."""
    s = DWCSScheduler(work_conserving=True)
    for spec in specs:
        s.add_stream(spec)
    for spec in specs:
        for k in range(n_frames):
            s.enqueue(MediaFrame(spec.stream_id, k, FrameType.I, 1000, 0.0), 0.0)
    need = min(sp.period_us for sp in specs) / len(specs)
    step = service_period if service_period is not None else 2.0 * need * len(specs)
    t = 0.0
    while s.backlog:
        s.schedule(t)
        t += step
    return s


class TestEqualStreamsShareEqually:
    def test_identical_streams_serve_equally(self):
        specs = [
            StreamSpec(f"s{i}", period_us=100.0, loss_x=1, loss_y=2) for i in range(4)
        ]
        s = overload_run(specs)
        serviced = [s.streams[sp.stream_id].serviced for sp in specs]
        assert max(serviced) - min(serviced) <= 2  # near-perfect balance

    @given(n=st.integers(2, 6), x=st.integers(0, 2))
    @settings(max_examples=20, deadline=None)
    def test_equal_split_for_any_population(self, n, x):
        specs = [
            StreamSpec(f"s{i}", period_us=100.0, loss_x=x, loss_y=x + 2)
            for i in range(n)
        ]
        s = overload_run(specs, n_frames=30)
        counts = [
            s.streams[sp.stream_id].serviced + s.streams[sp.stream_id].sent_late
            for sp in specs
        ]
        assert max(counts) - min(counts) <= 2


class TestLossToleranceShapesTheShare:
    def test_stricter_stream_gets_more_on_time_service(self):
        """Between a 0-loss and a 1/2-loss stream in overload, the strict
        one's packets go out (late if need be) while the lossy one absorbs
        the drops."""
        strict = StreamSpec("strict", period_us=100.0, loss_x=0, loss_y=4, drop_late=False)
        lossy = StreamSpec("lossy", period_us=100.0, loss_x=1, loss_y=2)
        s = overload_run([strict, lossy], n_frames=60)
        st_strict = s.streams["strict"]
        st_lossy = s.streams["lossy"]
        assert st_strict.dropped == 0
        assert st_lossy.dropped > 0
        delivered_strict = st_strict.serviced + st_strict.sent_late
        delivered_lossy = st_lossy.serviced + st_lossy.sent_late
        assert delivered_strict == 60
        assert delivered_lossy < 60

    def test_sustained_violation_regime_alternates_drop_and_late(self):
        """Once a stream is in *sustained* violation (every packet past its
        deadline), each violation restarts the window, re-arming exactly
        one drop — so delivery converges to the drop/late-send alternation
        at 1/2, independent of x/y. This is the regime behind Figure 7's
        halved bandwidth; the x/y bound proper applies only while
        violation-free (see test_loss_bound_without_violations)."""
        for y in (2, 3, 4):
            spec = StreamSpec("s", period_us=100.0, loss_x=1, loss_y=y)
            s = overload_run([spec], n_frames=40, service_period=900.0)
            state = s.streams["s"]
            consumed = state.serviced + state.sent_late + state.dropped
            assert state.violations > 0  # we really are in that regime
            assert state.dropped / consumed == pytest.approx(0.5, abs=0.05)

    @given(
        x=st.integers(1, 3),
        extra=st.integers(1, 3),
        step=st.sampled_from([400.0, 900.0]),
    )
    @settings(max_examples=20, deadline=None)
    def test_sustained_drop_fraction_ceiling_is_x_over_x_plus_1(self, x, extra, step):
        """The universal ceiling under sustained lateness: x consecutive
        drops exhaust x', then the violation transmits one packet late and
        restarts the window — fraction ≤ x/(x+1) (which dominates x/y
        because y ≥ x+1)."""
        y = x + extra
        spec = StreamSpec("s", period_us=100.0, loss_x=x, loss_y=y)
        s = overload_run([spec], n_frames=10 * y, service_period=step)
        state = s.streams["s"]
        consumed = state.serviced + state.sent_late + state.dropped
        assert state.dropped / consumed <= x / (x + 1) + 1e-9
