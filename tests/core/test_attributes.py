"""StreamSpec validation and StreamState mechanics."""

import pytest

from repro.core import StreamSpec, StreamState
from repro.fixedpoint import Fraction


class TestStreamSpec:
    def test_basic(self):
        spec = StreamSpec("s1", period_us=40_000.0, loss_x=1, loss_y=4)
        assert spec.loss_tolerance == Fraction(1, 4)

    def test_zero_loss_tolerance_allowed(self):
        spec = StreamSpec("s1", period_us=1000.0, loss_x=0, loss_y=5)
        assert spec.loss_tolerance.is_zero()

    def test_full_loss_tolerance_allowed(self):
        StreamSpec("s1", period_us=1000.0, loss_x=3, loss_y=3)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            StreamSpec("s1", period_us=0.0, loss_x=1, loss_y=2)

    def test_x_greater_than_y_rejected(self):
        with pytest.raises(ValueError):
            StreamSpec("s1", period_us=1.0, loss_x=3, loss_y=2)

    def test_negative_x_rejected(self):
        with pytest.raises(ValueError):
            StreamSpec("s1", period_us=1.0, loss_x=-1, loss_y=2)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            StreamSpec("s1", period_us=1.0, loss_x=0, loss_y=0)


class TestStreamState:
    def spec(self, x=1, y=4):
        return StreamSpec("s1", period_us=1000.0, loss_x=x, loss_y=y)

    def test_initial_window_matches_spec(self):
        st = StreamState(self.spec(2, 5))
        assert (st.x_cur, st.y_cur) == (2, 5)
        assert st.constraint == Fraction(2, 5)

    def test_first_deadline_anchoring(self):
        st = StreamState(self.spec())
        st.set_first_deadline(500.0)
        assert st.deadline_us == 1500.0
        st.set_first_deadline(9999.0)  # idempotent
        assert st.deadline_us == 1500.0

    def test_advance_deadline(self):
        st = StreamState(self.spec())
        st.set_first_deadline(0.0)
        st.advance_deadline()
        assert st.deadline_us == 2000.0

    def test_advance_before_anchor_raises(self):
        with pytest.raises(RuntimeError):
            StreamState(self.spec()).advance_deadline()

    def test_reset_window(self):
        st = StreamState(self.spec(2, 5))
        st.x_cur, st.y_cur = 0, 1
        st.reset_window()
        assert (st.x_cur, st.y_cur) == (2, 5)
        assert st.window_resets == 1
