"""SortedList and CalendarQueue schedule representations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CalendarQueue,
    DWCSScheduler,
    DualHeaps,
    LinearScan,
    SortedList,
    StreamSpec,
)
from repro.core.attributes import StreamState
from repro.core.selection import Entry
from repro.fixedpoint import FixedPointContext, OpCounter
from repro.media import FrameType, MediaFrame


def entry(stream_id, deadline, x=1, y=4, enq=0.0, seq=0):
    state = StreamState(
        StreamSpec(stream_id, period_us=1000.0, loss_x=x, loss_y=y),
        created_seq=seq,
    )
    state.deadline_us = deadline
    return Entry(state, head_enqueued_at=enq)


@pytest.fixture(params=[SortedList, CalendarQueue], ids=["sorted-list", "calendar"])
def structure(request):
    return request.param(FixedPointContext())


class TestBasicOperations:
    def test_select_min_deadline(self, structure):
        ops = OpCounter()
        entries = [entry(f"s{i}", float(100 * (i + 1)), seq=i) for i in range(5)]
        for e in reversed(entries):
            structure.add(e, ops)
        assert structure.select(ops) is entries[0]
        assert len(structure) == 5

    def test_empty_select_none(self, structure):
        assert structure.select(OpCounter()) is None

    def test_duplicate_add_rejected(self, structure):
        ops = OpCounter()
        e = entry("s0", 100.0)
        structure.add(e, ops)
        with pytest.raises(ValueError):
            structure.add(e, ops)

    def test_remove(self, structure):
        ops = OpCounter()
        a, b = entry("a", 100.0, seq=0), entry("b", 200.0, seq=1)
        structure.add(a, ops)
        structure.add(b, ops)
        structure.remove(a, ops)
        assert structure.select(ops) is b
        assert len(structure) == 1

    def test_remove_missing_raises(self, structure):
        with pytest.raises(KeyError):
            structure.remove(entry("ghost", 1.0), OpCounter())

    def test_reorder_after_key_change(self, structure):
        ops = OpCounter()
        a, b = entry("a", 100.0, seq=0), entry("b", 200.0, seq=1)
        structure.add(a, ops)
        structure.add(b, ops)
        a.state.deadline_us = 900.0
        structure.reorder(a, ops)
        assert structure.select(ops) is b

    def test_late_entries(self, structure):
        ops = OpCounter()
        entries = [entry(f"s{i}", float(100 * (i + 1)), seq=i) for i in range(5)]
        for e in entries:
            structure.add(e, ops)
        late = structure.late_entries(250.0, ops)
        assert {e.stream_id for e in late} == {"s0", "s1"}

    def test_deadline_ties_resolved_by_constraint(self, structure):
        ops = OpCounter()
        loose = entry("loose", 100.0, x=3, y=4, seq=0)
        strict = entry("strict", 100.0, x=1, y=4, seq=1)
        structure.add(loose, ops)
        structure.add(strict, ops)
        assert structure.select(ops) is strict

    def test_unanchored_entries_sort_last(self, structure):
        ops = OpCounter()
        anchored = entry("a", 100.0, seq=0)
        floating = entry("f", None, seq=1)
        structure.add(floating, ops)
        structure.add(anchored, ops)
        assert structure.select(ops) is anchored


class TestSortedListInvariant:
    def test_stays_sorted_under_churn(self):
        sl = SortedList(FixedPointContext())
        ops = OpCounter()
        entries = [entry(f"s{i}", 10.0 + (i * 37) % 100, seq=i) for i in range(20)]
        for e in entries:
            sl.add(e, ops)
        assert sl.check_sorted()
        entries[3].state.deadline_us = 999.0
        sl.reorder(entries[3], ops)
        entries[11].state.deadline_us = 0.5
        sl.reorder(entries[11], ops)
        assert sl.check_sorted()
        assert sl.select(ops) is entries[11]


class TestCalendarQueueSpecifics:
    def test_invalid_day_width(self):
        with pytest.raises(ValueError):
            CalendarQueue(FixedPointContext(), day_width_us=0)

    def test_equal_deadlines_share_bucket(self):
        cq = CalendarQueue(FixedPointContext(), day_width_us=10.0)
        ops = OpCounter()
        a, b = entry("a", 105.0, seq=0), entry("b", 105.0, x=0, y=4, seq=1)
        cq.add(a, ops)
        cq.add(b, ops)
        # zero-tolerance b wins the tie (rule 2)
        assert cq.select(ops) is b

    def test_selection_cost_independent_of_far_entries(self):
        """Bucketing pays: entries in far days cost nothing at select."""
        ctx = FixedPointContext()
        cq = CalendarQueue(ctx, day_width_us=10.0)
        ops = OpCounter()
        cq.add(entry("near", 5.0, seq=0), ops)
        for i in range(50):
            cq.add(entry(f"far{i}", 1e6 + i * 100, seq=i + 1), ops)
        before = ops.total() + ctx.ops.total()
        cq.select(ops)
        cost = ops.total() + ctx.ops.total() - before
        # min over occupied days + a 1-entry bucket: no per-far-entry work
        assert cost < 120


class TestWholeSchedulerEquivalence:
    @given(
        n_streams=st.integers(2, 5),
        n_frames=st.integers(1, 10),
        step=st.sampled_from([40.0, 180.0, 700.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_four_structures_run_identically(self, n_streams, n_frames, step):
        histories = []
        for factory in (LinearScan, DualHeaps, SortedList, CalendarQueue):
            s = DWCSScheduler(selection_factory=factory, work_conserving=True)
            for i in range(n_streams):
                s.add_stream(
                    StreamSpec(
                        f"s{i}",
                        period_us=150.0 + 90.0 * i,
                        loss_x=i % 3,
                        loss_y=(i % 3) + 2,
                    )
                )
            for i in range(n_streams):
                for k in range(n_frames):
                    s.enqueue(MediaFrame(f"s{i}", k, FrameType.I, 1000, 0.0), 0.0)
            hist = []
            t, guard = 0.0, 0
            while s.backlog and guard < 600:
                d = s.schedule(t)
                hist.append(
                    (
                        d.serviced.stream_id if d.serviced else None,
                        tuple((x.stream_id, x.frame.seqno) for x in d.dropped),
                    )
                )
                t += step
                guard += 1
            histories.append(hist)
        assert histories[0] == histories[1] == histories[2] == histories[3]
