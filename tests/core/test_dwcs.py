"""DWCS algorithm semantics: precedence rules, window adjustments, drops."""

import pytest

from repro.core import DWCSScheduler, LinearScan, StreamSpec
from repro.fixedpoint import FixedPointContext, SoftwareFloatContext
from repro.media import FrameType, MediaFrame


def make_frame(stream, seq, size=1000):
    return MediaFrame(stream, seq, FrameType.I, size, pts_us=0.0)


def sched(**kw):
    kw.setdefault("work_conserving", True)
    return DWCSScheduler(**kw)


def fill(s, stream, n, start_seq=0, now=0.0):
    for i in range(n):
        s.enqueue(make_frame(stream, start_seq + i), now)


class TestPrecedenceRules:
    def test_rule1_earliest_deadline_first(self):
        s = sched()
        s.add_stream(StreamSpec("slow", period_us=2000.0, loss_x=1, loss_y=2))
        s.add_stream(StreamSpec("fast", period_us=1000.0, loss_x=1, loss_y=2))
        fill(s, "slow", 1)
        fill(s, "fast", 1)
        # fast's first deadline (t=1000) < slow's (t=2000)
        assert s.schedule(0.0).serviced.stream_id == "fast"

    def test_rule2_equal_deadline_lowest_constraint(self):
        s = sched()
        s.add_stream(StreamSpec("tolerant", period_us=1000.0, loss_x=3, loss_y=4))
        s.add_stream(StreamSpec("strict", period_us=1000.0, loss_x=1, loss_y=4))
        fill(s, "tolerant", 1)
        fill(s, "strict", 1)
        assert s.schedule(0.0).serviced.stream_id == "strict"

    def test_rule3_zero_constraints_highest_denominator(self):
        s = sched()
        s.add_stream(StreamSpec("shortwin", period_us=1000.0, loss_x=0, loss_y=2))
        s.add_stream(StreamSpec("longwin", period_us=1000.0, loss_x=0, loss_y=9))
        fill(s, "shortwin", 1)
        fill(s, "longwin", 1)
        assert s.schedule(0.0).serviced.stream_id == "longwin"

    def test_rule4_equal_nonzero_lowest_numerator(self):
        s = sched()
        # same constraint value 1/2 == 2/4, different numerators
        s.add_stream(StreamSpec("bignum", period_us=1000.0, loss_x=2, loss_y=4))
        s.add_stream(StreamSpec("smallnum", period_us=1000.0, loss_x=1, loss_y=2))
        fill(s, "bignum", 1)
        fill(s, "smallnum", 1)
        assert s.schedule(0.0).serviced.stream_id == "smallnum"

    def test_rule5_fcfs(self):
        s = sched()
        s.add_stream(StreamSpec("first", period_us=1000.0, loss_x=1, loss_y=2))
        s.add_stream(StreamSpec("second", period_us=1000.0, loss_x=1, loss_y=2))
        # identical attributes; 'first' enqueued earlier in sim time
        s.enqueue(make_frame("first", 0), 0.0)
        s.enqueue(make_frame("second", 0), 0.0)
        # deadlines anchor at the same time; head arrival times equal, so
        # stream creation order breaks the tie
        assert s.schedule(0.0).serviced.stream_id == "first"

    def test_empty_scheduler_returns_none(self):
        s = sched()
        s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=1, loss_y=2))
        d = s.schedule(0.0)
        assert d.serviced is None
        assert d.dropped == []


class TestWindowAdjustments:
    def test_serviced_decrements_window(self):
        s = sched()
        st = s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=1, loss_y=4))
        fill(s, "s1", 2)
        s.schedule(0.0)
        assert (st.x_cur, st.y_cur) == (1, 3)

    def test_serviced_resets_when_x_equals_y(self):
        s = sched()
        st = s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=1, loss_y=2))
        fill(s, "s1", 2)
        s.schedule(0.0)  # y': 2->1 == x' -> reset
        assert (st.x_cur, st.y_cur) == (1, 2)
        assert st.window_resets == 1

    def test_zero_tolerance_window_cycles(self):
        s = sched()
        st = s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=0, loss_y=3))
        fill(s, "s1", 3)
        s.schedule(0.0)
        assert (st.x_cur, st.y_cur) == (0, 2)
        s.schedule(0.0)
        assert (st.x_cur, st.y_cur) == (0, 1)
        s.schedule(0.0)  # y'->0 -> reset
        assert (st.x_cur, st.y_cur) == (0, 3)

    def test_full_tolerance_resets_immediately(self):
        s = sched()
        st = s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=2, loss_y=2))
        fill(s, "s1", 1)
        s.schedule(0.0)  # y'->1 < x'=2 -> reset
        assert (st.x_cur, st.y_cur) == (2, 2)

    def test_missed_deadline_drops_lossy_packet(self):
        s = sched()
        st = s.add_stream(StreamSpec("s1", period_us=100.0, loss_x=1, loss_y=4))
        fill(s, "s1", 2, now=0.0)  # deadlines at 100, 200
        d = s.schedule(150.0)  # head (dl=100) is late
        assert len(d.dropped) == 1
        assert d.dropped[0].frame.seqno == 0
        assert st.dropped == 1
        # the serviced packet is the next one (dl=200, on time)
        assert d.serviced.frame.seqno == 1
        # miss: (1,4) -> (0,3); then on-time service: (0,3) -> (0,2)
        assert (st.x_cur, st.y_cur) == (0, 2)

    def test_missed_deadline_reset_when_x_meets_y(self):
        s = sched()
        st = s.add_stream(StreamSpec("s1", period_us=100.0, loss_x=2, loss_y=2))
        fill(s, "s1", 1, now=0.0)
        d = s.schedule(500.0)
        # miss: x' 2->1, y' 2->1, equal -> reset
        assert (st.x_cur, st.y_cur) == (2, 2)
        assert st.window_resets == 1
        assert d.serviced is None  # head was dropped, queue empty

    def test_violation_on_zero_tolerance_miss(self):
        s = sched()
        st = s.add_stream(
            StreamSpec("s1", period_us=100.0, loss_x=0, loss_y=2, drop_late=False)
        )
        fill(s, "s1", 1, now=0.0)
        d = s.schedule(500.0)
        assert st.violations == 1
        # violation restarts the window
        assert (st.x_cur, st.y_cur) == (0, 2)
        # non-droppable: packet transmitted late
        assert d.serviced is not None
        assert d.late
        assert st.sent_late == 1

    def test_late_packet_charged_one_miss_only(self):
        s = sched()
        st = s.add_stream(
            StreamSpec("s1", period_us=100.0, loss_x=0, loss_y=2, drop_late=False)
        )
        fill(s, "s1", 1, now=0.0)
        # process misses twice without servicing (no eligible selection in
        # a second stream scenario is hard to force; call twice and count)
        s._process_misses(500.0)
        s._process_misses(600.0)
        assert st.violations == 1

    def test_drop_late_false_lossy_stream_sends_late(self):
        s = sched()
        st = s.add_stream(
            StreamSpec("s1", period_us=100.0, loss_x=1, loss_y=4, drop_late=False)
        )
        fill(s, "s1", 1, now=0.0)
        d = s.schedule(500.0)
        assert d.serviced is not None
        assert d.late
        assert st.dropped == 0
        assert st.sent_late == 1
        # the miss still cost window state
        assert (st.x_cur, st.y_cur) == (0, 3)


class TestSelectiveLossiness:
    """'Packet scheduling eliminates traffic by implementing
    stream-selective lossiness in overload conditions.'"""

    def test_lossy_stream_absorbs_overload(self):
        s = sched()
        lossy = s.add_stream(StreamSpec("lossy", period_us=100.0, loss_x=2, loss_y=4))
        strict = s.add_stream(StreamSpec("strict", period_us=100.0, loss_x=0, loss_y=4, drop_late=False))
        fill(s, "lossy", 20, now=0.0)
        fill(s, "strict", 20, now=0.0)
        # Service slowly: one decision every 250us (overload: 2 streams x
        # 100us periods need a packet every 50us).
        t = 0.0
        while s.backlog:
            s.schedule(t)
            t += 250.0
        assert lossy.dropped > 0
        assert strict.dropped == 0
        # the strict stream delivered everything (possibly late)
        assert strict.serviced + strict.sent_late == 20

    def test_no_misses_when_underloaded(self):
        s = sched()
        st = s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=1, loss_y=4))
        fill(s, "s1", 10, now=0.0)
        t = 0.0
        while s.backlog:
            s.schedule(t)
            t += 100.0  # 10x faster than required
        assert st.dropped == 0
        assert st.violations == 0
        assert st.serviced == 10


class TestPacing:
    def test_non_work_conserving_waits_for_release(self):
        s = DWCSScheduler(work_conserving=False)
        s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=1, loss_y=2))
        fill(s, "s1", 5, now=0.0)
        # at t=0, head deadline=1000, release=0 -> eligible
        d0 = s.schedule(0.0)
        assert d0.serviced is not None
        # next head deadline=2000, release=1000 -> not eligible at t=100
        d1 = s.schedule(100.0)
        assert d1.serviced is None
        assert d1.idle_until == pytest.approx(1000.0)
        # eligible at its release
        d2 = s.schedule(1000.0)
        assert d2.serviced is not None

    def test_work_conserving_drains_back_to_back(self):
        s = sched()
        s.add_stream(StreamSpec("s1", period_us=1_000_000.0, loss_x=1, loss_y=2))
        fill(s, "s1", 5, now=0.0)
        sent = 0
        while s.backlog:
            if s.schedule(0.0).serviced:
                sent += 1
        assert sent == 5

    def test_fallback_selects_eligible_later_deadline(self):
        s = DWCSScheduler(work_conserving=False, selection_factory=LinearScan)
        s.add_stream(StreamSpec("longp", period_us=10_000.0, loss_x=1, loss_y=2))
        s.add_stream(StreamSpec("shortp", period_us=500.0, loss_x=1, loss_y=2))
        s.enqueue(make_frame("shortp", 0), 0.0)
        d = s.schedule(0.0)
        assert d.serviced.stream_id == "shortp"
        # at t=600: longp head (enqueued now, dl=10600, release 600) is
        # eligible; shortp's next (dl=1000, release 500)... enqueue longp
        s.enqueue(make_frame("longp", 0), 600.0)
        s.enqueue(make_frame("shortp", 1), 600.0)
        d = s.schedule(600.0)
        # shortp dl=1000 < longp dl=10600, both eligible -> shortp
        assert d.serviced.stream_id == "shortp"


class TestBookkeeping:
    def test_duplicate_stream_rejected(self):
        s = sched()
        s.add_stream(StreamSpec("s1", period_us=1.0, loss_x=0, loss_y=1))
        with pytest.raises(ValueError):
            s.add_stream(StreamSpec("s1", period_us=1.0, loss_x=0, loss_y=1))

    def test_enqueue_unknown_stream_rejected(self):
        with pytest.raises(KeyError):
            sched().enqueue(make_frame("ghost", 0), 0.0)

    def test_remove_stream(self):
        s = sched()
        s.add_stream(StreamSpec("s1", period_us=1.0, loss_x=0, loss_y=1))
        s.remove_stream("s1")
        assert "s1" not in s.streams

    def test_remove_nonempty_stream_rejected(self):
        s = sched()
        s.add_stream(StreamSpec("s1", period_us=1.0, loss_x=0, loss_y=1))
        fill(s, "s1", 1)
        with pytest.raises(RuntimeError):
            s.remove_stream("s1")

    def test_backlog_and_depths(self):
        s = sched()
        s.add_stream(StreamSpec("a", period_us=1.0, loss_x=0, loss_y=1))
        s.add_stream(StreamSpec("b", period_us=1.0, loss_x=0, loss_y=1))
        fill(s, "a", 3)
        fill(s, "b", 2)
        assert s.backlog == 5
        assert s.queue_depth("a") == 3

    def test_stats_aggregate(self):
        s = sched()
        s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=1, loss_y=2))
        fill(s, "s1", 3)
        while s.backlog:
            s.schedule(0.0)
        assert s.stats.serviced == 3
        assert s.stats.decisions >= 3

    def test_ops_accumulate(self):
        s = sched()
        s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=1, loss_y=2))
        fill(s, "s1", 1)
        before = s.ops.total()
        s.schedule(0.0)
        assert s.ops.total() > before


class TestArithmeticBuilds:
    def test_fixed_and_float_make_identical_decisions(self):
        histories = {}
        for ctx_cls in (FixedPointContext, SoftwareFloatContext):
            s = sched(ctx=ctx_cls())
            s.add_stream(StreamSpec("a", period_us=300.0, loss_x=1, loss_y=3))
            s.add_stream(StreamSpec("b", period_us=500.0, loss_x=2, loss_y=5))
            s.add_stream(StreamSpec("c", period_us=700.0, loss_x=0, loss_y=4, drop_late=False))
            for stream in ("a", "b", "c"):
                fill(s, stream, 15)
            history = []
            t = 0.0
            while s.backlog:
                d = s.schedule(t)
                history.append(
                    (
                        d.serviced.stream_id if d.serviced else None,
                        tuple(x.frame.seqno for x in d.dropped),
                    )
                )
                t += 120.0
            histories[ctx_cls.__name__] = history
        assert histories["FixedPointContext"] == histories["SoftwareFloatContext"]

    def test_float_build_charges_fp_ops_fixed_does_not(self):
        for ctx_cls, expect_fp in ((FixedPointContext, False), (SoftwareFloatContext, True)):
            s = sched(ctx=ctx_cls())
            s.add_stream(StreamSpec("a", period_us=300.0, loss_x=1, loss_y=3))
            s.add_stream(StreamSpec("b", period_us=500.0, loss_x=1, loss_y=5))
            fill(s, "a", 5)
            fill(s, "b", 5)
            while s.backlog:
                s.schedule(0.0)
            s.dispatch_ops()
            assert (s.ops.fp_ops > 0) == expect_fp
