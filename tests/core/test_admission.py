"""Admission control: the (1 - x/y)·C/T utilization test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AdmissionController,
    DWCSScheduler,
    StreamSpec,
    mandatory_utilization,
)
from repro.media import FrameType, MediaFrame


def spec(sid="s", period=1000.0, x=0, y=1):
    return StreamSpec(sid, period_us=period, loss_x=x, loss_y=y)


class TestMandatoryUtilization:
    def test_zero_tolerance_full_share(self):
        assert mandatory_utilization(spec(x=0, y=1, period=100.0), 50.0) == 0.5

    def test_half_tolerance_half_share(self):
        assert mandatory_utilization(spec(x=1, y=2, period=100.0), 50.0) == 0.25

    def test_full_tolerance_zero_share(self):
        assert mandatory_utilization(spec(x=4, y=4, period=100.0), 50.0) == 0.0

    def test_invalid_service_time(self):
        with pytest.raises(ValueError):
            mandatory_utilization(spec(), 0.0)


class TestAdmissionController:
    def test_bound_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(utilization_bound=0.0)
        with pytest.raises(ValueError):
            AdmissionController(utilization_bound=1.5)

    def test_admit_until_bound(self):
        ac = AdmissionController(utilization_bound=0.5)
        # each stream: (1-0) * 100/1000 = 0.1
        for i in range(5):
            d = ac.admit(spec(f"s{i}", period=1000.0), 100.0)
            assert d.admitted
        d = ac.admit(spec("s5", period=1000.0), 100.0)
        assert not d.admitted
        assert "exceed" in d.reason
        assert ac.utilization == pytest.approx(0.5)

    def test_loss_tolerance_buys_admission(self):
        """Lossier streams consume less guaranteed share — the paper's
        'pre-negotiated bound on service degradation' in action."""
        ac = AdmissionController(utilization_bound=0.5)
        for i in range(10):  # (1 - 1/2) * 0.1 = 0.05 each
            assert ac.admit(spec(f"s{i}", period=1000.0, x=1, y=2), 100.0).admitted
        assert not ac.admit(spec("one-more", period=1000.0, x=1, y=2), 100.0).admitted

    def test_duplicate_rejected(self):
        ac = AdmissionController()
        ac.admit(spec("s0"), 1.0)
        d = ac.admit(spec("s0"), 1.0)
        assert not d.admitted
        assert "already admitted" in d.reason

    def test_evaluate_does_not_admit(self):
        ac = AdmissionController()
        d = ac.evaluate(spec("s0", period=1000.0), 100.0)
        assert d.admitted
        assert ac.admitted_streams == []

    def test_release_returns_share(self):
        ac = AdmissionController(utilization_bound=0.2)
        ac.admit(spec("s0", period=1000.0), 100.0)
        assert not ac.admit(spec("s1", period=1000.0), 150.0).admitted
        ac.release("s0")
        assert ac.admit(spec("s1", period=1000.0), 150.0).admitted

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            AdmissionController().release("ghost")

    def test_headroom(self):
        ac = AdmissionController(utilization_bound=0.8)
        ac.admit(spec("s0", period=1000.0), 300.0)
        assert ac.headroom() == pytest.approx(0.5)


class TestAdmissionGuarantee:
    @given(
        n_streams=st.integers(1, 6),
        period=st.sampled_from([400.0, 800.0, 1600.0]),
        x=st.integers(0, 2),
        extra=st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_admitted_sets_run_without_violations(self, n_streams, period, x, extra):
        """Streams admitted under the bound never violate their windows when
        service honours the assumed per-packet cost."""
        service_us = 50.0
        ac = AdmissionController(utilization_bound=0.9)
        s = DWCSScheduler(work_conserving=True)
        admitted = []
        for i in range(n_streams):
            sp = spec(f"s{i}", period=period, x=x, y=x + extra)
            if ac.admit(sp, service_us).admitted:
                s.add_stream(sp)
                admitted.append(sp)
        assert admitted  # the bound always fits at least one such stream
        n_frames = 3 * (x + extra)
        for sp in admitted:
            for k in range(n_frames):
                s.enqueue(MediaFrame(sp.stream_id, k, FrameType.I, 100, 0.0), 0.0)
        t = 0.0
        while s.backlog:
            s.schedule(t)
            t += service_us  # the service rate admission assumed
        for sp in admitted:
            state = s.streams[sp.stream_id]
            assert state.violations == 0
            assert state.dropped == 0
