"""Op-counted binary heap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import OpHeap
from repro.fixedpoint import OpCounter


class Box:
    """Mutable keyed item (identity-tracked by the heap)."""

    def __init__(self, key):
        self.key = key

    def __repr__(self):
        return f"Box({self.key})"


def int_cmp(a, b, ops):
    return (a.key > b.key) - (a.key < b.key)


@pytest.fixture
def heap():
    return OpHeap(int_cmp)


class TestBasics:
    def test_push_pop_sorted(self, heap):
        ops = OpCounter()
        boxes = [Box(k) for k in (5, 1, 4, 2, 3)]
        for b in boxes:
            heap.push(b, ops)
        assert [heap.pop_min(ops).key for _ in range(5)] == [1, 2, 3, 4, 5]

    def test_peek(self, heap):
        ops = OpCounter()
        heap.push(Box(3), ops)
        heap.push(Box(1), ops)
        assert heap.peek().key == 1
        assert len(heap) == 2

    def test_peek_empty(self, heap):
        assert heap.peek() is None

    def test_pop_empty_raises(self, heap):
        with pytest.raises(IndexError):
            heap.pop_min(OpCounter())

    def test_duplicate_item_rejected(self, heap):
        ops = OpCounter()
        b = Box(1)
        heap.push(b, ops)
        with pytest.raises(ValueError):
            heap.push(b, ops)

    def test_contains(self, heap):
        ops = OpCounter()
        b = Box(1)
        heap.push(b, ops)
        assert b in heap
        heap.pop_min(ops)
        assert b not in heap

    def test_remove_arbitrary(self, heap):
        ops = OpCounter()
        boxes = [Box(k) for k in (5, 1, 4, 2, 3)]
        for b in boxes:
            heap.push(b, ops)
        heap.remove(boxes[2], ops)  # remove key 4
        assert [heap.pop_min(ops).key for _ in range(4)] == [1, 2, 3, 5]

    def test_remove_missing_raises(self, heap):
        with pytest.raises(KeyError):
            heap.remove(Box(1), OpCounter())

    def test_update_after_key_change(self, heap):
        ops = OpCounter()
        boxes = [Box(k) for k in (1, 5, 9)]
        for b in boxes:
            heap.push(b, ops)
        boxes[0].key = 100  # was the min
        heap.update(boxes[0], ops)
        assert heap.peek().key == 5
        assert heap.check_invariant()

    def test_update_missing_raises(self, heap):
        with pytest.raises(KeyError):
            heap.update(Box(1), OpCounter())

    def test_ops_charged(self, heap):
        ops = OpCounter()
        for k in range(16):
            heap.push(Box(k), ops)
        assert ops.mem_writes > 0
        assert ops.branches > 0


class TestProperties:
    @given(st.lists(st.integers(), min_size=0, max_size=200))
    def test_heapsort_matches_sorted(self, keys):
        heap = OpHeap(int_cmp)
        ops = OpCounter()
        for k in keys:
            heap.push(Box(k), ops)
        out = [heap.pop_min(ops).key for _ in range(len(keys))]
        assert out == sorted(keys)

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=50),
        st.data(),
    )
    def test_invariant_held_under_mixed_updates(self, keys, data):
        heap = OpHeap(int_cmp)
        ops = OpCounter()
        boxes = [Box(k) for k in keys]
        for b in boxes:
            heap.push(b, ops)
        live = list(boxes)
        for _ in range(min(20, len(live))):
            action = data.draw(st.sampled_from(["update", "remove", "pop"]))
            if not live:
                break
            if action == "update":
                b = data.draw(st.sampled_from(live))
                b.key = data.draw(st.integers(0, 100))
                heap.update(b, ops)
            elif action == "remove":
                b = data.draw(st.sampled_from(live))
                heap.remove(b, ops)
                live.remove(b)
            else:
                b = heap.pop_min(ops)
                live.remove(b)
            assert heap.check_invariant()
        remaining = sorted(b.key for b in live)
        assert [heap.pop_min(ops).key for _ in range(len(live))] == remaining

    @given(st.lists(st.integers(), min_size=8, max_size=256, unique=True))
    def test_cost_scales_logarithmically(self, keys):
        """Pushing n items costs O(n log n) comparisons, not O(n^2)."""
        import math

        heap = OpHeap(int_cmp)
        ops = OpCounter()
        for k in keys:
            heap.push(Box(k), ops)
        n = len(keys)
        assert ops.branches <= 3 * n * (math.log2(n) + 1)
