"""Differential test: DualHeaps vs LinearScan under interleaved operations.

``test_selection.py`` proves the two structures agree on a single
add-then-select pass. This file drives both through the *full* maintenance
API — add / remove / reorder / select / late_entries in random
interleavings — with hypothesis generating the operation program. Any
divergence (a different winner, a different late cohort, a different
length) is a scheduler-correctness bug: the DWCS engine treats the two
structures as interchangeable policies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DualHeaps, LinearScan, StreamSpec
from repro.core.attributes import StreamState
from repro.core.selection import Entry
from repro.fixedpoint import FixedPointContext, OpCounter


def make_pair(i, deadline, x, y, enq):
    """Two logically identical entries, one per structure under test."""
    pair = []
    for _ in range(2):
        state = StreamState(
            StreamSpec(f"s{i}", period_us=1000.0, loss_x=x, loss_y=y),
            created_seq=i,
        )
        state.deadline_us = deadline
        pair.append(Entry(state, head_enqueued_at=enq))
    return pair


def assert_same_selection(scan, heaps, ops):
    a, b = scan.select(ops), heaps.select(ops)
    assert (a is None) == (b is None)
    if a is not None:
        assert a.stream_id == b.stream_id


# One op: (kind, selector entropy, deadline, x, y, time). The selector is
# reduced modulo the live-entry count at apply time so shrunk programs stay
# valid; x is clamped to <= y (the StreamSpec invariant).
OPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "reorder", "select", "late"]),
        st.integers(min_value=0, max_value=2**32),
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=1e6)),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.0, max_value=1e5),
    ),
    min_size=1,
    max_size=40,
)


@given(program=OPS)
@settings(max_examples=120, deadline=None)
def test_structures_never_disagree(program):
    scan = LinearScan(FixedPointContext())
    heaps = DualHeaps(FixedPointContext())
    ops = OpCounter()
    live = []  # parallel (scan entry, heap entry) pairs
    next_id = 0
    for kind, sel, deadline, x, y, t in program:
        x = min(x, y)
        if kind == "add":
            ea, eb = make_pair(next_id, deadline, x, y, t)
            next_id += 1
            scan.add(ea, ops)
            heaps.add(eb, ops)
            live.append((ea, eb))
        elif kind == "remove" and live:
            ea, eb = live.pop(sel % len(live))
            scan.remove(ea, ops)
            heaps.remove(eb, ops)
        elif kind == "reorder" and live:
            ea, eb = live[sel % len(live)]
            for e in (ea, eb):
                e.state.deadline_us = deadline
                e.state.x_cur = x
                e.state.y_cur = y
            scan.reorder(ea, ops)
            heaps.reorder(eb, ops)
        elif kind == "select":
            assert_same_selection(scan, heaps, ops)
        elif kind == "late":
            late_scan = {e.stream_id for e in scan.late_entries(t, ops)}
            late_heap = {e.stream_id for e in heaps.late_entries(t, ops)}
            assert late_scan == late_heap
        assert len(scan) == len(heaps) == len(live)
    assert_same_selection(scan, heaps, ops)


@given(
    specs=st.lists(
        st.tuples(
            st.one_of(st.none(), st.floats(min_value=0.0, max_value=1e6)),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=1, max_value=6),
            st.floats(min_value=0.0, max_value=1e5),
        ),
        min_size=1,
        max_size=16,
    )
)
@settings(max_examples=120, deadline=None)
def test_drain_order_identical(specs):
    """Select-and-remove until empty yields the exact same stream order.

    Stronger than a single select: every intermediate state of both
    structures must rank the full remaining population identically,
    including duplicate deadlines, None deadlines, and constraint ties
    that fall through to the FCFS rules.
    """
    scan = LinearScan(FixedPointContext())
    heaps = DualHeaps(FixedPointContext())
    ops = OpCounter()
    live = {}
    for i, (deadline, x, y, enq) in enumerate(specs):
        ea, eb = make_pair(i, deadline, min(x, y), y, enq)
        scan.add(ea, ops)
        heaps.add(eb, ops)
        live[ea.stream_id] = (ea, eb)
    drain_scan, drain_heap = [], []
    while len(scan):
        a, b = scan.select(ops), heaps.select(ops)
        drain_scan.append(a.stream_id)
        drain_heap.append(b.stream_id)
        ea, eb = live.pop(a.stream_id)
        scan.remove(ea, ops)
        heaps.remove(eb, ops)
    assert drain_scan == drain_heap
    assert len(heaps) == 0
