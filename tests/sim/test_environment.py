"""Environment clock, scheduling order, and run-loop behaviour."""

import pytest

from repro.sim import MS, S, US, Environment, SimulationError


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_override():
    assert Environment(initial_time=42.0).now == 42.0


def test_unit_constants_are_microseconds():
    assert US == 1.0
    assert MS == 1_000.0
    assert S == 1_000_000.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(10.0)
    env.run()
    assert env.now == 10.0


def test_run_until_time_stops_clock_at_bound():
    env = Environment()
    env.timeout(5.0)
    env.timeout(50.0)
    env.run(until=20.0)
    assert env.now == 20.0


def test_run_until_time_does_not_process_later_events():
    env = Environment()
    fired = []
    ev = env.timeout(30.0)
    ev.callbacks.append(lambda e: fired.append(e))
    env.run(until=20.0)
    assert fired == []
    env.run(until=40.0)
    assert len(fired) == 1


def test_run_until_past_raises():
    env = Environment(initial_time=100.0)
    with pytest.raises(SimulationError):
        env.run(until=50.0)


def test_run_until_event_returns_value():
    env = Environment()
    ev = env.timeout(7.0, value="done")
    assert env.run(until=ev) == "done"
    assert env.now == 7.0


def test_run_until_already_triggered_event_returns_immediately():
    env = Environment()
    ev = env.timeout(1.0, value="x")
    env.run()
    assert env.run(until=ev) == "x"


def test_run_until_event_starved_queue_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_same_time_events_fire_in_scheduling_order():
    env = Environment()
    order = []
    for i in range(5):
        ev = env.timeout(10.0, value=i)
        ev.callbacks.append(lambda e: order.append(e.value))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(3.0)
    env.timeout(1.0)
    assert env.peek() == 1.0


def test_peek_empty_queue_is_inf():
    assert Environment().peek() == float("inf")


def test_step_on_empty_queue_raises():
    with pytest.raises(SimulationError):
        Environment().step()


def test_schedule_callback_runs_at_delay():
    env = Environment()
    seen = []
    env.schedule_callback(25.0, lambda: seen.append(env.now))
    env.run()
    assert seen == [25.0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_events_process_in_time_order():
    env = Environment()
    order = []
    for delay in (30.0, 10.0, 20.0):
        ev = env.timeout(delay, value=delay)
        ev.callbacks.append(lambda e: order.append(e.value))
    env.run()
    assert order == [10.0, 20.0, 30.0]
