"""Event lifecycle, values, failures, and condition composition."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, SimulationError


@pytest.fixture
def env():
    return Environment()


def test_fresh_event_is_untriggered(env):
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed


def test_value_before_trigger_raises(env):
    with pytest.raises(SimulationError):
        env.event().value


def test_ok_before_trigger_raises(env):
    with pytest.raises(SimulationError):
        env.event().ok


def test_succeed_fixes_value(env):
    ev = env.event().succeed(13)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 13


def test_double_succeed_raises(env):
    ev = env.event().succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_fail_requires_exception(env):
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")


def test_fail_fixes_exception(env):
    err = ValueError("boom")
    ev = env.event().fail(err)
    ev.defused = True
    assert ev.triggered
    assert not ev.ok
    assert ev.value is err


def test_unhandled_failed_event_surfaces_in_run(env):
    env.event().fail(RuntimeError("lost failure"))
    with pytest.raises(RuntimeError, match="lost failure"):
        env.run()


def test_defused_failed_event_does_not_crash_run(env):
    ev = env.event().fail(RuntimeError("handled"))
    ev.defused = True
    env.run()  # no raise


def test_callbacks_receive_event(env):
    seen = []
    ev = env.event()
    ev.callbacks.append(seen.append)
    ev.succeed("v")
    env.run()
    assert seen == [ev]
    assert ev.processed


def test_trigger_copies_outcome(env):
    src = env.event().succeed(5)
    dst = env.event()
    dst.trigger(src)
    assert dst.value == 5


def test_timeout_cannot_be_retriggered(env):
    t = env.timeout(1.0)
    with pytest.raises(SimulationError):
        t.succeed()
    with pytest.raises(SimulationError):
        t.fail(ValueError())


class TestConditions:
    def test_allof_waits_for_all(self, env):
        a, b = env.timeout(1.0, value="a"), env.timeout(5.0, value="b")
        cond = AllOf(env, [a, b])
        env.run(until=cond)
        assert env.now == 5.0
        assert cond.value[a] == "a"
        assert cond.value[b] == "b"

    def test_anyof_fires_on_first(self, env):
        a, b = env.timeout(1.0, value="a"), env.timeout(5.0, value="b")
        cond = AnyOf(env, [a, b])
        result = env.run(until=cond)
        assert env.now == 1.0
        assert a in result
        assert b not in result

    def test_and_operator(self, env):
        a, b = env.timeout(2.0), env.timeout(3.0)
        cond = a & b
        env.run(until=cond)
        assert env.now == 3.0

    def test_or_operator(self, env):
        a, b = env.timeout(2.0), env.timeout(3.0)
        env.run(until=a | b)
        assert env.now == 2.0

    def test_empty_allof_is_immediately_true(self, env):
        cond = AllOf(env, [])
        assert cond.triggered

    def test_allof_with_pretriggered_member_still_waits_for_pending(self, env):
        done = env.event().succeed("x")
        later = env.timeout(10.0)
        cond = AllOf(env, [done, later])
        assert not cond.triggered
        env.run(until=cond)
        assert env.now == 10.0

    def test_anyof_with_pretriggered_member_fires_immediately(self, env):
        done = env.event().succeed("x")
        later = env.timeout(10.0)
        cond = AnyOf(env, [done, later])
        assert cond.triggered

    def test_condition_fails_when_member_fails(self, env):
        good = env.timeout(5.0)
        bad = env.event()
        cond = AllOf(env, [good, bad])
        bad.fail(ValueError("member failed"))
        with pytest.raises(ValueError, match="member failed"):
            env.run(until=cond)

    def test_condition_value_mapping_interface(self, env):
        a = env.timeout(1.0, value=1)
        b = env.timeout(1.0, value=2)
        cond = AllOf(env, [a, b])
        env.run(until=cond)
        cv = cond.value
        assert len(cv) == 2
        assert list(cv) == [a, b]
        assert cv.todict() == {a: 1, b: 2}
        with pytest.raises(KeyError):
            cv[env.event()]

    def test_cross_environment_condition_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AllOf(env, [env.event(), other.event()])
