"""TimeSeries, TallyStats, and RateEstimator behaviour."""

import math

import numpy as np
import pytest

from repro.sim import RateEstimator, TallyStats, TimeSeries


class TestTimeSeries:
    def test_record_and_lengths(self):
        ts = TimeSeries("x")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2
        assert list(ts.times) == [0.0, 1.0]
        assert list(ts.values) == [1.0, 2.0]

    def test_decreasing_time_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 0.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 0.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        ts.record(5.0, 2.0)
        assert len(ts) == 2

    def test_window_is_half_open(self):
        ts = TimeSeries()
        for t in range(5):
            ts.record(float(t), float(t))
        t, v = ts.window(1.0, 3.0)
        assert list(t) == [1.0, 2.0]
        assert list(v) == [1.0, 2.0]

    def test_mean_over_window(self):
        ts = TimeSeries()
        for t, val in [(0, 10.0), (1, 20.0), (2, 90.0)]:
            ts.record(float(t), val)
        assert ts.mean(0.0, 2.0) == 15.0

    def test_mean_of_empty_window_is_nan(self):
        ts = TimeSeries()
        assert math.isnan(ts.mean(0, 10))

    def test_maximum(self):
        ts = TimeSeries()
        for t, val in enumerate([3.0, 9.0, 1.0]):
            ts.record(float(t), val)
        assert ts.maximum() == 9.0

    def test_resample_bins_average(self):
        ts = TimeSeries()
        # two samples in bin [0,10), one in [10,20)
        ts.record(1.0, 2.0)
        ts.record(2.0, 4.0)
        ts.record(11.0, 10.0)
        centers, means = ts.resample(10.0, start=0.0, end=20.0)
        assert list(centers) == [5.0, 15.0]
        assert means[0] == pytest.approx(3.0)
        assert means[1] == pytest.approx(10.0)

    def test_resample_empty_bin_is_nan(self):
        ts = TimeSeries()
        ts.record(1.0, 1.0)
        _c, means = ts.resample(10.0, start=0.0, end=30.0)
        assert not np.isnan(means[0])
        assert np.isnan(means[1])
        assert np.isnan(means[2])


class TestTallyStats:
    def test_empty_mean_is_nan(self):
        assert math.isnan(TallyStats().mean)

    def test_basic_moments(self):
        st = TallyStats()
        st.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert st.count == 8
        assert st.mean == pytest.approx(5.0)
        assert st.min == 2.0
        assert st.max == 9.0
        assert st.total == 40.0
        # sample stdev of the classic dataset
        assert st.stdev == pytest.approx(2.138, abs=1e-3)

    def test_single_sample_variance_zero(self):
        st = TallyStats()
        st.add(5.0)
        assert st.variance == 0.0

    def test_matches_numpy_on_random_data(self):
        rng = np.random.default_rng(7)
        data = rng.normal(10.0, 3.0, size=1000)
        st = TallyStats()
        st.extend(data)
        assert st.mean == pytest.approx(float(np.mean(data)), rel=1e-9)
        assert st.variance == pytest.approx(float(np.var(data, ddof=1)), rel=1e-9)


class TestRateEstimator:
    def test_rate_over_window(self):
        re = RateEstimator(window_us=1_000_000.0)
        # 1000 bytes at each of t=0.2s..1.0s
        for t in np.arange(0.2, 1.01, 0.2):
            re.add(t * 1e6, 1000.0)
        # at t=1s all five deliveries are within the 1s window
        assert re.rate(1e6) == pytest.approx(5000.0)

    def test_old_samples_fall_out_of_window(self):
        re = RateEstimator(window_us=1_000_000.0)
        re.add(0.0, 1000.0)
        re.add(2_000_000.0, 500.0)
        assert re.rate(2_000_000.0) == pytest.approx(500.0)

    def test_cumulative(self):
        re = RateEstimator()
        re.add(0.0, 10.0)
        re.add(1.0, 20.0)
        assert re.cumulative() == 30.0

    def test_decreasing_time_rejected(self):
        re = RateEstimator()
        re.add(10.0, 1.0)
        with pytest.raises(ValueError):
            re.add(5.0, 1.0)


def test_random_streams_deterministic_and_independent():
    from repro.sim import RandomStreams

    a1 = RandomStreams(seed=1).stream("disk").random(5)
    a2 = RandomStreams(seed=1).stream("disk").random(5)
    b = RandomStreams(seed=1).stream("web").random(5)
    c = RandomStreams(seed=2).stream("disk").random(5)
    assert np.allclose(a1, a2)
    assert not np.allclose(a1, b)
    assert not np.allclose(a1, c)


def test_random_streams_same_instance_cached():
    from repro.sim import RandomStreams

    rs = RandomStreams(seed=3)
    assert rs.stream("x") is rs.stream("x")
