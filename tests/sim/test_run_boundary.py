"""run(until=t) boundary semantics, pinned against BOTH queue kernels.

The contract every experiment's duration handling rests on:

* events scheduled at exactly ``t`` ARE processed by ``run(until=t)``;
* afterwards ``now`` lands on ``t`` (even when the last event was
  earlier);
* a repeated ``run(until=t)`` is a no-op;
* ``peek()`` is ``inf`` on an empty queue.

Parametrized over the heap and calendar kernels so a divergence in either
run loop fails by name.
"""

import pytest

from repro.sim import CalendarEventQueue, Environment, SimulationError

QUEUES = ("heap", "calendar")


@pytest.fixture(params=QUEUES)
def queue(request):
    return request.param


class TestUntilBoundary:
    def test_event_at_exactly_until_is_processed(self, queue):
        env = Environment(queue=queue)
        fired = []
        env.timeout(10.0).callbacks.append(lambda _e: fired.append(env.now))
        env.run(until=10.0)
        assert fired == [10.0]
        assert env.now == 10.0

    def test_now_lands_on_until_past_the_last_event(self, queue):
        env = Environment(queue=queue)
        fired = []
        env.timeout(3.0).callbacks.append(lambda _e: fired.append(env.now))
        env.run(until=50.0)
        assert fired == [3.0]
        assert env.now == 50.0

    def test_event_just_after_until_stays_queued(self, queue):
        env = Environment(queue=queue)
        fired = []
        env.timeout(10.0 + 1e-9).callbacks.append(lambda _e: fired.append(env.now))
        env.run(until=10.0)
        assert fired == []
        assert len(env._queue) == 1
        env.run()
        assert len(fired) == 1

    def test_repeated_run_until_same_t_is_noop(self, queue):
        env = Environment(queue=queue)
        fired = []
        env.timeout(10.0).callbacks.append(lambda _e: fired.append(env.now))
        env.run(until=10.0)
        env.run(until=10.0)
        assert fired == [10.0]
        assert env.now == 10.0

    def test_run_until_the_past_raises(self, queue):
        env = Environment(queue=queue)
        env.timeout(10.0)
        env.run(until=10.0)
        with pytest.raises(SimulationError):
            env.run(until=5.0)

    def test_peek_inf_on_empty(self, queue):
        env = Environment(queue=queue)
        assert env.peek() == float("inf")
        env.timeout(4.0)
        assert env.peek() == 4.0
        env.run()
        assert env.peek() == float("inf")

    def test_segmented_runs_cover_the_schedule_once(self, queue):
        env = Environment(queue=queue)
        fired = []
        for d in (2.0, 5.0, 5.0, 9.0):
            env.timeout(d).callbacks.append(lambda _e, d=d: fired.append((d, env.now)))
        env.run(until=5.0)
        assert fired == [(2.0, 2.0), (5.0, 5.0), (5.0, 5.0)]
        env.run(until=9.0)
        assert fired[-1] == (9.0, 9.0)
        assert len(fired) == 4


class TestQueueSelection:
    def test_default_is_heap(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVENT_QUEUE", raising=False)
        assert type(Environment()._queue) is list

    def test_env_var_selects_calendar(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "calendar")
        assert isinstance(Environment()._queue, CalendarEventQueue)

    def test_explicit_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "calendar")
        assert type(Environment(queue="heap")._queue) is list

    def test_ready_queue_object_is_adopted(self):
        q = CalendarEventQueue(day_width_us=50.0)
        env = Environment(queue=q)
        assert env._queue is q
        fired = []
        env.timeout(1.0).callbacks.append(lambda _e: fired.append(env.now))
        env.run()
        assert fired == [1.0]

    def test_unknown_queue_rejected(self):
        with pytest.raises(SimulationError):
            Environment(queue="splay-tree")

    def test_unknown_queue_error_names_the_valid_set(self):
        with pytest.raises(SimulationError, match="'heap', 'calendar'"):
            Environment(queue="splay-tree")

    def test_bad_env_var_blames_the_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVENT_QUEUE", "btree")
        with pytest.raises(SimulationError) as err:
            Environment()
        message = str(err.value)
        assert "REPRO_EVENT_QUEUE" in message
        assert "'heap', 'calendar'" in message
