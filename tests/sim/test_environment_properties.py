"""Event-kernel property tests: the ordering and edge semantics the
experiments' exact repeatability rests on.

The run() fast path inlines step() and the trigger paths push heap tuples
directly; these tests pin the *observable contract* those shortcuts must
preserve — deterministic same-timestamp ordering, condition failure
semantics, and the run(until=...) boundary cases.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt, SimulationError


# -- same-timestamp tie ordering ---------------------------------------------


@given(
    delays=st.lists(
        st.sampled_from([0.0, 1.0, 2.0, 5.0, 5.0, 10.0]), min_size=1, max_size=40
    )
)
@settings(max_examples=120, deadline=None)
def test_tie_order_is_stable_by_creation(delays):
    """Equal-time events fire in creation order: (time, seq) is a stable
    sort of the schedule, never an arbitrary heap order."""
    env = Environment()
    fired = []
    for i, delay in enumerate(delays):
        timeout = env.timeout(delay)
        timeout.callbacks.append(lambda _e, i=i: fired.append(i))
    env.run()
    assert fired == sorted(range(len(delays)), key=lambda i: delays[i])


def test_succeed_now_runs_after_earlier_same_time_timeouts():
    """An event succeeded at time t queues behind timeouts already due at t."""
    env = Environment()
    fired = []
    first = env.timeout(5.0)
    first.callbacks.append(lambda _e: fired.append("timeout"))
    kicker = env.timeout(5.0)
    manual = env.event()
    manual.callbacks.append(lambda _e: fired.append("manual"))
    kicker.callbacks.append(lambda _e: manual.succeed())
    env.run()
    assert fired == ["timeout", "manual"]


def test_urgent_priority_beats_same_time_normal():
    """URGENT (priority 0) outranks NORMAL at the same instant even when
    scheduled later — the carrier pattern Process.interrupt relies on."""
    env = Environment()
    fired = []
    normal = env.timeout(5.0)
    normal.callbacks.append(lambda _e: fired.append("normal"))
    # mirror of Process.interrupt's pre-triggered carrier event
    carrier = env.event()
    carrier._state = 1  # TRIGGERED
    carrier.callbacks.append(lambda _e: fired.append("urgent"))
    env._schedule_event(carrier, delay=5.0, priority=0)
    env.run()
    assert fired == ["urgent", "normal"]


def test_interrupt_outranks_same_time_timeout_expiry():
    """A process interrupted at the exact instant its timeout expires sees
    the Interrupt, not the timeout value."""
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(5.0)
            log.append("timeout")
        except Interrupt:
            log.append("interrupt")

    def interrupter():
        yield env.timeout(5.0)
        victim.interrupt("now")

    # The interrupter is created first so its t=5 timeout processes first;
    # the victim's own t=5 timeout is then still pending, and the URGENT
    # interrupt carrier — despite being created last — must outrank it.
    env.process(interrupter())
    victim = env.process(sleeper())
    env.run()
    assert log == ["interrupt"]


# -- AllOf / AnyOf with failing members ---------------------------------------


class Boom(Exception):
    pass


def test_anyof_first_failure_propagates_to_waiter():
    env = Environment()
    caught = []

    def waiter():
        fast_fail = env.event()
        slow = env.timeout(100.0)
        env.schedule_callback(5.0, lambda: fast_fail.fail(Boom("first")))
        try:
            yield AnyOf(env, [fast_fail, slow])
        except Boom as err:
            caught.append(str(err))

    env.process(waiter())
    env.run()
    assert caught == ["first"]


def test_allof_fails_even_after_members_succeeded():
    env = Environment()
    caught = []

    def waiter():
        ok = env.timeout(1.0)
        bad = env.event()
        env.schedule_callback(10.0, lambda: bad.fail(Boom("late")))
        try:
            yield AllOf(env, [ok, bad])
        except Boom as err:
            caught.append(str(err))

    env.process(waiter())
    env.run()
    assert caught == ["late"]
    assert env.now == 10.0


def test_condition_defuses_the_failed_member():
    """The member's failure is consumed by the condition: no crash at the
    end of the run for an 'unhandled' failed event."""
    env = Environment()
    bad = env.event()
    cond = AllOf(env, [bad])
    cond.defused = True  # nobody waits on the condition either
    bad.fail(Boom())
    env.run()  # must not raise
    assert bad.defused
    assert cond.triggered and not cond.ok


def test_allof_with_prefailed_member_fails_at_construction():
    env = Environment()
    bad = env.event()
    bad.defused = True  # keep the standalone failure from crashing run()
    bad.fail(Boom("early"))
    env.run()  # process the failure; bad is now PROCESSED
    cond = AllOf(env, [bad])
    cond.defused = True
    assert cond.triggered and not cond.ok
    assert isinstance(cond.value, Boom)


def test_member_failure_after_anyof_won_still_surfaces():
    """AnyOf consumes only the failure that decides it: a member failing
    *after* the condition already succeeded is an ordinary unhandled
    failure and crashes the run (nothing silently eats errors)."""
    env = Environment()

    def waiter():
        fast = env.timeout(1.0)
        late_fail = env.event()
        env.schedule_callback(10.0, lambda: late_fail.fail(Boom("after")))
        value = yield AnyOf(env, [fast, late_fail])
        assert fast in value

    env.process(waiter())
    with pytest.raises(Boom):
        env.run()


# -- run(until=Event) edges ---------------------------------------------------


def test_run_until_failing_event_raises_and_defuses():
    env = Environment()
    ev = env.event()
    env.schedule_callback(5.0, lambda: ev.fail(Boom("stop")))
    with pytest.raises(Boom):
        env.run(until=ev)
    assert ev.defused
    assert env.now == 5.0


def test_run_until_already_processed_failed_event_raises():
    env = Environment()
    ev = env.event()
    ev.defused = True
    ev.fail(Boom())
    env.run()  # processes the failure
    with pytest.raises(Boom):
        env.run(until=ev)


def test_run_until_event_halts_before_later_same_time_events():
    """Stopping on an event is immediate: same-instant events queued after
    it are left unprocessed (and the clock stays at the stop time)."""
    env = Environment()
    fired = []
    stop = env.timeout(5.0, value="done")
    later = env.timeout(5.0)
    later.callbacks.append(lambda _e: fired.append("later"))
    assert env.run(until=stop) == "done"
    assert env.now == 5.0
    assert fired == []
    env.run()  # the leftover event is still queued and runs normally
    assert fired == ["later"]


def test_run_until_triggered_but_unprocessed_event_returns():
    env = Environment()
    ev = env.event()
    ev.succeed("v")  # TRIGGERED, sits in the queue unprocessed
    assert env.run(until=ev) == "v"


def test_run_until_time_boundary_is_inclusive():
    env = Environment()
    fired = []
    at_bound = env.timeout(10.0)
    at_bound.callbacks.append(lambda _e: fired.append("bound"))
    env.run(until=10.0)
    assert fired == ["bound"]
    assert env.now == 10.0


def test_run_until_event_with_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.run(until=env.event())


def test_run_until_event_from_process_return_value():
    env = Environment()

    def body():
        yield env.timeout(3.0)
        return 42

    assert env.run(until=env.process(body())) == 42
    assert env.now == 3.0
