"""Resource/Store semantics: granting, queueing, priorities, preemption."""

import pytest

from repro.sim import (
    Environment,
    Interrupt,
    Preempted,
    PreemptiveResource,
    Resource,
    SimulationError,
    Store,
)


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_grant_when_free(self, env):
        res = Resource(env, capacity=1)
        req = res.request()
        assert req.triggered
        assert res.count == 1

    def test_queue_when_full(self, env):
        res = Resource(env, capacity=1)
        res.request()
        second = res.request()
        assert not second.triggered
        assert res.queue_length == 1

    def test_release_wakes_waiter(self, env):
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        res.release(first)
        assert second.triggered

    def test_fifo_order_among_equal_priority(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(tag, hold):
            with res.request() as req:
                yield req
                order.append(tag)
                yield env.timeout(hold)

        for tag in ("a", "b", "c"):
            env.process(user(tag, 10.0))
        env.run()
        assert order == ["a", "b", "c"]

    def test_priority_order(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(tag, prio):
            with res.request(priority=prio) as req:
                yield req
                order.append(tag)
                yield env.timeout(10.0)

        def spawn():
            # occupy, then create contenders while busy
            with res.request() as req:
                yield req
                env.process(user("low", 5))
                env.process(user("high", 1))
                yield env.timeout(10.0)

        env.process(spawn())
        env.run()
        assert order == ["high", "low"]

    def test_release_of_queued_request_cancels_it(self, env):
        res = Resource(env, capacity=1)
        res.request()
        queued = res.request()
        res.release(queued)
        assert res.queue_length == 0
        assert not queued.triggered

    def test_double_release_is_noop(self, env):
        res = Resource(env, capacity=1)
        req = res.request()
        res.release(req)
        res.release(req)
        assert res.count == 0

    def test_multicapacity_grants(self, env):
        res = Resource(env, capacity=3)
        reqs = [res.request() for _ in range(4)]
        assert [r.triggered for r in reqs] == [True, True, True, False]

    def test_utilization_accounting(self, env):
        res = Resource(env, capacity=1)

        def user():
            with res.request() as req:
                yield req
                yield env.timeout(30.0)

        def sleeper():
            yield env.timeout(100.0)

        env.process(user())
        env.process(sleeper())
        env.run()
        assert env.now == 100.0
        assert res.utilization() == pytest.approx(30.0 / 100.0, rel=0.01)

    def test_context_manager_releases(self, env):
        res = Resource(env, capacity=1)

        def user():
            with res.request() as req:
                yield req
                yield env.timeout(5.0)

        env.process(user())
        env.run()
        assert res.count == 0


class TestPreemption:
    def test_preempt_evicts_lower_priority(self, env):
        res = PreemptiveResource(env, capacity=1)
        log = []

        def low():
            with res.request(priority=10) as req:
                yield req
                try:
                    yield env.timeout(100.0)
                    log.append(("low-done", env.now))
                except Interrupt as i:
                    assert isinstance(i.cause, Preempted)
                    assert i.cause.resource is res
                    log.append(("low-preempted", env.now))

        def high():
            yield env.timeout(10.0)
            with res.request(priority=1) as req:
                yield req
                log.append(("high-acquired", env.now))
                yield env.timeout(5.0)

        env.process(low())
        env.process(high())
        env.run()
        assert ("low-preempted", 10.0) in log
        assert ("high-acquired", 10.0) in log

    def test_no_preemption_of_equal_or_higher_priority(self, env):
        res = PreemptiveResource(env, capacity=1)
        held = res.request(priority=1)
        contender = res.request(priority=1, preempt=True)
        assert held.triggered
        assert not contender.triggered
        assert res.queue_length == 1


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("item")
        got = store.get()
        assert got.triggered
        assert got.value == "item"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        results = []

        def consumer():
            item = yield store.get()
            results.append((item, env.now))

        def producer():
            yield env.timeout(20.0)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert results == [("late", 20.0)]

    def test_fifo_item_order(self, env):
        store = Store(env)
        for i in range(3):
            store.put(i)
        assert [store.get().value for _ in range(3)] == [0, 1, 2]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        first = store.put("a")
        second = store.put("b")
        assert first.triggered
        assert not second.triggered
        store.get()
        assert second.triggered

    def test_filtered_get(self, env):
        store = Store(env)
        store.put({"kind": "x"})
        store.put({"kind": "y"})
        got = store.get(filter=lambda it: it["kind"] == "y")
        assert got.value == {"kind": "y"}
        assert len(store) == 1

    def test_filtered_get_waits_for_match(self, env):
        store = Store(env)
        store.put(1)
        got = store.get(filter=lambda it: it == 2)
        assert not got.triggered
        store.put(2)
        assert got.triggered
        assert got.value == 2

    def test_cancel_pending_get(self, env):
        store = Store(env)
        got = store.get()
        store.cancel(got)
        store.put("x")
        assert not got.triggered
        assert len(store) == 1

    def test_invalid_capacity_rejected(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)


class TestWaiterCancellation:
    """release() of a queued request must leave the waiter heap valid.

    Two structurally different paths: cancelling the heap's tail slot
    (cheap pop) and cancelling a mid-heap slot (which forces a re-heapify).
    Both must preserve the (priority, time, FIFO) service order of the
    surviving waiters.
    """

    def _contended(self, env, priorities):
        res = Resource(env, capacity=1)
        holder = res.request()
        waiters = [res.request(priority=p) for p in priorities]
        return res, holder, waiters

    def test_cancel_tail_waiter_keeps_order(self, env):
        res, holder, waiters = self._contended(env, [3, 1, 2])
        res.release(waiters[-1])  # the most recently queued: tail slot
        assert res.queue_length == 2
        res.release(holder)
        assert waiters[1].triggered  # priority 1 first
        res.release(waiters[1])
        assert waiters[0].triggered
        assert not waiters[2].triggered

    def test_cancel_mid_heap_waiter_reheapifies(self, env):
        # Six waiters make the heap deep enough that removing an interior
        # slot without re-heapify would leave a violated invariant.
        res, holder, waiters = self._contended(env, [5, 1, 4, 2, 6, 3])
        victim = waiters[1]  # priority 1: the heap root, never the tail
        res.release(victim)
        assert res.queue_length == 5
        served = []
        res.release(holder)
        for _ in range(5):
            (granted,) = [
                w for w in waiters if w.triggered and w not in served and w is not victim
            ]
            served.append(granted)
            res.release(granted)
        assert [w.priority for w in served] == [2, 3, 4, 5, 6]
        assert not victim.triggered

    def test_cancel_every_waiter_then_release_is_clean(self, env):
        res, holder, waiters = self._contended(env, [2, 1, 3])
        for w in waiters:
            res.release(w)
        assert res.queue_length == 0
        res.release(holder)  # wakes nobody, corrupts nothing
        assert res.count == 0
        late = res.request()
        assert late.triggered


class TestStorePutNowait:
    def test_put_nowait_deposits_without_event(self, env):
        store = Store(env)
        store.put_nowait("x")
        assert len(store) == 1
        assert store.get().value == "x"

    def test_put_nowait_serves_pending_get(self, env):
        store = Store(env)
        got = store.get()
        store.put_nowait("y")
        assert got.triggered
        assert got.value == "y"
        assert len(store) == 0

    def test_put_nowait_full_store_raises(self, env):
        store = Store(env, capacity=1)
        store.put_nowait("a")
        with pytest.raises(SimulationError):
            store.put_nowait("b")

    def test_put_nowait_preserves_fifo_with_put(self, env):
        store = Store(env)
        store.put(1)
        store.put_nowait(2)
        store.put(3)
        assert [store.get().value for _ in range(3)] == [1, 2, 3]
