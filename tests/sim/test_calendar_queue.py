"""CalendarEventQueue: exact heap-order semantics in bucketed days.

The queue's one non-negotiable contract is *total-order fidelity*: pops
come out in exactly the order ``heapq`` would produce over the same
``(time, priority, seq, event)`` tuples. Everything else — day geometry,
horizon-driven resizing, cohort extraction — is an implementation detail
that must never bend that order.
"""

import heapq
import random

import pytest

from repro.sim import CalendarEventQueue, HorizonStats
from repro.sim.calendar import _MAX_DAY_WIDTH_US, _MIN_DAY_WIDTH_US


def make_items(n, rng, time_grid=None):
    """n unique (time, priority, seq, payload) tuples with tie-heavy times."""
    grid = time_grid or [0.0, 1.0, 2.5, 7.0, 7.0, 100.0, 5000.0, 12345.6]
    return [
        (rng.choice(grid), rng.choice([0, 1]), seq, f"ev{seq}")
        for seq in range(n)
    ]


class TestHeapOrderFidelity:
    def test_pop_order_matches_heapq(self):
        rng = random.Random(7)
        items = make_items(200, rng)
        ref = list(items)
        heapq.heapify(ref)
        q = CalendarEventQueue()
        for item in items:
            q.push(item)
        got = [q.pop() for _ in range(len(items))]
        want = [heapq.heappop(ref) for _ in range(len(items))]
        assert got == want

    def test_interleaved_push_pop_matches_heapq(self):
        rng = random.Random(21)
        items = make_items(300, rng)
        q = CalendarEventQueue()
        ref = []
        got, want = [], []
        for item in items:
            q.push(item)
            heapq.heappush(ref, item)
            if rng.random() < 0.4 and ref:
                got.append(q.pop())
                want.append(heapq.heappop(ref))
        while ref:
            got.append(q.pop())
            want.append(heapq.heappop(ref))
        assert got == want
        assert len(q) == 0 and not q

    def test_resizes_happen_and_preserve_order(self):
        rng = random.Random(3)
        q = CalendarEventQueue(day_width_us=1.0)
        items = [
            (rng.uniform(0.0, 1e6), 1, seq, seq) for seq in range(500)
        ]
        for item in items:
            q.push(item)
        assert q.resizes > 0, "population grew 500x past the anchor"
        got = [q.pop() for _ in range(len(items))]
        assert got == sorted(items)


class TestCohorts:
    def test_pop_cohort_drains_equal_timestamps_in_seq_order(self):
        q = CalendarEventQueue()
        q.push((5.0, 1, 2, "b"))
        q.push((5.0, 1, 1, "a"))
        q.push((5.0, 0, 3, "urgent"))
        q.push((6.0, 1, 4, "later"))
        cohort = q.pop_cohort()
        assert [item[3] for item in cohort] == ["urgent", "a", "b"]
        assert len(q) == 1
        assert q.peek() == 6.0

    def test_push_back_refiles_for_the_next_cohort(self):
        q = CalendarEventQueue()
        q.push((5.0, 1, 1, "a"))
        q.push((5.0, 1, 2, "b"))
        cohort = q.pop_cohort()
        q.push_back(cohort[1])
        q.push((5.0, 0, 3, "urgent"))
        assert [item[3] for item in q.pop_cohort()] == ["urgent", "b"]

    def test_cohort_from_empty_raises(self):
        with pytest.raises(IndexError):
            CalendarEventQueue().pop_cohort()


class TestEdges:
    def test_peek_on_empty_is_inf(self):
        assert CalendarEventQueue().peek() == float("inf")

    def test_pop_on_empty_raises(self):
        with pytest.raises(IndexError):
            CalendarEventQueue().pop()

    def test_nonpositive_day_width_rejected(self):
        with pytest.raises(ValueError):
            CalendarEventQueue(day_width_us=0.0)
        with pytest.raises(ValueError):
            CalendarEventQueue(day_width_us=-1.0)

    def test_adaptive_false_pins_the_geometry(self):
        q = CalendarEventQueue(day_width_us=10.0, adaptive=False)
        for seq in range(200):
            q.push((float(seq), 1, seq, seq))
        assert q.resizes == 0
        assert q.day_width_us == 10.0


class TestSizing:
    def test_day_width_from_stats_targets_a_few_events_per_day(self):
        stats = HorizonStats()
        for _ in range(100):
            stats.record(1_000.0)  # mean horizon 1000 us
        width = CalendarEventQueue.day_width_from_stats(stats, population=100)
        assert _MIN_DAY_WIDTH_US <= width <= _MAX_DAY_WIDTH_US
        # mean gap = 1000/100 = 10 us; ~3 events per day => ~30 us days
        assert width == pytest.approx(30.0)

    def test_day_width_clamped_below(self):
        stats = HorizonStats()
        stats.record(0.001)
        assert (
            CalendarEventQueue.day_width_from_stats(stats, population=1_000_000)
            == _MIN_DAY_WIDTH_US
        )

    def test_day_width_clamped_above(self):
        stats = HorizonStats()
        stats.record(1e12)
        assert (
            CalendarEventQueue.day_width_from_stats(stats, population=1)
            == _MAX_DAY_WIDTH_US
        )

    def test_empty_stats_fall_back_to_minimum(self):
        assert (
            CalendarEventQueue.day_width_from_stats(HorizonStats(), population=5)
            == _MIN_DAY_WIDTH_US
        )


class TestIntrospection:
    def test_stats_shape(self):
        q = CalendarEventQueue()
        q.push((1.0, 1, 1, "a"))
        q.push((1.0, 1, 2, "b"))
        s = q.stats()
        assert s["structure"] == "calendar"
        assert s["pending"] == 2
        assert s["occupied_days"] == 1
        assert s["mean_occupancy"] == 2.0
        assert s["horizon"]["count"] == 2

    def test_horizon_stats_tally(self):
        h = HorizonStats()
        h.record(10.0)
        h.record(30.0)
        assert h.count == 2
        assert h.mean_us == 20.0
        assert h.max_us == 30.0
        assert h.as_dict() == {"count": 2, "mean_us": 20.0, "max_us": 30.0}

    def test_repr_mentions_geometry(self):
        assert "day_width" in repr(CalendarEventQueue())
