"""Environment convenience APIs not covered elsewhere."""

import pytest

from repro.sim import Environment, SimulationError


def test_all_of_helper():
    env = Environment()
    cond = env.all_of([env.timeout(3.0), env.timeout(7.0)])
    env.run(until=cond)
    assert env.now == 7.0


def test_any_of_helper():
    env = Environment()
    cond = env.any_of([env.timeout(3.0), env.timeout(7.0)])
    env.run(until=cond)
    assert env.now == 3.0


def test_event_factory_names():
    env = Environment()
    ev = env.event(name="custom")
    assert "custom" in repr(ev)


def test_process_naming():
    env = Environment()

    def body():
        yield env.timeout(1.0)

    p = env.process(body(), name="worker")
    assert "worker" in repr(p)
    env.run()


def test_repr_shows_time_and_queue():
    env = Environment()
    env.timeout(5.0)
    text = repr(env)
    assert "t=0.000" in text
    assert "queued=1" in text


def test_schedule_event_negative_delay_guard():
    env = Environment()
    with pytest.raises(SimulationError):
        env._schedule_event(env.event(), delay=-1.0)


def test_run_with_no_events_returns_immediately():
    env = Environment()
    assert env.run() is None
    assert env.now == 0.0


def test_run_until_time_with_empty_queue_advances_clock():
    env = Environment()
    env.run(until=500.0)
    assert env.now == 500.0


def test_nested_process_chain_depth():
    """Deep process chains resolve without recursion issues."""
    env = Environment()

    def level(n):
        if n == 0:
            yield env.timeout(1.0)
            return 0
        value = yield env.process(level(n - 1))
        return value + 1

    assert env.run(until=env.process(level(100))) == 100
    assert env.now == 1.0
