"""Property-based invariants of the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []
    for d in delays:
        ev = env.timeout(d)
        ev.callbacks.append(lambda e, d=d: fired.append(env.now))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
    )
)
def test_clock_never_goes_backwards_during_processes(delays):
    env = Environment()
    observed = []

    def proc(d):
        yield env.timeout(d)
        observed.append(env.now)
        yield env.timeout(d)
        observed.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    # Global observation order must be monotone in simulated time.
    assert all(a <= b for a, b in zip(observed, observed[1:]))


@given(
    holds=st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=20),
    capacity=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50)
def test_resource_never_exceeds_capacity(holds, capacity):
    env = Environment()
    res = Resource(env, capacity=capacity)
    peak = [0]

    def user(hold):
        with res.request() as req:
            yield req
            peak[0] = max(peak[0], res.count)
            assert res.count <= capacity
            yield env.timeout(hold)

    for h in holds:
        env.process(user(h))
    env.run()
    assert res.count == 0
    assert peak[0] <= capacity
    assert res.queue_length == 0


@given(items=st.lists(st.integers(), min_size=0, max_size=40))
def test_store_preserves_fifo_order_and_conservation(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for it in items:
            yield store.put(it)
            yield env.timeout(1.0)

    def consumer():
        for _ in items:
            got = yield store.get()
            received.append(got)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items
    assert len(store) == 0
