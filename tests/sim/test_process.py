"""Process coroutines: spawning, waiting, returning, failing, interrupting."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


@pytest.fixture
def env():
    return Environment()


def test_process_runs_and_returns_value(env):
    def proc():
        yield env.timeout(5.0)
        return "finished"

    p = env.process(proc())
    assert env.run(until=p) == "finished"
    assert env.now == 5.0


def test_process_is_alive_until_done(env):
    def proc():
        yield env.timeout(5.0)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_receives_event_values(env):
    def proc():
        got = yield env.timeout(1.0, value="hello")
        return got

    assert env.run(until=env.process(proc())) == "hello"


def test_process_exception_fails_process_event(env):
    def proc():
        yield env.timeout(1.0)
        raise ValueError("inside")

    p = env.process(proc())
    with pytest.raises(ValueError, match="inside"):
        env.run(until=p)


def test_unwaited_process_failure_crashes_run(env):
    def proc():
        yield env.timeout(1.0)
        raise ValueError("unobserved")

    env.process(proc())
    with pytest.raises(ValueError, match="unobserved"):
        env.run()


def test_waiting_on_another_process(env):
    def child():
        yield env.timeout(3.0)
        return 99

    def parent():
        value = yield env.process(child())
        return value + 1

    assert env.run(until=env.process(parent())) == 100


def test_failed_event_thrown_into_process_can_be_caught(env):
    def proc():
        ev = env.event()
        env.schedule_callback(2.0, lambda: ev.fail(RuntimeError("deliberate")))
        try:
            yield ev
        except RuntimeError as e:
            return f"caught {e}"

    assert env.run(until=env.process(proc())) == "caught deliberate"


def test_yield_non_event_raises(env):
    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_waiting_on_already_processed_event(env):
    done = env.timeout(1.0, value="early")

    def proc():
        yield env.timeout(10.0)
        got = yield done  # already processed by now
        return got

    p = env.process(proc())
    assert env.run(until=p) == "early"
    assert env.now == 10.0


def test_spawn_requires_generator(env):
    with pytest.raises(SimulationError):
        env.process(lambda: None)


def test_active_process_tracking(env):
    observed = []

    def proc():
        observed.append(env.active_process)
        yield env.timeout(1.0)
        observed.append(env.active_process)

    p = env.process(proc())
    env.run()
    assert observed == [p, p]
    assert env.active_process is None


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                return ("interrupted", i.cause, env.now)
            return ("completed", None, env.now)

        v = env.process(victim())

        def attacker():
            yield env.timeout(10.0)
            v.interrupt("stop it")

        env.process(attacker())
        assert env.run(until=v) == ("interrupted", "stop it", 10.0)

    def test_interrupted_process_can_continue(self, env):
        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(5.0)
            return env.now

        v = env.process(victim())

        def attacker():
            yield env.timeout(10.0)
            v.interrupt()

        env.process(attacker())
        assert env.run(until=v) == 15.0

    def test_uncaught_interrupt_fails_process(self, env):
        def victim():
            yield env.timeout(100.0)

        v = env.process(victim())

        def attacker():
            yield env.timeout(1.0)
            v.interrupt()

        env.process(attacker())
        with pytest.raises(Interrupt):
            env.run(until=v)

    def test_interrupt_finished_process_raises(self, env):
        def quick():
            yield env.timeout(1.0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        def proc():
            env.active_process.interrupt()
            yield env.timeout(1.0)

        p = env.process(proc())
        with pytest.raises(SimulationError):
            env.run(until=p)

    def test_old_target_still_fires_after_interrupt(self, env):
        """After an interrupt the old target stays valid; waiting on it again works."""
        marker = env.timeout(50.0, value="late")

        def victim():
            try:
                yield marker
            except Interrupt:
                got = yield marker  # re-wait on the same event
                return got

        v = env.process(victim())

        def attacker():
            yield env.timeout(10.0)
            v.interrupt()

        env.process(attacker())
        assert env.run(until=v) == "late"
        assert env.now == 50.0
