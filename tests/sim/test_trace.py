"""Tracer: recording, filtering, bounds, export; scheduler integration."""

import json

import pytest

from repro.core import DWCSScheduler, StreamSpec
from repro.media import FrameType, MediaFrame
from repro.sim import Environment, Tracer


@pytest.fixture
def env():
    return Environment()


class TestTracer:
    def test_emit_records_time_and_fields(self, env):
        t = Tracer(env)
        env.schedule_callback(5.0, lambda: t.emit("cat", "thing", a=1))
        env.run()
        [e] = t.events()
        assert e.time_us == 5.0
        assert e.category == "cat"
        assert e.fields == {"a": 1}

    def test_category_filter(self, env):
        t = Tracer(env, categories=["keep"])
        t.emit("keep", "x")
        t.emit("drop", "y")
        assert len(t) == 1
        assert not t.wants("drop")

    def test_capacity_ring(self, env):
        t = Tracer(env, capacity=10)
        for i in range(25):
            t.emit("c", "e", i=i)
        assert len(t) == 10
        assert t.discarded == 15
        assert t.events()[0].fields["i"] == 15  # oldest survivor

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Tracer(env, capacity=0)

    def test_query_filters(self, env):
        t = Tracer(env)
        t.emit("a", "x")
        t.emit("a", "y")
        t.emit("b", "x")
        assert len(t.events(category="a")) == 2
        assert len(t.events(name="x")) == 2
        assert len(t.events(category="a", name="x")) == 1
        assert t.counts() == {"a": 2, "b": 1}

    def test_time_window_query(self, env):
        t = Tracer(env)
        env.schedule_callback(1.0, lambda: t.emit("c", "early"))
        env.schedule_callback(9.0, lambda: t.emit("c", "late"))
        env.run()
        assert [e.name for e in t.events(start_us=0, end_us=5)] == ["early"]

    def test_jsonl_export(self, env):
        t = Tracer(env)
        t.emit("c", "e", value=3)
        lines = t.to_jsonl().splitlines()
        assert json.loads(lines[0]) == {"t": 0.0, "cat": "c", "name": "e", "value": 3}


class TestSchedulerTracing:
    def test_decisions_drops_and_violations_traced(self, env):
        tracer = Tracer(env)
        s = DWCSScheduler(work_conserving=True)
        s.tracer = tracer
        s.add_stream(StreamSpec("lossy", period_us=100.0, loss_x=1, loss_y=2))
        s.add_stream(
            StreamSpec("strict", period_us=100.0, loss_x=0, loss_y=2, drop_late=False)
        )
        for sid in ("lossy", "strict"):
            for k in range(10):
                s.enqueue(MediaFrame(sid, k, FrameType.I, 1000, 0.0), 0.0)
        t = 0.0
        while s.backlog:
            s.schedule(t)
            t += 300.0  # overload: misses guaranteed
        counts = tracer.counts()
        assert counts["dwcs"] > 0
        names = {e.name for e in tracer.events(category="dwcs")}
        assert "decision" in names
        assert "drop" in names
        assert "violation" in names
        assert "late" in names
        # every drop event carries the stream and sequence number
        for e in tracer.events(name="drop"):
            assert e.fields["stream"] == "lossy"
            assert isinstance(e.fields["seq"], int)

    def test_untraced_scheduler_has_no_overhead_path(self, env):
        s = DWCSScheduler(work_conserving=True)
        assert s.tracer is None
        s.add_stream(StreamSpec("s", period_us=100.0, loss_x=1, loss_y=2))
        s.enqueue(MediaFrame("s", 0, FrameType.I, 1000, 0.0), 0.0)
        s.schedule(0.0)  # no crash, nothing recorded anywhere
