"""Tracer: recording, filtering, bounds, export; scheduler integration."""

import json

import pytest

from repro.core import DWCSScheduler, StreamSpec
from repro.media import FrameType, MediaFrame
from repro.sim import Environment, Tracer


@pytest.fixture
def env():
    return Environment()


class TestTracer:
    def test_emit_records_time_and_fields(self, env):
        t = Tracer(env)
        env.schedule_callback(5.0, lambda: t.emit("cat", "thing", a=1))
        env.run()
        [e] = t.events()
        assert e.time_us == 5.0
        assert e.category == "cat"
        assert e.fields == {"a": 1}

    def test_category_filter(self, env):
        t = Tracer(env, categories=["keep"])
        t.emit("keep", "x")
        t.emit("drop", "y")
        assert len(t) == 1
        assert not t.wants("drop")

    def test_capacity_ring(self, env):
        t = Tracer(env, capacity=10)
        for i in range(25):
            t.emit("c", "e", i=i)
        assert len(t) == 10
        assert t.discarded == 15
        assert t.events()[0].fields["i"] == 15  # oldest survivor

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Tracer(env, capacity=0)

    def test_query_filters(self, env):
        t = Tracer(env)
        t.emit("a", "x")
        t.emit("a", "y")
        t.emit("b", "x")
        assert len(t.events(category="a")) == 2
        assert len(t.events(name="x")) == 2
        assert len(t.events(category="a", name="x")) == 1
        assert t.counts() == {"a": 2, "b": 1}

    def test_time_window_query(self, env):
        t = Tracer(env)
        env.schedule_callback(1.0, lambda: t.emit("c", "early"))
        env.schedule_callback(9.0, lambda: t.emit("c", "late"))
        env.run()
        assert [e.name for e in t.events(start_us=0, end_us=5)] == ["early"]

    def test_jsonl_export(self, env):
        t = Tracer(env)
        t.emit("c", "e", value=3)
        lines = t.to_jsonl().splitlines()
        assert json.loads(lines[0]) == {"t": 0.0, "cat": "c", "name": "e", "value": 3}

    def test_jsonl_newline_terminated(self, env):
        t = Tracer(env)
        assert t.to_jsonl() == ""  # no events, no stray newline
        t.emit("c", "a")
        t.emit("c", "b")
        text = t.to_jsonl()
        assert text.endswith("\n")
        # concatenating two exports must stay one-event-per-line
        assert len((text + text).splitlines()) == 4

    def test_reserved_payload_keys_namespaced(self, env):
        t = Tracer(env)
        env.schedule_callback(3.0, lambda: t.emit("tcp", "rto", t=1.5, cat="x", seq=7))
        env.run()
        d = t.events()[0].to_dict()
        # the envelope columns survive untouched...
        assert d["t"] == 3.0
        assert d["cat"] == "tcp"
        assert d["name"] == "rto"
        # ...and the colliding payload fields land under the f_ prefix
        assert d["f_t"] == 1.5
        assert d["f_cat"] == "x"
        assert d["seq"] == 7

    def test_reserved_name_key_namespaced(self):
        from repro.sim.trace import TraceEvent

        # 'name' can't ride emit()'s kwargs (it collides with the
        # positional parameter) but can reach to_dict via fields directly
        e = TraceEvent(1.0, "c", "real", fields={"name": "fake"})
        d = e.to_dict()
        assert d["name"] == "real"
        assert d["f_name"] == "fake"


class TestAccounting:
    def test_emitted_and_discarded_track_the_ring(self, env):
        t = Tracer(env, capacity=10)
        for i in range(10):
            t.emit("c", "e", i=i)
        assert (t.emitted, t.discarded, len(t)) == (10, 0, 10)
        t.emit("c", "e", i=10)  # first eviction exactly at the boundary
        assert (t.emitted, t.discarded, len(t)) == (11, 1, 10)
        for i in range(11, 25):
            t.emit("c", "e", i=i)
        assert t.emitted == 25
        assert t.discarded == 15
        # invariant: everything emitted is either retained or discarded
        assert t.emitted - t.discarded == len(t)

    def test_filtered_categories_cost_nothing(self, env):
        t = Tracer(env, categories=["keep"])
        for _ in range(5):
            t.emit("drop", "e")
        t.instant("drop", "e")
        assert t.begin_span("drop", "e") is None
        assert (t.emitted, t.discarded, len(t)) == (0, 0, 0)
        t.emit("keep", "e")
        assert (t.emitted, len(t)) == (1, 1)


class TestSpans:
    def test_begin_end_pairing(self, env):
        t = Tracer(env)
        sid_holder = {}
        env.schedule_callback(2.0, lambda: sid_holder.update(s=t.begin_span("span", "read", stream="s1")))
        env.schedule_callback(7.0, lambda: t.end_span(sid_holder["s"], bytes=100))
        env.run()
        begin, end = t.events()
        assert begin.fields["ph"] == "B"
        assert end.fields["ph"] == "E"
        assert begin.fields["span"] == end.fields["span"]
        assert begin.time_us == 2.0
        assert end.time_us == 7.0
        assert t.open_span_count == 0
        assert t.unbalanced_ends == 0

    def test_parent_link_recorded(self, env):
        t = Tracer(env)
        outer = t.begin_span("span", "frame")
        inner = t.begin_span("span", "read", parent=outer)
        assert t.events()[1].fields["parent"] == outer
        t.end_span(inner)
        t.end_span(outer)

    def test_unbalanced_end_detected(self, env):
        t = Tracer(env)
        sid = t.begin_span("span", "x")
        t.end_span(sid)
        t.end_span(sid)  # double close
        t.end_span(999)  # never opened
        assert t.unbalanced_ends == 2

    def test_end_none_is_noop(self, env):
        t = Tracer(env)
        t.end_span(None)
        assert (len(t), t.unbalanced_ends) == (0, 0)

    def test_open_spans_reported(self, env):
        t = Tracer(env)
        sid = t.begin_span("span", "stuck", stream="s1")
        assert t.open_span_count == 1
        [(got_id, cat, name, begin_us)] = t.open_spans()
        assert (got_id, cat, name, begin_us) == (sid, "span", "stuck", 0.0)

    def test_instant_marker(self, env):
        t = Tracer(env)
        t.instant("event", "card_crash", card="rd0")
        [e] = t.events()
        assert e.fields["ph"] == "i"
        assert e.fields["card"] == "rd0"


class TestDump:
    def test_dump_streams_jsonl(self, env, tmp_path):
        t = Tracer(env)
        for i in range(4):
            t.emit("c", "e", i=i)
        path = tmp_path / "events.jsonl"
        assert t.dump(path) == 4
        text = path.read_text()
        assert text == t.to_jsonl()
        assert text.endswith("\n")
        assert [json.loads(line)["i"] for line in text.splitlines()] == [0, 1, 2, 3]

    def test_dump_empty_tracer(self, env, tmp_path):
        t = Tracer(env)
        path = tmp_path / "empty.jsonl"
        assert t.dump(path) == 0
        assert path.read_text() == ""


class TestSchedulerTracing:
    def test_decisions_drops_and_violations_traced(self, env):
        tracer = Tracer(env)
        s = DWCSScheduler(work_conserving=True)
        s.tracer = tracer
        s.add_stream(StreamSpec("lossy", period_us=100.0, loss_x=1, loss_y=2))
        s.add_stream(
            StreamSpec("strict", period_us=100.0, loss_x=0, loss_y=2, drop_late=False)
        )
        for sid in ("lossy", "strict"):
            for k in range(10):
                s.enqueue(MediaFrame(sid, k, FrameType.I, 1000, 0.0), 0.0)
        t = 0.0
        while s.backlog:
            s.schedule(t)
            t += 300.0  # overload: misses guaranteed
        counts = tracer.counts()
        assert counts["dwcs"] > 0
        names = {e.name for e in tracer.events(category="dwcs")}
        assert "decision" in names
        assert "drop" in names
        assert "violation" in names
        assert "late" in names
        # every drop event carries the stream and sequence number
        for e in tracer.events(name="drop"):
            assert e.fields["stream"] == "lossy"
            assert isinstance(e.fields["seq"], int)

    def test_untraced_scheduler_has_no_overhead_path(self, env):
        s = DWCSScheduler(work_conserving=True)
        assert s.tracer is None
        s.add_stream(StreamSpec("s", period_us=100.0, loss_x=1, loss_y=2))
        s.enqueue(MediaFrame("s", 0, FrameType.I, 1000, 0.0), 0.0)
        s.schedule(0.0)  # no crash, nothing recorded anywhere
