"""Differential: heap vs. calendar Environments under random schedules.

Hypothesis drives BOTH queue kernels through identical interleaved
schedule / succeed / timeout / cancel / interrupt sequences and asserts
the observable pop order (who fired, at what clock, in what sequence) is
identical. This is the adversarial counterpart to the golden-digest
oracle: the digests prove the real experiments agree; this proves
*arbitrary* schedules do — including the tie-heavy, urgent-preempting,
mid-cohort-mutating ones the experiments may never produce.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Interrupt

#: a tie-heavy delay grid: repeated values force same-tick cohorts
DELAYS = st.sampled_from([0.0, 0.0, 1.0, 2.5, 5.0, 5.0, 5.0, 10.0, 40.0])

#: one op = (kind, delay, aux)
OPS = st.lists(
    st.tuples(
        st.sampled_from(["timeout", "succeed_later", "cancel", "interrupt"]),
        DELAYS,
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=30,
)


def drive(queue_kind, ops, split):
    """Run one op sequence on one kernel; returns the observable trace."""
    env = Environment(queue=queue_kind)
    trace = []
    cancelable = []

    def waiter(k):
        try:
            yield env.timeout(10_000.0)
            trace.append(("waiter-done", k, env.now))
        except Interrupt as it:
            trace.append(("interrupted", k, it.cause, env.now))

    for k, (kind, delay, aux) in enumerate(ops):
        if kind == "timeout":
            t = env.timeout(delay)
            t.callbacks.append(lambda _e, k=k: trace.append(("fire", k, env.now)))
            cancelable.append(t)
        elif kind == "succeed_later":
            # a manual event succeeded from inside the run, at `delay`:
            # exercises mid-run same-tick insertion
            target = env.event()
            target.callbacks.append(
                lambda _e, k=k: trace.append(("manual", k, env.now))
            )
            env.timeout(delay).callbacks.append(
                lambda _e, tg=target: tg.succeed()
            )
        elif kind == "cancel":
            # cancellation in this kernel is a callback-level concern: the
            # event still pops (in order) but observes nothing
            if cancelable:
                cancelable[aux % len(cancelable)].callbacks.clear()
        elif kind == "interrupt":
            # URGENT delivery mid-cohort: the one path that may preempt a
            # popped-but-undispatched cohort remainder
            proc = env.process(waiter(k))
            env.timeout(delay).callbacks.append(
                lambda _e, p=proc, k=k: p.interrupt(k) if p.is_alive else None
            )

    # run in two segments to exercise the until-boundary mid-schedule too
    env.run(until=float(split))
    trace.append(("segment", env.now, len(env._queue)))
    env.run()
    trace.append(("end", env.now, len(env._queue)))
    return trace


@given(ops=OPS, split=st.sampled_from([0.0, 2.5, 5.0, 10.0, 50.0]))
@settings(max_examples=80, deadline=None)
def test_heap_and_calendar_produce_identical_traces(ops, split):
    assert drive("heap", ops, split) == drive("calendar", ops, split)
