"""Ethernet links, switch forwarding, and stack cost conventions."""

import pytest

from repro.hw import (
    CLIENT_STACK,
    EthernetLink,
    EthernetPort,
    EthernetSwitch,
    HOST_STACK,
    I960_STACK,
    NetFrame,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def run_process(env, gen):
    return env.run(until=env.process(gen))


class TestLink:
    def test_full_frame_wire_time_is_about_120us(self, env):
        """Paper yardstick: a full Ethernet frame ≈120 µs on 100 Mbps."""
        link = EthernetLink(env)
        assert link.wire_time_us(1500) == pytest.approx(120.0)

    def test_transmit_latency(self, env):
        link = EthernetLink(env, propagation_us=1.0)
        latency = run_process(env, link.transmit(1250))
        assert latency == pytest.approx(100.0 + 1.0)

    def test_transmissions_serialize(self, env):
        link = EthernetLink(env)
        ends = []

        def tx():
            yield from link.transmit(12500)  # 1000us
            ends.append(env.now)

        env.process(tx())
        env.process(tx())
        env.run()
        assert ends[1] >= 2 * ends[0] * 0.99

    def test_accounting(self, env):
        link = EthernetLink(env)
        run_process(env, link.transmit(500))
        assert link.bytes_sent == 500
        assert link.frames_sent == 1

    def test_invalid_bandwidth(self, env):
        with pytest.raises(ValueError):
            EthernetLink(env, bandwidth_mbps=0)


class TestNetFrame:
    def test_wire_bytes_include_headers(self):
        f = NetFrame(payload_bytes=1000)
        assert f.wire_bytes == 1000 + 46

    def test_large_payload_fragments(self):
        f = NetFrame(payload_bytes=3000)
        assert f.wire_bytes == 3000 + 2 * 46  # two MTU-sized packets


class TestSwitch:
    def _topology(self, env):
        switch = EthernetSwitch(env)
        a = EthernetPort(env, "a")
        b = EthernetPort(env, "b")
        switch.attach(a)
        switch.attach(b)
        return switch, a, b

    def test_end_to_end_delivery(self, env):
        switch, a, b = self._topology(env)
        frame = NetFrame(payload_bytes=1000, stream_id="s1", seqno=7)

        def sender():
            yield from a.send(frame, "b")

        def receiver():
            got = yield b.receive()
            return got

        env.process(sender())
        got = env.run(until=env.process(receiver()))
        assert got is frame
        assert got.seqno == 7

    def test_store_and_forward_latency(self, env):
        switch, a, b = self._topology(env)
        frame = NetFrame(payload_bytes=1000)

        def sender():
            latency = yield from a.send(frame, "b")
            return latency

        latency = env.run(until=env.process(sender()))
        wire = 8 * frame.wire_bytes / 100.0
        # two serializations (uplink + downlink) + switch latency + 2 props
        assert latency == pytest.approx(2 * wire + switch.latency_us + 2.0, rel=0.01)

    def test_unknown_destination_raises(self, env):
        _switch, a, _b = self._topology(env)

        def sender():
            yield from a.send(NetFrame(payload_bytes=10), "nowhere")

        with pytest.raises(KeyError):
            env.run(until=env.process(sender()))

    def test_unattached_port_send_raises(self, env):
        lone = EthernetPort(env, "lone")

        def sender():
            yield from lone.send(NetFrame(payload_bytes=10), "b")

        with pytest.raises(RuntimeError):
            env.run(until=env.process(sender()))

    def test_duplicate_port_name_rejected(self, env):
        switch = EthernetSwitch(env)
        switch.attach(EthernetPort(env, "x"))
        with pytest.raises(ValueError):
            switch.attach(EthernetPort(env, "x"))

    def test_port_names(self, env):
        switch, a, b = self._topology(env)
        assert switch.port_names == ["a", "b"]


class TestStackCosts:
    def test_i960_stack_much_slower_than_host(self):
        assert I960_STACK.cost_us(1000) > 2 * HOST_STACK.cost_us(1000)

    def test_end_to_end_1000_byte_frame_about_1_2ms(self, env):
        """Table 4's 1.2net component: NI stack + wire + client stack."""
        switch = EthernetSwitch(env)
        ni, client = EthernetPort(env, "ni"), EthernetPort(env, "client")
        switch.attach(ni)
        switch.attach(client)
        frame = NetFrame(payload_bytes=1000)

        def deliver():
            yield env.timeout(I960_STACK.cost_us(1000))
            yield from ni.send(frame, "client")
            yield env.timeout(CLIENT_STACK.cost_us(1000))
            return env.now

        total = env.run(until=env.process(deliver()))
        assert total == pytest.approx(1200.0, rel=0.12)
