"""PCI segment timing: DMA bandwidth, PIO costs, arbitration, traffic."""

import pytest

from repro.hw import Bus, DMAEngine, PCIBridge, PCISegment
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def segment(env):
    return PCISegment(env, "pci0")


def run_process(env, gen):
    """Run a generator process to completion and return its value."""
    return env.run(until=env.process(gen))


class TestPCITiming:
    def test_table5_file_dma_duration(self, env, segment):
        """773665-byte MPEG file DMA ≈ 11673.84 µs (Table 5)."""
        latency = run_process(env, segment.transfer(773665))
        assert latency == pytest.approx(11673.84, rel=0.01)

    def test_table5_effective_bandwidth(self, env, segment):
        latency = run_process(env, segment.transfer(773665))
        bw = 773665 / latency  # bytes/µs == MB/s
        assert bw == pytest.approx(66.27, rel=0.01)

    def test_table4_frame_dma_about_15us(self, env, segment):
        """1000-byte card-to-card frame ≈ 15 µs (Table 4's 0.015 ms)."""
        latency = run_process(env, segment.transfer(1000))
        assert latency == pytest.approx(15.0, rel=0.07)

    def test_pio_read_cost(self, env, segment):
        assert run_process(env, segment.pio_read()) == pytest.approx(3.6)

    def test_pio_write_cost(self, env, segment):
        assert run_process(env, segment.pio_write()) == pytest.approx(3.1)

    def test_invalid_transfer_size(self, env, segment):
        with pytest.raises(ValueError):
            run_process(env, segment.transfer(0))


class TestArbitration:
    def test_concurrent_transfers_serialize(self, env, segment):
        done = []

        def xfer(tag):
            latency = yield from segment.transfer(66270)  # 1000us of data
            done.append((tag, env.now, latency))

        env.process(xfer("a"))
        env.process(xfer("b"))
        env.run()
        # Second transfer waits for the first: finishes ~2x later.
        (a_tag, a_end, _), (b_tag, b_end, b_lat) = sorted(done, key=lambda x: x[1])
        assert b_end >= 2 * a_end * 0.99
        assert b_lat > a_end  # queueing visible in latency

    def test_priority_wins_arbitration(self, env, segment):
        order = []

        def holder():
            yield from segment.transfer(66270)
            order.append("holder")

        def low():
            yield env.timeout(1.0)
            yield from segment.transfer(1000, priority=5)
            order.append("low")

        def high():
            yield env.timeout(2.0)
            yield from segment.transfer(1000, priority=1)
            order.append("high")

        env.process(holder())
        env.process(low())
        env.process(high())
        env.run()
        assert order == ["holder", "high", "low"]


class TestTrafficAccounting:
    def test_bytes_and_transactions_counted(self, env, segment):
        run_process(env, segment.transfer(5000))
        run_process(env, segment.pio_read())
        assert segment.bytes_transferred == 5004
        assert segment.transactions == 2

    def test_peer_dma_bypasses_host_bus(self, env, segment):
        """Path B's core claim: card-to-card DMA adds zero host-bus traffic."""
        host_bus = Bus(env, "hostbus", bandwidth_mb_s=528.0)
        dma = DMAEngine(env, segment)
        run_process(env, dma.peer_transfer(10_000))
        assert segment.bytes_transferred == 10_000
        assert host_bus.bytes_transferred == 0
        assert dma.bytes_moved == 10_000

    def test_bridge_transfer_charges_both_buses(self, env, segment):
        """Path A crosses the bridge: traffic lands on PCI *and* host bus."""
        host_bus = Bus(env, "hostbus", bandwidth_mb_s=528.0)
        bridge = PCIBridge(env, host_bus, segment)
        dma = DMAEngine(env, segment)
        run_process(env, dma.host_transfer(bridge, 10_000))
        assert segment.bytes_transferred == 10_000
        assert host_bus.bytes_transferred == 10_000

    def test_bridge_paced_by_slower_bus(self, env, segment):
        host_bus = Bus(env, "hostbus", bandwidth_mb_s=528.0)
        bridge = PCIBridge(env, host_bus, segment)
        latency = run_process(env, bridge.transfer(66270))
        # ~1000us at PCI speed (the slower bus), not ~125us at host speed
        assert latency > 990.0

    def test_mismatched_bridge_rejected(self, env, segment):
        other = PCISegment(env, "pci1")
        host_bus = Bus(env, "hostbus", bandwidth_mb_s=528.0)
        bridge = PCIBridge(env, host_bus, other)
        dma = DMAEngine(env, segment)
        with pytest.raises(ValueError):
            run_process(env, dma.host_transfer(bridge, 100))

    def test_utilization_reporting(self, env, segment):
        def load():
            yield from segment.transfer(66270)  # ~1000us
            yield env.timeout(1000.0)  # idle

        env.process(load())
        env.run()
        assert 0.4 < segment.utilization() < 0.6


class TestAttachment:
    def test_attach_and_duplicate_rejected(self, env, segment):
        dev = object()
        segment.attach(dev)
        assert dev in segment.devices
        with pytest.raises(ValueError):
            segment.attach(dev)
