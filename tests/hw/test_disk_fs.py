"""Disk and filesystem latency models (Table 4 components)."""

import pytest

from repro.hw import DosFS, SCSIDisk, UFS
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def disk(env):
    return SCSIDisk(env)


def run_process(env, gen):
    return env.run(until=env.process(gen))


class TestSCSIDisk:
    def test_random_frame_access_is_4_2ms(self, env, disk):
        """Paper: 'disk access time ... ~4.2ms for a single frame'."""
        latency = run_process(env, disk.read(1000))
        assert latency == pytest.approx(4200.0, rel=0.02)

    def test_sequential_access_much_cheaper(self, env, disk):
        def reads():
            first = yield from disk.read(1024, offset=0)
            second = yield from disk.read(1024, offset=1024)
            return first, second

        first, second = run_process(env, reads())
        assert first > 4000.0
        assert second < 700.0
        assert disk.stats.sequential_hits == 1

    def test_nonadjacent_offset_is_random(self, env, disk):
        def reads():
            yield from disk.read(1024, offset=0)
            latency = yield from disk.read(1024, offset=99999)
            return latency

        assert run_process(env, reads()) > 4000.0

    def test_offsetless_read_resets_position(self, env, disk):
        def reads():
            yield from disk.read(1024, offset=0)
            yield from disk.read(512)  # unknown position
            latency = yield from disk.read(1024, offset=1024 + 512)
            return latency

        assert run_process(env, reads()) > 4000.0

    def test_requests_serialize_on_actuator(self, env, disk):
        ends = []

        def reader():
            yield from disk.read(1000)
            ends.append(env.now)

        env.process(reader())
        env.process(reader())
        env.run()
        assert ends[1] >= 2 * ends[0] * 0.99

    def test_write_accounting(self, env, disk):
        run_process(env, disk.write(2048))
        assert disk.stats.writes == 1
        assert disk.stats.bytes_written == 2048

    def test_invalid_size(self, env, disk):
        with pytest.raises(ValueError):
            run_process(env, disk.read(0))

    def test_larger_transfer_costs_more(self, env):
        d1, d2 = SCSIDisk(env), SCSIDisk(env)

        def read(disk, n):
            return disk.read(n)

        small = run_process(env, read(d1, 1000))
        large = run_process(env, read(d2, 100_000))
        assert large > small + 9000.0  # ~9.9ms extra media transfer at 10MB/s


class TestDosFS:
    def test_ni_frame_read_about_4_2ms(self, env, disk):
        """Chain-cached dosFs on the NI: one random access per frame."""
        fs = DosFS(env, disk, chain_cached=True)
        f = fs.open("movie.mpg", size_bytes=1_000_000)
        latency_start = env.now
        run_process(env, f.read_next(1000))
        latency = env.now - latency_start
        assert latency == pytest.approx(4260.0, rel=0.05)

    def test_host_mounted_frame_read_about_8ms(self, env, disk):
        """Uncached chain (Solaris mount): FAT + data access ≈ 2 random I/Os."""
        fs = DosFS(env, disk, chain_cached=False, per_read_overhead_us=300.0)
        f = fs.open("movie.mpg", size_bytes=1_000_000)
        start = env.now
        run_process(env, f.read_next(1000))
        latency = env.now - start
        assert 7500.0 < latency < 9200.0
        assert fs.fat_accesses == 1

    def test_eof_returns_zero(self, env, disk):
        fs = DosFS(env, disk)
        f = fs.open("tiny", size_bytes=500)

        def reads():
            got1 = yield from f.read_next(1000)
            got2 = yield from f.read_next(1000)
            return got1, got2

        got1, got2 = run_process(env, reads())
        assert got1 == 500
        assert got2 == 0
        assert f.eof

    def test_rewind(self, env, disk):
        fs = DosFS(env, disk)
        f = fs.open("x", size_bytes=1000)
        run_process(env, f.read_next(1000))
        assert f.eof
        f.rewind()
        assert not f.eof

    def test_invalid_file_size(self, env, disk):
        with pytest.raises(ValueError):
            DosFS(env, disk).open("x", size_bytes=0)


class TestUFS:
    def test_steady_state_frame_read_under_1ms(self, env, disk):
        """UFS block cache + read-ahead amortizes the 4.2ms access."""
        fs = UFS(env, disk)
        f = fs.open("movie.mpg", size_bytes=1_000_000)

        def stream(n):
            for _ in range(n):
                yield from f.read_next(1000)

        # Warm up past the first (cold) block, then measure steady state.
        run_process(env, stream(32))
        start = env.now
        run_process(env, stream(100))
        per_frame = (env.now - start) / 100
        assert per_frame < 1000.0
        assert per_frame > 300.0  # not free either

    def test_cache_hits_dominate_sequential_stream(self, env, disk):
        fs = UFS(env, disk)
        f = fs.open("movie.mpg", size_bytes=1_000_000)

        def stream(n):
            for _ in range(n):
                yield from f.read_next(1000)

        run_process(env, stream(64))
        assert fs.cache_hits > 4 * fs.disk_accesses

    def test_ufs_beats_dosfs_by_large_factor(self, env):
        """The Experiment-I filesystem gap: UFS ≈1 ms vs dosFs ≈8 ms."""
        ufs_disk, dos_disk = SCSIDisk(env), SCSIDisk(env)
        ufs = UFS(env, ufs_disk)
        dos = DosFS(env, dos_disk, chain_cached=False, per_read_overhead_us=300.0)
        uf = ufs.open("m", size_bytes=200_000)
        df = dos.open("m", size_bytes=200_000)

        def stream(f, n):
            for _ in range(n):
                yield from f.read_next(1000)

        start = env.now
        run_process(env, stream(uf, 100))
        ufs_time = env.now - start
        start = env.now
        run_process(env, stream(df, 100))
        dos_time = env.now - start
        assert dos_time > 5 * ufs_time
