"""Memory regions and the hardware-queue register file."""

import pytest

from repro.fixedpoint import OpCounter
from repro.hw import MB, HardwareQueueFile, MemoryRegion, OutOfMemoryError


class TestMemoryRegion:
    def test_capacity_accounting(self):
        mem = MemoryRegion(4 * MB, name="ni")
        a = mem.allocate(1 * MB, tag="frames")
        assert mem.used_bytes == 1 * MB
        assert mem.free_bytes == 3 * MB
        a.free()
        assert mem.used_bytes == 0

    def test_oom_raises(self):
        mem = MemoryRegion(1024)
        mem.allocate(1000)
        with pytest.raises(OutOfMemoryError):
            mem.allocate(100)

    def test_peak_tracking(self):
        mem = MemoryRegion(4096)
        a = mem.allocate(3000)
        a.free()
        mem.allocate(100)
        assert mem.peak_bytes == 3000

    def test_double_free_is_noop(self):
        mem = MemoryRegion(4096)
        a = mem.allocate(100)
        a.free()
        a.free()
        assert mem.used_bytes == 0

    def test_tagged_live_allocations(self):
        mem = MemoryRegion(4096)
        mem.allocate(10, tag="desc")
        mem.allocate(20, tag="frame")
        mem.allocate(30, tag="desc")
        descs = mem.live_allocations("desc")
        assert len(descs) == 2
        assert {a.size for a in descs} == {10, 30}
        assert len(mem.live_allocations()) == 3

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion(0)
        with pytest.raises(ValueError):
            MemoryRegion(1024).allocate(0)

    def test_i960_board_memory_is_pinned(self):
        mem = MemoryRegion(4 * MB, pinned=True)
        assert mem.pinned


class TestHardwareQueueFile:
    def test_register_count_matches_i960rd(self):
        """The i960 RD exposes exactly 1004 32-bit queue registers."""
        assert len(HardwareQueueFile()) == 1004

    def test_read_write_roundtrip(self):
        hq = HardwareQueueFile()
        hq.write(0, 0xDEADBEEF)
        assert hq.read(0) == 0xDEADBEEF

    def test_values_truncated_to_32_bits(self):
        hq = HardwareQueueFile()
        hq.write(10, 0x1_0000_0001)
        assert hq.read(10) == 1

    def test_out_of_range_rejected(self):
        hq = HardwareQueueFile()
        with pytest.raises(IndexError):
            hq.read(1004)
        with pytest.raises(IndexError):
            hq.write(-1, 0)

    def test_non_int_value_rejected(self):
        with pytest.raises(TypeError):
            HardwareQueueFile().write(0, "x")

    def test_accesses_tally_mmio_ops(self):
        ops = OpCounter()
        hq = HardwareQueueFile(ops=ops)
        hq.write(5, 1)
        hq.write(6, 2)
        hq.read(5)
        assert ops.mmio_writes == 2
        assert ops.mmio_reads == 1
        assert ops.mem_reads == 0  # MMIO bypasses normal memory accounting
