"""I960RDCard / Intel82557NIC composites and the disk-vs-cache constraint."""

import pytest

from repro.hw import I960RDCard, Intel82557NIC, MB, PCISegment
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def segment(env):
    return PCISegment(env, "pci0")


class TestI960RDCard:
    def test_default_configuration(self, env, segment):
        card = I960RDCard(env, segment)
        assert card.memory.capacity_bytes == 4 * MB
        assert len(card.hardware_queues) == 1004
        assert len(card.eth_ports) == 2
        assert not card.cpu.spec.has_fpu
        assert card.cpu.spec.clock_mhz == 66.0
        assert card in segment.devices

    def test_memory_expandable_to_36mb(self, env, segment):
        card = I960RDCard(env, segment, memory_mb=36)
        assert card.memory.capacity_bytes == 36 * MB

    def test_memory_bounds_enforced(self, env, segment):
        with pytest.raises(ValueError):
            I960RDCard(env, segment, memory_mb=2)
        with pytest.raises(ValueError):
            I960RDCard(env, segment, memory_mb=64)

    def test_cache_off_by_default(self, env, segment):
        assert not I960RDCard(env, segment).cache.enabled

    def test_diskless_card_can_enable_cache(self, env, segment):
        card = I960RDCard(env, segment)
        card.enable_data_cache()
        assert card.cache.enabled

    def test_attaching_disk_disables_cache(self, env, segment):
        """VxWorks SCSI driver constraint (paper §4.2)."""
        card = I960RDCard(env, segment)
        card.enable_data_cache()
        card.attach_disk()
        assert not card.cache.enabled

    def test_disk_attached_card_cannot_enable_cache(self, env, segment):
        card = I960RDCard(env, segment)
        card.attach_disk()
        with pytest.raises(RuntimeError):
            card.enable_data_cache()

    def test_two_scsi_ports_max(self, env, segment):
        card = I960RDCard(env, segment)
        card.attach_disk()
        card.attach_disk()
        with pytest.raises(RuntimeError):
            card.attach_disk()

    def test_attach_disk_returns_dosfs(self, env, segment):
        card = I960RDCard(env, segment)
        fs = card.attach_disk()
        assert fs.fstype == "dosfs"
        assert card.has_disks
        assert len(card.disks) == 1
        assert len(card.filesystems) == 1

    def test_pinned_memory(self, env, segment):
        assert I960RDCard(env, segment).memory.pinned

    def test_three_cards_on_one_segment(self, env, segment):
        """The paper's Table 1-3 setup: three I2O cards on one bus segment."""
        cards = [I960RDCard(env, segment, name=f"i2o{i}") for i in range(3)]
        assert len(segment.devices) == 3
        assert {c.name for c in cards} == {"i2o0", "i2o1", "i2o2"}


class TestIntel82557:
    def test_plain_nic(self, env, segment):
        nic = Intel82557NIC(env, segment)
        assert nic.eth_port is not None
        assert nic in segment.devices
        assert not hasattr(nic, "cpu")
