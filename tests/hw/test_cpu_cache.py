"""CPU cost model and data cache behaviour."""

import pytest

from repro.fixedpoint import OpCounter
from repro.hw import (
    CPU,
    CPUSpec,
    DataCache,
    I960RD_66,
    PENTIUM_PRO_200,
    ULTRASPARC_300,
)


class TestDataCache:
    def test_disabled_cache_never_hits(self):
        c = DataCache(hit_ratio=0.9, enabled=False)
        assert c.effective_hit_ratio() == 0.0

    def test_enabled_cache_uses_base_ratio(self):
        c = DataCache(hit_ratio=0.9, enabled=True)
        assert c.effective_hit_ratio() == 0.9

    def test_enable_disable(self):
        c = DataCache(enabled=False)
        c.enable()
        assert c.enabled
        c.disable()
        assert not c.enabled

    def test_working_set_within_capacity_full_ratio(self):
        c = DataCache(size_bytes=4096, hit_ratio=0.9, enabled=True)
        assert c.effective_hit_ratio(working_set_bytes=2048) == 0.9

    def test_working_set_beyond_capacity_degrades(self):
        c = DataCache(size_bytes=4096, hit_ratio=0.9, enabled=True)
        assert c.effective_hit_ratio(working_set_bytes=8192) == pytest.approx(0.45)

    def test_invalid_hit_ratio_rejected(self):
        with pytest.raises(ValueError):
            DataCache(hit_ratio=1.5)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            DataCache(size_bytes=0)


class TestCPUSpec:
    def test_cycle_time(self):
        assert I960RD_66.cycle_us == pytest.approx(1 / 66.0)
        assert PENTIUM_PRO_200.cycle_us == pytest.approx(0.005)

    def test_i960_has_no_fpu(self):
        assert not I960RD_66.has_fpu
        assert PENTIUM_PRO_200.has_fpu
        assert ULTRASPARC_300.has_fpu


class TestCPUCostModel:
    def test_int_ops_cost_alu_cycles(self):
        cpu = CPU(I960RD_66)
        t = cpu.time_for(OpCounter(int_ops=66))
        assert t == pytest.approx(66 * I960RD_66.int_op_cycles / 66.0)

    def test_fp_emulation_much_more_expensive_than_int(self):
        cpu = CPU(I960RD_66)
        t_fp = cpu.time_for(OpCounter(fp_ops=10))
        t_int = cpu.time_for(OpCounter(int_ops=10))
        assert t_fp > 20 * t_int

    def test_fpu_machines_price_fp_cheaply(self):
        cpu = CPU(PENTIUM_PRO_200)
        t_fp = cpu.time_for(OpCounter(fp_ops=10))
        t_int = cpu.time_for(OpCounter(int_ops=10))
        assert t_fp <= 5 * t_int

    def test_cache_enabled_reduces_memory_cost(self):
        ops = OpCounter(mem_reads=100)
        cold = CPU(I960RD_66, cache=DataCache(enabled=False))
        warm = CPU(I960RD_66, cache=DataCache(hit_ratio=0.9, enabled=True))
        assert warm.time_for(ops) < cold.time_for(ops) / 3

    def test_mmio_cost_independent_of_cache(self):
        ops = OpCounter(mmio_reads=50, mmio_writes=50)
        cold = CPU(I960RD_66, cache=DataCache(enabled=False))
        warm = CPU(I960RD_66, cache=DataCache(hit_ratio=0.9, enabled=True))
        assert cold.time_for(ops) == warm.time_for(ops)

    def test_same_ops_slower_on_slower_clock(self):
        ops = OpCounter(int_ops=1000, mem_reads=100)
        slow = CPU(I960RD_66, cache=DataCache(enabled=False))
        fast = CPU(
            CPUSpec(name="fast-i960", clock_mhz=264.0, has_fpu=False),
            cache=DataCache(enabled=False),
        )
        assert slow.time_for(ops) == pytest.approx(4 * fast.time_for(ops))

    def test_cycle_accounting_accumulates(self):
        cpu = CPU(I960RD_66)
        cpu.time_for(OpCounter(int_ops=10))
        cpu.time_for(OpCounter(int_ops=5))
        assert cpu.cycles_charged == 15 * I960RD_66.int_op_cycles

    def test_time_us_raw_cycles(self):
        cpu = CPU(I960RD_66)
        assert cpu.time_us(66.0) == pytest.approx(1.0)

    def test_working_set_passthrough(self):
        cache = DataCache(size_bytes=1024, hit_ratio=0.9, enabled=True)
        cpu = CPU(I960RD_66, cache=cache)
        small = cpu.time_for(OpCounter(mem_reads=100), working_set_bytes=512)
        big = cpu.time_for(OpCounter(mem_reads=100), working_set_bytes=4096)
        assert big > small
