"""Striped volumes: layout, parallelism, streaming throughput."""

import pytest

from repro.hw import SCSIDisk
from repro.hw.striping import StripedFS, StripedVolume
from repro.sim import Environment, S


@pytest.fixture
def env():
    return Environment()


def make_volume(env, n_disks=4, stripe=65_536):
    disks = [SCSIDisk(env, name=f"d{i}") for i in range(n_disks)]
    return StripedVolume(env, disks, stripe_bytes=stripe), disks


def run(env, gen):
    return env.run(until=env.process(gen))


class TestLayout:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            StripedVolume(env, [])
        with pytest.raises(ValueError):
            StripedVolume(env, [SCSIDisk(env)], stripe_bytes=100)

    def test_single_stripe_hits_one_disk(self, env):
        vol, disks = make_volume(env)
        run(env, vol.read(0, 1000))
        assert disks[0].stats.reads == 1
        assert sum(d.stats.reads for d in disks) == 1

    def test_round_robin_across_disks(self, env):
        vol, disks = make_volume(env, n_disks=4, stripe=1024)
        run(env, vol.read(0, 4 * 1024))  # exactly one row
        assert all(d.stats.reads == 1 for d in disks)

    def test_wraps_to_next_row(self, env):
        vol, disks = make_volume(env, n_disks=2, stripe=1024)
        run(env, vol.read(0, 3 * 1024))
        # stripes 0,1,2 -> d0 row0, d1 row0, d0 row1
        assert disks[0].stats.reads == 2
        assert disks[1].stats.reads == 1

    def test_unaligned_extent(self, env):
        vol, disks = make_volume(env, n_disks=2, stripe=1024)
        run(env, vol.read(512, 1024))  # crosses stripes 0 and 1
        assert disks[0].stats.reads == 1
        assert disks[1].stats.reads == 1
        assert vol.bytes_read == 1024

    def test_invalid_read(self, env):
        vol, _ = make_volume(env)
        with pytest.raises(ValueError):
            run(env, vol.read(0, 0))


class TestParallelism:
    def test_row_read_costs_one_disk_access_not_n(self, env):
        """The Tiger effect: N member reads overlap, so the row latency is
        ~one random access, not N of them."""
        vol, _disks = make_volume(env, n_disks=4, stripe=65_536)
        latency = run(env, vol.read(0, 4 * 65_536))
        single_disk = SCSIDisk(env)
        one = run(env, single_disk.read(65_536))
        assert latency < 1.6 * one

    def test_striped_streaming_beats_single_disk(self, env):
        """Sequential streaming bandwidth multiplies with the stripe width."""
        vol, _ = make_volume(env, n_disks=4, stripe=65_536)
        fs = StripedFS(env, vol)
        f = fs.open("movie.mpg", size_bytes=4 << 20)

        def stream(file, n, size):
            for _ in range(n):
                got = yield from file.read_next(size)
                if got == 0:
                    return

        start = env.now
        run(env, stream(f, 400, 10_000))  # 4 MB
        striped_time = env.now - start

        # same 4 MB off one dosFs-style disk (per-cluster random accesses)
        from repro.hw import DosFS

        disk = SCSIDisk(env)
        dos = DosFS(env, disk)
        g = dos.open("movie.mpg", size_bytes=4 << 20)
        start = env.now
        run(env, stream(g, 40, 10_000))  # only 0.4 MB, then scale
        single_time_scaled = (env.now - start) * 10
        assert striped_time < single_time_scaled / 4

    def test_buffered_row_serves_repeat_reads_fast(self, env):
        vol, disks = make_volume(env, n_disks=2, stripe=65_536)
        fs = StripedFS(env, vol)
        f = fs.open("m", size_bytes=1 << 20)
        run(env, f.read_next(1000))
        accesses_after_first = sum(d.stats.reads for d in disks)

        def more(file):
            for _ in range(50):
                yield from file.read_next(1000)

        run(env, more(f))
        # 51 KB total still inside the first 128 KB row: no new disk I/O
        assert sum(d.stats.reads for d in disks) == accesses_after_first
        assert fs.cache_hits >= 50
