"""Perfmeter: utilization sampling stays inside [0, 100]."""

from repro.metrics import Perfmeter
from repro.sim import Environment, S


class JumpyKernel:
    """Busy counter that overshoots one interval and resets the next."""

    n_cpus = 1

    def __init__(self):
        # init read, then one sample per period: 200% busy, then a
        # mid-run counter reset (cumulative busy goes backwards)
        self._reads = iter([0.0, 2 * S, 0.0])

    def cumulative_busy_us(self) -> float:
        return next(self._reads)


class TestPerfmeterClamp:
    def test_samples_clamped_to_0_100(self):
        env = Environment()
        meter = Perfmeter(env, JumpyKernel(), period_us=1 * S)
        env.run(until=2.5 * S)
        assert list(meter.series.values) == [100.0, 0.0]

    def test_peak_never_exceeds_100(self):
        env = Environment()
        meter = Perfmeter(env, JumpyKernel(), period_us=1 * S)
        env.run(until=2.5 * S)
        assert meter.peak() <= 100.0
        assert meter.average() >= 0.0
