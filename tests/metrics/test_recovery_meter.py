"""RecoveryMeter: milestone stamping and derived recovery metrics."""

from repro.metrics.perfmeter import RecoveryMeter
from repro.sim import Environment


def advance(env, until):
    env.run(until=until)


class TestMilestones:
    def test_fresh_meter_has_no_milestones(self):
        meter = RecoveryMeter(Environment())
        assert meter.fault_at_us is None
        assert meter.detected_at_us is None
        assert meter.recovered_at_us is None
        assert meter.detection_latency_us is None
        assert meter.mttr_us is None

    def test_fault_and_detection_are_first_write_wins(self):
        env = Environment()
        meter = RecoveryMeter(env)
        env.schedule_callback(100.0, lambda: meter.mark_fault(3))
        env.schedule_callback(250.0, meter.mark_detected)
        # later re-marks must not move the original stamps
        env.schedule_callback(900.0, lambda: meter.mark_fault(99))
        env.schedule_callback(900.0, meter.mark_detected)
        advance(env, 1_000.0)
        assert meter.fault_at_us == 100.0
        assert meter.detected_at_us == 250.0
        assert meter.violations_at_fault == 3
        assert meter.detection_latency_us == 150.0

    def test_recovery_stamp_tracks_the_last_restore(self):
        env = Environment()
        meter = RecoveryMeter(env)
        env.schedule_callback(100.0, meter.mark_fault)
        # each migrated stream re-stamps recovery: MTTR is fault → LAST one
        env.schedule_callback(400.0, meter.mark_recovered)
        env.schedule_callback(700.0, meter.mark_recovered)
        advance(env, 1_000.0)
        assert meter.recovered_at_us == 700.0
        assert meter.mttr_us == 600.0

    def test_post_fault_violations_split_at_the_fault_instant(self):
        env = Environment()
        meter = RecoveryMeter(env)
        meter.mark_fault(violations_so_far=5)
        assert meter.post_fault_violations(5) == 0
        assert meter.post_fault_violations(12) == 7


class TestRows:
    def test_row_set_is_fixed_even_without_milestones(self):
        meter = RecoveryMeter(Environment())
        rows = meter.rows(violations_total=0)
        assert [label for label, *_ in rows] == [
            "detection latency",
            "time to recovery (MTTR)",
            "streams migrated",
            "streams degraded",
            "streams parked",
            "post-fault violations",
            "partitions classified",
        ]
        by_label = {label: value for label, value, *_ in rows}
        # absent milestones render as -1, not as a missing row
        assert by_label["detection latency"] == -1.0
        assert by_label["time to recovery (MTTR)"] == -1.0
        assert by_label["post-fault violations"] == 0.0

    def test_rows_report_milliseconds_and_stream_lists(self):
        env = Environment()
        meter = RecoveryMeter(env)
        env.schedule_callback(1_000.0, lambda: meter.mark_fault(2))
        env.schedule_callback(3_500.0, meter.mark_detected)
        env.schedule_callback(6_000.0, meter.mark_recovered)
        advance(env, 10_000.0)
        meter.migrated = ["s1", "s2"]
        meter.degraded = ["s2"]
        meter.parked = ["s3"]
        meter.mark_partition()
        rows = {label: (value, note) for label, value, _unit, note in rows_list(meter)}
        assert rows["detection latency"] == (2.5, "")
        assert rows["time to recovery (MTTR)"] == (5.0, "")
        assert rows["streams migrated"] == (2.0, "s1,s2")
        assert rows["streams degraded"] == (1.0, "s2")
        assert rows["streams parked"] == (1.0, "s3")
        assert rows["post-fault violations"] == (4.0, "")
        assert rows["partitions classified"] == (1.0, "")


def rows_list(meter):
    return meter.rows(violations_total=6)
