"""NI memory accounting and exhaustion (failure injection)."""

import pytest

from repro.core import StreamSpec
from repro.hw import EthernetSwitch, MB
from repro.media import MPEGEncoder
from repro.server import NIStreamingService, ServerNode
from repro.sim import Environment, RandomStreams, S


def build(env, **svc_kw):
    node = ServerNode(env, n_cpus=1)
    switch = EthernetSwitch(env)
    svc = NIStreamingService(env, node, switch, **svc_kw)
    svc.attach_client("c1")
    svc.open_stream(StreamSpec("s1", period_us=62_500.0, loss_x=1, loss_y=4), "c1")
    return node, svc


def test_frame_bodies_occupy_card_memory_while_queued():
    env = Environment()
    _node, svc = build(env)
    enc = MPEGEncoder(bitrate_bps=256_000.0, fps=16.0, rng=RandomStreams(0))
    svc.start_producer(enc.encode("s1", 120), inject_gap_us=5_000.0)
    env.run(until=2 * S)
    # producer far ahead of 16fps playout: live frame allocations track
    # the scheduler backlog
    live = svc.card.memory.live_allocations("frame")
    assert len(live) == svc.scheduler.backlog
    assert svc.card.memory.used_bytes > 0


def test_memory_freed_after_transmission():
    env = Environment()
    _node, svc = build(env)
    enc = MPEGEncoder(bitrate_bps=256_000.0, fps=16.0, rng=RandomStreams(0))
    file = enc.encode("s1", 30)
    svc.start_producer(file, inject_gap_us=30_000.0)
    env.run(until=10 * S)
    assert svc.reception("s1").frames_received == 30
    assert svc.card.memory.used_bytes == 0
    assert svc.card.memory.peak_bytes > 0


def test_exhausted_card_memory_backpressures_producer():
    """With most of the card's 4 MB taken (VxWorks image, stacks, rings),
    the producer must stall on frame-memory, not crash — and delivery must
    continue at the playout rate."""
    env = Environment()
    _node, svc = build(env)
    # leave room for only ~8 typical (~2 kB) frames
    ballast = svc.card.memory.allocate(
        svc.card.memory.free_bytes - 16_000, tag="ballast"
    )
    enc = MPEGEncoder(bitrate_bps=256_000.0, fps=16.0, rng=RandomStreams(0))
    file = enc.encode("s1", 200)
    svc.start_producer(file, inject_gap_us=1_000.0)
    env.run(until=8 * S)
    # never exceeded capacity; frames backlog capped by free memory
    assert svc.card.memory.peak_bytes <= svc.card.memory.capacity_bytes
    assert len(svc.card.memory.live_allocations("frame")) <= 10
    # and streaming still progressed at the 16 fps playout rate
    assert svc.reception("s1").frames_received >= 100
    ballast.free()


def test_dropped_frames_release_memory():
    env = Environment()
    _node, svc = build(env)
    enc = MPEGEncoder(bitrate_bps=256_000.0, fps=16.0, rng=RandomStreams(0))
    file = enc.encode("s1", 60)
    svc.start_producer(file, inject_gap_us=1_000.0)
    # stall the NI scheduler so deadlines slip: stop it outright for a while
    env.run(until=1 * S)
    svc.engine.stop()
    env.run(until=30 * S)
    # restart a fresh task on the same engine
    svc.engine.stopped = False
    svc.vxworks.spawn("tDWCS2", svc.engine.task_body, priority=100)
    env.run(until=60 * S)
    st = svc.scheduler.streams["s1"]
    assert st.dropped > 0  # the stall caused real losses
    # every frame body was reclaimed: sent, late-sent, or dropped
    assert svc.card.memory.used_bytes == 0
