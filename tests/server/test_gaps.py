"""Edge-case coverage: paths at EOF, engine corner cases, cost helpers."""

import pytest

from repro.core import DWCSScheduler, MicrobenchEngine, StreamSpec
from repro.core.costs import DWCSCostModel
from repro.core.engine import MicrobenchResult
from repro.fixedpoint import OpCounter
from repro.hw import CPU, EthernetPort, EthernetSwitch, I960RD_66
from repro.metrics import Perfmeter
from repro.rtos import SolarisHostOS
from repro.server import ServerNode, path_a_transfer, path_b_transfer, path_c_transfer
from repro.sim import Environment, S


@pytest.fixture
def env():
    return Environment()


class TestPathsAtEOF:
    def _rig(self, env):
        node = ServerNode(env)
        switch = EthernetSwitch(env)
        client = EthernetPort(env, "client")
        switch.attach(client)
        return node, switch

    def test_path_a_eof_returns_zero(self, env):
        node, switch = self._rig(env)
        ctrl = node.add_disk_controller()
        nic = node.add_82557_nic()
        switch.attach(nic.eth_port)
        f = ctrl.mount_ufs().open("tiny", size_bytes=500)

        def run():
            first = yield from path_a_transfer(node, ctrl, f, nic, "client", 1000)
            second = yield from path_a_transfer(node, ctrl, f, nic, "client", 1000)
            return first, second

        first, second = env.run(until=env.process(run()))
        assert first > 0.0
        assert second == 0.0  # EOF: nothing transferred, no latency charged

    def test_path_c_eof_returns_zero(self, env):
        node, switch = self._rig(env)
        card = node.add_i960_card()
        fs = card.attach_disk()
        switch.attach(card.eth_ports[0])
        f = fs.open("tiny", size_bytes=100)

        def run():
            yield from path_c_transfer(card, f, "client", 1000)
            return (yield from path_c_transfer(card, f, "client", 1000))

        assert env.run(until=env.process(run())) == 0.0

    def test_path_b_eof_returns_zero(self, env):
        node, switch = self._rig(env)
        producer = node.add_i960_card()
        sched_card = node.add_i960_card()
        fs = producer.attach_disk()
        switch.attach(sched_card.eth_ports[0])
        f = fs.open("tiny", size_bytes=100)

        def run():
            yield from path_b_transfer(producer, sched_card, f, "client", 1000)
            return (
                yield from path_b_transfer(producer, sched_card, f, "client", 1000)
            )

        assert env.run(until=env.process(run())) == 0.0


class TestEngineCorners:
    def test_empty_result_avg_is_zero(self):
        assert MicrobenchResult(frames=0, total_us=0.0).avg_frame_us == 0.0

    def test_empty_scheduler_drains_immediately(self, env):
        s = DWCSScheduler(work_conserving=True)
        s.add_stream(StreamSpec("s", period_us=1.0, loss_x=0, loss_y=1))
        engine = MicrobenchEngine(env, s, CPU(I960RD_66))
        result = env.run(until=env.process(engine.run_with_scheduler()))
        assert result.frames == 0

    def test_bypass_loop_empties_all_queues(self, env):
        from repro.media import FrameType, MediaFrame

        s = DWCSScheduler(work_conserving=True)
        for i in range(3):
            s.add_stream(StreamSpec(f"s{i}", period_us=1000.0, loss_x=1, loss_y=2))
            for k in range(4):
                s.enqueue(MediaFrame(f"s{i}", k, FrameType.I, 100, 0.0), 0.0)
        engine = MicrobenchEngine(env, s, CPU(I960RD_66))
        result = env.run(until=env.process(engine.run_without_scheduler()))
        assert result.frames == 12
        assert s.backlog == 0


class TestCostModelHelpers:
    def test_each_charge_touches_its_categories(self):
        costs = DWCSCostModel()
        for charge, expect in (
            (costs.charge_decision_base, ("int_ops", "branches")),
            (costs.charge_stream_examined, ("int_ops", "branches", "mem_reads")),
            (costs.charge_adjustment, ("int_ops", "mem_reads", "mem_writes")),
            (costs.charge_dispatch, ("int_ops", "branches", "mem_reads", "mem_writes")),
        ):
            ops = OpCounter()
            charge(ops)
            for field in expect:
                assert getattr(ops, field) > 0, (charge, field)
            assert ops.fp_ops == 0  # arithmetic goes through the context


class TestPerfmeterBounds:
    def test_average_with_end_bound(self, env):
        host = SolarisHostOS(env, n_cpus=1)

        def burner(task):
            yield task.compute(2 * S)

        host.spawn("burn", burner)
        meter = Perfmeter(env, host, period_us=1 * S)
        env.run(until=4 * S)
        busy_phase = meter.average(start=0, end=2 * S)
        # samples land exactly on second boundaries; the [start, end)
        # window makes the t=2s sample part of the busy phase
        idle_phase = meter.average(start=2 * S + 1, end=4 * S + 1)
        assert busy_phase > 90.0
        assert idle_phase < 10.0

    def test_peak(self, env):
        host = SolarisHostOS(env, n_cpus=1)
        meter = Perfmeter(env, host, period_us=1 * S)
        env.run(until=3 * S)
        assert meter.peak() == pytest.approx(0.0, abs=0.5)
