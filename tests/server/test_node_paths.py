"""Server node composition and the Figure-3 transfer paths (Table 4)."""

import pytest

from repro.hw import EthernetPort, EthernetSwitch
from repro.server import (
    ServerNode,
    path_a_transfer,
    path_b_transfer,
    path_c_transfer,
)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def rig(env):
    """Node + switch + one client port, matching the Table 4 setup."""
    node = ServerNode(env, n_cpus=4)
    switch = EthernetSwitch(env)
    client = EthernetPort(env, "client")
    switch.attach(client)
    return node, switch, client


def run(env, gen):
    return env.run(until=env.process(gen))


class TestServerNode:
    def test_default_configuration(self, env):
        node = ServerNode(env)
        assert node.host_os.n_cpus == 4
        assert len(node.segments) == 1
        assert node.memory.capacity_bytes == 128 << 20

    def test_two_bus_segments(self, env):
        node = ServerNode(env, n_pci_segments=2)
        assert len(node.segments) == 2
        assert node.bridge_for(node.segments[1]).segment is node.segments[1]

    def test_bridge_for_foreign_segment_raises(self, env):
        node = ServerNode(env)
        other = ServerNode(env, name="other")
        with pytest.raises(ValueError):
            node.bridge_for(other.segments[0])

    def test_slot_population(self, env):
        node = ServerNode(env, n_pci_segments=2)
        card = node.add_i960_card(segment=0)
        nic = node.add_82557_nic(segment=1)
        ctrl = node.add_disk_controller(segment=0)
        assert card in node.segments[0].devices
        assert nic in node.segments[1].devices
        assert ctrl in node.segments[0].devices

    def test_offline_cpus(self, env):
        node = ServerNode(env)
        node.set_online_cpus(2)
        assert node.host_os.n_cpus == 2

    def test_offline_after_spawn_rejected(self, env):
        node = ServerNode(env)

        def body(task):
            yield task.compute(1.0)

        node.host_os.spawn("t", body)
        with pytest.raises(RuntimeError):
            node.set_online_cpus(1)


class TestPaths:
    FRAME = 1000

    def _path_a(self, env, rig, fs_kind):
        node, switch, _client = rig
        ctrl = node.add_disk_controller()
        nic = node.add_82557_nic()
        switch.attach(nic.eth_port)
        fs = ctrl.mount_ufs() if fs_kind == "ufs" else ctrl.mount_dosfs()
        f = fs.open("movie.mpg", size_bytes=1_000_000)

        def many(n):
            total = 0.0
            for _ in range(n):
                total += yield from path_a_transfer(
                    node, ctrl, f, nic, "client", self.FRAME
                )
            return total / n

        return run(env, many(100))

    def test_path_a_ufs_about_1ms(self, env, rig):
        """Experiment I, UFS row: ≈1 ms per frame."""
        avg = self._path_a(env, rig, "ufs")
        assert avg == pytest.approx(1000.0, rel=0.35)

    def test_path_a_dosfs_about_8ms(self, env, rig):
        """Experiment I, VxWorks-fs row: ≈8 ms per frame."""
        avg = self._path_a(env, rig, "dosfs")
        assert avg == pytest.approx(8000.0, rel=0.20)

    def test_path_c_about_5_4ms(self, env, rig):
        """Experiment II: NI disk -> NI CPU -> network ≈ 5.4 ms."""
        node, switch, _client = rig
        card = node.add_i960_card()
        fs = card.attach_disk()
        switch.attach(card.eth_ports[0])
        f = fs.open("movie.mpg", size_bytes=1_000_000)

        def many(n):
            total = 0.0
            for _ in range(n):
                total += yield from path_c_transfer(card, f, "client", self.FRAME)
            return total / n

        avg = run(env, many(100))
        assert avg == pytest.approx(5400.0, rel=0.15)

    def test_path_b_adds_only_pci_time(self, env, rig):
        """Experiment III ≈ Experiment II + ~15 µs of PCI."""
        node, switch, _client = rig
        producer = node.add_i960_card()
        scheduler = node.add_i960_card()
        fs = producer.attach_disk()
        switch.attach(scheduler.eth_ports[0])
        f = fs.open("movie.mpg", size_bytes=1_000_000)

        def many(n):
            total = 0.0
            for _ in range(n):
                total += yield from path_b_transfer(
                    producer, scheduler, f, "client", self.FRAME
                )
            return total / n

        avg = run(env, many(100))
        assert avg == pytest.approx(5415.0, rel=0.15)

    def test_path_b_and_c_eliminate_host_traffic(self, env, rig):
        node, switch, _client = rig
        producer = node.add_i960_card()
        scheduler = node.add_i960_card()
        fs = producer.attach_disk()
        switch.attach(scheduler.eth_ports[0])
        f = fs.open("m", size_bytes=100_000)
        run(env, path_b_transfer(producer, scheduler, f, "client", self.FRAME))
        assert node.system_bus.bytes_transferred == 0
        assert node.segments[0].bytes_transferred == self.FRAME

    def test_path_a_charges_host_bus_twice(self, env, rig):
        node, switch, _client = rig
        ctrl = node.add_disk_controller()
        nic = node.add_82557_nic()
        switch.attach(nic.eth_port)
        fs = ctrl.mount_ufs()
        f = fs.open("m", size_bytes=100_000)
        run(env, path_a_transfer(node, ctrl, f, nic, "client", self.FRAME))
        assert node.system_bus.bytes_transferred == 2 * self.FRAME

    def test_path_b_requires_same_segment(self, env, rig):
        node2 = ServerNode(env, name="n2", n_pci_segments=2)
        a = node2.add_i960_card(segment=0)
        b = node2.add_i960_card(segment=1)
        fs = a.attach_disk()
        f = fs.open("m", size_bytes=10_000)
        with pytest.raises(ValueError):
            run(env, path_b_transfer(a, b, f, "client", 1000))
