"""Cluster topology and NI-to-NI traffic elimination."""

import pytest

from repro.server import Cluster
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestCluster:
    def test_topology(self, env):
        cluster = Cluster(env, n_nodes=4)
        assert len(cluster) == 4
        assert len(cluster.san.port_names) == 4
        assert all(card.eth_ports[1].switch is cluster.san for card in cluster.san_cards)

    def test_sixteen_node_paper_configuration(self, env):
        """The paper's server: 16 quad Pentium Pro nodes."""
        cluster = Cluster(env, n_nodes=16, n_cpus_per_node=4)
        assert len(cluster) == 16
        assert all(n.host_os.n_cpus == 4 for n in cluster.nodes)

    def test_at_least_one_node(self, env):
        with pytest.raises(ValueError):
            Cluster(env, n_nodes=0)

    def test_inter_node_transfer_latency(self, env):
        cluster = Cluster(env, n_nodes=2)

        def xfer():
            latency = yield from cluster.send_between_nodes(0, 1, 1000)
            return latency

        latency = env.run(until=env.process(xfer()))
        # two NI stacks + wire through the SAN switch: ~1.3-1.5 ms
        assert 1000.0 < latency < 2500.0

    def test_inter_node_transfer_spares_host_buses(self, env):
        cluster = Cluster(env, n_nodes=3)

        def xfer():
            yield from cluster.send_between_nodes(0, 2, 50_000)

        env.run(until=env.process(xfer()))
        assert all(v == 0 for v in cluster.host_bus_traffic().values())

    def test_same_node_transfer_rejected(self, env):
        cluster = Cluster(env, n_nodes=2)

        def xfer():
            yield from cluster.send_between_nodes(1, 1, 100)

        with pytest.raises(ValueError):
            env.run(until=env.process(xfer()))
