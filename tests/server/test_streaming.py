"""Host- and NI-based streaming services end to end (small-scale Fig 7-10)."""

import pytest

from repro.core import StreamSpec
from repro.hw import EthernetSwitch
from repro.media import MPEGEncoder
from repro.server import HostStreamingService, NIStreamingService, ServerNode
from repro.sim import Environment, RandomStreams, S
from repro.workload import ApacheServer, Httperf


def make_file(name, seed=0, n=120):
    # ~256 kbps at 16 fps, ~2 kB frames
    enc = MPEGEncoder(bitrate_bps=256_000.0, fps=16.0, rng=RandomStreams(seed))
    return enc.encode(name, n)


@pytest.fixture
def env():
    return Environment()


class TestNIService:
    def _build(self, env):
        node = ServerNode(env, n_cpus=1)
        switch = EthernetSwitch(env)
        svc = NIStreamingService(env, node, switch)
        svc.attach_client("c1")
        svc.open_stream(
            StreamSpec("s1", period_us=62_500.0, loss_x=1, loss_y=8), "c1"
        )
        return node, svc

    def test_scheduler_card_has_cache_enabled(self, env):
        _node, svc = self._build(env)
        assert svc.card.cache.enabled
        assert not svc.card.has_disks

    def test_stream_delivery_at_natural_rate(self, env):
        _node, svc = self._build(env)
        svc.start_producer(make_file("s1"))
        env.run(until=10 * S)
        rec = svc.reception("s1")
        assert rec.frames_received > 100
        settled = rec.settled_bandwidth_bps(after_us=3 * S)
        assert settled == pytest.approx(256_000.0, rel=0.25)

    def test_queuing_delay_ramps_with_backlog(self, env):
        _node, svc = self._build(env)
        svc.start_producer(make_file("s1"))
        env.run(until=8 * S)
        stats = svc.engine.delay_stats["s1"]
        # producer runs far ahead of the 16 fps playout: delays reach seconds
        assert stats.max > 1 * S

    def test_unknown_client_rejected(self, env):
        _node, svc = self._build(env)
        with pytest.raises(KeyError):
            svc.open_stream(
                StreamSpec("s9", period_us=1000.0, loss_x=0, loss_y=1), "ghost"
            )

    def test_producer_traffic_crosses_pci_not_host_bus(self, env):
        node, svc = self._build(env)
        svc.start_producer(make_file("s1"))
        env.run(until=5 * S)
        assert node.segments[0].bytes_transferred > 0
        assert node.system_bus.bytes_transferred == 0


class TestHostService:
    def _build(self, env, n_cpus=2):
        node = ServerNode(env, n_cpus=n_cpus)
        switch = EthernetSwitch(env)
        svc = HostStreamingService(env, node, switch)
        svc.attach_client("c1")
        svc.open_stream(
            StreamSpec("s1", period_us=62_500.0, loss_x=1, loss_y=8), "c1"
        )
        return node, svc

    def test_unloaded_delivery_matches_ni(self, env):
        _node, svc = self._build(env)
        svc.start_producer(make_file("s1"))
        env.run(until=10 * S)
        rec = svc.reception("s1")
        settled = rec.settled_bandwidth_bps(after_us=3 * S)
        assert settled == pytest.approx(256_000.0, rel=0.25)

    def test_host_bus_carries_stream_traffic(self, env):
        node, svc = self._build(env)
        svc.start_producer(make_file("s1"))
        env.run(until=5 * S)
        assert node.system_bus.bytes_transferred > 0

    def test_web_load_degrades_host_service(self, env):
        """The Figure 7/8 effect, in miniature: heavy web load cuts the
        host scheduler's delivered bandwidth; the NI service is immune."""
        results = {}
        for kind in ("host", "ni"):
            env2 = Environment()
            node = ServerNode(env2, n_cpus=1)
            switch = EthernetSwitch(env2)
            if kind == "host":
                svc = HostStreamingService(env2, node, switch)
            else:
                svc = NIStreamingService(env2, node, switch)
            svc.attach_client("c1")
            # loss-tolerance 1/2: half the frames may be dropped under
            # overload (the headroom behind Figure 7's halved bandwidth)
            svc.open_stream(
                StreamSpec("s1", period_us=62_500.0, loss_x=1, loss_y=2), "c1"
            )
            svc.start_producer(make_file("s1", n=400))
            web = ApacheServer(
                env2,
                node.host_os,
                rng=RandomStreams(5),
                heavy_tail_prob=0.04,
                heavy_tail_mult=80,
            )
            # saturating open-loop load (the >80%-utilization burst window
            # of the paper's 60%-average profile)
            rate = 1.15 * 1 * 1e6 / web.effective_mean_service_us
            Httperf(env2, web, rate_per_s=rate, total_calls=10**6, rng=RandomStreams(6))
            env2.run(until=15 * S)
            results[kind] = svc.reception("s1").mean_bandwidth_bps(5 * S, 15 * S)
        assert results["ni"] == pytest.approx(256_000.0, rel=0.3)
        assert results["host"] < 0.8 * results["ni"]
