"""Cluster media relay over board-resident UDP.

The paper's distributed-streams story: "media streams entering the NI from
the network" — a storage node pushes frames over the SAN by UDP to a
delivery node's NI scheduler, which schedules them out to a client. UDP is
the right transport for media here (late data is worthless); the test also
shows what a lossy SAN does to it, and how DWCS's accounting sees the
shortfall.
"""

import pytest

from repro.core import DWCSScheduler, StreamingEngine, StreamSpec
from repro.hw import EthernetPort, EthernetSwitch, I960RDCard, NetFrame, PCISegment
from repro.media import FrameType, MediaFrame, MPEGClient, MPEGEncoder
from repro.net import UDPStack
from repro.rtos import WindScheduler
from repro.sim import Environment, RandomStreams, S

MEDIA_PORT = 5004  # RTP-ish


def build(loss_rate=0.0, seed=5):
    env = Environment()
    san = EthernetSwitch(
        env, name="san", loss_rate=loss_rate,
        loss_rng=RandomStreams(seed).stream("san"),
    )
    # storage node NI
    seg_a = PCISegment(env, "a.pci")
    storage = I960RDCard(env, seg_a, name="a.i2o")
    san.attach(storage.eth_ports[1])
    storage_udp = UDPStack(env, storage.eth_ports[1], storage.stack)
    # delivery node NI: scheduler + client-facing port
    seg_b = PCISegment(env, "b.pci")
    delivery = I960RDCard(env, seg_b, name="b.i2o")
    san.attach(delivery.eth_ports[1])
    delivery_udp = UDPStack(env, delivery.eth_ports[1], delivery.stack)
    client_port = EthernetPort(env, "tv")
    san.attach(client_port)
    client = MPEGClient(env, "tv", client_port)

    scheduler = DWCSScheduler(work_conserving=False)
    scheduler.add_stream(StreamSpec("relay", period_us=50_000.0, loss_x=1, loss_y=4))

    def transmit(desc):
        frame = NetFrame(
            payload_bytes=desc.size_bytes, stream_id="relay", seqno=desc.frame.seqno
        )
        yield from delivery.eth_ports[1].send(frame, "tv")

    engine = StreamingEngine(env, scheduler, delivery.cpu, transmit)
    vx = WindScheduler(env, cpu_spec=delivery.cpu.spec)
    vx.spawn("tDWCS", engine.task_body, priority=100)

    # ingest task: UDP datagrams -> scheduler queues
    inbox = delivery_udp.bind(MEDIA_PORT)

    def ingest(task):
        while True:
            dgram = yield inbox.get()
            yield task.compute(100.0)  # demux + descriptor setup
            engine.submit(dgram.data)

    vx.spawn("tIngest", ingest, priority=80)
    return env, san, storage_udp, delivery, client, scheduler


def push_movie(env, storage_udp, dest, n_frames=60, gap_us=40_000.0):
    movie = MPEGEncoder(bitrate_bps=400_000.0, fps=20.0, rng=RandomStreams(2)).encode(
        "relay", n_frames
    )

    def producer():
        for frame in movie.frames:
            yield from storage_udp.sendto(
                frame.size_bytes, dest, MEDIA_PORT, data=frame
            )
            yield env.timeout(gap_us)

    env.process(producer())
    return movie


class TestRelay:
    def test_clean_san_delivers_everything_in_order(self):
        env, _san, storage_udp, delivery, client, scheduler = build()
        push_movie(env, storage_udp, delivery.eth_ports[1].name)
        env.run(until=10 * S)
        rec = client.reception("relay")
        assert rec.frames_received == 60
        assert rec.out_of_order == 0
        st = scheduler.streams["relay"]
        assert st.dropped == 0

    def test_relay_paced_by_the_stream_spec(self):
        env, _san, storage_udp, delivery, client, _sched = build()
        push_movie(env, storage_udp, delivery.eth_ports[1].name, gap_us=5_000.0)
        env.run(until=10 * S)
        rec = client.reception("relay")
        # injected at 200 fps, delivered at the 20 fps the spec allows
        assert rec.interarrival_us.mean == pytest.approx(50_000.0, rel=0.10)

    def test_lossy_san_loses_media_frames(self):
        """UDP media: what the SAN drops never reaches the scheduler —
        the client simply sees fewer frames (and DWCS sees fewer arrivals,
        not misses)."""
        env, san, storage_udp, delivery, client, scheduler = build(loss_rate=0.25)
        push_movie(env, storage_udp, delivery.eth_ports[1].name)
        env.run(until=10 * S)
        rec = client.reception("relay")
        assert rec.frames_received < 60
        assert san.frames_dropped > 0
        # the scheduler never saw the lost frames: conservation at ITS level
        q = scheduler.queues["relay"]
        st = scheduler.streams["relay"]
        assert st.serviced + st.sent_late + st.dropped + len(q) == q.enqueued_total
        assert q.enqueued_total < 60
