"""End-to-end integration: the whole paper stack in one simulation.

A host application thread opens streams and pushes frames through the DVCM
(VCM API → I2O messages over PCI → NI runtime → media-scheduler extension),
DWCS on the i960 card schedules them under VxWorks, the tNet task
encapsulates and transmits over switched Ethernet, and an MPEG client
receives — while an Apache pool thrashes the host.
"""

import pytest

from repro.core import DWCSScheduler, StreamingEngine
from repro.dvcm import MediaSchedulerExtension, MessageQueuePair, VCMInterface, VCMRuntime
from repro.hw import EthernetPort, EthernetSwitch, I960RDCard, NetFrame, PCISegment
from repro.media import FrameType, MediaFrame, MPEGClient, MPEGEncoder
from repro.rtos import SolarisHostOS, WindScheduler
from repro.sim import Environment, RandomStreams, S
from repro.workload import ApacheServer, Httperf


@pytest.fixture(scope="module")
def stack():
    env = Environment()
    # hardware
    segment = PCISegment(env, "pci0")
    card = I960RDCard(env, segment, name="i2o0")
    card.enable_data_cache()
    switch = EthernetSwitch(env)
    switch.attach(card.eth_ports[0])
    client_port = EthernetPort(env, "client0")
    switch.attach(client_port)
    client = MPEGClient(env, "client0", client_port)
    # NI software: VxWorks, DVCM runtime, DWCS extension, tNet
    vxworks = WindScheduler(env, cpu_spec=card.cpu.spec)
    queues = MessageQueuePair(env, segment, name="i2o0")
    runtime = VCMRuntime(env, queues, card.cpu)
    vxworks.spawn("tVCM", runtime.task_body, priority=60)
    scheduler = DWCSScheduler(work_conserving=False)
    from repro.sim import Store

    txq = Store(env)

    def transmit(desc):
        yield txq.put(desc)

    engine = StreamingEngine(env, scheduler, card.cpu, transmit)
    vxworks.spawn("tDWCS", engine.task_body, priority=100)

    def net_task(task):
        while True:
            desc = yield txq.get()
            yield task.compute(card.stack.cost_us(desc.size_bytes))
            frame = NetFrame(
                payload_bytes=desc.size_bytes,
                stream_id=desc.stream_id,
                seqno=desc.frame.seqno,
            )
            yield from card.eth_ports[0].send(frame, "client0")

    vxworks.spawn("tNetTask", net_task, priority=55)
    runtime.load_extension(MediaSchedulerExtension(engine))
    # host software: Solaris, web load, and the application thread
    host_os = SolarisHostOS(env, n_cpus=2)
    web = ApacheServer(env, host_os, rng=RandomStreams(9))
    Httperf.for_target_utilization(
        env, web, 0.70, n_cpus=2, total_calls=10**6, rng=RandomStreams(10)
    )
    api = VCMInterface(env, queues, name="media-app")
    enc = MPEGEncoder(bitrate_bps=400_000.0, fps=10.0, rng=RandomStreams(11))
    movie = enc.encode("vod0", n_frames=120)

    def app(task):
        yield task.compute(500.0)
        result = yield from api.call(
            "media.open_stream",
            {"stream_id": "vod0", "period_us": 100_000.0, "loss_x": 1, "loss_y": 4},
        )
        assert result == "vod0"
        for frame in movie.frames:
            yield task.compute(200.0)  # app-side marshalling
            yield from api.call(
                "media.submit_frame",
                {"frame": frame},
                bulk_bytes=frame.size_bytes,
            )
            yield env.timeout(50_000.0)  # submit ahead of the 10fps playout

    host_os.spawn("media-app", app, priority=110)
    env.run(until=20 * S)
    return {
        "env": env,
        "segment": segment,
        "card": card,
        "client": client,
        "scheduler": scheduler,
        "runtime": runtime,
        "api": api,
        "movie": movie,
        "engine": engine,
    }


class TestFullStack:
    def test_every_frame_travelled_the_whole_pipeline(self, stack):
        rec = stack["client"].reception("vod0")
        # 20s at 10fps playout: ~200 slots; 120 frames submitted over ~6s
        assert rec.frames_received == 120

    def test_dvcm_handled_every_call(self, stack):
        assert stack["runtime"].messages_handled == 1 + 120  # open + submits
        assert stack["runtime"].errors == 0
        assert stack["api"].calls == 121

    def test_frames_crossed_pci_once_each(self, stack):
        moved = stack["segment"].bytes_transferred
        payload = stack["movie"].size_bytes
        assert moved >= payload  # bodies + message headers
        assert moved < payload * 1.5  # but not copied twice

    def test_delivery_paced_at_stream_rate(self, stack):
        rec = stack["client"].reception("vod0")
        assert rec.interarrival_us.mean == pytest.approx(100_000.0, rel=0.10)

    def test_no_losses_on_admissible_stream(self, stack):
        st = stack["scheduler"].streams["vod0"]
        assert st.dropped == 0
        assert st.violations == 0

    def test_client_saw_ordered_frames(self, stack):
        assert stack["client"].reception("vod0").out_of_order == 0
