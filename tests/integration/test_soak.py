"""Long-horizon soak: invariants hold over hundreds of simulated seconds.

Runs the full NI streaming service for 5 simulated minutes with producers
cycling through multiple files, then audits conservation, memory, and
bookkeeping invariants everywhere at once — the class of bug (slow leak,
counter drift, stuck task) that short tests never see.
"""

import pytest

from repro.core import StreamSpec
from repro.hw import EthernetSwitch
from repro.media import MPEGEncoder
from repro.server import NIStreamingService, ServerNode
from repro.sim import Environment, RandomStreams, S


@pytest.fixture(scope="module")
def soak():
    env = Environment()
    node = ServerNode(env, n_cpus=2)
    switch = EthernetSwitch(env)
    svc = NIStreamingService(env, node, switch)
    enc = MPEGEncoder(bitrate_bps=300_000.0, fps=5.0, rng=RandomStreams(99))
    n_frames = 1500  # 300s of 5fps playout
    specs = []
    for i in range(3):
        sid = f"s{i}"
        spec = StreamSpec(sid, period_us=200_000.0, loss_x=1, loss_y=4)
        specs.append(spec)
        svc.attach_client(f"c{i}")
        svc.open_stream(spec, f"c{i}")
        svc.start_producer(
            enc.encode(sid, n_frames), inject_gap_us=150_000.0, prebuffer_frames=8
        )
    env.run(until=300 * S)
    return env, node, svc, specs, n_frames


class TestSoakInvariants:
    def test_packet_conservation_everywhere(self, soak):
        _env, _node, svc, specs, _n = soak
        for spec in specs:
            state = svc.scheduler.streams[spec.stream_id]
            queue = svc.scheduler.queues[spec.stream_id]
            accounted = (
                state.serviced + state.sent_late + state.dropped + len(queue)
            )
            assert accounted == queue.enqueued_total

    def test_window_invariants_hold_at_the_end(self, soak):
        _env, _node, svc, specs, _n = soak
        for spec in specs:
            state = svc.scheduler.streams[spec.stream_id]
            assert 0 <= state.x_cur <= state.y_cur
            assert state.y_cur >= 1

    def test_sustained_delivery_for_five_minutes(self, soak):
        env, _node, svc, specs, _n = soak
        for spec in specs:
            rec = svc.reception(spec.stream_id)
            # ~5 fps for 300 s, minus the tail still in flight
            assert rec.frames_received > 1400
            late_window = rec.mean_bandwidth_bps(250 * S, 290 * S)
            assert late_window == pytest.approx(300_000.0, rel=0.25)

    def test_no_memory_drift(self, soak):
        _env, _node, svc, _specs, _n = soak
        # live frame bodies == frames still queued (nothing leaked)
        live = len(svc.card.memory.live_allocations("frame"))
        in_txq = len(svc._txq.items)
        assert live <= svc.scheduler.backlog + in_txq + 1

    def test_clients_saw_ordered_streams(self, soak):
        _env, _node, svc, specs, _n = soak
        for spec in specs:
            assert svc.reception(spec.stream_id).out_of_order == 0

    def test_host_untouched_for_entire_run(self, soak):
        _env, node, _svc, _specs, _n = soak
        assert node.system_bus.bytes_transferred == 0
        assert node.host_os.cumulative_busy_us() < 1000.0
