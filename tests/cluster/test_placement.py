"""Placement policies: determinism, remap locality, load awareness."""

import pytest

from repro.cluster import (
    ConsistentHashPolicy,
    LeastLoadedPolicy,
    LocalityAwarePolicy,
    NodeView,
    POLICIES,
    make_policy,
)


def views(n, headroom=None):
    return [
        NodeView(
            index=i,
            name=f"cluster.n{i}",
            headroom=1.0 if headroom is None else headroom[i],
            streams=0,
        )
        for i in range(n)
    ]


class TestRegistry:
    def test_three_policies_registered(self):
        assert set(POLICIES) == {"hash", "least-loaded", "locality"}

    def test_make_policy_unknown_name_lists_valid_set(self):
        with pytest.raises(ValueError, match="hash.*least-loaded.*locality"):
            make_policy("round-robin")


class TestConsistentHash:
    def test_order_is_a_permutation_of_all_nodes(self):
        order = ConsistentHashPolicy().order("s1", views(5))
        assert sorted(order) == [0, 1, 2, 3, 4]

    def test_deterministic(self):
        a = ConsistentHashPolicy().order("g0-s1", views(4))
        b = ConsistentHashPolicy().order("g0-s1", views(4))
        assert a == b

    def test_node_loss_only_remaps_the_lost_nodes_streams(self):
        """The consistent-hash selling point: removing one node leaves
        every stream homed elsewhere exactly where it was."""
        policy = ConsistentHashPolicy()
        full = views(4)
        streams = [f"g{k}-s{j}" for k in range(6) for j in (1, 2)]
        before = {sid: policy.order(sid, full)[0] for sid in streams}
        lost = 2
        survivors = [v for v in full if v.index != lost]
        after = {sid: policy.order(sid, survivors)[0] for sid in streams}
        for sid in streams:
            if before[sid] != lost:
                assert after[sid] == before[sid]

    def test_spread_over_enough_streams(self):
        policy = ConsistentHashPolicy()
        firsts = {policy.order(f"s{i}", views(4))[0] for i in range(64)}
        assert firsts == {0, 1, 2, 3}


class TestLeastLoaded:
    def test_most_headroom_first(self):
        order = LeastLoadedPolicy().order("s1", views(3, headroom=[0.1, 0.9, 0.5]))
        assert order == [1, 2, 0]

    def test_index_breaks_ties(self):
        order = LeastLoadedPolicy().order("s1", views(3))
        assert order == [0, 1, 2]


class TestLocalityAware:
    def test_same_group_shares_a_home(self):
        policy = LocalityAwarePolicy()
        v = views(4)
        homes = {policy.order(f"g7-s{j}", v)[0] for j in range(5)}
        assert len(homes) == 1

    def test_group_is_prefix_before_dash(self):
        assert LocalityAwarePolicy.group_of("g3-s2") == "g3"
        assert LocalityAwarePolicy.group_of("solo") == "solo"

    def test_fallback_is_load_aware(self):
        policy = LocalityAwarePolicy()
        v = views(3, headroom=[0.2, 0.9, 0.4])
        order = policy.order("g1-s1", v)
        home = order[0]
        rest = [i for i in (1, 2, 0) if i != home]  # headroom order minus home
        assert order[1:] == rest

    def test_empty_node_set(self):
        assert LocalityAwarePolicy().order("s1", []) == []
        assert ConsistentHashPolicy().order("s1", []) == []
