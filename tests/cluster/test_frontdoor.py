"""The admission front door: tiers, at-most-once placement, node loss."""

import pytest

from repro.cluster import ClusterPlane
from repro.core.attributes import StreamSpec
from repro.experiments.calibration import figure_mpeg_file
from repro.faults import FaultPlane
from repro.sim import Environment, RandomStreams, S


def admit_all(env, plane, specs, service_time_us, at_us=0.0):
    """Kick one process that admits *specs* in order; returns tier list."""
    tiers = []

    def proc():
        for i, spec in enumerate(specs):
            file = figure_mpeg_file(spec.stream_id, seed=i, n_frames=8)
            tier = yield from plane.frontdoor.admit_stream(
                spec, service_time_us, file, inject_gap_us=100_000.0
            )
            tiers.append(tier)

    def kick():
        env.process(proc(), name="test.admit")

    if at_us > 0:
        env.schedule_callback(at_us, kick, name="test.admit.kick")
    else:
        kick()
    return tiers


def specs_named(*sids, period_us=1_000_000.0):
    return [StreamSpec(s, period_us=period_us, loss_x=1, loss_y=2) for s in sids]


def nodes_serving(plane, stream_id):
    """How many node services actually schedule *stream_id* right now."""
    count = 0
    for node in plane.nodes:
        runtime = node.service.runtime_of(stream_id)
        if runtime is not None and stream_id in runtime.scheduler.streams:
            count += 1
    return count


class TestBackpressureTiers:
    def test_full_then_degraded_then_parked(self):
        """Capacity math: cost = (1-x/y)·C/T = 0.5 at full tier, 0.25
        degraded, bound 0.85/card ⇒ each card takes 1 full + 1 degraded.
        2 nodes × 2 cards ⇒ 4 full, 4 degraded, the rest park."""
        env = Environment()
        plane = ClusterPlane(env, n_nodes=2)
        specs = specs_named(*[f"s{i}" for i in range(10)])
        tiers = admit_all(env, plane, specs, service_time_us=1_000_000.0)
        env.run(until=5 * S)
        assert tiers.count("full") == 4
        assert tiers.count("degraded") == 4
        assert tiers.count(None) == 2
        census = plane.account()
        assert census["placed"] == 8
        assert census["degraded"] == 4
        assert census["parked"] == 2
        assert census["unaccounted"] == 0
        plane.ledger.check()

    def test_degraded_streams_marked_on_the_serving_node(self):
        env = Environment()
        plane = ClusterPlane(env, n_nodes=2)
        specs = specs_named(*[f"s{i}" for i in range(5)])
        admit_all(env, plane, specs, service_time_us=1_000_000.0)
        env.run(until=5 * S)
        degraded = [
            e.stream_id
            for sid in (s.stream_id for s in specs)
            if (e := plane.ledger.entry(sid)) is not None and e.tier == "degraded"
        ]
        assert degraded
        for sid in degraded:
            assert sid in plane.service_of(sid).degraded_streams


class TestAtMostOncePlacement:
    """The acceptance bar: injected drop/dup windows never double-place."""

    def _run_under_fault(self, drop_rate=None, dup_rate=None, n_streams=6):
        env = Environment()
        fault = FaultPlane(env, seed=9)
        if drop_rate:
            fault.inject_rpc_drop("fd<->*", 0.0, 1e12, rate=drop_rate)
        if dup_rate:
            fault.inject_rpc_duplication("fd<->*", 0.0, 1e12, rate=dup_rate)
        plane = ClusterPlane(env, n_nodes=3, rng=RandomStreams(5))
        specs = specs_named(*[f"s{i}" for i in range(n_streams)])
        admit_all(env, plane, specs, service_time_us=2_000.0)
        env.run(until=30 * S)
        return plane, specs

    def test_duplicated_deliveries_never_double_place(self):
        plane, specs = self._run_under_fault(dup_rate=1.0)
        assert plane.rpc.dup_deliveries > 0
        assert sum(n.dup_suppressed for n in plane.nodes) > 0
        for spec in specs:
            assert nodes_serving(plane, spec.stream_id) == 1
        assert plane.account()["placed"] == len(specs)
        plane.ledger.check()

    def test_dropped_and_retried_admits_never_double_place(self):
        plane, specs = self._run_under_fault(drop_rate=0.5, dup_rate=0.5)
        telemetry = plane.rpc.telemetry()
        assert telemetry["retries"] > 0  # the fault actually bit
        for spec in specs:
            sid = spec.stream_id
            entry = plane.ledger.entry(sid)
            assert entry is not None, f"{sid} vanished from the ledger"
            serving = nodes_serving(plane, sid)
            assert serving <= 1, f"{sid} double-placed on {serving} nodes"
            if entry.state == "placed":
                assert serving == 1
                assert plane.ledger.node_of(sid) is not None
            else:
                # parked via rescind: nobody may still serve it
                assert entry.state == "parked"
                assert serving == 0
        assert plane.account()["unaccounted"] == 0
        plane.ledger.check()

    def test_rescind_poisons_a_never_executed_admit(self):
        """An admit whose request legs were all lost gets rescinded; a
        late duplicate of the poisoned token must refuse, not place."""
        env = Environment()
        plane = ClusterPlane(env, n_nodes=2)
        node = plane.nodes[0]
        results = []

        def proc():
            reply = yield from node.exec_control(
                "rescind", {"admit_token": "admit:sX:0", "stream_id": "sX"}, "r0"
            )
            results.append(reply)
            spec = specs_named("sX")[0]
            reply = yield from node.exec_control(
                "admit",
                {
                    "spec": spec,
                    "service_time_us": 2_000.0,
                    "file": figure_mpeg_file("sX", seed=0, n_frames=8),
                },
                "admit:sX:0",
            )
            results.append(reply)

        env.process(proc())
        env.run(until=1 * S)
        assert results[0] == {"ok": True, "undone": False}
        assert results[1]["ok"] is False
        assert "rescinded" in results[1]["reason"]
        assert nodes_serving(plane, "sX") == 0


class TestNodeLoss:
    def _crash_node(self, env, plane, index, at_us, down_us=None):
        node = plane.nodes[index]

        def crash():
            for card in node.critical_cards:
                if not card.crashed:
                    card.crash()

        def reset():
            for card in node.critical_cards:
                if card.crashed:
                    card.reset()

        env.schedule_callback(at_us, crash, name=f"test.crash:{node.name}")
        if down_us is not None:
            env.schedule_callback(
                at_us + down_us, reset, name=f"test.reset:{node.name}"
            )

    def test_node_crash_reaccounts_every_stream_within_budget(self):
        env = Environment()
        plane = ClusterPlane(env, n_nodes=3)
        specs = specs_named(*[f"s{i}" for i in range(6)])
        admit_all(env, plane, specs, service_time_us=2_000.0)
        self._crash_node(env, plane, index=1, at_us=4 * S)
        env.run(until=10 * S)
        meter = plane.meter
        assert meter.fault_at_us == 4 * S
        assert meter.detection_latency_us is not None
        assert meter.detection_latency_us < 800_000.0  # the 800 ms budget
        assert meter.recovered_at_us is not None
        dead = plane.nodes[1].name
        assert plane.ledger.placed_count(dead) == 0
        census = plane.account()
        assert census["unaccounted"] == 0
        assert census["placed"] + census["parked"] + census["lost"] == len(specs)
        # every stream the dead node served was re-admitted or parked
        assert set(meter.migrated) | set(meter.parked) | set(meter.parked)
        for sid in meter.migrated:
            assert nodes_serving(plane, sid) == 1
            assert plane.ledger.node_of(sid) != dead
        plane.ledger.check()

    def test_concurrent_flaps_do_not_stampede(self):
        """Two nodes flap (crash + reset) inside the watchdog deadline at
        the same time: ride-out means no migration, no breaker opens, no
        placement changes — per node, not just in aggregate."""
        env = Environment()
        plane = ClusterPlane(env, n_nodes=3)
        specs = specs_named(*[f"s{i}" for i in range(6)])
        admit_all(env, plane, specs, service_time_us=2_000.0)
        env.run(until=3 * S)
        before = {
            node.name: plane.ledger.streams_on(node.name) for node in plane.nodes
        }
        # both flaps inside the 640 ms front-door deadline (and the local
        # HA deadline): down 250 ms, concurrently on two nodes
        self._crash_node(env, plane, index=1, at_us=3.1 * S, down_us=250_000.0)
        self._crash_node(env, plane, index=2, at_us=3.1 * S, down_us=250_000.0)
        env.run(until=8 * S)
        assert plane.meter.migrated == []
        assert plane.meter.parked == []
        after = {
            node.name: plane.ledger.streams_on(node.name) for node in plane.nodes
        }
        assert after == before
        for watchdog in plane.frontdoor.watchdogs:
            assert watchdog.state == "alive"
        for breaker in plane.frontdoor.breakers:
            assert breaker.closed
        plane.ledger.check()

    def test_partitioned_node_is_not_migrated(self):
        """Control-path silence with a live SAN probe: breaker opens, no
        failover, and the breaker closes once beats resume."""
        env = Environment()
        fault = FaultPlane(env, seed=3)
        plane = ClusterPlane(env, n_nodes=3)
        specs = specs_named(*[f"s{i}" for i in range(6)])
        admit_all(env, plane, specs, service_time_us=2_000.0)
        target = plane.nodes[1]
        fault.inject_rpc_drop(target.channel.name, 3 * S, 5 * S, rate=1.0)
        env.run(until=8 * S)
        assert plane.meter.partitions >= 1
        assert plane.meter.migrated == []
        assert plane.frontdoor.breakers[1].opens >= 1
        assert plane.frontdoor.breakers[1].closed  # healed after the window
        assert plane.frontdoor.watchdogs[1].state == "alive"
        assert plane.account()["unaccounted"] == 0
        plane.ledger.check()


class TestHandoff:
    def test_graceful_handoff_moves_the_stream(self):
        env = Environment()
        plane = ClusterPlane(env, n_nodes=3)
        specs = specs_named("s0")
        admit_all(env, plane, specs, service_time_us=2_000.0)
        env.run(until=2 * S)
        source = plane.ledger.node_of("s0")
        target_index = next(
            i for i, n in enumerate(plane.nodes) if n.name != source
        )
        out = {}

        def proc():
            out["tier"] = yield from plane.frontdoor.handoff("s0", target_index)

        env.process(proc())
        env.run(until=4 * S)
        assert out["tier"] == "full"
        assert plane.ledger.node_of("s0") == plane.nodes[target_index].name
        assert nodes_serving(plane, "s0") == 1
        assert plane.frontdoor.handoffs == 1
        plane.ledger.check()

    def test_handoff_of_unplaced_stream_rejected(self):
        env = Environment()
        plane = ClusterPlane(env, n_nodes=2)
        with pytest.raises(ValueError, match="not placed"):
            next(plane.frontdoor.handoff("ghost", 0))


class TestPlaneValidation:
    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            ClusterPlane(Environment(), n_nodes=1)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="placement policy"):
            ClusterPlane(Environment(), n_nodes=2, policy="first-fit")
