"""The cluster admission ledger: transitions, invariants, property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterLedger, LedgerError

NODES = ("n0", "n1", "n2")


class TestTransitions:
    def test_place_then_account(self):
        ledger = ClusterLedger()
        ledger.place("s1", "n0")
        ledger.place("s2", "n0", tier="degraded")
        assert ledger.account() == {
            "placed": 2, "degraded": 1, "parked": 0, "lost": 0, "displaced": 0,
        }
        assert ledger.placed_count("n0") == 2
        assert ledger.streams_on("n0") == ["s1", "s2"]

    def test_double_place_refused(self):
        """The backstop the at-most-once machinery leans on."""
        ledger = ClusterLedger()
        ledger.place("s1", "n0")
        with pytest.raises(LedgerError, match="already placed on 'n0'"):
            ledger.place("s1", "n1")

    def test_displace_then_replace(self):
        ledger = ClusterLedger()
        ledger.place("s1", "n0")
        ledger.displace("s1")
        assert ledger.node_of("s1") is None
        assert ledger.account()["displaced"] == 1
        ledger.place("s1", "n1")
        assert ledger.node_of("s1") == "n1"
        assert ledger.placed_count("n0") == 0
        assert ledger.placed_count("n1") == 1

    def test_park_from_any_state_and_reparks_are_noops(self):
        ledger = ClusterLedger()
        ledger.park("never-placed")
        ledger.place("s1", "n0")
        ledger.park("s1")
        ledger.park("s1")
        assert ledger.account()["parked"] == 2
        assert ledger.total_placed == 0

    def test_evict_removes_the_entry(self):
        ledger = ClusterLedger()
        ledger.place("s1", "n0")
        ledger.evict("s1")
        assert ledger.entry("s1") is None
        assert ledger.placed_count("n0") == 0

    def test_evict_requires_placed(self):
        ledger = ClusterLedger()
        with pytest.raises(LedgerError, match="absent"):
            ledger.evict("ghost")
        ledger.park("s1")
        with pytest.raises(LedgerError, match="parked"):
            ledger.evict("s1")

    def test_displace_requires_placed(self):
        ledger = ClusterLedger()
        with pytest.raises(LedgerError):
            ledger.displace("ghost")

    def test_mark_lost_is_terminal_accounting(self):
        ledger = ClusterLedger()
        ledger.place("s1", "n0")
        ledger.mark_lost("s1")
        assert ledger.account()["lost"] == 1
        assert ledger.total_placed == 0

    def test_unknown_tier_rejected(self):
        ledger = ClusterLedger()
        with pytest.raises(LedgerError, match="tier"):
            ledger.place("s1", "n0", tier="bronze")

    def test_check_passes_on_fresh_and_worked_ledger(self):
        ledger = ClusterLedger()
        ledger.check()
        ledger.place("s1", "n0")
        ledger.displace("s1")
        ledger.place("s1", "n1")
        ledger.park("s1")
        ledger.check()


# -- the property test: any legal interleaving keeps the books balanced ------

#: one step of an admit/evict/migrate/park/crash interleaving
_step = st.tuples(
    st.sampled_from(["place", "evict", "displace", "park", "lost", "crash"]),
    st.integers(min_value=0, max_value=7),  # stream
    st.integers(min_value=0, max_value=2),  # node
)


@settings(max_examples=200, deadline=None)
@given(st.lists(_step, max_size=60))
def test_ledger_total_equals_sum_of_per_node_placements(steps):
    """After ANY interleaving of admit/evict/migrate/crash the incremental
    counters must equal a recount from the entries, and the total must be
    the sum of the per-node placements (check() raises otherwise)."""
    ledger = ClusterLedger()
    for verb, stream, node in steps:
        sid = f"s{stream}"
        entry = ledger.entry(sid)
        state = entry.state if entry is not None else "absent"
        if verb == "place":
            if state != "placed":
                ledger.place(sid, NODES[node])
        elif verb == "evict":
            if state == "placed":
                ledger.evict(sid)
        elif verb == "displace":
            if state == "placed":
                ledger.displace(sid)
        elif verb == "park":
            ledger.park(sid)
        elif verb == "lost":
            ledger.mark_lost(sid)
        elif verb == "crash":
            # a node crash displaces every stream it serves, atomically
            for victim in ledger.streams_on(NODES[node]):
                ledger.displace(victim)
        ledger.check()
        census = ledger.account()
        assert census["placed"] == ledger.total_placed
        assert ledger.total_placed == sum(
            ledger.placed_count(n) for n in NODES
        )
