"""The hardened control RPC: timeouts, retries, backoff, at-most-once."""

import pytest

from repro.cluster.rpc import (
    BACKOFF_BASE_US,
    BACKOFF_CAP_US,
    CircuitBreaker,
    ClusterRPC,
    ControlChannel,
    NodeDown,
    RPCTimeout,
)
from repro.faults import FaultPlane
from repro.sim import Environment, RandomStreams


class FakeNode:
    """Minimal node-side executor with the real reply-cache semantics."""

    def __init__(self, env, exec_us=200.0, down=False):
        self.env = env
        self.exec_us = exec_us
        self.down = down
        self.executions = 0
        self.dup_suppressed = 0
        self._replies = {}

    def exec_control(self, op, payload, token):
        if self.down:
            raise NodeDown("fake")
        cached = self._replies.get(token)
        if cached is not None:
            self.dup_suppressed += 1
            return cached
        yield self.env.timeout(self.exec_us)
        self.executions += 1
        reply = {"ok": True, "op": op, "n": self.executions}
        self._replies[token] = reply
        return reply


def call_once(env, rpc, channel, node, token="t1"):
    out = {}

    def proc():
        try:
            out["reply"] = yield from rpc.call(
                channel, node.exec_control, "admit", {}, token
            )
        except Exception as exc:  # noqa: BLE001 - recorded for assertions
            out["error"] = exc

    env.process(proc())
    env.run(until=10_000_000.0)
    return out


class TestHappyPath:
    def test_reply_round_trip(self):
        env = Environment()
        rpc = ClusterRPC(env)
        channel = ControlChannel(env, "fd<->n0")
        node = FakeNode(env)
        out = call_once(env, rpc, channel, node)
        assert out["reply"]["ok"] is True
        assert node.executions == 1
        assert rpc.telemetry()["retries"] == 0
        assert rpc.telemetry()["replies"] == 1

    def test_no_jitter_drawn_without_retries(self):
        """Two identical runs, one with an RNG wired in: a fault-free call
        must not consume randomness (identical completion time)."""
        times = []
        for rng in (None, RandomStreams(7)):
            env = Environment()
            rpc = ClusterRPC(env, rng=rng)
            channel = ControlChannel(env, "fd<->n0")
            node = FakeNode(env)
            done = []

            def proc():
                yield from rpc.call(channel, node.exec_control, "a", {}, "t")
                done.append(env.now)

            env.process(proc())
            env.run(until=1_000_000.0)
            times.append(done[0])
        assert times[0] == times[1]


class TestTimeoutsAndRetries:
    def test_total_drop_times_out_after_max_attempts(self):
        env = Environment()
        FaultPlane(env, seed=1).inject_rpc_drop("fd<->n0", 0.0, 1e9, rate=1.0)
        rpc = ClusterRPC(env, max_attempts=3)
        channel = ControlChannel(env, "fd<->n0")
        node = FakeNode(env)
        out = call_once(env, rpc, channel, node)
        assert isinstance(out["error"], RPCTimeout)
        assert node.executions == 0
        t = rpc.telemetry()
        assert t["attempts"] == 3
        assert t["retries"] == 2
        assert t["failures"] == 1

    def test_drop_window_ending_mid_call_lets_the_retry_through(self):
        env = Environment()
        # first attempt's request is inside the window; the retry (after
        # the 50 ms timeout + 10 ms backoff) is past its end
        FaultPlane(env, seed=1).inject_rpc_drop("fd<->n0", 0.0, 55_000.0, rate=1.0)
        rpc = ClusterRPC(env)
        channel = ControlChannel(env, "fd<->n0")
        node = FakeNode(env)
        out = call_once(env, rpc, channel, node)
        assert out["reply"]["ok"] is True
        assert node.executions == 1  # executed exactly once despite the retry
        assert rpc.telemetry()["retries"] == 1

    def test_reply_leg_loss_executes_but_looks_like_timeout(self):
        """The ambiguous case rescind exists for: the op executed, every
        reply (and every retried request) was lost."""
        env = Environment()
        # window opens after the first request passes (t=0) but before its
        # reply crosses back (t = latency 200 + exec 200 = 400)
        FaultPlane(env, seed=1).inject_rpc_drop("fd<->n0", 300.0, 1e9, rate=1.0)
        rpc = ClusterRPC(env, max_attempts=2)
        channel = ControlChannel(env, "fd<->n0")
        node = FakeNode(env)
        out = call_once(env, rpc, channel, node)
        assert isinstance(out["error"], RPCTimeout)
        assert node.executions == 1

    def test_node_down_burns_the_deadline(self):
        env = Environment()
        rpc = ClusterRPC(env, max_attempts=2)
        channel = ControlChannel(env, "fd<->n0")
        node = FakeNode(env, down=True)
        out = call_once(env, rpc, channel, node)
        assert isinstance(out["error"], RPCTimeout)
        assert rpc.telemetry()["timeouts"] == 2

    def test_backoff_is_capped_exponential(self):
        env = Environment()
        rpc = ClusterRPC(env)
        assert rpc._backoff_us(0) == BACKOFF_BASE_US
        assert rpc._backoff_us(1) == 2 * BACKOFF_BASE_US
        assert rpc._backoff_us(10) == BACKOFF_CAP_US

    def test_jitter_widens_but_never_shrinks_backoff(self):
        env = Environment()
        rpc = ClusterRPC(env, rng=RandomStreams(3))
        for attempt in range(4):
            base = min(BACKOFF_CAP_US, BACKOFF_BASE_US * 2.0 ** attempt)
            delay = rpc._backoff_us(attempt)
            assert base <= delay < 1.5 * base


class TestAtMostOnce:
    def test_duplicated_delivery_absorbed_by_reply_cache(self):
        env = Environment()
        FaultPlane(env, seed=1).inject_rpc_duplication("fd<->n0", 0.0, 1e9, rate=1.0)
        rpc = ClusterRPC(env)
        channel = ControlChannel(env, "fd<->n0")
        node = FakeNode(env)
        out = call_once(env, rpc, channel, node)
        assert out["reply"]["ok"] is True
        assert node.executions == 1
        assert node.dup_suppressed == 1
        assert rpc.telemetry()["dup_deliveries"] == 1

    def test_retry_after_executed_reply_loss_does_not_reexecute(self):
        """Request 1 executes, its reply is lost; request 2 (same token)
        must hit the cache, not run the op again."""
        env = Environment()
        # drop exactly the first reply: window covers [300, 500) — the
        # first request passes at t=0, its reply check happens at t=400;
        # the retry's request (t ≈ 50 400 + backoff) is clear of it
        FaultPlane(env, seed=1).inject_rpc_drop("fd<->n0", 300.0, 500.0, rate=1.0)
        rpc = ClusterRPC(env)
        channel = ControlChannel(env, "fd<->n0")
        node = FakeNode(env)
        out = call_once(env, rpc, channel, node)
        assert out["reply"]["ok"] is True
        assert node.executions == 1
        assert node.dup_suppressed == 1  # the retry was served from cache


class TestCircuitBreaker:
    def test_open_close_and_idempotent_opens(self):
        breaker = CircuitBreaker("n0")
        assert breaker.closed
        breaker.open()
        breaker.open()
        assert not breaker.closed
        assert breaker.opens == 1
        breaker.close()
        assert breaker.closed


class TestValidation:
    def test_rate_bounds(self):
        env = Environment()
        plane = FaultPlane(env, seed=1)
        with pytest.raises(ValueError):
            plane.inject_rpc_drop("x", 0.0, 1.0, rate=0.0)
        with pytest.raises(ValueError):
            plane.inject_rpc_duplication("x", 0.0, 1.0, rate=1.5)

    def test_rpc_constructor_bounds(self):
        env = Environment()
        with pytest.raises(ValueError):
            ClusterRPC(env, timeout_us=0.0)
        with pytest.raises(ValueError):
            ClusterRPC(env, max_attempts=0)
