"""HAStreamingService: placement, heartbeats, migration, backpressure."""

import pytest

from repro.core import StreamSpec
from repro.ha.heartbeat import HEARTBEAT_MSG_ID
from repro.hw.ethernet import EthernetSwitch
from repro.server import HAStreamingService, ServerNode
from repro.sim import Environment


def build(env, n_cards=2, **kw):
    node = ServerNode(env, n_cpus=1, n_pci_segments=2)
    return HAStreamingService(env, node, EthernetSwitch(env), n_cards=n_cards, **kw)


def spec(sid, period_us=333_333.0):
    return StreamSpec(sid, period_us=period_us, loss_x=1, loss_y=2)


class TestAssembly:
    def test_needs_two_cards(self):
        env = Environment()
        with pytest.raises(ValueError):
            build(env, n_cards=1)

    def test_each_card_gets_the_full_ha_plane(self):
        env = Environment()
        service = build(env)
        for plane in service.planes:
            assert "ha.restore_stream" in plane.vcm_runtime.instruction_names
            assert plane.watchdog.card is plane.runtime.card
        env.run(until=1_000_000)
        for plane in service.planes:
            assert plane.emitter.beats_sent >= 3
            assert plane.watchdog.beats >= 3
            assert plane.watchdog.state == "alive"

    def test_heartbeats_use_the_reserved_message_id(self):
        assert HEARTBEAT_MSG_ID == 0  # real msg ids start at 1


class TestPlacement:
    def test_streams_spread_by_headroom(self):
        env = Environment()
        service = build(env)
        service.attach_client("c1")
        service.attach_client("c2")
        service.open_stream(spec("s1"), "c1", service_time_us=2000.0)
        service.open_stream(spec("s2"), "c2", service_time_us=2000.0)
        assert service.runtime_of("s1") is service.runtimes[0]
        assert service.runtime_of("s2") is service.runtimes[1]

    def test_admission_refuses_past_capacity_on_every_card(self):
        env = Environment()
        service = build(env)
        service.attach_client("c")
        # each stream demands ~0.5 utilization: two fit (one per card),
        # the third finds no card with headroom
        service.open_stream(spec("fat1", period_us=2000.0), "c", service_time_us=2000.0)
        service.open_stream(spec("fat2", period_us=2000.0), "c", service_time_us=2000.0)
        with pytest.raises(RuntimeError, match="admission refused"):
            service.open_stream(
                spec("fat3", period_us=2000.0), "c", service_time_us=2000.0
            )

    def test_open_stream_requires_a_service_time(self):
        env = Environment()
        service = build(env)
        service.attach_client("c")
        with pytest.raises(ValueError):
            service.open_stream(spec("s1"), "c")


class TestMigration:
    def test_crash_migrates_streams_to_the_survivor(self):
        env = Environment()
        service = build(env)
        service.attach_client("c1")
        service.attach_client("c2")
        service.open_stream(spec("s1"), "c1", service_time_us=2000.0)
        service.open_stream(spec("s2"), "c2", service_time_us=2000.0)
        env.schedule_callback(2_000_000, service.runtimes[0].card.crash)
        env.run(until=5_000_000)
        meter = service.meter
        assert service.planes[0].watchdog.state == "dead"
        assert meter.migrated == ["s1"]
        assert meter.parked == []
        # the splice: s1 now lives on card 1's scheduler and ledger
        assert service.runtime_of("s1") is service.runtimes[1]
        assert "s1" in service.runtimes[1].scheduler.streams
        assert "s1" in service.runtimes[1].admission.admitted_streams
        assert "s1" not in service.runtimes[0].admission.admitted_streams
        assert meter.detection_latency_us is not None
        assert meter.detection_latency_us <= service.detection_budget_us
        assert meter.mttr_us is not None and meter.mttr_us >= meter.detection_latency_us

    def test_migration_restores_window_accounting(self):
        env = Environment()
        service = build(env)
        service.attach_client("c1")
        service.open_stream(spec("s1"), "c1", service_time_us=2000.0)
        victim = service.runtime_of("s1")
        env.run(until=1_000_000)
        mirrored = service.mirror_of(victim).checkpoints["s1"]["state"]
        victim.card.crash()
        env.run(until=4_000_000)
        adopted = service.runtimes[1].scheduler.streams["s1"]
        # violation/loss tallies carried over from the mirrored snapshot
        assert adopted.violations >= mirrored["violations"]
        assert adopted.serviced >= mirrored["serviced"]

    def test_no_headroom_degrades_then_parks(self):
        env = Environment()
        service = build(env)
        service.attach_client("c")
        # s1 on card 0 (small), fat on card 1 (~0.5 of its ledger): after
        # card 0 dies, s1 fits beside fat, but a second fat stream would not
        service.open_stream(spec("s1"), "c", service_time_us=2000.0)
        service.open_stream(spec("fat", period_us=2000.0), "c", service_time_us=2000.0)
        assert service.runtime_of("fat") is service.runtimes[1]
        env.schedule_callback(1_000_000, service.runtimes[0].card.crash)
        env.run(until=4_000_000)
        assert service.meter.migrated == ["s1"]

    def test_overload_parks_rather_than_violating_admitted_windows(self):
        env = Environment()
        service = build(env, n_cards=2)
        service.attach_client("c")
        # both cards nearly full; the dead card's fat stream cannot be
        # re-admitted anywhere, even degraded
        service.open_stream(spec("fat0", period_us=2000.0), "c", service_time_us=2000.0)
        service.open_stream(spec("fat1", period_us=2000.0), "c", service_time_us=2000.0)
        service.open_stream(spec("fat2", period_us=3000.0), "c", service_time_us=2000.0)
        victim = service.runtime_of("fat0")
        assert victim is service.runtimes[0]
        env.schedule_callback(1_000_000, victim.card.crash)
        env.run(until=4_000_000)
        meter = service.meter
        # fat0 (1/2 · 2000/2000 = 0.5 share) cannot fit beside fat1+fat2
        assert "fat0" in meter.parked or "fat2" in meter.parked
        assert service.parked_streams
        # whatever survived kept its admission share on the survivor
        survivor = service.runtimes[1]
        assert survivor.admission.utilization <= survivor.admission.utilization_bound
