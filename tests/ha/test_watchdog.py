"""Watchdog semantics: declaration, classification, flapping, edge timing."""

import pytest

from repro.ha import Watchdog
from repro.server import ServerNode
from repro.sim import Environment

INTERVAL = 100_000.0
K = 3
GRACE = 20_000.0
DEADLINE = K * INTERVAL + GRACE  # relative to the last beat


def make_card(env):
    node = ServerNode(env, n_cpus=1)
    return node.add_i960_card(segment=0)


def beat_forever(env, wd, interval=INTERVAL, until=float("inf")):
    def beats():
        while env.now < until:
            yield env.timeout(interval)
            wd.record_beat()

    env.process(beats(), name="beats")


class TestLiveness:
    def test_steady_beats_keep_the_card_alive(self):
        env = Environment()
        card = make_card(env)
        wd = Watchdog(env, card, interval_us=INTERVAL, k_missed=K, grace_us=GRACE)
        beat_forever(env, wd)
        env.run(until=20 * INTERVAL)
        assert wd.state == "alive"
        assert wd.suspicions == 0
        assert wd.beats >= 18

    def test_phi_grows_with_silence_and_resets_on_a_beat(self):
        env = Environment()
        card = make_card(env)
        wd = Watchdog(env, card, interval_us=INTERVAL, k_missed=K, grace_us=GRACE)
        env.run(until=INTERVAL)
        low = wd.phi()
        env.run(until=3 * INTERVAL)
        assert wd.phi() > low > 0.0
        wd.record_beat()
        assert wd.phi() == 0.0


class TestCrashDeclaration:
    def test_crashed_card_is_declared_dead_within_the_budget(self):
        env = Environment()
        card = make_card(env)
        wd = Watchdog(env, card, interval_us=INTERVAL, k_missed=K, grace_us=GRACE)
        deaths = []
        wd.on_dead.append(lambda: deaths.append(env.now))
        beat_forever(env, wd, until=5 * INTERVAL)
        env.schedule_callback(5 * INTERVAL, card.crash)
        env.run(until=30 * INTERVAL)
        assert wd.state == "dead"
        assert len(deaths) == 1
        # declared within one detection budget of the last beat
        assert wd.declared_dead_at_us - 5 * INTERVAL <= DEADLINE + INTERVAL
        assert wd.declared_dead_at_us == deaths[0]

    def test_dead_is_terminal_even_after_a_board_reset(self):
        env = Environment()
        card = make_card(env)
        wd = Watchdog(env, card, interval_us=INTERVAL, k_missed=K, grace_us=GRACE)
        env.schedule_callback(INTERVAL, card.crash)
        env.run(until=10 * INTERVAL)
        assert wd.state == "dead"
        card.reset()
        wd.record_beat()
        env.run(until=30 * INTERVAL)
        assert wd.state == "dead"  # rejoin must go through a fresh watchdog


class TestPartitionVsCrash:
    def test_silent_but_alive_card_classifies_as_partitioned(self):
        env = Environment()
        card = make_card(env)
        wd = Watchdog(env, card, interval_us=INTERVAL, k_missed=K, grace_us=GRACE)
        partitions = []
        wd.on_partition.append(lambda: partitions.append(env.now))
        # no beats at all, card healthy: the probe answers, so this is a
        # partition of the message path, not a death
        env.run(until=10 * INTERVAL)
        assert wd.state == "partitioned"
        assert len(partitions) == 1  # classified once, not per re-probe
        assert wd.suspicions >= 1

    def test_partition_recovers_when_beats_resume(self):
        env = Environment()
        card = make_card(env)
        wd = Watchdog(env, card, interval_us=INTERVAL, k_missed=K, grace_us=GRACE)
        recoveries = []
        wd.on_recovered.append(lambda: recoveries.append(env.now))
        env.run(until=6 * INTERVAL)
        assert wd.state == "partitioned"
        wd.record_beat()
        assert wd.state == "alive"
        assert wd.recoveries == 1 and len(recoveries) == 1
        beat_forever(env, wd)
        env.run(until=20 * INTERVAL)
        assert wd.state == "alive"

    def test_partition_that_turns_into_a_crash_is_declared_dead(self):
        env = Environment()
        card = make_card(env)
        wd = Watchdog(env, card, interval_us=INTERVAL, k_missed=K, grace_us=GRACE)
        env.run(until=6 * INTERVAL)
        assert wd.state == "partitioned"
        card.crash()
        env.run(until=12 * INTERVAL)
        assert wd.state == "dead"


class TestFlapping:
    def test_crash_and_reset_inside_the_budget_is_never_declared(self):
        env = Environment()
        card = make_card(env)
        wd = Watchdog(env, card, interval_us=INTERVAL, k_missed=K, grace_us=GRACE)
        beat_forever(env, wd)
        # flap: down for two intervals (< K·interval + grace of silence)
        env.schedule_callback(5 * INTERVAL, card.crash)
        env.schedule_callback(7 * INTERVAL - 1.0, card.reset)
        env.run(until=30 * INTERVAL)
        assert wd.state == "alive"
        assert wd.suspicions == 0
        assert card.crash_count == 1


class TestProbeOverride:
    """The probe factory can be replaced — how the cluster front door
    probes a whole node over the SAN instead of one card's status port."""

    def _probed_watchdog(self, env, card, alive):
        def probe():
            yield env.timeout(500.0)
            return alive["value"]

        return Watchdog(
            env, card, interval_us=INTERVAL, k_missed=K, grace_us=GRACE,
            probe=probe,
        )

    def test_probe_alive_classifies_partition_despite_dead_card(self):
        env = Environment()
        card = make_card(env)
        alive = {"value": True}
        wd = self._probed_watchdog(env, card, alive)
        # the card itself is crashed; only the custom probe says otherwise
        card.crash()
        env.run(until=10 * INTERVAL)
        assert wd.state == "partitioned"

    def test_probe_dead_declares_dead_despite_healthy_card(self):
        env = Environment()
        card = make_card(env)
        alive = {"value": False}
        wd = self._probed_watchdog(env, card, alive)
        env.run(until=10 * INTERVAL)
        assert wd.state == "dead"


class TestDeadlineEdge:
    def test_beat_landing_exactly_at_the_deadline_counts_as_alive(self):
        env = Environment()
        card = make_card(env)

        # the beat process is created BEFORE the watchdog, so at the shared
        # timestamp its event fires first — the beat must win the tie
        def one_beat():
            yield env.timeout(DEADLINE)
            wd.record_beat()

        env.process(one_beat(), name="edge-beat")
        wd = Watchdog(env, card, interval_us=INTERVAL, k_missed=K, grace_us=GRACE)
        env.run(until=DEADLINE + 1.0)
        assert wd.state == "alive"
        assert wd.suspicions == 0

    def test_validation(self):
        env = Environment()
        card = make_card(env)
        with pytest.raises(ValueError):
            Watchdog(env, card, interval_us=0.0)
        with pytest.raises(ValueError):
            Watchdog(env, card, interval_us=INTERVAL, k_missed=0)
