"""DWCS state checkpointing: snapshot/restore and the host-memory mirror."""

from repro.core import DWCSScheduler, StreamSpec
from repro.ha import CHECKPOINT_BYTES
from repro.media import FrameType, MediaFrame


def make_frame(stream, seq, size=1000):
    return MediaFrame(stream, seq, FrameType.I, size, pts_us=0.0)


def loaded_scheduler(n_frames=8):
    s = DWCSScheduler(work_conserving=True)
    s.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=1, loss_y=2))
    for i in range(n_frames):
        s.enqueue(make_frame("s1", i), now_us=0.0)
    return s


class TestStreamStateSnapshot:
    def test_checkpoint_restore_roundtrip(self):
        s = loaded_scheduler()
        now = 0.0
        for _ in range(4):
            d = s.schedule(now)
            now = max(now + 500.0, (d.idle_until or now))
        state = s.streams["s1"]
        snap = state.checkpoint()
        assert set(snap) == set(state.CHECKPOINT_FIELDS)
        # a fresh stream restored from the snapshot carries the live tallies
        other = DWCSScheduler(work_conserving=True)
        fresh = other.add_stream(StreamSpec("s1", period_us=1000.0, loss_x=1, loss_y=2))
        fresh.restore(snap)
        for field in state.CHECKPOINT_FIELDS:
            assert getattr(fresh, field) == getattr(state, field)

    def test_checkpoint_is_a_value_not_a_view(self):
        s = loaded_scheduler()
        s.schedule(0.0)
        snap = s.streams["s1"].checkpoint()
        before = dict(snap)
        s.schedule(2000.0)  # keeps mutating the live state
        assert snap == before


class TestExportAdopt:
    def test_adopt_continues_window_accounting_and_deadline_sequence(self):
        a = loaded_scheduler()
        now = 0.0
        for _ in range(5):
            a.schedule(now)
            now += 1000.0
        exported = a.export_stream("s1")
        assert exported["spec"].stream_id == "s1"
        assert exported["enqueued_total"] == a.queues["s1"].enqueued_total

        b = DWCSScheduler(work_conserving=True)
        adopted = b.adopt_stream(exported)
        src = a.streams["s1"]
        for field in src.CHECKPOINT_FIELDS:
            assert getattr(adopted, field) == getattr(src, field)
        # the deadline sequence is anchored identically on the new card:
        # the next enqueued frame gets the same deadline both sides
        assert b.queues["s1"].enqueued_total == a.queues["s1"].enqueued_total
        fa = a.enqueue(make_frame("s1", 100), now_us=now)
        fb = b.enqueue(make_frame("s1", 100), now_us=now)
        assert fb.deadline_us == fa.deadline_us

    def test_adopt_preserves_violation_tallies(self):
        a = loaded_scheduler(n_frames=2)
        # starve the stream far past its windows to accrue violations
        for t in (0.0, 10_000.0, 30_000.0, 60_000.0):
            a.schedule(t)
        exported = a.export_stream("s1")
        b = DWCSScheduler(work_conserving=True)
        adopted = b.adopt_stream(exported)
        assert adopted.violations == a.streams["s1"].violations
        assert adopted.window_resets == a.streams["s1"].window_resets


class TestCheckpointMirror:
    def test_mirror_commits_checkpoints_and_charges_dma(self):
        from repro.hw.ethernet import EthernetSwitch
        from repro.server import HAStreamingService, ServerNode
        from repro.sim import Environment

        env = Environment()
        node = ServerNode(env, n_cpus=1, n_pci_segments=2)
        service = HAStreamingService(env, node, EthernetSwitch(env), n_cards=2)
        service.attach_client("client_s1")
        spec = StreamSpec("s1", period_us=100_000.0, loss_x=1, loss_y=2)
        service.open_stream(spec, "client_s1", service_time_us=2000.0)
        runtime = service.runtime_of("s1")
        mirror = service.mirror_of(runtime)
        for i in range(6):
            runtime.engine.submit(make_frame("s1", i))
        env.run(until=2_000_000)
        # the admission-time snapshot plus per-epoch snapshots all landed
        assert "s1" in mirror.checkpoints
        assert mirror.snapshots_taken >= 2
        assert mirror.bytes_mirrored > 0
        assert mirror.bytes_mirrored % CHECKPOINT_BYTES == 0
        assert mirror.checkpoints["s1"]["spec"].stream_id == "s1"
        # the other card mirrors nothing: no streams live there
        other = next(rt for rt in service.runtimes if rt is not runtime)
        assert service.mirror_of(other).checkpoints == {}

    def test_forget_drops_mirrored_state(self):
        from repro.hw.ethernet import EthernetSwitch
        from repro.server import HAStreamingService, ServerNode
        from repro.sim import Environment

        env = Environment()
        node = ServerNode(env, n_cpus=1, n_pci_segments=2)
        service = HAStreamingService(env, node, EthernetSwitch(env), n_cards=2)
        service.attach_client("client_s1")
        spec = StreamSpec("s1", period_us=100_000.0, loss_x=1, loss_y=2)
        service.open_stream(spec, "client_s1", service_time_us=2000.0)
        runtime = service.runtime_of("s1")
        mirror = service.mirror_of(runtime)
        env.run(until=500_000)
        assert "s1" in mirror.checkpoints
        mirror.forget("s1")
        assert "s1" not in mirror.checkpoints
