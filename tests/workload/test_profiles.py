"""Httperf rate profiles and Apache heavy-tail service draws."""

import pytest

from repro.hw.cpu import CPUSpec
from repro.rtos import SolarisHostOS
from repro.sim import Environment, RandomStreams, S
from repro.workload import ApacheServer, Httperf

FREE = CPUSpec(
    name="ideal", clock_mhz=100.0, has_fpu=True,
    context_switch_us=0.0, cache_pollution_us=0.0,
)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def server(env):
    host = SolarisHostOS(env, n_cpus=2, cpu_spec=FREE)
    return ApacheServer(env, host, rng=RandomStreams(1))


class TestRateProfiles:
    def test_profile_validation(self, env, server):
        with pytest.raises(ValueError):
            Httperf(env, server, rate_per_s=1.0, rate_profile=[])
        with pytest.raises(ValueError):
            Httperf(env, server, rate_per_s=1.0, rate_profile=[(0.0, -1.0)])
        with pytest.raises(ValueError):
            Httperf(
                env, server, rate_per_s=1.0,
                rate_profile=[(10.0, 1.0), (5.0, 2.0)],  # unsorted
            )

    def test_current_rate_piecewise(self, env, server):
        perf = Httperf(
            env,
            server,
            rate_per_s=5.0,
            rate_profile=[(1 * S, 100.0), (2 * S, 0.0), (3 * S, 50.0)],
        )
        assert perf.current_rate(0.0) == 5.0  # fallback before first entry
        assert perf.current_rate(1.5 * S) == 100.0
        assert perf.current_rate(2.5 * S) == 0.0
        assert perf.current_rate(10 * S) == 50.0

    def test_zero_rate_phase_issues_nothing(self, env, server):
        perf = Httperf(
            env,
            server,
            rate_per_s=1.0,
            rate_profile=[(0.0, 0.0), (2 * S, 200.0)],
            total_calls=10**6,
            rng=RandomStreams(2),
        )
        env.run(until=2 * S)
        assert perf.calls_issued == 0
        env.run(until=4 * S)
        assert perf.calls_issued > 200

    def test_profile_shapes_load_over_time(self, env, server):
        perf = Httperf(
            env,
            server,
            rate_per_s=0.001,
            rate_profile=[(0.0, 20.0), (3 * S, 200.0)],
            total_calls=10**6,
            rng=RandomStreams(3),
        )
        env.run(until=3 * S)
        early = perf.calls_issued
        env.run(until=6 * S)
        late = perf.calls_issued - early
        assert late > 5 * early


class TestHeavyTail:
    def test_effective_mean_includes_tail(self, env):
        host = SolarisHostOS(env, n_cpus=1, cpu_spec=FREE)
        server = ApacheServer(
            env, host, mean_service_us=1000.0,
            heavy_tail_prob=0.1, heavy_tail_mult=50.0,
        )
        assert server.effective_mean_service_us == pytest.approx(
            1000.0 * (0.9 + 0.1 * 50.0)
        )

    def test_invalid_tail_probability(self, env):
        host = SolarisHostOS(env, n_cpus=1, cpu_spec=FREE)
        with pytest.raises(ValueError):
            ApacheServer(env, host, heavy_tail_prob=1.5)

    def test_draw_matches_effective_mean(self, env, server):
        gen = RandomStreams(4).stream("draws")
        n = 20_000
        mean = sum(server.draw_service_us(gen) for _ in range(n)) / n
        assert mean == pytest.approx(server.effective_mean_service_us, rel=0.10)

    def test_tail_disabled(self, env):
        host = SolarisHostOS(env, n_cpus=1, cpu_spec=FREE)
        server = ApacheServer(env, host, heavy_tail_prob=0.0, mean_service_us=500.0)
        assert server.effective_mean_service_us == 500.0
        gen = RandomStreams(5).stream("draws")
        draws = [server.draw_service_us(gen) for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(500.0, rel=0.10)
