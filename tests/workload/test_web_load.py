"""Apache pool + httperf load generation + Perfmeter sampling."""

import pytest

from repro.hw.cpu import CPUSpec
from repro.metrics import Perfmeter
from repro.rtos import SolarisHostOS
from repro.sim import Environment, RandomStreams
from repro.workload import ApacheServer, Httperf, WebRequest

LIGHT_SWITCH = CPUSpec(
    name="host", clock_mhz=200.0, has_fpu=True,
    context_switch_us=10.0, cache_pollution_us=25.0,
)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def host(env):
    return SolarisHostOS(env, n_cpus=2, cpu_spec=LIGHT_SWITCH)


class TestApache:
    def test_pool_starts_with_five(self, env, host):
        server = ApacheServer(env, host)
        assert server.nprocs == 5

    def test_invalid_pool_sizes(self, env, host):
        with pytest.raises(ValueError):
            ApacheServer(env, host, start_procs=0)
        with pytest.raises(ValueError):
            ApacheServer(env, host, start_procs=11, max_procs=10)

    def test_requests_get_served(self, env, host):
        server = ApacheServer(env, host)
        for _ in range(20):
            server.submit(WebRequest(submitted_at=env.now, service_us=1000.0))
        env.run(until=5_000_000.0)
        assert server.requests_served == 20
        assert server.response_time_us.count == 20

    def test_pool_grows_under_backlog_up_to_max(self, env, host):
        server = ApacheServer(env, host, mean_service_us=50_000.0)
        Httperf(env, server, rate_per_s=200.0, total_calls=2000, rng=RandomStreams(1))
        env.run(until=10_000_000.0)
        assert server.nprocs == server.max_procs

    def test_pool_stable_when_idle(self, env, host):
        server = ApacheServer(env, host)
        env.run(until=5_000_000.0)
        assert server.nprocs == 5


class TestHttperf:
    def test_invalid_parameters(self, env, host):
        server = ApacheServer(env, host)
        with pytest.raises(ValueError):
            Httperf(env, server, rate_per_s=0.0)
        with pytest.raises(ValueError):
            Httperf(env, server, rate_per_s=10.0, connections=0)

    def test_total_calls_ceiling(self, env, host):
        server = ApacheServer(env, host)
        perf = Httperf(env, server, rate_per_s=100.0, total_calls=50)
        env.run(until=30_000_000.0)
        assert perf.calls_issued == 50
        assert perf.calls_completed == 50

    def test_issue_rate_close_to_requested(self, env, host):
        server = ApacheServer(env, host)
        perf = Httperf(
            env, server, rate_per_s=200.0, total_calls=10_000, rng=RandomStreams(2)
        )
        env.run(until=5_000_000.0)  # 5s
        achieved = perf.calls_issued / 5.0
        assert achieved == pytest.approx(200.0, rel=0.15)

    def test_start_and_stop_bounds(self, env, host):
        server = ApacheServer(env, host)
        perf = Httperf(
            env,
            server,
            rate_per_s=100.0,
            total_calls=100_000,
            start_at_us=1_000_000.0,
            stop_at_us=2_000_000.0,
        )
        env.run(until=1_000_000.0)
        assert perf.calls_issued == 0
        env.run(until=4_000_000.0)
        assert perf.calls_issued == pytest.approx(100, rel=0.5)


class TestUtilizationTargets:
    """The Figure-6 knob: drive the host to a requested average level."""

    @pytest.mark.parametrize("target", [0.45, 0.60])
    def test_target_utilization_reached(self, env, host, target):
        server = ApacheServer(env, host, rng=RandomStreams(3))
        Httperf.for_target_utilization(
            env, server, target, n_cpus=2, total_calls=10**6, rng=RandomStreams(4)
        )
        meter = Perfmeter(env, host, period_us=500_000.0)
        env.run(until=30_000_000.0)  # 30s
        # skip the 2s ramp; context-switch overhead adds a little on top
        avg = meter.average(start=2_000_000.0) / 100.0
        assert avg == pytest.approx(target, abs=0.10)

    def test_invalid_target(self, env, host):
        server = ApacheServer(env, host)
        with pytest.raises(ValueError):
            Httperf.for_target_utilization(env, server, 1.5, n_cpus=2)


class TestPerfmeter:
    def test_idle_system_near_zero(self, env, host):
        meter = Perfmeter(env, host, period_us=1_000_000.0)
        env.run(until=5_000_000.0)
        assert meter.average() < 1.0

    def test_invalid_period(self, env, host):
        with pytest.raises(ValueError):
            Perfmeter(env, host, period_us=0.0)

    def test_fully_loaded_near_100(self, env, host):
        def burner(task):
            while True:
                yield task.compute(100_000.0)

        host.spawn("burn0", burner)
        host.spawn("burn1", burner)
        meter = Perfmeter(env, host, period_us=1_000_000.0)
        env.run(until=5_000_000.0)
        assert meter.average() > 95.0
