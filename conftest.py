"""Make ``src/`` importable when the package is not pip-installed.

The environment has no network and no ``wheel`` package, so PEP 660 editable
installs fail; this keeps ``pytest`` self-contained either way.
"""

import sys
from pathlib import Path

SRC = str(Path(__file__).parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)
