"""Benchmark harness configuration.

Every paper table/figure has one benchmark that (a) regenerates the
result through the experiment harness, (b) prints the paper-vs-measured
rows, and (c) asserts the reproduction stays within tolerance. Experiment
runs are deterministic, so a single round suffices; pytest-benchmark
records the wall time of the regeneration itself.
"""

import sys
from pathlib import Path

SRC = str(Path(__file__).parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
