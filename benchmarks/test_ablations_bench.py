"""Ablation benchmarks for the design choices the paper calls out.

Each ablation flips one design decision from §3.1.1/§4.2 of the paper and
measures the consequence on the simulated platform:

* selection structure (dual heaps vs linear scan) as streams scale;
* frame residency (single copy in NI memory vs 'pull' from host memory);
* dedicated scheduler NI (data cache usable) vs disk-attached NI (cache
  forced off by the VxWorks disk driver);
* coupled vs asynchronous scheduling/dispatch.
"""

import pytest

from conftest import run_once
from repro.core import (
    CalendarQueue,
    DWCSScheduler,
    DualHeaps,
    LinearScan,
    MicrobenchEngine,
    SortedList,
    StreamSpec,
)
from repro.core.engine import MicrobenchResult
from repro.experiments.calibration import microbench_scheduler
from repro.fixedpoint import FixedPointContext
from repro.hw import CPU, DataCache, I960RD_66, PCISegment
from repro.hw.bus import Bus
from repro.hw.pci import PCIBridge
from repro.media import FrameType, MediaFrame
from repro.sim import Environment


def drain(scheduler, cpu) -> MicrobenchResult:
    env = Environment()
    engine = MicrobenchEngine(env, scheduler, cpu)
    return env.run(until=env.process(engine.run_with_scheduler()))


def build_scheduler(selection_factory, n_streams, frames_per_stream=8, miss_scan="structure"):
    s = DWCSScheduler(
        ctx=FixedPointContext(),
        selection_factory=selection_factory,
        work_conserving=True,
        miss_scan=miss_scan,
    )
    for i in range(n_streams):
        # distinct periods: with identical deadline chains every head ties
        # and the heap's tie cohort degenerates to the full stream set
        s.add_stream(
            StreamSpec(f"s{i}", period_us=30_000.0 + 701.0 * i, loss_x=1, loss_y=4)
        )
    for i in range(n_streams):
        for k in range(frames_per_stream):
            s.enqueue(MediaFrame(f"s{i}", k, FrameType.I, 1000, 0.0), 0.0)
    return s


class TestSelectionStructureAblation:
    """Dual heaps exist for scale — but only once the miss scan is also
    structure-driven. The paper's embedded build walks every descriptor per
    cycle ('descriptor-loop'), which makes both structures O(n); the
    scalable build ('structure') lets the deadline heap pay off."""

    @pytest.mark.parametrize("n_streams", [4, 16, 64])
    def test_structures_scale_differently(self, benchmark, n_streams):
        def run():
            out = {}
            for factory in (DualHeaps, LinearScan, SortedList, CalendarQueue):
                cpu = CPU(I960RD_66, cache=DataCache(enabled=False))
                result = drain(
                    build_scheduler(factory, n_streams, miss_scan="structure"), cpu
                )
                out[factory.name] = result.avg_frame_us
            return out

        out = run_once(benchmark, run)
        print(f"\nn_streams={n_streams}: {out}")
        if n_streams >= 64:
            # the O(n)-per-decision structures fall behind the heaps
            assert out["linear-scan"] > out["dual-heaps"]
            assert out["calendar-queue"] < out["linear-scan"]

    def test_descriptor_loop_build_is_o_n_regardless_of_structure(self, benchmark):
        """With the embedded build's per-cycle descriptor walk, the heap
        cannot help — the finding that motivates the 'structure' mode."""

        def run():
            out = {}
            for factory in (DualHeaps, LinearScan):
                cpu = CPU(I960RD_66, cache=DataCache(enabled=False))
                small = drain(
                    build_scheduler(factory, 4, miss_scan="descriptor-loop"), cpu
                ).avg_frame_us
                cpu = CPU(I960RD_66, cache=DataCache(enabled=False))
                big = drain(
                    build_scheduler(factory, 64, miss_scan="descriptor-loop"), cpu
                ).avg_frame_us
                out[factory.name] = big / small
            return out

        out = run_once(benchmark, run)
        print(f"\n64-vs-4-stream cost ratio: {out}")
        # both structures blow up under the descriptor loop
        for ratio in out.values():
            assert ratio > 2.0

    def test_both_structures_drain_everything(self, benchmark):
        def run():
            for factory in (DualHeaps, LinearScan):
                s = build_scheduler(factory, 8)
                result = drain(s, CPU(I960RD_66))
                assert result.frames == 8 * 8
                assert s.backlog == 0
            return True

        assert run_once(benchmark, run)


class TestFrameResidencyAblation:
    """Paper §3.1.2: frames resident in NI memory vs 'pulled' from host
    memory per dispatch — the pull adds PCI+host-bus latency to every
    frame and consumes host-bus bandwidth."""

    FRAMES = 151
    FRAME_BYTES = 1000

    def test_pull_from_host_adds_latency_and_host_traffic(self, benchmark):
        def run():
            out = {}
            for residency in ("ni-memory", "host-pull"):
                env = Environment()
                host_bus = Bus(env, "hostbus", bandwidth_mb_s=528.0)
                segment = PCISegment(env, "pci0")
                bridge = PCIBridge(env, host_bus, segment)
                cpu = CPU(I960RD_66, cache=DataCache(enabled=False))
                scheduler = microbench_scheduler(FixedPointContext())
                engine = MicrobenchEngine(env, scheduler, cpu)

                def with_pull():
                    start = env.now
                    frames = 0
                    while scheduler.backlog:
                        decision = scheduler.schedule(env.now)
                        yield env.timeout(cpu.time_for(decision.ops))
                        if decision.serviced is None:
                            continue
                        if residency == "host-pull":
                            yield from bridge.transfer(self.FRAME_BYTES)
                        d_ops = scheduler.dispatch_ops()
                        yield env.timeout(cpu.time_for(d_ops))
                        frames += 1
                    return (env.now - start) / frames

                out[residency] = {
                    "avg_frame_us": env.run(until=env.process(with_pull())),
                    "host_bus_bytes": host_bus.bytes_transferred,
                }
            return out

        out = run_once(benchmark, run)
        print(f"\n{out}")
        ni, pull = out["ni-memory"], out["host-pull"]
        assert ni["host_bus_bytes"] == 0
        assert pull["host_bus_bytes"] == self.FRAMES * self.FRAME_BYTES
        # the pull adds roughly a 1000-byte bridge transfer (~15+ µs/frame)
        added = pull["avg_frame_us"] - ni["avg_frame_us"]
        assert added > 10.0


class TestDedicatedSchedulerNIAblation:
    """Paper §4.2: a dedicated (disk-less) scheduler NI may enable its data
    cache; co-locating producers' disks forces the cache off."""

    def test_dedicated_ni_schedules_faster(self, benchmark):
        def run():
            out = {}
            for config, cache_on in (("dedicated", True), ("disk-attached", False)):
                cpu = CPU(I960RD_66, cache=DataCache(enabled=cache_on))
                result = drain(microbench_scheduler(FixedPointContext()), cpu)
                out[config] = result.avg_frame_us
            return out

        out = run_once(benchmark, run)
        print(f"\n{out}")
        saving = out["disk-attached"] - out["dedicated"]
        assert 8.0 < saving < 25.0  # the paper's ~14 µs cache effect


class TestDispatchCouplingAblation:
    """Paper §3.1.1: asynchronous scheduling/dispatch raises the decision
    rate but adds dispatch-queue residence to every frame."""

    def test_async_dispatch_decides_faster_but_queues_frames(self, benchmark):
        def run():
            out = {}
            # coupled: decision+dispatch interleaved (the default engine)
            cpu = CPU(I960RD_66, cache=DataCache(enabled=False))
            coupled = drain(microbench_scheduler(FixedPointContext()), cpu)
            out["coupled"] = {"decision_gap_us": coupled.total_us / coupled.frames}

            # async: all decisions first (into a dispatch queue), then a
            # separate dispatch pass drains it
            env = Environment()
            cpu = CPU(I960RD_66, cache=DataCache(enabled=False))
            scheduler = microbench_scheduler(FixedPointContext())

            def async_run():
                queue = []
                t0 = env.now
                while scheduler.backlog:
                    decision = scheduler.schedule(env.now)
                    yield env.timeout(cpu.time_for(decision.ops))
                    if decision.serviced is not None:
                        queue.append((env.now, decision.serviced))
                decide_gap = (env.now - t0) / len(queue)
                residence = 0.0
                for queued_at, _desc in queue:
                    d_ops = scheduler.dispatch_ops()
                    yield env.timeout(cpu.time_for(d_ops))
                    residence += env.now - queued_at
                return decide_gap, residence / len(queue)

            decide_gap, residence = env.run(until=env.process(async_run()))
            out["async"] = {
                "decision_gap_us": decide_gap,
                "dispatch_queue_residence_us": residence,
            }
            return out

        out = run_once(benchmark, run)
        print(f"\n{out}")
        # decisions come faster without interleaved dispatch...
        assert out["async"]["decision_gap_us"] < out["coupled"]["decision_gap_us"]
        # ...but frames sit in the dispatch queue meanwhile
        assert out["async"]["dispatch_queue_residence_us"] > 1000.0
