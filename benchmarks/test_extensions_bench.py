"""Benchmarks for the beyond-the-paper experiments."""

import pytest

from conftest import run_once
from repro.experiments import admission_sweep, jitter_comparison, stream_scaling


def test_ext_stream_scaling(benchmark):
    result = run_once(benchmark, stream_scaling)
    print()
    print(result.render())
    # fairness holds out to 32 streams; decision cost grows monotonically
    for n in (2, 4, 8, 16, 32):
        assert result.row(f"Jain fairness index (n={n})").measured > 0.97
    costs = [
        result.row(f"per-frame scheduling time (n={n})").measured
        for n in (2, 4, 8, 16, 32)
    ]
    assert costs == sorted(costs)


def test_ext_jitter_comparison(benchmark):
    result = run_once(benchmark, jitter_comparison)
    print()
    print(result.render())
    ratio = result.row("jitter ratio (host/ni)").measured
    assert ratio >= 1.0  # NI no worse; typically much better under load


def test_ext_admission_sweep(benchmark):
    result = run_once(benchmark, admission_sweep)
    print()
    print(result.render())
    assert result.row("admitted streams (1/2-loss 30fps)").measured > result.row(
        "admitted streams (zero-loss 30fps)"
    ).measured


def test_ext_ni_balance(benchmark):
    from repro.experiments import ni_balance

    result = run_once(benchmark, ni_balance)
    print()
    print(result.render())
    one = result.row("delivered, 1 scheduler NI (n=32)").measured
    two = result.row("delivered, 2 scheduler NIs (n=32)").measured
    assert two > 1.6 * one


def test_sens_cost_sensitivity(benchmark):
    from repro.experiments import cost_sensitivity

    result = run_once(benchmark, cost_sensitivity)
    print()
    print(result.render())
    base = result.row("baseline avg frame (fixed, cache off)").measured
    untouched = result.row("fixed-point cell under x1.5 fp_emulation_cycles").measured
    assert untouched == pytest.approx(base, abs=0.01)


def test_sens_mechanism_knockouts(benchmark):
    from repro.experiments import mechanism_knockouts

    result = run_once(benchmark, mechanism_knockouts)
    print()
    print(result.render())
    full = result.row("full model (both mechanisms)").measured
    fresh = result.row("priority decay knocked out").measured
    assert full < 0.75 * fresh
