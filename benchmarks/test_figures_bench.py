"""Benchmarks regenerating Figures 6-10 (full 100-simulated-second runs).

Absolute-number tolerances here are looser than the tables': the figures
measure emergent whole-system behaviour (starvation, drops, backlogs), and
the paper itself reads them qualitatively. Each benchmark asserts the
*shape* the paper claims — orderings, immunity, growth — plus a generous
band around the headline settling values.
"""

import pytest

from conftest import run_once
from repro.experiments import figure6, figure7, figure8, figure9, figure10


def test_figure6_cpu_utilization(benchmark):
    result = run_once(benchmark, figure6)
    print()
    print(result.render())
    avg = {lvl: result.row(f"average utilization ({lvl})").measured
           for lvl in ("none", "45%", "60%")}
    # paper's levels: ~15 / 45 / 60 average
    assert avg["none"] == pytest.approx(15.0, abs=5.0)
    assert avg["45%"] == pytest.approx(45.0, abs=8.0)
    assert avg["60%"] == pytest.approx(60.0, abs=10.0)
    assert avg["none"] < avg["45%"] < avg["60%"]
    # no-load peak ~35%
    assert result.row("peak utilization (none)").measured == pytest.approx(35.0, abs=8.0)


def test_figure7_host_bandwidth_degradation(benchmark):
    result = run_once(benchmark, figure7)
    print()
    print(result.render())
    bw = {lvl: result.row(f"settling bandwidth s1 ({lvl})").measured
          for lvl in ("none", "45%", "60%")}
    # paper: ~250k / ~230k / <=125k (about half)
    assert bw["none"] == pytest.approx(250_000.0, rel=0.10)
    assert bw["45%"] == pytest.approx(230_000.0, rel=0.15)
    assert bw["60%"] < 0.72 * bw["none"]  # severe degradation
    assert bw["60%"] < bw["45%"] < bw["none"] * 1.02


def test_figure8_host_queuing_delay_growth(benchmark):
    result = run_once(benchmark, figure8)
    print()
    print(result.render())
    d = {lvl: result.row(f"max queuing delay s1 ({lvl})").measured
         for lvl in ("none", "45%", "60%")}
    # paper: ~10s no load, up to 3x (30s) at 60%
    assert d["none"] == pytest.approx(10_000.0, rel=0.30)
    assert d["60%"] > 1.8 * d["none"]


def test_figure9_ni_bandwidth_immunity(benchmark):
    result = run_once(benchmark, figure9)
    print()
    print(result.render())
    ratio = result.row("loaded/unloaded bandwidth ratio").measured
    assert ratio == pytest.approx(1.0, abs=0.05)
    loaded = result.row("settling bandwidth s1 (60% load)").measured
    # paper: ~260k settling (vs 250k for the unloaded host scheduler)
    assert loaded == pytest.approx(260_000.0, rel=0.10)


def test_figure10_ni_delay_immunity(benchmark):
    result = run_once(benchmark, figure10)
    print()
    print(result.render())
    loaded = result.row("max queuing delay s1 (60% load)").measured
    base = result.row("max queuing delay s1 (no load)").measured
    # paper: ~11,000 ms maximum, load-independent
    assert loaded == pytest.approx(11_000.0, rel=0.20)
    assert loaded == pytest.approx(base, rel=0.10)
