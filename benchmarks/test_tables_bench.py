"""Benchmarks regenerating Tables 1-5."""

import pytest

from conftest import run_once
from repro.experiments import table1, table2, table3, table4, table5


def _check(result, rel):
    print()
    print(result.render())
    for row in result.rows:
        if row.paper is not None:
            assert row.measured == pytest.approx(row.paper, rel=rel), row.label


def test_table1_microbench_cache_disabled(benchmark):
    result = run_once(benchmark, table1)
    _check(result, rel=0.10)


def test_table2_microbench_cache_enabled(benchmark):
    result = run_once(benchmark, table2)
    _check(result, rel=0.10)


def test_table3_hardware_queues(benchmark):
    result = run_once(benchmark, table3)
    _check(result, rel=0.10)


def test_table4_critical_paths(benchmark):
    result = run_once(benchmark, table4)
    _check(result, rel=0.20)


def test_table5_pci_transfers(benchmark):
    result = run_once(benchmark, table5)
    _check(result, rel=0.05)
