"""Benchmark regenerating the headline overhead comparison."""

import pytest

from conftest import run_once
from repro.experiments import headline


def test_headline_scheduling_overhead(benchmark):
    result = run_once(benchmark, headline)
    print()
    print(result.render())
    ni = result.row("i960 RD (66 MHz) scheduling overhead").measured
    host = result.row("UltraSPARC (300 MHz) host scheduling overhead").measured
    assert ni == pytest.approx(65.0, abs=8.0)
    assert host == pytest.approx(50.0, abs=8.0)
    # "comparable, although the i960 RD is a much slower processor"
    assert ni / host < 2.0
