#!/usr/bin/env python
"""Wall-clock benchmark entry point (thin wrapper).

Equivalent to ``python -m repro.experiments bench``; exists so the
benchmark is discoverable next to its checked-in baseline
(``benchmarks/wallclock_baseline.json``). Run from the repository root::

    PYTHONPATH=src python benchmarks/wallclock.py [--quick] [--reps N]

Writes ``BENCH_sim.json`` at the repository root and exits non-zero if
any golden digest drifts.
"""

from __future__ import annotations

import sys
from pathlib import Path

# allow running without PYTHONPATH=src when invoked from the repo root
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
