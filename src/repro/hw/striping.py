"""Striped disk volumes (the Tiger fileserver reference).

The paper points at Bolosky et al.'s Tiger video server: "DWCS could also
take advantage of the stripe-based disk ... scheduling methods advocated by
the Tiger video server, by using stripes as coarse-grain 'reservations'".
:class:`StripedVolume` provides the substrate: data laid out round-robin in
fixed-size stripe units across N disks, with multi-stripe reads issued to
the member disks *in parallel* — which is where striping's bandwidth
multiplication comes from.

:class:`StripedFS` wraps a volume behind the standard
:class:`~repro.hw.filesystem.Filesystem` interface so frame producers can
stream from a stripe set exactly as they stream from a single dosFs disk.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.sim import Environment, Event

from .disk import SCSIDisk
from .filesystem import File, Filesystem

__all__ = ["StripedVolume", "StripedFS"]


class StripedVolume:
    """Round-robin striping of fixed-size units over member disks."""

    def __init__(
        self,
        env: Environment,
        disks: Sequence[SCSIDisk],
        stripe_bytes: int = 65_536,
    ) -> None:
        if len(disks) < 1:
            raise ValueError("need at least one disk")
        if stripe_bytes < 512:
            raise ValueError("stripe unit must be at least 512 bytes")
        self.env = env
        self.disks = list(disks)
        self.stripe_bytes = stripe_bytes
        self.reads = 0
        self.bytes_read = 0

    @property
    def width(self) -> int:
        return len(self.disks)

    def _layout(self, offset: int, nbytes: int) -> list[tuple[SCSIDisk, int, int]]:
        """(disk, disk-local offset, length) pieces covering the extent."""
        pieces: list[tuple[SCSIDisk, int, int]] = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            stripe_index = pos // self.stripe_bytes
            within = pos % self.stripe_bytes
            disk = self.disks[stripe_index % self.width]
            # disk-local address: one stripe row occupies stripe_bytes on
            # each disk; row r sits at r*stripe_bytes on its disk
            row = stripe_index // self.width
            local = row * self.stripe_bytes + within
            take = min(remaining, self.stripe_bytes - within)
            pieces.append((disk, local, take))
            pos += take
            remaining -= take
        return pieces

    def read(
        self, offset: int, nbytes: int, priority: float = 0.0
    ) -> Generator[Event, None, float]:
        """Process: read the extent, pieces on distinct disks in parallel.

        Returns the extent latency (the slowest piece, since member reads
        overlap — the Tiger effect).
        """
        if nbytes <= 0 or offset < 0:
            raise ValueError("need offset >= 0 and nbytes > 0")
        env = self.env
        start = env.now
        pieces = self._layout(offset, nbytes)
        jobs = [
            env.process(disk.read(length, offset=local, priority=priority))
            for disk, local, length in pieces
        ]
        yield env.all_of(jobs)
        self.reads += 1
        self.bytes_read += nbytes
        return env.now - start

    def __repr__(self) -> str:
        return (
            f"<StripedVolume {self.width}x{self.stripe_bytes}B "
            f"reads={self.reads}>"
        )


class StripedFS(Filesystem):
    """Filesystem facade over a striped volume.

    Sequential streams read whole stripe rows ahead: a ``read_next`` that
    crosses into a new row fetches the full row (one unit per member disk,
    in parallel) and serves subsequent reads from the row buffer.
    """

    fstype = "striped"

    def __init__(
        self,
        env: Environment,
        volume: StripedVolume,
        per_read_overhead_us: float = 60.0,
    ) -> None:
        # Filesystem's ctor wants a disk for bookkeeping; use the first
        # member (statistics of member disks remain individually visible).
        super().__init__(env, volume.disks[0], per_read_overhead_us)
        self.volume = volume
        #: [row_start, row_end) of the currently buffered stripe row, per file
        self._buffered: dict[str, tuple[int, int]] = {}

    @property
    def row_bytes(self) -> int:
        return self.volume.stripe_bytes * self.volume.width

    def _read(self, file: File, offset: int, nbytes: int) -> Generator[Event, None, None]:
        self.reads += 1
        end = offset + nbytes
        lo, hi = self._buffered.get(file.name, (0, 0))
        while not (lo <= offset and end <= hi):
            # fetch the stripe row containing the first unbuffered byte
            missing = offset if offset < lo or offset >= hi else hi
            row_start = (missing // self.row_bytes) * self.row_bytes
            self.disk_accesses += self.volume.width
            yield from self.volume.read(row_start, self.row_bytes)
            if hi == row_start and lo < hi:
                hi = row_start + self.row_bytes  # extend the window
            else:
                lo, hi = row_start, row_start + self.row_bytes
            self._buffered[file.name] = (lo, hi)
        self.cache_hits += 1
        yield self.env.timeout(self.per_read_overhead_us)
