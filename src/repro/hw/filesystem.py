"""Filesystem models: Solaris UFS vs the VxWorks DOS filesystem.

Table 4, Experiment I, reports the same MPEG file streaming at **1 ms per
1000-byte frame under UFS** but **8 ms under the VxWorks (DOS) filesystem
mounted on Solaris**. The paper attributes the gap to UFS's 8 KB logical
blocks with block caching and prefetch. The models:

* :class:`UFS` — 8 KB blocks, buffer cache, read-ahead: a sequential frame
  read usually hits the cache (7 of every 8 one-KB frames), and the miss
  that does go to disk is a *sequential* block read that also prefetches the
  next block, overlapping its cost with application processing.
* :class:`DosFS` — FAT-chained clusters, **no buffer cache and no
  read-ahead**: every application read is an independent positional disk
  access (the paper's "common" 4.2 ms disk component in Experiments
  II/III). In the mounted-on-host configuration (``chain_cached=False``,
  Experiment I / VxWorks-fs row) each read *additionally* pays a FAT
  metadata access — two positional I/Os per frame ⇒ ≈8 ms. On the NI the
  producer holds its open file's FAT chain in card memory
  (``chain_cached=True``) so only the data access remains.

Both expose the same ``open``/``File.read_next`` streaming interface the
frame producers use.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim import Environment, Event

from .disk import SCSIDisk

__all__ = ["Filesystem", "File", "UFS", "DosFS"]


class File:
    """A sequential reader over a named file's extent."""

    def __init__(self, fs: "Filesystem", name: str, size_bytes: int) -> None:
        self.fs = fs
        self.name = name
        self.size_bytes = size_bytes
        self.offset = 0

    @property
    def eof(self) -> bool:
        return self.offset >= self.size_bytes

    def read_next(self, nbytes: int) -> Generator[Event, None, int]:
        """Process: read the next *nbytes* sequentially; returns bytes read."""
        if self.eof:
            return 0
        nbytes = min(nbytes, self.size_bytes - self.offset)
        obs = self.fs.env.obs
        sp = (
            obs.begin(
                "fs",
                track=f"disk:{self.fs.disk.name}",
                file=self.name,
                bytes=nbytes,
                fstype=self.fs.fstype,
            )
            if obs is not None
            else None
        )
        yield from self.fs._read(self, self.offset, nbytes)
        self.offset += nbytes
        if obs is not None:
            obs.end(sp)
            obs.count("fs.reads", fs=self.fs.fstype)
        return nbytes

    def rewind(self) -> None:
        self.offset = 0


class Filesystem:
    """Common machinery: a disk, per-read CPU overhead, and statistics."""

    #: human-readable filesystem type for experiment tables
    fstype = "abstract"

    def __init__(self, env: Environment, disk: SCSIDisk, per_read_overhead_us: float) -> None:
        self.env = env
        self.disk = disk
        #: CPU/syscall/copy overhead charged on every application read
        self.per_read_overhead_us = per_read_overhead_us
        self.reads = 0
        self.disk_accesses = 0
        self.cache_hits = 0

    def open(self, name: str, size_bytes: int) -> File:
        if size_bytes <= 0:
            raise ValueError("file size must be positive")
        return File(self, name, size_bytes)

    def _read(self, file: File, offset: int, nbytes: int) -> Generator[Event, None, None]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} reads={self.reads} disk={self.disk_accesses} "
            f"hits={self.cache_hits}>"
        )


class UFS(Filesystem):
    """Solaris UFS: 8 KB logical blocks, buffer cache, one-block read-ahead."""

    fstype = "ufs"
    BLOCK_BYTES = 8192

    def __init__(
        self,
        env: Environment,
        disk: SCSIDisk,
        per_read_overhead_us: float = 320.0,
    ) -> None:
        super().__init__(env, disk, per_read_overhead_us)
        #: highest block index already resident (per file name)
        self._cached_through: dict[str, int] = {}

    #: blocks fetched per miss (the missed block + one read-ahead block)
    READAHEAD_BLOCKS = 2

    def _read(self, file: File, offset: int, nbytes: int) -> Generator[Event, None, None]:
        self.reads += 1
        first_block = offset // self.BLOCK_BYTES
        last_block = (offset + nbytes - 1) // self.BLOCK_BYTES
        cached_through = self._cached_through.get(file.name, -1)
        obs = self.env.obs
        for block in range(first_block, last_block + 1):
            if block <= cached_through:
                self.cache_hits += 1
                if obs is not None:
                    obs.count("fs.cache_hits", fs=self.fstype)
                continue
            # Miss: one multi-block command fetches the missed block plus
            # read-ahead; streamed blocks after the first cost only media
            # transfer + track following.
            self.disk_accesses += 1
            yield from self.disk.read(
                self.READAHEAD_BLOCKS * self.BLOCK_BYTES,
                offset=block * self.BLOCK_BYTES,
            )
            cached_through = block + self.READAHEAD_BLOCKS - 1
            self._cached_through[file.name] = cached_through
        yield self.env.timeout(self.per_read_overhead_us)


class DosFS(Filesystem):
    """VxWorks dosFs: FAT clusters, optional cached cluster chain.

    ``chain_cached=False`` models the paper's Experiment-I configuration
    (dosFs volume mounted on the Solaris host): every application read pays
    a FAT metadata access plus the data access. ``chain_cached=True`` models
    the producer thread on the NI streaming its own open file: the chain is
    walked once and held in card memory, so each read is one disk access.

    Note the operational constraint carried by :mod:`repro.hw.cache`: the
    VxWorks SCSI driver disables the data cache on the card that performs
    these reads.
    """

    fstype = "dosfs"
    CLUSTER_BYTES = 1024

    def __init__(
        self,
        env: Environment,
        disk: SCSIDisk,
        per_read_overhead_us: float = 60.0,
        chain_cached: bool = True,
    ) -> None:
        super().__init__(env, disk, per_read_overhead_us)
        self.chain_cached = chain_cached
        self.fat_accesses = 0

    def _read(self, file: File, offset: int, nbytes: int) -> Generator[Event, None, None]:
        self.reads += 1
        if not self.chain_cached:
            # FAT lookup: a small read in the FAT region, positionally
            # disjoint from the data — a full random access.
            self.fat_accesses += 1
            self.disk_accesses += 1
            obs = self.env.obs
            if obs is not None:
                obs.count("fs.fat_accesses", fs=self.fstype)
            yield from self.disk.read(512)  # offset=None -> random
        # Data access: dosFs has no buffer cache and no read-ahead, so every
        # cluster is an independent command that pays full positioning (the
        # drive has lost rotational position between commands; interleaved
        # FAT traffic defeats any residual sequentiality).
        clusters = max(1, (nbytes + self.CLUSTER_BYTES - 1) // self.CLUSTER_BYTES)
        for _ in range(clusters):
            self.disk_accesses += 1
            yield from self.disk.read(self.CLUSTER_BYTES)  # random positioning
        yield self.env.timeout(self.per_read_overhead_us)
