"""Shared-bus base model with traffic accounting.

The paper's central systems argument is *traffic elimination*: moving the
scheduler (and the disk→network path) onto the NI removes bytes from the
host system bus and, for path C, from the PCI I/O bus too. Every bus in the
reproduction therefore counts the bytes and transactions that cross it, so
experiments can report per-bus traffic directly.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim import Environment, Event, Resource

__all__ = ["Bus"]


class Bus:
    """A serialized transfer medium with bandwidth and per-transaction cost.

    ``capacity=1``: one transaction owns the bus at a time; waiters are
    served in (priority, FIFO) order, which models both PCI arbitration rank
    and system-bus queuing well enough for the paper's experiments.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth_mb_s: float,
        per_transaction_us: float = 0.5,
        width_bytes: int = 4,
    ) -> None:
        if bandwidth_mb_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.name = name
        self.bandwidth_mb_s = bandwidth_mb_s
        self.per_transaction_us = per_transaction_us
        self.width_bytes = width_bytes
        self._lock = Resource(env, capacity=1, name=f"{name}.lock")
        #: total payload bytes moved across this bus
        self.bytes_transferred = 0
        #: number of completed transactions
        self.transactions = 0

    # -- timing ----------------------------------------------------------------
    def transfer_time_us(self, nbytes: int) -> float:
        """Pure wire time for *nbytes* at the bus's effective bandwidth."""
        return nbytes / self.bandwidth_mb_s  # MB/s == bytes/µs

    def transfer(
        self, nbytes: int, priority: float = 0.0
    ) -> Generator[Event, None, float]:
        """Process: move *nbytes* across the bus (arbitrate, burst, release).

        Returns the total latency of the transaction in µs.
        """
        if nbytes <= 0:
            raise ValueError("transfer size must be positive")
        start = self.env.now
        obs = self.env.obs
        sp = (
            obs.begin("bus", track=f"bus:{self.name}", bytes=nbytes)
            if obs is not None
            else None
        )
        with self._lock.request(priority=priority) as req:
            yield req
            duration = self.per_transaction_us + self.transfer_time_us(nbytes)
            yield self.env.timeout(duration)
        self.bytes_transferred += nbytes
        self.transactions += 1
        if obs is not None:
            obs.end(sp)
            obs.count("bus.bytes", nbytes, bus=self.name)
            obs.count("bus.transactions", bus=self.name)
        return self.env.now - start

    # -- introspection -------------------------------------------------------
    def utilization(self, since: float = 0.0) -> float:
        return self._lock.utilization(since)

    @property
    def queue_length(self) -> int:
        return self._lock.queue_length

    def __repr__(self) -> str:
        return (
            f"<Bus {self.name!r} {self.bandwidth_mb_s:g}MB/s "
            f"moved={self.bytes_transferred}B>"
        )
