"""Memory regions and the i960 RD's memory-mapped "hardware queues".

Two storage substrates matter to the paper's Table 2 vs Table 3 comparison:

* pinned local card memory (4 MB installed, expandable to 36 MB) holding
  frames and — in the Table 2 build — the circular buffers of frame
  descriptors;
* the I2O "hardware queues": **1004 32-bit memory-mapped registers** in
  local card address space whose accesses "do not generate any external bus
  cycles"; the Table 3 build keeps frame descriptors there.

:class:`MemoryRegion` does capacity accounting (the paper stresses compact
descriptors and single-copy frames *to conserve NI memory*);
:class:`HardwareQueueFile` is a bounds-checked register file that tallies
MMIO operations into an :class:`~repro.fixedpoint.OpCounter`.
"""

from __future__ import annotations

from typing import Optional

from repro.fixedpoint import OpCounter

__all__ = ["MemoryRegion", "Allocation", "HardwareQueueFile", "OutOfMemoryError"]

MB = 1 << 20


class OutOfMemoryError(MemoryError):
    """Raised when a region cannot satisfy an allocation."""


class Allocation:
    """A live allocation inside a :class:`MemoryRegion`."""

    __slots__ = ("region", "size", "tag", "freed")

    def __init__(self, region: "MemoryRegion", size: int, tag: str) -> None:
        self.region = region
        self.size = size
        self.tag = tag
        self.freed = False

    def free(self) -> None:
        if not self.freed:
            self.region._release(self)
            self.freed = True

    def __repr__(self) -> str:
        state = "freed" if self.freed else "live"
        return f"<Allocation {self.tag!r} {self.size}B {state}>"


class MemoryRegion:
    """A fixed-capacity memory pool with tagged allocation accounting."""

    def __init__(self, capacity_bytes: int, name: str = "mem", pinned: bool = False) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.name = name
        #: VxWorks NI configuration pins all pages (no paging jitter)
        self.pinned = pinned
        self.used_bytes = 0
        self.peak_bytes = 0
        self._live: list[Allocation] = []

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, size: int, tag: str = "") -> Allocation:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if size > self.free_bytes:
            raise OutOfMemoryError(
                f"{self.name}: cannot allocate {size}B ({self.free_bytes}B free "
                f"of {self.capacity_bytes}B)"
            )
        alloc = Allocation(self, size, tag)
        self.used_bytes += size
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        self._live.append(alloc)
        return alloc

    def _release(self, alloc: Allocation) -> None:
        self.used_bytes -= alloc.size
        self._live.remove(alloc)

    def live_allocations(self, tag: Optional[str] = None) -> list[Allocation]:
        if tag is None:
            return list(self._live)
        return [a for a in self._live if a.tag == tag]

    def __repr__(self) -> str:
        return (
            f"<MemoryRegion {self.name!r} {self.used_bytes}/{self.capacity_bytes}B"
            f"{' pinned' if self.pinned else ''}>"
        )


class HardwareQueueFile:
    """The i960 RD's 1004-register memory-mapped queue space.

    Each register holds one 32-bit value (the Table 3 build stores one frame
    descriptor handle per register). Reads and writes are tallied as MMIO
    operations, which the CPU model prices without external bus cycles and
    without data-cache involvement.
    """

    NUM_REGISTERS = 1004
    REGISTER_MASK = 0xFFFFFFFF

    def __init__(self, ops: Optional[OpCounter] = None) -> None:
        self.ops = ops if ops is not None else OpCounter()
        self._regs = [0] * self.NUM_REGISTERS

    def __len__(self) -> int:
        return self.NUM_REGISTERS

    def read(self, index: int, ops: Optional[OpCounter] = None) -> int:
        self._check(index)
        (ops if ops is not None else self.ops).mmio_reads += 1
        return self._regs[index]

    def write(self, index: int, value: int, ops: Optional[OpCounter] = None) -> None:
        self._check(index)
        if not isinstance(value, int):
            raise TypeError("register value must be int")
        (ops if ops is not None else self.ops).mmio_writes += 1
        self._regs[index] = value & self.REGISTER_MASK

    def inspect(self, index: int) -> int:
        """Zero-cost register view for bookkeeping/tests (no MMIO charge)."""
        self._check(index)
        return self._regs[index]

    def _check(self, index: int) -> None:
        if not 0 <= index < self.NUM_REGISTERS:
            raise IndexError(
                f"hardware queue register {index} out of range "
                f"[0, {self.NUM_REGISTERS})"
            )

    def __repr__(self) -> str:
        return f"<HardwareQueueFile {self.NUM_REGISTERS}x32bit>"
