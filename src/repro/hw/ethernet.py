"""100 Mbps switched Ethernet: links, switch, and protocol-stack costs.

The paper's clients attach to the scheduler card "using a 100 Mbps Ethernet
switched interconnect". Two latency regimes matter:

* **wire/switch time** — 100 Mbps moves 12.5 bytes/µs, so a full 1500-byte
  frame occupies the wire ≈120 µs (the paper's "half an Ethernet frame
  time (≈120 µs)" yardstick for the 65 µs scheduling overhead);
* **protocol-stack traversal** — Table 4's 1.2 ms end-to-end time for a
  1000-byte frame is dominated by UDP/IP encapsulation on the 66 MHz i960
  and decapsulation at the client, not by the 2×80 µs of wire time. Stack
  costs are charged per endpoint CPU through :class:`StackCosts`.

The switch is store-and-forward: a frame is fully received on the ingress
link, then transmitted on the egress link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.sim import Environment, Event, Resource, Store

__all__ = ["StackCosts", "EthernetLink", "EthernetPort", "EthernetSwitch", "NetFrame"]

#: Maximum Ethernet payload per wire frame.
MTU_BYTES = 1500
#: Ethernet + IP + UDP framing overhead per wire frame.
HEADER_BYTES = 14 + 20 + 8 + 4  # MAC + IP + UDP + FCS


@dataclass(frozen=True)
class StackCosts:
    """Per-endpoint protocol processing cost: fixed + per-byte µs."""

    per_packet_us: float
    per_byte_us: float = 0.0

    def cost_us(self, nbytes: int) -> float:
        return self.per_packet_us + self.per_byte_us * nbytes


#: UDP/IP on the 66 MHz i960 under VxWorks (calibrated so a 1000-byte frame
#: travels end-to-end in ≈1.2 ms including the client stack and wire time).
I960_STACK = StackCosts(per_packet_us=550.0, per_byte_us=0.12)
#: UDP/IP on a 200 MHz host CPU (Solaris): several times faster.
HOST_STACK = StackCosts(per_packet_us=120.0, per_byte_us=0.04)
#: Client-side receive processing (Linux/Solaris desktop class).
CLIENT_STACK = StackCosts(per_packet_us=250.0, per_byte_us=0.08)


@dataclass
class NetFrame:
    """A network-layer payload in flight."""

    payload_bytes: int
    stream_id: Optional[str] = None
    seqno: int = 0
    sent_at: float = 0.0
    #: opaque sender payload (e.g. the MediaFrame a client will inspect)
    meta: Optional[object] = None

    @property
    def wire_bytes(self) -> int:
        """Total bytes on the wire including per-MTU framing."""
        packets = max(1, (self.payload_bytes + MTU_BYTES - 1) // MTU_BYTES)
        return self.payload_bytes + packets * HEADER_BYTES


class EthernetLink:
    """A half of a switched full-duplex port: one transmit direction."""

    def __init__(
        self,
        env: Environment,
        name: str = "eth",
        bandwidth_mbps: float = 100.0,
        propagation_us: float = 1.0,
    ) -> None:
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.name = name
        self.bandwidth_mbps = bandwidth_mbps
        self.propagation_us = propagation_us
        self._tx = Resource(env, capacity=1, name=f"{name}.tx")
        self.bytes_sent = 0
        self.frames_sent = 0

    def wire_time_us(self, wire_bytes: int) -> float:
        return wire_bytes * 8.0 / self.bandwidth_mbps  # Mbps == bits/µs

    def min_latency_us(self) -> float:
        """Partition-boundary declaration: a lower bound on any transmit
        through this link (propagation alone; wire time and tx-queue wait
        only add). Conservative lookahead for :mod:`repro.pdes.boundary`."""
        return self.propagation_us

    def transmit(self, wire_bytes: int) -> Generator[Event, None, float]:
        """Process: serialize *wire_bytes* onto this link; returns latency."""
        start = self.env.now
        with self._tx.request() as req:
            yield req
            yield self.env.timeout(self.wire_time_us(wire_bytes) + self.propagation_us)
        self.bytes_sent += wire_bytes
        self.frames_sent += 1
        return self.env.now - start

    def utilization(self, since: float = 0.0) -> float:
        return self._tx.utilization(since)


class EthernetPort:
    """A device's attachment point: an egress link into the switch plus an
    ingress mailbox of delivered frames."""

    def __init__(self, env: Environment, name: str, bandwidth_mbps: float = 100.0) -> None:
        self.env = env
        self.name = name
        self.uplink = EthernetLink(env, name=f"{name}.up", bandwidth_mbps=bandwidth_mbps)
        self.inbox: Store = Store(env, name=f"{name}.inbox")
        self.switch: Optional["EthernetSwitch"] = None

    def send(self, frame: NetFrame, dest: str) -> Generator[Event, None, float]:
        """Process: transmit *frame* to port *dest* through the switch."""
        if self.switch is None:
            raise RuntimeError(f"port {self.name!r} not attached to a switch")
        frame.sent_at = self.env.now
        obs = self.env.obs
        sp = None
        if obs is not None:
            fields = {"bytes": frame.payload_bytes, "dest": dest}
            if frame.stream_id is not None:
                fields["stream"] = frame.stream_id
                fields["seq"] = frame.seqno
            sp = obs.begin("wire", track=f"net:{self.name}", **fields)
        yield from self.uplink.transmit(frame.wire_bytes)
        yield from self.switch.forward(frame, dest)
        if obs is not None:
            obs.end(sp)
            obs.count("net.frames_sent", port=self.name)
            obs.count("net.wire_bytes", frame.wire_bytes, port=self.name)
        return self.env.now - frame.sent_at

    def receive(self) -> "Event":
        """Event: the next frame delivered to this port."""
        return self.inbox.get()


class EthernetSwitch:
    """Store-and-forward switch with one downlink per attached port.

    ``loss_rate`` injects frame loss (congestion drops, bad cabling): each
    forwarded frame is independently discarded with that probability. The
    reliable-transport substrate (:mod:`repro.net.tcp`) exists to survive
    exactly this.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "switch",
        latency_us: float = 10.0,
        loss_rate: float = 0.0,
        loss_rng=None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.env = env
        self.name = name
        #: fixed lookup/queuing latency per forwarded frame
        self.latency_us = latency_us
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._ports: dict[str, EthernetPort] = {}
        self._downlinks: dict[str, EthernetLink] = {}
        self.frames_forwarded = 0
        self.frames_dropped = 0

    def attach(self, port: EthernetPort) -> None:
        if port.name in self._ports:
            raise ValueError(f"duplicate port name {port.name!r}")
        self._ports[port.name] = port
        self._downlinks[port.name] = EthernetLink(
            self.env,
            name=f"{self.name}->{port.name}",
            bandwidth_mbps=port.uplink.bandwidth_mbps,
        )
        port.switch = self

    def forward(self, frame: NetFrame, dest: str) -> Generator[Event, None, None]:
        """Process: deliver *frame* out of the switch to port *dest*."""
        try:
            port = self._ports[dest]
            downlink = self._downlinks[dest]
        except KeyError:
            raise KeyError(f"no port {dest!r} on switch {self.name!r}") from None
        yield self.env.timeout(self.latency_us)
        obs = self.env.obs
        if self.loss_rate > 0.0 and self._loss_rng is not None:
            if self._loss_rng.random() < self.loss_rate:
                self.frames_dropped += 1
                if obs is not None:
                    obs.count("switch.frames_dropped", dest=dest)
                return  # frame vanishes (congestion drop)
        plane = self.env.fault_plane
        if plane is not None and plane.frame_lost(dest):
            self.frames_dropped += 1
            if obs is not None:
                obs.count("switch.frames_dropped", dest=dest)
                obs.instant("frame_lost", track=f"net:{self.name}", dest=dest)
            return  # injected fault: loss burst or partition
        yield from downlink.transmit(frame.wire_bytes)
        self.frames_forwarded += 1
        if obs is not None:
            obs.count("switch.frames_forwarded", dest=dest)
        port.inbox.put(frame)

    def min_cross_latency_us(self) -> float:
        """Partition-boundary declaration: the minimum time a frame takes
        to cross this switch between two attached ports.

        The store-and-forward lookup latency is paid unconditionally
        before the egress link is touched; uplink/downlink wire time,
        propagation, and queueing only add to it. A safe conservative
        lookahead for per-node PDES partitions coupled through this
        switch (:mod:`repro.pdes.boundary`)."""
        return self.latency_us

    @property
    def port_names(self) -> list[str]:
        return sorted(self._ports)
