"""Network-interface card models.

:class:`I960RDCard` is the star of the paper: an I2O-compliant NI with an
Intel i960 RD I/O co-processor (66 MHz, no FPU), 4 MB of local memory
(expandable to 36 MB), the 1004-register memory-mapped "hardware queue"
file, two SCSI ports with directly attached disks, two 100 Mbps Ethernet
ports, and a bus-master DMA engine on its PCI segment.

:class:`Intel82557NIC` is the dumb transceiver NI used for the host-based
baseline (Experiment I / host-scheduler runs): no co-processor, so all
protocol work is charged to the host CPU.

One hardware constraint the paper leans on repeatedly is encoded here: the
VxWorks disk driver runs with the card's **data cache disabled** — a card
that sources frames from its own disks cannot cache scheduler state, which
is why the paper dedicates a disk-less NI to the scheduler (§4.2).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim import Environment

from .cache import DataCache
from .cpu import CPU, I960RD_66, CPUSpec
from .disk import SCSIDisk
from .ethernet import EthernetPort, I960_STACK, StackCosts
from .filesystem import DosFS
from .memory import MB, HardwareQueueFile, MemoryRegion
from .pci import DMAEngine, PCISegment

__all__ = ["I960RDCard", "Intel82557NIC"]


class I960RDCard:
    """An i960 RD I2O network interface card."""

    SCSI_PORTS = 2
    ETHERNET_PORTS = 2

    def __init__(
        self,
        env: Environment,
        segment: PCISegment,
        name: str = "i2o0",
        memory_mb: int = 4,
        cpu_spec: CPUSpec = I960RD_66,
        stack: StackCosts = I960_STACK,
        cache_hit_ratio: float = 0.75,
    ) -> None:
        if not 4 <= memory_mb <= 36:
            raise ValueError("i960 RD boards ship with 4..36 MB of local memory")
        self.env = env
        self.name = name
        self.cache = DataCache(hit_ratio=cache_hit_ratio, enabled=False)
        self.cpu = CPU(cpu_spec, cache=self.cache, name=f"{name}.cpu")
        self.memory = MemoryRegion(memory_mb * MB, name=f"{name}.mem", pinned=True)
        self.hardware_queues = HardwareQueueFile()
        self.segment = segment
        self.dma = DMAEngine(env, segment, owner=self)
        self.stack = stack
        self.eth_ports = [
            EthernetPort(env, name=f"{name}.eth{i}") for i in range(self.ETHERNET_PORTS)
        ]
        self._disks: list[SCSIDisk] = []
        self._filesystems: list[DosFS] = []
        # -- fault hooks: a crashed card serves nothing until reset ---------
        self.crashed = False
        self.crash_count = 0
        #: callbacks fired on crash()/reset() — services subscribe to shed
        #: and re-admit streams (graceful degradation instead of wedging)
        self.on_crash: list[Callable[[], None]] = []
        self.on_reset: list[Callable[[], None]] = []
        segment.attach(self)

    # -- storage -----------------------------------------------------------------
    def attach_disk(self, disk: Optional[SCSIDisk] = None, chain_cached: bool = True) -> DosFS:
        """Attach a SCSI disk (with a dosFs volume) to a free SCSI port.

        Attaching a disk *disables the data cache*: the VxWorks SCSI driver
        requires it off (paper §4.2, "the disk driver disables the data
        cache automatically on reboot").
        """
        if len(self._disks) >= self.SCSI_PORTS:
            raise RuntimeError(f"{self.name}: both SCSI ports in use")
        if disk is None:
            disk = SCSIDisk(self.env, name=f"{self.name}.disk{len(self._disks)}")
        fs = DosFS(self.env, disk, chain_cached=chain_cached)
        self._disks.append(disk)
        self._filesystems.append(fs)
        self.cache.disable()
        return fs

    @property
    def disks(self) -> list[SCSIDisk]:
        return list(self._disks)

    @property
    def filesystems(self) -> list[DosFS]:
        return list(self._filesystems)

    @property
    def has_disks(self) -> bool:
        return bool(self._disks)

    # -- fault injection ------------------------------------------------------------
    def crash(self) -> None:
        """Hard fault: firmware wedge / watchdog trip. The card stops
        serving (frames in its memory are lost) until :meth:`reset`."""
        if self.crashed:
            return
        self.crashed = True
        self.crash_count += 1
        obs = self.env.obs
        if obs is not None:
            obs.count("nic.crashes", card=self.name)
            obs.instant("card_crash", track=f"card:{self.name}", card=self.name)
        for callback in list(self.on_crash):
            callback()

    def reset(self) -> None:
        """Bring a crashed card back (board reset + runtime reload)."""
        if not self.crashed:
            return
        self.crashed = False
        obs = self.env.obs
        if obs is not None:
            obs.count("nic.resets", card=self.name)
            obs.instant("card_reset", track=f"card:{self.name}", card=self.name)
        for callback in list(self.on_reset):
            callback()

    def status_probe(self):
        """Process (host side): read the card's status word over PCI.

        One PIO read of the memory-mapped status register; returns True
        when the firmware is alive. The read always completes — PCI reads
        of a wedged board return junk, they don't hang — which is what
        lets a failure detector tell a crashed card (probe reports dead)
        from a partitioned message path (probe reports alive while
        heartbeats go missing).
        """
        yield from self.segment.pio_read()
        return not self.crashed

    # -- cache policy ---------------------------------------------------------------
    def enable_data_cache(self) -> None:
        """Turn the data cache on — only legal on a disk-less card."""
        if self._disks:
            raise RuntimeError(
                f"{self.name}: cannot enable data cache with SCSI disks attached "
                "(VxWorks disk driver constraint)"
            )
        self.cache.enable()

    def __repr__(self) -> str:
        return (
            f"<I960RDCard {self.name!r} disks={len(self._disks)} "
            f"cache={'on' if self.cache.enabled else 'off'}>"
        )


class Intel82557NIC:
    """A plain 100 Mbps Ethernet transceiver NI (no co-processor).

    Frames reach it over the PCI segment from host memory; all protocol
    processing happens on the host CPU (charged by the host OS model).
    """

    def __init__(self, env: Environment, segment: PCISegment, name: str = "eepro0") -> None:
        self.env = env
        self.name = name
        self.segment = segment
        self.eth_port = EthernetPort(env, name=f"{name}.eth")
        segment.attach(self)

    def __repr__(self) -> str:
        return f"<Intel82557NIC {self.name!r}>"
