"""SCSI disk model.

Table 4 isolates the disk component of a single 1000-byte frame read at
≈4.2 ms — dominated by positioning (seek + rotational latency), with media
transfer nearly negligible at frame sizes. The model:

* positioning cost drawn per request: ``seek + rotation`` for random access,
  a much cheaper track-following cost when the request is sequential to the
  previous one (what gives UFS's 8 KB block prefetch its win);
* media transfer at the drive's sustained rate;
* fixed per-command controller/driver overhead.

The disk serializes requests (single actuator) through a FIFO resource.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim import Environment, Event, Resource

__all__ = ["SCSIDisk", "DiskStats", "DiskMediaError"]


class DiskMediaError(RuntimeError):
    """An access failed at the media (injected fault or grown defect).

    The command still consumed the positioning time before the drive gave
    up; callers are expected to retry with backoff (see the streaming
    services' read-retry path)."""


class DiskStats:
    """Counters for a disk's lifetime activity."""

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.sequential_hits = 0
        self.media_errors = 0

    def __repr__(self) -> str:
        return (
            f"<DiskStats reads={self.reads} writes={self.writes} "
            f"read={self.bytes_read}B seq={self.sequential_hits}>"
        )


class SCSIDisk:
    """A single-actuator SCSI disk with positional access costs.

    Default constants land a random single-frame (1000 B) access at the
    paper's ≈4.2 ms: 0.3 ms command/driver overhead + 2.3 ms average seek +
    1.5 ms average rotational latency + 0.1 ms media transfer.
    """

    def __init__(
        self,
        env: Environment,
        name: str = "disk",
        avg_seek_us: float = 2300.0,
        avg_rotation_us: float = 1500.0,
        sequential_position_us: float = 120.0,
        transfer_mb_s: float = 10.0,
        command_overhead_us: float = 300.0,
    ) -> None:
        self.env = env
        self.name = name
        self.avg_seek_us = avg_seek_us
        self.avg_rotation_us = avg_rotation_us
        self.sequential_position_us = sequential_position_us
        self.transfer_mb_s = transfer_mb_s
        self.command_overhead_us = command_overhead_us
        self._actuator = Resource(env, capacity=1, name=f"{name}.actuator")
        self._last_end_offset: Optional[int] = None
        self.stats = DiskStats()

    # -- latency model -----------------------------------------------------------
    def access_time_us(self, nbytes: int, sequential: bool) -> float:
        position = (
            self.sequential_position_us
            if sequential
            else self.avg_seek_us + self.avg_rotation_us
        )
        transfer = nbytes / self.transfer_mb_s  # MB/s == bytes/µs
        return self.command_overhead_us + position + transfer

    # -- operations ---------------------------------------------------------------
    def read(
        self, nbytes: int, offset: Optional[int] = None, priority: float = 0.0
    ) -> Generator[Event, None, float]:
        """Process: read *nbytes* (at *offset* if given); returns latency µs."""
        return self._io(nbytes, offset, priority, write=False)

    def write(
        self, nbytes: int, offset: Optional[int] = None, priority: float = 0.0
    ) -> Generator[Event, None, float]:
        """Process: write *nbytes*; returns latency µs."""
        return self._io(nbytes, offset, priority, write=True)

    def _io(
        self, nbytes: int, offset: Optional[int], priority: float, write: bool
    ) -> Generator[Event, None, float]:
        if nbytes <= 0:
            raise ValueError("I/O size must be positive")
        start = self.env.now
        obs = self.env.obs
        sp = (
            obs.begin(
                "disk_io",
                track=f"disk:{self.name}",
                bytes=nbytes,
                op="write" if write else "read",
            )
            if obs is not None
            else None
        )
        with self._actuator.request(priority=priority) as req:
            yield req
            sequential = (
                offset is not None
                and self._last_end_offset is not None
                and offset == self._last_end_offset
            )
            access_us = self.access_time_us(nbytes, sequential)
            plane = self.env.fault_plane
            if plane is not None:
                access_us += plane.disk_delay_us(self.name, access_us)
                if plane.disk_error(self.name):
                    # the drive positions, retries internally, then gives up
                    yield self.env.timeout(access_us)
                    self.stats.media_errors += 1
                    self._last_end_offset = None  # head position unknown
                    if obs is not None:
                        obs.end(sp, error="media")
                        obs.count("disk.media_errors", disk=self.name)
                    raise DiskMediaError(
                        f"{self.name}: media error on "
                        f"{'write' if write else 'read'} of {nbytes} bytes"
                    )
            yield self.env.timeout(access_us)
            if offset is not None:
                self._last_end_offset = offset + nbytes
            else:
                self._last_end_offset = None  # unknown position: next is random
        if write:
            self.stats.writes += 1
            self.stats.bytes_written += nbytes
        else:
            self.stats.reads += 1
            self.stats.bytes_read += nbytes
        if sequential:
            self.stats.sequential_hits += 1
        if obs is not None:
            obs.end(sp, sequential=sequential)
            obs.count(
                "disk.bytes_written" if write else "disk.bytes_read",
                nbytes,
                disk=self.name,
            )
            obs.observe("disk.access_us", self.env.now - start, disk=self.name)
        return self.env.now - start

    def __repr__(self) -> str:
        return f"<SCSIDisk {self.name!r} {self.stats!r}>"
