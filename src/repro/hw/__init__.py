"""Hardware models of the paper's platform.

CPU cycle-cost models (i960 RD, Pentium Pro, UltraSPARC), data caches,
memory regions and the I2O hardware-queue register file, PCI segments with
PIO/peer-to-peer DMA, SCSI disks with UFS/dosFs filesystem models, switched
100 Mbps Ethernet, and the composite NI cards.
"""

from .bus import Bus
from .cache import DataCache
from .cpu import CPU, CPUSpec, I960RD_66, PENTIUM_PRO_200, ULTRASPARC_300
from .disk import DiskMediaError, SCSIDisk
from .ethernet import (
    CLIENT_STACK,
    HOST_STACK,
    I960_STACK,
    EthernetLink,
    EthernetPort,
    EthernetSwitch,
    NetFrame,
    StackCosts,
)
from .filesystem import DosFS, File, Filesystem, UFS
from .memory import MB, Allocation, HardwareQueueFile, MemoryRegion, OutOfMemoryError
from .nic import I960RDCard, Intel82557NIC
from .pci import DMAEngine, PCIBridge, PCISegment, PIO_READ_US, PIO_WRITE_US
from .striping import StripedFS, StripedVolume

__all__ = [
    "Bus",
    "DataCache",
    "CPU",
    "CPUSpec",
    "I960RD_66",
    "PENTIUM_PRO_200",
    "ULTRASPARC_300",
    "SCSIDisk",
    "DiskMediaError",
    "EthernetLink",
    "EthernetPort",
    "EthernetSwitch",
    "NetFrame",
    "StackCosts",
    "I960_STACK",
    "HOST_STACK",
    "CLIENT_STACK",
    "Filesystem",
    "File",
    "UFS",
    "DosFS",
    "MemoryRegion",
    "Allocation",
    "HardwareQueueFile",
    "OutOfMemoryError",
    "MB",
    "I960RDCard",
    "Intel82557NIC",
    "PCISegment",
    "PCIBridge",
    "DMAEngine",
    "PIO_READ_US",
    "PIO_WRITE_US",
    "StripedVolume",
    "StripedFS",
]
