"""PCI I/O bus segments, PIO, and peer-to-peer DMA.

Table 5 of the paper fixes the three primitive costs this module models:

* bulk DMA moves data at ≈66.27 MB/s (a 773 665-byte MPEG file in
  11 673.84 µs);
* programmed I/O reads of a 32-bit word cost ≈3.6 µs, writes ≈3.1 µs;
* a 1000-byte card-to-card frame DMA lands at ≈15 µs (Table 4's "0.015pci"
  component — arbitration plus burst).

Peer-to-peer DMA between two cards on the same segment never touches the
host: that is what makes paths B and C eliminate host-bus and host-memory
traffic. A transfer that *does* involve host memory (path A) must cross both
the PCI segment and the host system bus through the bridge.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim import Environment, Event

from .bus import Bus

__all__ = ["PCISegment", "PCIBridge", "DMAEngine", "PIO_READ_US", "PIO_WRITE_US"]

#: Table 5 programmed-I/O costs for one 32-bit word.
PIO_READ_US = 3.6
PIO_WRITE_US = 3.1


class PCISegment(Bus):
    """One PCI bus segment (32-bit/33 MHz class, effective ≈66 MB/s)."""

    def __init__(
        self,
        env: Environment,
        name: str = "pci0",
        bandwidth_mb_s: float = 66.27,
        arbitration_us: float = 0.5,
        pio_read_us: float = PIO_READ_US,
        pio_write_us: float = PIO_WRITE_US,
    ) -> None:
        super().__init__(
            env,
            name,
            bandwidth_mb_s=bandwidth_mb_s,
            per_transaction_us=arbitration_us,
            width_bytes=4,
        )
        self.pio_read_us = pio_read_us
        self.pio_write_us = pio_write_us
        self.devices: list[object] = []

    def attach(self, device: object) -> None:
        """Register a card/controller on this segment."""
        if device in self.devices:
            raise ValueError(f"{device!r} already attached to {self.name}")
        self.devices.append(device)

    # -- programmed I/O ---------------------------------------------------------
    def pio_read(self, priority: float = 0.0) -> Generator[Event, None, float]:
        """Process: one 32-bit PIO read across the segment."""
        return self._pio(self.pio_read_us, priority)

    def pio_write(self, priority: float = 0.0) -> Generator[Event, None, float]:
        """Process: one 32-bit PIO write across the segment."""
        return self._pio(self.pio_write_us, priority)

    def _pio(self, cost_us: float, priority: float) -> Generator[Event, None, float]:
        start = self.env.now
        with self._lock.request(priority=priority) as req:
            yield req
            yield self.env.timeout(cost_us)
        self.bytes_transferred += self.width_bytes
        self.transactions += 1
        obs = self.env.obs
        if obs is not None:
            obs.count("pci.pio_ops", bus=self.name)
            obs.observe("pci.pio_us", self.env.now - start, bus=self.name)
        return self.env.now - start


class PCIBridge:
    """Host-bridge between the system bus and a PCI segment.

    A transfer through the bridge (host memory ↔ PCI device, path A) holds
    *both* buses for its duration: the bytes are charged to each, which is
    exactly the double-traffic cost the paper's offload removes.
    """

    def __init__(self, env: Environment, system_bus: Bus, segment: PCISegment) -> None:
        self.env = env
        self.system_bus = system_bus
        self.segment = segment

    def min_cross_latency_us(self) -> float:
        """Partition-boundary declaration: the minimum time any interaction
        takes to cross this bridge (host complex ↔ NI complex).

        Every bridge transfer pays both buses' per-transaction overhead
        before a single byte moves, and bus-lock waits only add to that —
        so this is a safe conservative lookahead for a PDES split along
        the host/NI seam (:mod:`repro.pdes.boundary`).
        """
        return self.segment.per_transaction_us + self.system_bus.per_transaction_us

    def transfer(
        self, nbytes: int, priority: float = 0.0
    ) -> Generator[Event, None, float]:
        """Process: move *nbytes* between host memory and a device."""
        start = self.env.now
        obs = self.env.obs
        sp = (
            obs.begin("bridge", track=f"bus:{self.segment.name}", bytes=nbytes)
            if obs is not None
            else None
        )
        # The slower bus paces the transfer; both carry the traffic.
        with self.system_bus._lock.request(priority=priority) as sysreq:
            yield sysreq
            with self.segment._lock.request(priority=priority) as pcireq:
                yield pcireq
                duration = (
                    self.segment.per_transaction_us
                    + self.system_bus.per_transaction_us
                    + nbytes
                    / min(self.system_bus.bandwidth_mb_s, self.segment.bandwidth_mb_s)
                )
                yield self.env.timeout(duration)
        for bus in (self.system_bus, self.segment):
            bus.bytes_transferred += nbytes
            bus.transactions += 1
        if obs is not None:
            obs.end(sp)
            obs.count("bridge.bytes", nbytes, segment=self.segment.name)
        return self.env.now - start


class DMAEngine:
    """Bus-master DMA engine of a card on a PCI segment."""

    def __init__(self, env: Environment, segment: PCISegment, owner: Optional[object] = None) -> None:
        self.env = env
        self.segment = segment
        self.owner = owner
        self.bytes_moved = 0

    def peer_transfer(
        self, nbytes: int, priority: float = 0.0
    ) -> Generator[Event, None, float]:
        """Process: card-to-card DMA on the local segment (no host involved)."""
        latency = yield from self.segment.transfer(nbytes, priority=priority)
        self.bytes_moved += nbytes
        obs = self.env.obs
        if obs is not None:
            obs.count("dma.peer_bytes", nbytes, segment=self.segment.name)
        return latency

    def host_transfer(
        self, bridge: PCIBridge, nbytes: int, priority: float = 0.0
    ) -> Generator[Event, None, float]:
        """Process: DMA between this card and host memory via the bridge."""
        if bridge.segment is not self.segment:
            raise ValueError("bridge does not serve this card's segment")
        latency = yield from bridge.transfer(nbytes, priority=priority)
        self.bytes_moved += nbytes
        obs = self.env.obs
        if obs is not None:
            obs.count("dma.host_bytes", nbytes, segment=self.segment.name)
        return latency
