"""Data cache model.

Tables 1 vs 2 of the paper are the same microbenchmark with the i960 RD's
data cache disabled vs enabled; the observed effect is ≈14–15 µs saved per
frame-scheduling decision because "stream priority values and descriptor
addresses [are] cached and updated every scheduler cycle without additional
memory latency".

We model the cache at the level that matters for those tables: a hit ratio
applied to data memory references, with hit/miss service times taken from the
owning CPU's spec. A small working-set estimator supports ablations (hit
ratio degrades once the scheduler's descriptor footprint exceeds capacity).

The paper also notes an operational constraint we keep: the VxWorks SCSI
driver runs with the data cache *disabled*, so a card that performs local
disk reads cannot enable caching (§4.2: producers run on disk-attached NIs so
the dedicated scheduler NI can keep its cache on).
"""

from __future__ import annotations

__all__ = ["DataCache"]


class DataCache:
    """Enable/disable-able data cache with a steady-state hit ratio."""

    def __init__(
        self,
        size_bytes: int = 4096,
        line_bytes: int = 16,
        hit_ratio: float = 0.75,
        enabled: bool = False,
    ) -> None:
        if size_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if not 0.0 <= hit_ratio <= 1.0:
            raise ValueError(f"hit ratio must be in [0,1], got {hit_ratio}")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        #: steady-state hit ratio when the working set fits
        self.base_hit_ratio = hit_ratio
        self.enabled = enabled

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def effective_hit_ratio(self, working_set_bytes: int | None = None) -> float:
        """Hit ratio given an (optional) working-set size.

        Disabled cache → 0. A working set within capacity gets the base
        ratio; beyond capacity the ratio falls off with the capacity
        fraction (simple inclusive-reuse model, adequate for the ablation
        study — the paper's own tables only exercise the fits/disabled
        endpoints).
        """
        if not self.enabled:
            return 0.0
        if working_set_bytes is None or working_set_bytes <= self.size_bytes:
            return self.base_hit_ratio
        return self.base_hit_ratio * (self.size_bytes / working_set_bytes)

    def flush(self) -> None:
        """Invalidate contents (modelled as a no-op on timing; the next
        accesses are covered by the steady-state ratio)."""

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"<DataCache {self.size_bytes}B {state} hit={self.base_hit_ratio:.2f}>"
