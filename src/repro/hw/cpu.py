"""CPU cost model: abstract operation counts → microseconds.

The reproduction executes the *real* DWCS algorithm and tallies abstract
operations (:class:`~repro.fixedpoint.OpCounter`); a :class:`CPU` converts a
tally into simulated time using per-class cycle costs from its
:class:`CPUSpec`. Three specs matter to the paper:

* ``I960RD_66`` — the I2O co-processor: 66 MHz, **no FPU** (floating point
  emulated by the VxWorks software-FP library at high cycle cost), small
  data cache, MMIO register file reachable without external bus cycles.
* ``PENTIUM_PRO_200`` — the quad host CPU (200 MHz, FPU, deep caches but
  expensive context switches / cache pollution — charged by the OS model).
* ``ULTRASPARC_300`` — the 300 MHz CPU on which the prior host-based DWCS
  papers measured ≈50 µs scheduling overhead (used for the headline
  comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fixedpoint import OpCounter

from .cache import DataCache

__all__ = ["CPUSpec", "CPU", "I960RD_66", "PENTIUM_PRO_200", "ULTRASPARC_300"]


@dataclass(frozen=True)
class CPUSpec:
    """Static timing parameters of a processor.

    All ``*_cycles`` fields are costs per abstract operation of that class.
    ``fp_op_cycles`` applies when a hardware FPU exists; on FPU-less parts
    ``fp_emulation_cycles`` applies instead (software FP library).
    """

    name: str
    clock_mhz: float
    has_fpu: bool
    int_op_cycles: float = 1.0
    shift_cycles: float = 1.0
    divide_cycles: float = 35.0
    branch_cycles: float = 2.0
    fp_op_cycles: float = 3.0
    fp_emulation_cycles: float = 50.0
    #: data memory reference straight to (local) memory — no cache
    mem_uncached_cycles: float = 20.0
    #: data memory reference hitting the data cache
    mem_cached_cycles: float = 2.0
    #: access to memory-mapped register space ("no external bus cycles")
    mmio_cycles: float = 4.0
    #: direct cost of a context switch, µs (host OS model charges this)
    context_switch_us: float = 10.0
    #: extra cost after a switch from cache/TLB pollution, µs
    cache_pollution_us: float = 0.0

    @property
    def cycle_us(self) -> float:
        """Duration of one clock cycle in microseconds."""
        return 1.0 / self.clock_mhz


class CPU:
    """A processor instance: spec + data-cache state + cycle accounting."""

    #: memo entries kept per CPU; DWCS inner loops cycle through a small
    #: set of distinct op vectors, so this is never approached in practice
    _MEMO_LIMIT = 65536

    def __init__(
        self,
        spec: CPUSpec,
        cache: Optional[DataCache] = None,
        name: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.cache = cache if cache is not None else DataCache(enabled=False)
        self.name = name or spec.name
        #: total cycles charged through this CPU (for reporting)
        self.cycles_charged = 0.0
        # (effective hit ratio, op tuple) -> cycles. The hit ratio folds in
        # every piece of mutable cache state (enabled flag, working set), so
        # a memo hit returns the exact float the full computation would —
        # the golden digests pin this bit-for-bit.
        self._cycles_memo: dict[tuple[float, tuple[int, ...]], float] = {}

    # -- cost conversion -------------------------------------------------------
    def cycles_for(self, ops: OpCounter, working_set_bytes: int | None = None) -> float:
        """Cycle cost of an operation tally under current cache state.

        The DWCS inner loop converts the same handful of (op-vector,
        cache-state) pairs thousands of times per run; repeats are served
        from a per-CPU memo table.
        """
        hit = self.cache.effective_hit_ratio(working_set_bytes)
        key = (hit, ops.as_tuple())
        memo = self._cycles_memo
        cycles = memo.get(key)
        if cycles is None:
            s = self.spec
            fp_cost = s.fp_op_cycles if s.has_fpu else s.fp_emulation_cycles
            mem_cost = hit * s.mem_cached_cycles + (1.0 - hit) * s.mem_uncached_cycles
            cycles = (
                ops.int_ops * s.int_op_cycles
                + ops.shifts * s.shift_cycles
                + ops.divides * s.divide_cycles
                + ops.branches * s.branch_cycles
                + ops.fp_ops * fp_cost
                + (ops.mem_reads + ops.mem_writes) * mem_cost
                + (ops.mmio_reads + ops.mmio_writes) * s.mmio_cycles
            )
            if len(memo) < self._MEMO_LIMIT:
                memo[key] = cycles
        return cycles

    def time_for(self, ops: OpCounter, working_set_bytes: int | None = None) -> float:
        """Microseconds to execute *ops*; also accumulates cycle accounting."""
        cycles = self.cycles_for(ops, working_set_bytes)
        self.cycles_charged += cycles
        return cycles * self.spec.cycle_us

    def time_us(self, cycles: float) -> float:
        """Microseconds for a raw cycle count (device driver fixed costs)."""
        self.cycles_charged += cycles
        return cycles * self.spec.cycle_us

    def __repr__(self) -> str:
        return f"<CPU {self.name} {self.spec.clock_mhz:g}MHz cache={self.cache!r}>"


# -- canonical processor specs --------------------------------------------------

#: Intel i960 RD on the I2O card: 66 MHz I/O co-processor without an FPU.
#: ``fp_emulation_cycles`` is calibrated so the software-FP scheduler build
#: costs ≈20 µs more per decision than the fixed-point build (paper §4.2).
I960RD_66 = CPUSpec(
    name="i960RD",
    clock_mhz=66.0,
    has_fpu=False,
    fp_emulation_cycles=55.0,
    mem_uncached_cycles=20.0,
    mem_cached_cycles=2.0,
    mmio_cycles=4.0,
    context_switch_us=4.0,  # VxWorks task switch is light
    cache_pollution_us=0.0,
)

#: Host CPU of the quad Pentium Pro server (200 MHz, FPU, deep cache
#: hierarchy — hence the large post-switch pollution charge the paper blames
#: for host-scheduler jitter).
PENTIUM_PRO_200 = CPUSpec(
    name="PentiumPro",
    clock_mhz=200.0,
    has_fpu=True,
    fp_op_cycles=3.0,
    mem_uncached_cycles=40.0,  # miss to EDO DRAM
    mem_cached_cycles=1.0,
    context_switch_us=10.0,
    cache_pollution_us=25.0,
)

#: 300 MHz UltraSPARC — the platform of the prior host-based DWCS result
#: (≈50 µs scheduling overhead with quiescent load).
ULTRASPARC_300 = CPUSpec(
    name="UltraSPARC",
    clock_mhz=300.0,
    has_fpu=True,
    fp_op_cycles=3.0,
    mem_uncached_cycles=35.0,
    mem_cached_cycles=1.0,
    context_switch_us=8.0,
    cache_pollution_us=20.0,
)
