"""The sweep worker: runs one :class:`~repro.parallel.job.Job` in-process.

This module is what spawn-fresh pool workers import to unpickle the task
function, so it stays stdlib-only at module level — the heavy
``repro.experiments`` import happens inside :func:`run_job` and is
*measured* (the worker's cold-import time rides along in the payload,
next to peak RSS from ``resource.getrusage``).

Everything crossing the process boundary is plain data: the payload in
is a job's canonical dict plus a timeout, the payload out is a serialized
:class:`~repro.experiments.report.ExperimentResult` (or an error record —
a raising job *reports*, it never kills the pool). Per-job timeouts are
enforced inside the worker with ``SIGALRM`` where the alarm can actually
be armed (POSIX, main thread — see :func:`alarm_available`); everywhere
else the runner's executor-side deadline is the enforcement, so a wedged
simulation cannot stall the sweep on any platform.
"""

from __future__ import annotations

import importlib
import inspect
import os
import signal
import threading
import time
import traceback
from typing import Any

__all__ = ["run_job", "JobTimeout", "alarm_available"]

#: set (to any non-empty value) to force the no-SIGALRM fallback path —
#: the runner then enforces the budget executor-side. Exists so the
#: fallback is testable on platforms where the alarm *does* work.
DISABLE_ALARM_ENV_VAR = "REPRO_DISABLE_SIGALRM"


class JobTimeout(Exception):
    """Raised inside a worker when a job overruns its time budget."""


def _on_alarm(signum, frame):  # pragma: no cover - fires only on overrun
    raise JobTimeout("job exceeded its timeout")


def alarm_available() -> bool:
    """Whether the in-worker ``SIGALRM`` watchdog can be armed here.

    ``SIGALRM`` exists only on POSIX, and ``signal.signal`` may only be
    called from the main thread of the main interpreter — a worker
    invoked from a thread pool (or an embedded interpreter) must fall
    back to the runner's executor-side budget instead of crashing with
    ``ValueError: signal only works in main thread``.
    """
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
        and not os.environ.get(DISABLE_ALARM_ENV_VAR)
    )


def _check_config_keys(config: dict, params, experiment: str) -> None:
    """A config key the runner's signature doesn't name is a job-spec bug.

    Silently dropping it would run a *different* experiment than the job
    digest claims (and the cache would happily serve the wrong cell), so
    unknown keys fail the job with the accepted names spelled out. The
    harness-owned kwargs (seed / duration_us / out_dir) stay leniently
    filtered — they are plumbing, not experiment parameters.
    """
    unknown = sorted(k for k in config if k not in params)
    if unknown:
        accepted = ", ".join(sorted(params)) or "(none)"
        raise ValueError(
            f"unknown config key(s) {', '.join(map(repr, unknown))} for "
            f"experiment {experiment!r}; accepted parameters: {accepted}"
        )


def _resolve_and_run(canonical: dict) -> Any:
    """Run the experiment a canonical job dict names; returns its result."""
    from repro.experiments import golden

    experiment = canonical["experiment"]
    seed = canonical["seed"]
    duration_us = canonical["duration_us"]
    config = canonical.get("config", {})
    if ":" in experiment:
        module_name, attr = experiment.split(":", 1)
        runner = getattr(importlib.import_module(module_name), attr)
        params = inspect.signature(runner).parameters
        _check_config_keys(config, params, experiment)
        kwargs = {}
        if "seed" in params:
            kwargs["seed"] = seed
        if duration_us is not None and "duration_us" in params:
            kwargs["duration_us"] = duration_us
        if "out_dir" in params:
            kwargs["out_dir"] = None
        kwargs.update(config)
        return runner(**kwargs)
    # registry experiments go through the same path the golden digests use
    from repro.experiments import REGISTRY

    if experiment in REGISTRY:
        _check_config_keys(
            config, inspect.signature(REGISTRY[experiment]).parameters, experiment
        )
    return golden.compute_result(
        experiment, seed=seed, duration_us=duration_us, out_dir=None, **config
    )


def run_job(payload: dict) -> dict:
    """Execute one job payload; always returns (never raises) a dict.

    Success: ``{"ok": True, "result": <dict>, "result_digest": <sha256>,
    "compute_s", "import_s", "peak_rss_kb"}``. Failure: ``{"ok": False,
    "error", "traceback", ...}`` — crash isolation is this envelope.
    """
    canonical = payload["job"]
    timeout_s = payload.get("timeout_s")

    t0 = time.perf_counter()
    from repro.experiments.golden import result_digest  # noqa: F401 (heavy import, timed)

    import_s = time.perf_counter() - t0

    use_alarm = timeout_s is not None and alarm_available()
    previous = None
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        t0 = time.perf_counter()
        result = _resolve_and_run(canonical)
        compute_s = time.perf_counter() - t0
        from repro.experiments.report import ExperimentResult

        if not isinstance(result, ExperimentResult):
            raise TypeError(
                f"{canonical['experiment']} returned {type(result).__name__}, "
                "not ExperimentResult"
            )
        out = {
            "ok": True,
            "result": result.to_dict(),
            "result_digest": result_digest(result),
            "compute_s": compute_s,
        }
    except Exception as exc:
        out = {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
            "compute_s": time.perf_counter() - t0,
        }
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    out["import_s"] = import_s
    out["peak_rss_kb"] = _peak_rss_kb()
    return out


def _peak_rss_kb() -> int:
    """This process's peak resident set size in kB (0 where unsupported)."""
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - non-POSIX
        return 0
