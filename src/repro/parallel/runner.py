"""The sweep runner: fan jobs out across cores, merge back in order.

``SweepRunner.run`` resolves cache hits first (cheap, serial IO), then
fans the misses out over a spawn-context ``ProcessPoolExecutor``. Only
job payload dicts cross the process boundary — never environments,
services, or results-in-progress — so the pool is immune to pickling
surprises and every worker computes from a cold, identical world.

Failure containment, in layers:

* a job that *raises* (including a ``SIGALRM`` timeout) comes back as an
  error payload from the worker — the pool keeps running;
* where the in-worker alarm cannot be armed (non-POSIX, non-main-thread
  workers — see :func:`repro.parallel.worker.alarm_available`), the
  runner enforces each job's budget **executor-side**: a job's deadline
  clock starts when a worker picks it up (a future still queued behind
  batch-mates cannot be wedged, so queue wait never counts against its
  budget), and an overrun kills the wedged worker processes outright
  (the only way to reclaim a process stuck in a tight loop), settling
  the overrunning job as a timeout while innocent jobs of the same pool
  are re-queued without burning a retry;
* a worker that *dies* (segfault, ``os._exit``) breaks the pool; the
  runner catches ``BrokenProcessPool``, rebuilds the pool, and retries
  every unresolved job (bounded by its retry budget) — one murdered
  cell reports as failed instead of killing the sweep;
* outcomes are recorded by input index, so the merged view is in
  deterministic job order no matter the completion order.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Optional, Sequence

from .cache import ResultCache
from .job import Job
from .worker import run_job

__all__ = ["SweepRunner", "SweepReport", "JobOutcome"]


@dataclass
class JobOutcome:
    """One job's resolution: served from cache, computed, or failed."""

    job: Job
    status: str  # "hit" | "ran" | "failed"
    result: Optional[object] = None  # ExperimentResult on success
    result_digest: Optional[str] = None
    error: Optional[str] = None
    attempts: int = 0
    compute_s: float = 0.0
    import_s: float = 0.0
    peak_rss_kb: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("hit", "ran")


@dataclass
class SweepReport:
    """Everything one sweep produced, in input job order."""

    outcomes: list[JobOutcome]
    wall_s: float
    workers: int
    cache_stats: Optional[dict] = None

    @property
    def failed(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "hit")

    @property
    def ran(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ran")

    @property
    def serial_estimate_s(self) -> float:
        """Sum of per-job compute seconds (cache entries carry their
        original compute time), i.e. what one core would have paid."""
        return sum(o.compute_s for o in self.outcomes)

    @property
    def speedup_estimate(self) -> float:
        return self.serial_estimate_s / self.wall_s if self.wall_s > 0 else 0.0

    def summary_line(self) -> str:
        """The one-line sweep summary for CI logs."""
        n = len(self.outcomes)
        rate = (100.0 * self.hits / n) if n else 0.0
        return (
            f"sweep: {n} jobs ({self.hits} cached, {self.ran} ran, "
            f"{len(self.failed)} failed) workers={self.workers} "
            f"hit-rate={rate:.0f}% wall={self.wall_s:.2f}s "
            f"serial-est={self.serial_estimate_s:.2f}s "
            f"speedup-est={self.speedup_estimate:.2f}x"
        )


class SweepRunner:
    """Execute a list of jobs on ``workers`` cores with caching and retry."""

    #: how often the runner wakes to check per-job deadlines (seconds)
    _POLL_S = 0.1

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        verbose: bool = False,
        deadline_grace_s: float = 5.0,
    ) -> None:
        import os

        self.workers = max(1, workers if workers is not None else (os.cpu_count() or 1))
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = retries
        self.verbose = verbose
        #: slack added to each job's budget before the executor-side kill
        #: fires — where the in-worker alarm works it gets this long to
        #: report the timeout gracefully first
        self.deadline_grace_s = deadline_grace_s

    # -- internals -----------------------------------------------------------
    def _job_timeout(self, job: Job) -> Optional[float]:
        return job.timeout_s if job.timeout_s is not None else self.timeout_s

    def _payload(self, job: Job) -> dict:
        return {"job": job.canonical(), "timeout_s": self._job_timeout(job)}

    def _note(self, text: str) -> None:
        if self.verbose:
            print(text, file=sys.stderr)

    def _from_cache(self, job: Job, entry: dict) -> JobOutcome:
        from repro.experiments.report import ExperimentResult

        return JobOutcome(
            job=job,
            status="hit",
            result=ExperimentResult.from_dict(entry["result"]),
            result_digest=entry["result_digest"],
            compute_s=entry.get("compute_s", 0.0),
            import_s=entry.get("import_s", 0.0),
            peak_rss_kb=entry.get("peak_rss_kb", 0),
        )

    def _from_payload(self, job: Job, payload: dict, attempts: int) -> JobOutcome:
        from repro.experiments.report import ExperimentResult

        result = ExperimentResult.from_dict(payload["result"])
        outcome = JobOutcome(
            job=job,
            status="ran",
            result=result,
            result_digest=payload["result_digest"],
            attempts=attempts,
            compute_s=payload.get("compute_s", 0.0),
            import_s=payload.get("import_s", 0.0),
            peak_rss_kb=payload.get("peak_rss_kb", 0),
        )
        if self.cache is not None:
            meta = {
                "compute_s": outcome.compute_s,
                "import_s": outcome.import_s,
                "peak_rss_kb": outcome.peak_rss_kb,
            }
            self.cache.put(job, payload["result"], payload["result_digest"], meta)
        return outcome

    # -- the sweep -----------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> SweepReport:
        t_start = time.perf_counter()
        outcomes: list[Optional[JobOutcome]] = [None] * len(jobs)

        # 1) serve what the cache already holds
        pending: list[tuple[int, int]] = []  # (job index, attempts so far)
        for i, job in enumerate(jobs):
            entry = self.cache.get(job) if self.cache is not None else None
            if entry is not None:
                outcomes[i] = self._from_cache(job, entry)
                self._note(f"[cache] {job.label}")
            else:
                pending.append((i, 0))

        # 2) fan the rest out; rebuild the pool after a hard worker death
        while pending:
            batch, pending = pending, []
            n_workers = min(self.workers, len(batch))
            ctx = get_context("spawn")
            broken = False
            killed_for_deadline = False
            futs = {}
            # Submission is throttled to one outstanding job per worker: the
            # executor marks a future RUNNING the moment it is pumped into
            # the IPC call queue (max_workers+1 deep), so an eagerly
            # submitted backlog would look "running" while actually queued
            # and accrue deadline it never earned. With the throttle, a
            # submitted job has a free worker and starts ~immediately.
            to_submit = list(batch)  # (job index, attempts), input order
            pool = ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx)
            abandoned = False
            try:
                budgets = {}
                deadlines = {}
                not_done: set = set()
                while to_submit or not_done:
                    while to_submit and len(not_done) < n_workers:
                        i, attempts = to_submit.pop(0)
                        fut = pool.submit(run_job, self._payload(jobs[i]))
                        futs[fut] = (i, attempts)
                        budgets[fut] = self._job_timeout(jobs[i])
                        not_done.add(fut)
                    done, not_done = futures_wait(not_done, timeout=self._POLL_S)
                    for fut in done:
                        i, attempts = futs[fut]
                        payload = fut.result()
                        self._settle(jobs[i], i, attempts, payload, outcomes, pending)
                    expired = self._check_deadlines(not_done, budgets, deadlines)
                    if expired:
                        # The in-worker alarm had its whole budget plus
                        # grace and never reported: this worker is wedged
                        # somewhere SIGALRM cannot fire (non-POSIX,
                        # non-main-thread, or disabled). Killing its
                        # process is the only way to reclaim it; that
                        # breaks the pool, so settle the overruns now and
                        # rebuild for the rest.
                        for fut in expired:
                            i, attempts = futs[fut]
                            self._settle(
                                jobs[i],
                                i,
                                attempts,
                                {
                                    "ok": False,
                                    "error": "JobTimeout: job exceeded its "
                                    "timeout (executor-side deadline)",
                                },
                                outcomes,
                                pending,
                            )
                            self._note(f"[kill ] {jobs[i].label} (deadline)")
                        broken = True
                        killed_for_deadline = True
                        procs = getattr(pool, "_processes", None)
                        if procs:
                            for proc in list(procs.values()):
                                proc.terminate()
                        else:
                            # No process handles (the private attribute is
                            # gone in this CPython): the wedged worker cannot
                            # be reclaimed, so cut the pool loose instead of
                            # blocking a waiting shutdown on it — cancel the
                            # queued work and abandon without joining.
                            abandoned = True
                            pool.shutdown(wait=False, cancel_futures=True)
                        break
            except BrokenProcessPool:
                broken = True
            finally:
                if not abandoned:
                    pool.shutdown(wait=True)
            if broken:
                # Unresolved jobs of this batch go back out against a fresh
                # pool. A deadline kill was the runner's own doing, so
                # innocent bystanders are re-queued without burning a retry;
                # a spontaneous worker death could have been any unresolved
                # job's fault, so each one is charged an attempt (bounded by
                # its budget).
                for i, attempts in to_submit:
                    # never handed to the pool at all: requeue without
                    # burning a retry, whatever broke the pool
                    pending.append((i, attempts))
                    self._note(f"[requeue] {jobs[i].label} (never submitted)")
                for fut, (i, attempts) in futs.items():
                    if outcomes[i] is not None or any(p[0] == i for p in pending):
                        continue
                    if killed_for_deadline:
                        pending.append((i, attempts))
                        self._note(f"[requeue] {jobs[i].label} (pool killed on deadline)")
                    elif attempts < self._budget(jobs[i]):
                        pending.append((i, attempts + 1))
                        self._note(f"[retry] {jobs[i].label} (worker died)")
                    else:
                        outcomes[i] = JobOutcome(
                            job=jobs[i],
                            status="failed",
                            error="worker process died (pool broken)",
                            attempts=attempts + 1,
                        )
                        self._note(f"[fail ] {jobs[i].label}: worker died")

        done = [o for o in outcomes if o is not None]
        assert len(done) == len(jobs), "every job must resolve to an outcome"
        return SweepReport(
            outcomes=done,
            wall_s=time.perf_counter() - t_start,
            workers=self.workers,
            cache_stats=self.cache.stats.as_dict() if self.cache is not None else None,
        )

    def _budget(self, job: Job) -> int:
        return job.retries if job.retries is not None else self.retries

    def _check_deadlines(self, not_done, budgets: dict, deadlines: dict) -> list:
        """Arm deadlines for newly running futures; return the expired ones.

        The clock starts when a job *starts executing*, not when the
        batch was formed: a job still waiting for a worker accrues
        arbitrary queue wait and cannot be wedged. Only futures that
        report ``running()`` are armed — which, together with the
        one-outstanding-job-per-worker submission throttle in ``run()``,
        coincides with actual pickup. ``deadlines`` is the cross-poll
        memo of armed absolute deadlines, keyed by future.
        """
        now = time.monotonic()
        for fut in not_done:
            if fut not in deadlines and budgets[fut] is not None and fut.running():
                deadlines[fut] = now + budgets[fut] + self.deadline_grace_s
        return [f for f in not_done if f in deadlines and now >= deadlines[f]]

    def _settle(
        self,
        job: Job,
        i: int,
        attempts: int,
        payload: dict,
        outcomes: list,
        pending: list,
    ) -> None:
        if payload.get("ok"):
            try:
                outcomes[i] = self._from_payload(job, payload, attempts + 1)
                self._note(f"[ran  ] {job.label} ({outcomes[i].compute_s:.2f}s)")
                return
            except Exception as exc:  # malformed payload: treat as job failure
                payload = {"ok": False, "error": f"bad result payload: {exc}"}
        if attempts < self._budget(job):
            pending.append((i, attempts + 1))
            self._note(f"[retry] {job.label}: {payload.get('error')}")
        else:
            outcomes[i] = JobOutcome(
                job=job,
                status="failed",
                error=payload.get("error", "unknown worker error"),
                attempts=attempts + 1,
                compute_s=payload.get("compute_s", 0.0),
            )
            self._note(f"[fail ] {job.label}: {payload.get('error')}")
