"""Parallel sweep execution: multi-core experiment fan-out + result cache.

The paper's evaluation is a *matrix* — scheduler placement crossed with
load levels, seeds, and fault scenarios — and every cell is a
deterministic, seed-pinned simulation. Independent deterministic model
evaluations are embarrassingly parallel, so this package fans them out
across cores and never re-runs a cell whose inputs haven't changed:

* :class:`~repro.parallel.job.Job` — a picklable spec of one experiment
  cell (experiment id, seed, duration, config overrides) with a
  canonical SHA-256 digest;
* :class:`~repro.parallel.cache.ResultCache` — a content-addressed
  on-disk cache under ``out/cache/`` keyed by (job digest, code digest
  over ``src/repro``), with hit/miss/eviction stats and corruption
  self-healing;
* :class:`~repro.parallel.runner.SweepRunner` — a
  ``ProcessPoolExecutor`` fan-out with spawn-fresh workers, per-job
  timeout/retry, and crash isolation (one dead cell reports instead of
  killing the sweep), merging results back in deterministic input order.

The determinism contract: a sweep's merged output is bit-identical
whether it ran on 1 worker or N — proven against the existing golden
digests (a worker-computed ``figure9`` cell reproduces the checked-in
``golden_digests.json`` entry byte for byte).
"""

from .cache import CacheStats, ResultCache, code_digest
from .job import Job
from .runner import JobOutcome, SweepReport, SweepRunner

__all__ = [
    "Job",
    "ResultCache",
    "CacheStats",
    "code_digest",
    "SweepRunner",
    "SweepReport",
    "JobOutcome",
]
