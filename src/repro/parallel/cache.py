"""Content-addressed on-disk result cache for sweep jobs.

Layout: ``<root>/<code_digest[:16]>/<job_digest>.json`` — one JSON entry
per (code version, job content) pair. The code digest covers every
``.py`` file under ``src/repro``, so editing any source invalidates the
whole cache by construction (old entries simply live in a directory no
current run looks at); the job digest covers experiment id, seed,
duration, and config overrides.

Every entry carries the SHA-256 of its stored result
(:func:`~repro.experiments.golden.result_digest` over the reconstructed
:class:`~repro.experiments.report.ExperimentResult`). ``get`` re-derives
that digest on load, so a corrupted, truncated, or hand-tampered entry
is detected, evicted (unlinked), and transparently recomputed by the
runner — the cache can only ever serve bytes that round-trip to exactly
what the simulation produced.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .job import Job

__all__ = ["ResultCache", "CacheStats", "code_digest", "DEFAULT_CACHE_ROOT"]

#: where sweep results land unless the caller overrides it
DEFAULT_CACHE_ROOT = os.path.join("out", "cache")


@functools.lru_cache(maxsize=1)
def code_digest() -> str:
    """SHA-256 over every ``.py`` file under ``src/repro`` (path + bytes).

    Cached per process: the tree is read once, not once per job.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py"), key=lambda p: p.relative_to(root).as_posix()):
        if "__pycache__" in path.parts:
            continue
        h.update(path.relative_to(root).as_posix().encode("utf-8"))
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    return h.hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
        }


@dataclass
class ResultCache:
    """The on-disk cache; ``code`` defaults to the live tree's digest."""

    root: Path = Path(DEFAULT_CACHE_ROOT)
    code: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.code is None:
            self.code = code_digest()

    def path_for(self, job: Job) -> Path:
        return self.root / self.code[:16] / f"{job.digest}.json"

    # -- read ----------------------------------------------------------------
    def get(self, job: Job) -> Optional[dict]:
        """The validated entry for *job*, or None (miss / evicted corrupt)."""
        path = self.path_for(job)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(path.read_text())
            self._validate(job, entry)
        except Exception:
            # corrupted / truncated / tampered / stale-schema: self-heal
            path.unlink(missing_ok=True)
            self.stats.evictions += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def _validate(self, job: Job, entry: dict) -> None:
        from repro.experiments.golden import result_digest
        from repro.experiments.report import ExperimentResult

        if entry["job_digest"] != job.digest:
            raise ValueError("entry is for a different job")
        if entry["code_digest"] != self.code:
            raise ValueError("entry is for a different code version")
        result = ExperimentResult.from_dict(entry["result"])
        if result_digest(result) != entry["result_digest"]:
            raise ValueError("stored result does not match its digest")

    # -- write ---------------------------------------------------------------
    def put(self, job: Job, result_dict: dict, result_digest: str, meta: dict) -> Path:
        """Store one computed result atomically.

        The entry is written to a *writer-unique* temp file in the same
        directory (same filesystem, so the final ``os.replace`` is an
        atomic rename) and the temp file is removed on any failure. A
        fixed temp name would race concurrent sweeps sharing a cache
        root: two writers interleaving write/replace on one ``.tmp``
        path can publish a torn entry. With unique names the worst case
        is a harmless double-compute — the published file is always one
        writer's complete bytes. Readers are protected twice over:
        ``get`` digest-validates and evicts anything torn anyway.
        """
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "job_digest": job.digest,
            "job": job.canonical(),
            "code_digest": self.code,
            "result": result_dict,
            "result_digest": result_digest,
            **meta,
        }
        tmp = path.parent / f".{path.name}.{os.getpid()}.{id(self):x}.tmp"
        try:
            tmp.write_text(json.dumps(entry) + "\n")
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self.stats.puts += 1
        return path
