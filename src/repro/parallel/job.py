"""The :class:`Job` spec: one experiment cell of a sweep matrix.

A job names *what* to compute — experiment, seed, duration, config
overrides — never *how* (timeout, retries, worker count are execution
policy and excluded from the digest). Two jobs with the same canonical
form are the same computation, whatever order their config dicts were
built in; the digest is the cache key and the dedup key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Job"]


@dataclass
class Job:
    """One deterministic experiment evaluation.

    ``experiment`` is either an id in the experiment ``REGISTRY``
    (``"figure9"``) or a dotted callable path ``"module:function"`` for
    custom cells; either way the callable must return an
    :class:`~repro.experiments.report.ExperimentResult`. ``config``
    entries are passed as keyword overrides (filtered to the runner's
    signature, exactly like ``golden.compute_result``) and must be
    JSON-serializable so the digest is well defined.
    """

    experiment: str
    seed: int = 42
    duration_us: Optional[float] = None
    config: dict[str, Any] = field(default_factory=dict)
    #: execution policy — NOT part of the digest
    timeout_s: Optional[float] = None
    retries: Optional[int] = None

    def canonical(self) -> dict:
        """The digestable content of this job (policy fields excluded)."""
        return {
            "experiment": self.experiment,
            "seed": int(self.seed),
            "duration_us": None if self.duration_us is None else float(self.duration_us),
            "config": {str(k): self.config[k] for k in sorted(self.config)},
        }

    @property
    def digest(self) -> str:
        """SHA-256 over the canonical JSON form; insensitive to config order."""
        blob = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Human-readable cell name for progress lines and reports."""
        parts = [self.experiment, f"seed={self.seed}"]
        if self.duration_us is not None:
            parts.append(f"T={self.duration_us:g}us")
        for k in sorted(self.config):
            parts.append(f"{k}={self.config[k]!r}")
        return " ".join(parts)
