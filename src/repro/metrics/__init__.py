"""Measurement utilities: CPU perfmeter and stream-level statistics
(the time-series primitives themselves live in :mod:`repro.sim.monitor`)."""

from repro.sim import RateEstimator, TallyStats, TimeSeries

from .perfmeter import Perfmeter, RecoveryMeter

__all__ = ["Perfmeter", "RecoveryMeter", "TimeSeries", "TallyStats", "RateEstimator"]
