"""CPU utilization sampling (the paper's Solaris Perfmeter).

Figure 6 plots total CPU utilization over time as the web load ramps; the
paper measured it with Solaris Perfmeter. :class:`Perfmeter` samples an OS
kernel's cumulative busy time on a fixed period and records utilization
percentages into a :class:`~repro.sim.TimeSeries`.

:class:`RecoveryMeter` is the failure-injection counterpart: one place the
chaos and failover experiments record fault/detection/recovery timestamps
and migration outcomes, so both report detection latency, MTTR, and
post-migration violations through the same rows.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.rtos.kernel import OSKernel
from repro.sim import Environment, TimeSeries

__all__ = ["Perfmeter", "RecoveryMeter"]


class Perfmeter:
    """Periodic utilization sampler over one OS kernel."""

    def __init__(
        self,
        env: Environment,
        kernel: OSKernel,
        period_us: float = 1_000_000.0,
        name: str = "perfmeter",
    ) -> None:
        if period_us <= 0:
            raise ValueError("sampling period must be positive")
        self.env = env
        self.kernel = kernel
        self.period_us = period_us
        #: utilization percentage (0-100) per sample
        self.series = TimeSeries(name)
        self._proc = env.process(self._run(), name=name)

    def _run(self) -> Generator:
        last_busy = self.kernel.cumulative_busy_us()
        last_t = self.env.now
        while True:
            yield self.env.timeout(self.period_us)
            busy = self.kernel.cumulative_busy_us()
            span = (self.env.now - last_t) * self.kernel.n_cpus
            util = 100.0 * (busy - last_busy) / span if span > 0 else 0.0
            # clamp both ends: a kernel busy-counter reset mid-run would
            # otherwise record a negative utilization sample
            self.series.record(self.env.now, min(100.0, max(0.0, util)))
            last_busy, last_t = busy, self.env.now

    def average(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean utilization percentage over [start, end)."""
        return self.series.mean(start, end if end is not None else float("inf"))

    def peak(self) -> float:
        return self.series.maximum()


class RecoveryMeter:
    """Recovery bookkeeping for one failure-injection run.

    The HA plane stamps the milestones (:meth:`mark_fault`,
    :meth:`mark_detected`, :meth:`mark_recovered`) and records each
    migrated/degraded/parked stream; the experiment layer reads the derived
    **detection latency** (fault → declared dead) and **MTTR** (fault →
    last stream restored) plus the violation tally split at the fault
    instant, so chaos and failover runs report the same row set.
    """

    def __init__(self, env: Environment, name: str = "recovery") -> None:
        self.env = env
        self.name = name
        self.fault_at_us: Optional[float] = None
        self.detected_at_us: Optional[float] = None
        self.recovered_at_us: Optional[float] = None
        #: stream ids in migration order (determinism checks compare these)
        self.migrated: list[str] = []
        #: streams re-admitted at a degraded rendition (B-frames shed)
        self.degraded: list[str] = []
        #: streams no surviving card could take (admission refused)
        self.parked: list[str] = []
        #: scheduler violations at the fault instant (split point)
        self.violations_at_fault: int = 0
        #: watchdog suspicion → partition classifications observed
        self.partitions: int = 0

    # -- milestones ---------------------------------------------------------
    def mark_fault(self, violations_so_far: int = 0) -> None:
        if self.fault_at_us is None:
            self.fault_at_us = self.env.now
            self.violations_at_fault = violations_so_far

    def mark_detected(self) -> None:
        if self.detected_at_us is None:
            self.detected_at_us = self.env.now

    def mark_recovered(self) -> None:
        self.recovered_at_us = self.env.now

    def mark_partition(self) -> None:
        self.partitions += 1

    # -- derived metrics ----------------------------------------------------
    @property
    def detection_latency_us(self) -> Optional[float]:
        if self.fault_at_us is None or self.detected_at_us is None:
            return None
        return self.detected_at_us - self.fault_at_us

    @property
    def mttr_us(self) -> Optional[float]:
        if self.fault_at_us is None or self.recovered_at_us is None:
            return None
        return self.recovered_at_us - self.fault_at_us

    def post_fault_violations(self, violations_total: int) -> int:
        return violations_total - self.violations_at_fault

    def rows(self, violations_total: int) -> list[tuple[str, float, str, str]]:
        """Uniform (label, value, unit, note) rows for experiment reports.

        Absent milestones render as -1 (fault never injected / never
        detected / never recovered), keeping the row set fixed so two runs
        are comparable line by line.
        """
        det = self.detection_latency_us
        mttr = self.mttr_us
        return [
            ("detection latency", -1.0 if det is None else det / 1000.0, "ms", ""),
            ("time to recovery (MTTR)", -1.0 if mttr is None else mttr / 1000.0, "ms", ""),
            ("streams migrated", float(len(self.migrated)), "",
             ",".join(self.migrated)),
            ("streams degraded", float(len(self.degraded)), "",
             ",".join(self.degraded)),
            ("streams parked", float(len(self.parked)), "",
             ",".join(self.parked)),
            ("post-fault violations",
             float(self.post_fault_violations(violations_total))
             if self.fault_at_us is not None else 0.0, "", ""),
            ("partitions classified", float(self.partitions), "", ""),
        ]
