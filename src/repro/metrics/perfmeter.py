"""CPU utilization sampling (the paper's Solaris Perfmeter).

Figure 6 plots total CPU utilization over time as the web load ramps; the
paper measured it with Solaris Perfmeter. :class:`Perfmeter` samples an OS
kernel's cumulative busy time on a fixed period and records utilization
percentages into a :class:`~repro.sim.TimeSeries`.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.rtos.kernel import OSKernel
from repro.sim import Environment, TimeSeries

__all__ = ["Perfmeter"]


class Perfmeter:
    """Periodic utilization sampler over one OS kernel."""

    def __init__(
        self,
        env: Environment,
        kernel: OSKernel,
        period_us: float = 1_000_000.0,
        name: str = "perfmeter",
    ) -> None:
        if period_us <= 0:
            raise ValueError("sampling period must be positive")
        self.env = env
        self.kernel = kernel
        self.period_us = period_us
        #: utilization percentage (0-100) per sample
        self.series = TimeSeries(name)
        self._proc = env.process(self._run(), name=name)

    def _run(self) -> Generator:
        last_busy = self.kernel.cumulative_busy_us()
        last_t = self.env.now
        while True:
            yield self.env.timeout(self.period_us)
            busy = self.kernel.cumulative_busy_us()
            span = (self.env.now - last_t) * self.kernel.n_cpus
            util = 100.0 * (busy - last_busy) / span if span > 0 else 0.0
            self.series.record(self.env.now, min(100.0, util))
            last_busy, last_t = busy, self.env.now

    def average(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean utilization percentage over [start, end)."""
        return self.series.mean(start, end if end is not None else float("inf"))

    def peak(self) -> float:
        return self.series.maximum()
