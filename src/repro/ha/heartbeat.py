"""NI-side liveness beacons over I2O.

Each scheduler card runs a tiny VxWorks task (``tBeat``) that periodically
posts a heartbeat frame into the card's I2O *outbound* queue. Heartbeats
ride the same message path as DVCM replies — same PIO reads on the PCI
segment, same outbound store — so a partitioned message path starves the
host of beats exactly as it starves it of replies, while the card itself
keeps running. A crashed card simply stops beating.

Heartbeats use the reserved message id 0: real request/reply traffic draws
its ids from ``itertools.count(1)``, so id 0 can never collide with a
pending call and the host side can pump beats with a filtered get.
"""

from __future__ import annotations

from typing import Generator

from repro.hw.nic import I960RDCard
from repro.rtos.vxworks import WindScheduler
from repro.rtos.task import Task
from repro.sim import Environment

from repro.dvcm.messages import I2OReply, MessageQueuePair

__all__ = [
    "HEARTBEAT_MSG_ID",
    "HEARTBEAT_INTERVAL_US",
    "BEAT_COMPUTE_CYCLES",
    "HeartbeatEmitter",
    "attach_beat_pump",
]

#: reserved I2O message id for heartbeat frames (real msg ids start at 1)
HEARTBEAT_MSG_ID = 0

#: default beacon period — 4 Hz, far below the DWCS epoch rate, so the
#: liveness plane costs a rounding error of NI CPU time
HEARTBEAT_INTERVAL_US = 250_000.0

#: NI CPU cycles to assemble and post one beacon frame
BEAT_COMPUTE_CYCLES = 120.0


class HeartbeatEmitter:
    """Spawns the ``tBeat`` VxWorks task on one scheduler card."""

    def __init__(
        self,
        env: Environment,
        card: I960RDCard,
        queues: MessageQueuePair,
        vxworks: WindScheduler,
        interval_us: float = HEARTBEAT_INTERVAL_US,
        priority: int = 50,
    ) -> None:
        if interval_us <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.env = env
        self.card = card
        self.queues = queues
        self.interval_us = interval_us
        self.beats_sent = 0
        vxworks.spawn("tBeat", self._task_body, priority=priority)

    def _task_body(self, task: Task) -> Generator:
        while True:
            yield self.env.timeout(self.interval_us)
            if self.card.crashed:
                # wedged firmware beats no more — the tick itself keeps
                # running so a reset card resumes beaconing on schedule
                continue
            yield task.compute(self.card.cpu.time_us(BEAT_COMPUTE_CYCLES))
            if self.card.crashed:
                continue
            self.beats_sent += 1
            obs = self.env.obs
            if obs is not None:
                obs.count("heartbeat.beats_sent", card=self.card.name)
            yield from self.queues.reply(
                I2OReply(msg_id=HEARTBEAT_MSG_ID, status="beat", result=self.card.name)
            )


def attach_beat_pump(env: Environment, queues: MessageQueuePair, watchdog) -> None:
    """Host-side: drain heartbeat frames from *queues* into *watchdog*.

    Filtered on the reserved id, so beats never race the reply scavenging
    done by :class:`~repro.dvcm.api.VCMInterface` on the same store.
    """

    def pump() -> Generator:
        while True:
            yield queues.outbound.get(filter=lambda r: r.msg_id == HEARTBEAT_MSG_ID)
            watchdog.record_beat()

    env.process(pump(), name=f"{watchdog.name}.pump")
