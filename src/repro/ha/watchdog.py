"""Host-side failure detector for one scheduler card.

A timeout-accrual watchdog in the tradition of the phi-accrual detector:
beats feed a running estimate of the inter-beat gap, :meth:`Watchdog.phi`
exposes the continuous suspicion level, and the hard declaration rule is
K consecutive missed beats plus a grace margin (so a beat that lands
*exactly* on the deadline still counts as alive — the grace absorbs the
jitter that I2O queueing puts on an otherwise periodic beacon).

On suspicion the watchdog does not declare immediately: it issues a PCI
status probe (:meth:`repro.hw.nic.I960RDCard.status_probe`). PIO reads of
a wedged board return junk rather than hanging, so the probe cleanly
separates the two silent-card causes:

* probe says **dead** → the card crashed: declare ``dead`` and fire the
  failover callbacks (this is terminal — a reset card must rejoin empty);
* probe says **alive** → the card runs but its message path is lossy:
  classify ``partitioned``, keep watching, and recover to ``alive`` the
  moment a beat arrives. No migration — moving streams off a healthy
  card would double-serve them once the path heals.
"""

from __future__ import annotations

import math
from typing import Callable, Generator, Optional

from repro.hw.nic import I960RDCard
from repro.sim import Environment

__all__ = ["Watchdog"]

#: a probe is any zero-argument process factory returning True (alive)
#: or False (dead) — the default is the card's own PCI status probe
ProbeFactory = Callable[[], Generator]

#: consecutive missed beats before the card is suspected
DEFAULT_K_MISSED = 3

#: fraction of the beat interval granted as grace beyond the Kth miss
GRACE_FRACTION = 0.2


class Watchdog:
    """K-missed-beat failure detector with probe-based classification."""

    def __init__(
        self,
        env: Environment,
        card: I960RDCard,
        interval_us: float,
        k_missed: int = DEFAULT_K_MISSED,
        grace_us: Optional[float] = None,
        name: Optional[str] = None,
        probe: Optional[ProbeFactory] = None,
    ) -> None:
        if interval_us <= 0:
            raise ValueError("beat interval must be positive")
        if k_missed < 1:
            raise ValueError("need at least one missed beat to suspect")
        self.env = env
        self.card = card
        # The classification probe. The in-chassis default is the card's
        # PCI status probe; a cluster front door supervising a *remote*
        # node passes a probe that crosses the SAN first (the health sweep
        # of repro.cluster), so crash-vs-partition classification still
        # works where no PIO path to the board exists.
        self._probe: ProbeFactory = probe if probe is not None else card.status_probe
        self.interval_us = interval_us
        self.k_missed = k_missed
        self.grace_us = GRACE_FRACTION * interval_us if grace_us is None else grace_us
        self.name = name or f"watchdog:{card.name}"
        #: "alive" | "partitioned" | "dead" (dead is terminal)
        self.state = "alive"
        self.last_beat_us = env.now
        self.beats = 0
        self.suspicions = 0
        self.partitions = 0
        self.recoveries = 0
        self.declared_dead_at_us: Optional[float] = None
        self.on_dead: list[Callable[[], None]] = []
        self.on_partition: list[Callable[[], None]] = []
        self.on_recovered: list[Callable[[], None]] = []
        self._mean_gap_us = interval_us
        self._proc = env.process(self._monitor(), name=self.name)

    # -- beat intake (called by the heartbeat pump) -------------------------
    def record_beat(self) -> None:
        gap = self.env.now - self.last_beat_us
        if self.beats > 0:
            # EWMA of observed gaps — feeds phi(), tracks beacon jitter
            self._mean_gap_us += 0.2 * (gap - self._mean_gap_us)
        self.last_beat_us = self.env.now
        self.beats += 1
        obs = self.env.obs
        if obs is not None:
            obs.count("watchdog.beats", card=self.card.name)
        if self.state == "partitioned":
            self.state = "alive"
            self.recoveries += 1
            if obs is not None:
                obs.count("watchdog.recoveries", card=self.card.name)
                obs.instant(
                    "watchdog_recovered",
                    track=f"card:{self.card.name}",
                    card=self.card.name,
                )
            for callback in list(self.on_recovered):
                callback()

    # -- suspicion ----------------------------------------------------------
    def phi(self) -> float:
        """Continuous suspicion level: elapsed silence in decades of the
        mean gap (phi ≥ k ⇒ the chance the card is alive is < 10^-k under
        the exponential-gap model)."""
        elapsed = self.env.now - self.last_beat_us
        if elapsed <= 0:
            return 0.0
        return elapsed / (self._mean_gap_us * math.log(10.0))

    @property
    def deadline_us(self) -> float:
        """Instant at which the current silence becomes a suspicion."""
        return self.last_beat_us + self.k_missed * self.interval_us + self.grace_us

    # -- the monitor process ------------------------------------------------
    def _monitor(self) -> Generator:
        while True:
            now = self.env.now
            if now < self.deadline_us:
                # a beat arriving while we sleep pushes the deadline out;
                # we re-read it on wake and go back to sleep
                yield self.env.timeout(self.deadline_us - now)
                continue
            self.suspicions += 1
            obs = self.env.obs
            if obs is not None:
                obs.count("watchdog.suspicions", card=self.card.name)
                obs.instant(
                    "watchdog_probe",
                    track=f"card:{self.card.name}",
                    card=self.card.name,
                    phi=round(self.phi(), 3),
                )
            alive = yield from self._probe()
            if not alive:
                self.state = "dead"
                self.declared_dead_at_us = self.env.now
                if obs is not None:
                    obs.count("watchdog.deaths_declared", card=self.card.name)
                    obs.instant(
                        "watchdog_dead",
                        track=f"card:{self.card.name}",
                        card=self.card.name,
                        phi=round(self.phi(), 3),
                    )
                for callback in list(self.on_dead):
                    callback()
                return
            if self.state == "alive":
                self.state = "partitioned"
                self.partitions += 1
                if obs is not None:
                    obs.count("watchdog.partitions", card=self.card.name)
                    obs.instant(
                        "watchdog_partition",
                        track=f"card:{self.card.name}",
                        card=self.card.name,
                    )
                for callback in list(self.on_partition):
                    callback()
            # still partitioned: re-probe every interval until a beat gets
            # through (record_beat flips us back to alive) or a crash turns
            # the probe negative
            yield self.env.timeout(self.interval_us)

    def __repr__(self) -> str:
        return f"<Watchdog {self.name!r} state={self.state} beats={self.beats}>"
