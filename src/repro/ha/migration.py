"""Live stream migration off a dead scheduler card.

Two halves:

* :class:`HAExtension` — the NI-side DVCM extension loaded on every
  scheduler card. Its ``ha.restore_stream`` instruction adopts a migrated
  stream from its mirrored checkpoint, so the new card continues the old
  card's window accounting (same (x', y') position, same violation tally,
  same deadline sequence) instead of opening a fresh stream.

* :class:`FailoverCoordinator` — the host-side brain. When a watchdog
  declares a card dead it re-admits that card's streams onto survivors:

  - **order**: tighter loss tolerance first (x/y ascending — the streams
    that can least afford silence move first), FIFO admission order
    within the same tolerance;
  - **placement**: capacity-aware — for each stream, the surviving card
    with the most admission headroom that will take it;
  - **backpressure**: if no survivor admits the stream at full rate, it
    is retried at its degraded rendition (anchor frames only — the
    producer sheds B-frames, cutting the packet rate); if even that is
    refused, the stream is *parked* rather than violating the windows of
    streams already admitted;
  - **restore**: the checkpointed DWCS state travels to the new card as
    an I2O call with the checkpoint record as bulk payload, then the
    host splices the stream's send path to the new card.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.dwcs import DWCSScheduler
from repro.dvcm.extension import ExtensionModule
from repro.metrics.perfmeter import RecoveryMeter
from repro.sim import Environment

from .checkpoint import CHECKPOINT_BYTES

__all__ = ["HAExtension", "FailoverCoordinator"]

#: fallback packet-rate fraction for degraded re-admission when the
#: service has no quality ladder for the stream (anchor-frame share of a
#: typical GOP)
DEFAULT_DEGRADED_FRACTION = 0.5


class HAExtension(ExtensionModule):
    """NI-side instructions of the HA plane."""

    def __init__(self, scheduler: DWCSScheduler) -> None:
        super().__init__("ha")
        self.scheduler = scheduler
        self.streams_adopted = 0
        self.provide("restore_stream", self._restore_stream)
        self.provide("stream_state", self._stream_state)

    def _restore_stream(self, payload: dict[str, Any]) -> str:
        state = self.scheduler.adopt_stream(payload["snapshot"])
        self.streams_adopted += 1
        return state.spec.stream_id

    def _stream_state(self, payload: dict[str, Any]) -> dict[str, Any]:
        return self.scheduler.streams[payload["stream_id"]].checkpoint()


class FailoverCoordinator:
    """Re-homes a dead card's streams onto the surviving cards."""

    def __init__(self, env: Environment, service, meter: RecoveryMeter) -> None:
        self.env = env
        self.service = service
        self.meter = meter
        self.migrations = 0

    # -- watchdog callback --------------------------------------------------
    def card_died(self, runtime) -> None:
        """Synchronous on_dead hook: stamp detection, start migrating."""
        self.meter.mark_detected()
        self.env.process(
            self._migrate(runtime), name=f"ha.migrate:{runtime.card.name}"
        )

    # -- the migration process ----------------------------------------------
    def _migrate(self, dead_runtime) -> Generator:
        service = self.service
        victims = [
            stream_id
            for stream_id in service.placement_order
            if service.runtime_of(stream_id) is dead_runtime
        ]
        # stable sort: FIFO admission order survives within a tolerance tier
        victims.sort(key=service.loss_tolerance_of)
        mirror = service.mirror_of(dead_runtime)
        for stream_id in victims:
            snapshot = mirror.checkpoints.get(stream_id)
            if snapshot is None:
                # admitted but never successfully mirrored — nothing to
                # restore from, so the stream parks
                service.park(stream_id)
                self.meter.parked.append(stream_id)
                dead_runtime.admission.release(stream_id)
                continue
            spec = snapshot["spec"]
            full_cost = service.service_time_of(stream_id)
            target, degraded = None, False
            for candidate in service.surviving_runtimes(dead_runtime):
                if candidate.admission.admit(spec, full_cost).admitted:
                    target = candidate
                    break
            if target is None:
                # overload backpressure, stage 1: shed B-frames — the
                # packet rate (and so the admission share) drops to the
                # anchor-frame fraction
                degraded_cost = full_cost * service.degraded_fraction_of(stream_id)
                for candidate in service.surviving_runtimes(dead_runtime):
                    if candidate.admission.admit(spec, degraded_cost).admitted:
                        target, degraded = candidate, True
                        break
            if target is None:
                # stage 2: refuse — parking one stream beats violating the
                # windows of every stream already admitted
                service.park(stream_id)
                self.meter.parked.append(stream_id)
                dead_runtime.admission.release(stream_id)
                continue
            yield from service.vcm_of(target).call(
                "ha.restore_stream",
                {"snapshot": snapshot},
                bulk_bytes=CHECKPOINT_BYTES,
            )
            dead_runtime.admission.release(stream_id)
            mirror.forget(stream_id)
            service.splice(stream_id, target, degraded=degraded)
            self.meter.migrated.append(stream_id)
            if degraded:
                self.meter.degraded.append(stream_id)
            self.migrations += 1
        # the dead card must rejoin empty: even a later board reset gets no
        # streams back, so stop its engine for good
        dead_runtime.engine.stop()
        self.meter.mark_recovered()
