"""Host-memory mirroring of per-stream DWCS state.

The scheduler card is the only place that knows a stream's live window
position — (x', y'), the next deadline, the violation and loss tallies,
and the queue's enqueued count that anchors the deadline sequence. If the
card dies, that state dies with it and a migrated stream would restart
with fresh windows, silently forgiving every violation the dead card
accrued. The mirror closes that hole: after every engine epoch (a
scheduling decision that serviced or dropped packets) the touched streams
are snapshotted and the snapshot bytes are pushed to host memory.

Cost honesty: snapshots are *captured* synchronously at the epoch (exact
state, no torn reads) but *committed* only once the mirroring DMA across
the card's PCI bridge completes — the same posted-write discipline a real
card would use. Capture coalesces: a stream dirtied five times before the
DMA pump runs is shipped once. If the card crashes while a batch is
staged, those bytes never reached host memory, so the mirror keeps the
previous committed snapshot — migration then restores state that is at
most one epoch stale, which is the honest recovery point.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.dwcs import Decision
from repro.sim import Environment, Event

__all__ = ["CHECKPOINT_BYTES", "CheckpointMirror"]

#: wire size of one per-stream checkpoint record: (x', y') and the window
#: tallies as 32-bit words, the deadline/anchor as 64-bit µs counts, the
#: enqueued count, plus the record header — 64 bytes, one cache line
CHECKPOINT_BYTES = 64


class CheckpointMirror:
    """Mirrors one scheduler card's per-stream DWCS state to host memory."""

    def __init__(self, env: Environment, runtime) -> None:
        self.env = env
        self.runtime = runtime
        self.scheduler = runtime.scheduler
        self.bridge = runtime.node.bridge_for(runtime.card.segment)
        self.dma = runtime.card.dma
        #: committed snapshots by stream id (what migration restores)
        self.checkpoints: dict[str, dict] = {}
        self.epochs_mirrored = 0
        self.snapshots_taken = 0
        self.bytes_mirrored = 0
        #: staged batches discarded because the card died first
        self.checkpoints_lost = 0
        self._staged: dict[str, dict] = {}
        self._wake: Optional[Event] = None
        runtime.engine.on_epoch = self._on_epoch
        self._proc = env.process(self._pump(), name=f"ckpt:{runtime.card.name}")

    # -- capture ------------------------------------------------------------
    def capture(self, stream_id: str) -> None:
        """Snapshot *stream_id* now and stage it for mirroring.

        Also called once at admission so every stream has a checkpoint
        from the moment it exists.
        """
        self._staged[stream_id] = self.scheduler.export_stream(stream_id)
        self.snapshots_taken += 1
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def forget(self, stream_id: str) -> None:
        """Drop all mirrored state for a stream that left this card."""
        self._staged.pop(stream_id, None)
        self.checkpoints.pop(stream_id, None)

    def _on_epoch(self, decision: Decision) -> None:
        self.epochs_mirrored += 1
        touched: list[str] = []
        if decision.serviced is not None:
            touched.append(decision.serviced.stream_id)
        for dropped in decision.dropped:
            if dropped.stream_id not in touched:
                touched.append(dropped.stream_id)
        for stream_id in touched:
            if stream_id in self.scheduler.streams:
                self.capture(stream_id)

    # -- the mirroring pump -------------------------------------------------
    def _pump(self) -> Generator:
        while True:
            if not self._staged:
                self._wake = self.env.event(name=f"ckpt.wake:{self.runtime.card.name}")
                yield self._wake
                self._wake = None
            staged, self._staged = self._staged, {}
            nbytes = CHECKPOINT_BYTES * len(staged)
            if self.runtime.card.crashed:
                self.checkpoints_lost += len(staged)
                continue
            yield from self.dma.host_transfer(self.bridge, nbytes)
            if self.runtime.card.crashed:
                # died mid-transfer: the batch never landed in host memory
                self.checkpoints_lost += len(staged)
                continue
            self.checkpoints.update(staged)
            self.bytes_mirrored += nbytes

    def __repr__(self) -> str:
        return (
            f"<CheckpointMirror {self.runtime.card.name} "
            f"streams={len(self.checkpoints)} bytes={self.bytes_mirrored}>"
        )
