"""High availability: failure detection, checkpointing, live migration.

The paper's multi-NI server treats each i960 card as an independent
scheduling domain; this package adds the host-side supervision that makes
card loss survivable instead of merely shed:

* :mod:`repro.ha.heartbeat` — each NI runtime posts periodic DVCM
  heartbeats over its I2O outbound queue (a reserved message id);
* :mod:`repro.ha.watchdog` — the host-side failure detector: a
  phi/timeout accrual watchdog that declares a card dead after K missed
  beats, using a PCI status probe to tell a crashed card from a
  partitioned message path;
* :mod:`repro.ha.checkpoint` — per-stream DWCS state mirrored to host
  memory on every engine epoch, with the mirroring traffic charged as
  card→host DMA so it shows up honestly on the simulated PCI segment;
* :mod:`repro.ha.migration` — the failover coordinator: re-admits a dead
  card's streams onto survivors (capacity-aware, FIFO within priority),
  restores their checkpointed window accounting over I2O, and splices the
  send path to the new card.

:class:`repro.server.failover.HAStreamingService` assembles all four into
a multi-card streaming service.
"""

from .checkpoint import CHECKPOINT_BYTES, CheckpointMirror
from .heartbeat import (
    HEARTBEAT_INTERVAL_US,
    HEARTBEAT_MSG_ID,
    HeartbeatEmitter,
    attach_beat_pump,
)
from .migration import FailoverCoordinator, HAExtension
from .watchdog import Watchdog

__all__ = [
    "HEARTBEAT_MSG_ID",
    "HEARTBEAT_INTERVAL_US",
    "HeartbeatEmitter",
    "attach_beat_pump",
    "Watchdog",
    "CHECKPOINT_BYTES",
    "CheckpointMirror",
    "HAExtension",
    "FailoverCoordinator",
]
