"""Streaming service assemblies: host-based vs NI-based DWCS.

These are the two systems Figures 7–10 compare:

* :class:`HostStreamingService` — DWCS runs as a Solaris process on the
  host, competing with the Apache pool and daemons. Frames come from host
  filesystem buffers and leave through a plain 82557 NIC, crossing the
  host bridge; protocol processing burns host CPU.

* :class:`NIStreamingService` — DWCS runs on a dedicated (disk-less,
  data-cache-enabled) i960 RD card under VxWorks. Producers are either
  co-resident (path C) or peer cards / host threads pushing frames over
  the PCI segment (path B). Host load never touches the NI CPU.

Both expose the same surface: ``open_stream``, ``attach_client``,
``start_producer`` and the engine's per-stream queuing-delay series, so the
experiment harness treats them interchangeably.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.admission import AdmissionController
from repro.core.attributes import StreamSpec
from repro.core.costs import DWCSCostModel
from repro.core.dwcs import DWCSScheduler
from repro.core.engine import StreamingEngine
from repro.fixedpoint import ArithmeticContext, FixedPointContext
from repro.hw.cpu import CPU
from repro.hw.disk import DiskMediaError
from repro.hw.ethernet import EthernetPort, EthernetSwitch, NetFrame
from repro.hw.memory import Allocation, OutOfMemoryError
from repro.hw.nic import I960RDCard, Intel82557NIC
from repro.media.frames import FrameDescriptor, MediaFrame
from repro.media.mpeg import MPEGFile
from repro.media.player import MPEGClient
from repro.net.transport import (
    MediaClientEndpoint,
    MediaTransportBooks,
    MediaWireSender,
    resolve_transport,
)
from repro.rtos.task import Task
from repro.rtos.vxworks import WindScheduler
from repro.sim import Environment, Store

from .node import ServerNode

__all__ = [
    "HOST_DWCS_COSTS",
    "HostStreamingService",
    "NIStreamingService",
    "SchedulerCardRuntime",
]

#: Cost model of the *host* DWCS build — the System-V-shared-memory,
#: process-based implementation of the prior papers. Its constants are
#: larger than the embedded build's: user/kernel crossings, SysV semaphore
#: checks, and a fatter code path. Calibrated to the published ≈50 µs
#: scheduling overhead on a 300 MHz UltraSPARC.
HOST_DWCS_COSTS = DWCSCostModel(
    decision_base_int_ops=11_000,
    decision_base_branches=1_200,
    per_stream_int_ops=60,
    per_stream_branches=12,
    per_stream_mem_reads=6,
    dispatch_int_ops=5_200,
    dispatch_branches=300,
    dispatch_mem_reads=30,
    dispatch_mem_writes=20,
)


class _BaseService:
    """Shared stream/client bookkeeping.

    ``transport`` selects the media wire path: ``"udp"`` (the default)
    keeps the historical raw-frame path byte-for-byte — no transport
    object is constructed at all — while ``"tcp"``/``"ttp"`` ride the
    reliable stacks of :mod:`repro.net` between each serving port and
    each client, with the shared zero-leak ledger in :attr:`books`.
    """

    def __init__(
        self,
        env: Environment,
        switch: EthernetSwitch,
        admission: Optional[AdmissionController] = None,
        transport: str = "udp",
    ) -> None:
        self.env = env
        self.switch = switch
        #: optional admission ledger; when present, open_stream can enforce
        #: the utilization bound and failures shed/re-admit through it
        self.admission = admission
        self.transport = resolve_transport(transport)
        #: the zero-leak delivery ledger (None on the raw UDP path)
        self.books: Optional[MediaTransportBooks] = (
            MediaTransportBooks() if self.transport != "udp" else None
        )
        self.clients: dict[str, MPEGClient] = {}
        self._client_endpoints: dict[str, MediaClientEndpoint] = {}
        self._dest_of_stream: dict[str, str] = {}
        self.engine: StreamingEngine  # set by subclass
        #: disk media errors survived by producers (retry succeeded or the
        #: frame was skipped)
        self.read_errors = 0
        self.frames_skipped = 0

    def attach_client(self, name: str) -> MPEGClient:
        """Create an MPEG client machine on the switch."""
        port = EthernetPort(self.env, name)
        self.switch.attach(port)
        if self.transport == "udp":
            client = MPEGClient(self.env, name, port)
        else:
            # the transport endpoint owns the port; completed records are
            # handed to the player through client.deliver()
            client = MPEGClient(self.env, name, port, consume_port=False)
            self._client_endpoints[name] = MediaClientEndpoint(
                self.env, client, self.transport, books=self.books
            )
        self.clients[name] = client
        return client

    def transport_unaccounted(self) -> set:
        """Record ids the transport ledger cannot place (must be empty)."""
        if self.books is None:
            return set()
        return self.books.unaccounted()

    def open_stream(
        self,
        spec: StreamSpec,
        client_name: str,
        service_time_us: Optional[float] = None,
    ) -> None:
        if client_name not in self.clients:
            raise KeyError(f"no client {client_name!r} attached")
        if self.admission is not None and service_time_us is not None:
            decision = self.admission.admit(spec, service_time_us)
            if not decision.admitted:
                raise RuntimeError(f"admission refused: {decision.reason}")
        self.engine.scheduler.add_stream(spec)
        self._dest_of_stream[spec.stream_id] = client_name

    def start_producer(
        self,
        file: MPEGFile,
        inject_gap_us: float = 1_000.0,
        prebuffer_frames: int = 0,
    ) -> None:
        """Stream *file*'s frames into the scheduler ahead of playout.

        ``prebuffer_frames`` are injected back-to-back first (the player's
        initial buffering — the source of the constant offset at the start
        of the paper's queuing-delay plots); the rest are paced by
        ``inject_gap_us``, keeping the producer slightly ahead of the
        playout rate so the backlog (and queuing delay) ramps over the run.
        """
        raise NotImplementedError

    def reception(self, stream_id: str):
        client = self.clients[self._dest_of_stream[stream_id]]
        return client.reception(stream_id)

    def _submit_with_backpressure(self, frame: MediaFrame) -> Generator:
        """Process: inject *frame*, waiting while the stream's ring is full
        (a real producer blocks on the circular buffer's tail pointer)."""
        queue = self.engine.scheduler.queues[frame.stream_id]
        while queue.full:
            yield self.env.timeout(10_000.0)
        self.engine.submit(frame)

    def _read_with_retry(
        self,
        fs_file,
        nbytes: int,
        max_attempts: int = 6,
        backoff_us: float = 5_000.0,
    ) -> Generator:
        """Process: read *nbytes*, rewinding at EOF and retrying transient
        media errors with exponential backoff.

        Returns the byte count read, or 0 when every attempt failed — the
        producer then skips the frame instead of dying (one lost frame is a
        DWCS-tolerable loss; a dead producer is a dead stream).
        """
        wait_us = backoff_us
        for _attempt in range(max_attempts):
            try:
                got = yield from fs_file.read_next(nbytes)
            except DiskMediaError:
                self.read_errors += 1
                obs = self.env.obs
                if obs is not None:
                    obs.count("producer.read_errors")
                yield self.env.timeout(wait_us)
                wait_us *= 2.0
                continue
            if got == 0:
                fs_file.rewind()
                continue
            return got
        self.frames_skipped += 1
        obs = self.env.obs
        if obs is not None:
            obs.count("producer.frames_skipped")
        return 0


class SchedulerCardRuntime:
    """One dedicated i960 scheduler card's complete runtime.

    Everything that lives and dies with one card: the VxWorks instance and
    its system tasks, the DWCS scheduler + engine (tDWCS), the transmit
    queue drained by tNetTask onto the card's Ethernet port, the
    single-copy frame memory, and the crash/reset shedding hooks.

    :class:`NIStreamingService` wraps exactly one (the Figure-9
    configuration, construction order preserved bit-for-bit); the HA
    service in :mod:`repro.server.failover` composes several and migrates
    streams between them on card death.
    """

    def __init__(
        self,
        env: Environment,
        node: ServerNode,
        switch: EthernetSwitch,
        segment: int = 0,
        ctx: Optional[ArithmeticContext] = None,
        costs: Optional[DWCSCostModel] = None,
        enable_cache: bool = True,
        admission: Optional[AdmissionController] = None,
        dest_of_stream: Optional[dict[str, str]] = None,
        transport: str = "udp",
        books: Optional[MediaTransportBooks] = None,
    ) -> None:
        self.env = env
        self.node = node
        #: the dedicated scheduler NI: no disks, so the cache may be enabled
        self.card = node.add_i960_card(segment=segment)
        if enable_cache:
            self.card.enable_data_cache()
        switch.attach(self.card.eth_ports[0])
        self.vxworks = WindScheduler(env, cpu_spec=self.card.cpu.spec, name=f"{self.card.name}.vx")
        self.vxworks.spawn_system_tasks()
        self.scheduler = DWCSScheduler(
            ctx=ctx if ctx is not None else FixedPointContext(),
            costs=costs,
            work_conserving=False,
        )
        self._txq: Store = Store(env, name=f"{self.card.name}.txq")
        self.engine = StreamingEngine(
            env, self.scheduler, self.card.cpu, self._transmit
        )
        self.vxworks.spawn("tDWCS", self.engine.task_body, priority=100)
        # tNetTask: protocol processing is NI CPU work too, at higher
        # priority than the scheduler (as in VxWorks network stacks).
        self.vxworks.spawn("tNetTask", self._net_task, priority=55)
        #: single-copy frame bodies held in the card's pinned memory until
        #: transmitted ("To conserve memory, we maintain a single copy of
        #: frames in NI memory")
        self._frame_allocs: dict[int, Allocation] = {}
        self.engine.on_drop = self._release_dropped
        # graceful degradation: crash sheds, reset re-admits (see
        # :mod:`repro.faults` for the injection side)
        self.card.on_crash.append(self._on_card_crash)
        self.card.on_reset.append(self._on_card_reset)
        self.frames_lost_to_crash = 0
        #: this card's share ledger (per-card in multi-card services)
        self.admission = admission
        #: stream -> client-port routing; shared with the owning service so
        #: migrated streams keep their destination
        self._dest_of_stream = dest_of_stream if dest_of_stream is not None else {}
        #: reliable media wire path (None on the historical raw UDP path,
        #: which must stay bit-identical — nothing is constructed for it)
        self.transport = resolve_transport(transport)
        self.wire: Optional[MediaWireSender] = None
        if self.transport != "udp":
            self.wire = MediaWireSender(
                env,
                self.card.eth_ports[0],
                self.transport,
                self.card.stack,
                books,
                name=self.card.name,
            )

    # -- failure handling -----------------------------------------------------
    def _on_card_crash(self) -> None:
        """NI went down: park the scheduler and shed the admitted streams.

        Queued transmit descriptors die with the card (their single-copy
        frame bodies are freed); frames already in the scheduler rings age
        out and are dropped/accounted by DWCS miss processing on resume.
        """
        self.engine.pause()
        obs = self.env.obs
        for desc in self._txq.items:
            self.frames_lost_to_crash += 1
            if obs is not None:
                obs.count("card.frames_lost_to_crash", card=self.card.name)
            alloc = self._frame_allocs.pop(id(desc.frame), None)
            if alloc is not None:
                alloc.free()
        self._txq.items.clear()
        if self.admission is not None:
            for stream_id in self.admission.admitted_streams:
                self.admission.suspend(stream_id)

    def _on_card_reset(self) -> None:
        """NI back up: re-admit what fits, restart the scheduler task."""
        if self.admission is not None:
            self.admission.resume_all()
        self.engine.resume()

    def _transmit(self, desc: FrameDescriptor) -> Generator:
        yield self._txq.put(desc)

    def _release_dropped(self, desc: FrameDescriptor) -> None:
        """Dropped packets release their frame body immediately."""
        alloc = self._frame_allocs.pop(id(desc.frame), None)
        if alloc is not None:
            alloc.free()

    def _reserve_frame_memory(self, frame: MediaFrame) -> Generator:
        """Process: hold the producer until card memory can take the frame
        body (the 4 MB board is a real constraint the paper engineers
        around with compact descriptors and single-copy frames)."""
        while True:
            try:
                alloc = self.card.memory.allocate(frame.size_bytes, tag="frame")
            except OutOfMemoryError:
                yield self.env.timeout(10_000.0)
                continue
            self._frame_allocs[id(frame)] = alloc
            return

    def _net_task(self, task: Task) -> Generator:
        port = self.card.eth_ports[0]
        while True:
            desc: FrameDescriptor = yield self._txq.get()
            obs = self.env.obs
            if self.card.crashed:
                # dispatched into the crash window: the frame is lost
                self.frames_lost_to_crash += 1
                if obs is not None:
                    obs.count("card.frames_lost_to_crash", card=self.card.name)
                alloc = self._frame_allocs.pop(id(desc.frame), None)
                if alloc is not None:
                    alloc.free()
                continue
            sp = (
                obs.begin(
                    "stack",
                    track=f"cpu:{self.card.cpu.name}",
                    stream=desc.stream_id,
                    seq=desc.frame.seqno,
                )
                if obs is not None
                else None
            )
            yield task.compute(self.card.stack.cost_us(desc.size_bytes))
            if obs is not None:
                obs.end(sp)
            dest = self._dest_of_stream[desc.stream_id]
            if self.wire is None:
                frame = NetFrame(
                    payload_bytes=desc.size_bytes,
                    stream_id=desc.stream_id,
                    seqno=desc.frame.seqno,
                    meta=desc.frame,
                )
                yield from port.send(frame, dest)
            else:
                # reliable transport: the frame becomes one application
                # record; the stack's own sender paces the wire from here
                yield from self.wire.send_media(desc, dest)
            # frame body leaves card memory once it is on the wire (or in
            # the transport's retransmit custody)
            alloc = self._frame_allocs.pop(id(desc.frame), None)
            if alloc is not None:
                alloc.free()


class NIStreamingService(_BaseService):
    """DWCS on a dedicated i960 RD scheduler card under VxWorks."""

    def __init__(
        self,
        env: Environment,
        node: ServerNode,
        switch: EthernetSwitch,
        scheduler_segment: int = 0,
        ctx: Optional[ArithmeticContext] = None,
        costs: Optional[DWCSCostModel] = None,
        enable_cache: bool = True,
        admission: Optional[AdmissionController] = None,
        transport: str = "udp",
    ) -> None:
        super().__init__(env, switch, admission=admission, transport=transport)
        self.node = node
        self.runtime = SchedulerCardRuntime(
            env,
            node,
            switch,
            segment=scheduler_segment,
            ctx=ctx,
            costs=costs,
            enable_cache=enable_cache,
            admission=admission,
            dest_of_stream=self._dest_of_stream,
            transport=transport,
            books=self.books,
        )
        # the runtime's parts under their historical names
        self.card = self.runtime.card
        self.vxworks = self.runtime.vxworks
        self.scheduler = self.runtime.scheduler
        self.engine = self.runtime.engine
        self._txq = self.runtime._txq

    @property
    def frames_lost_to_crash(self) -> int:
        return self.runtime.frames_lost_to_crash

    def start_producer(
        self,
        file: MPEGFile,
        inject_gap_us: float = 1_000.0,
        prebuffer_frames: int = 0,
    ) -> None:
        """A producer on a disk-attached peer card: frames cross the PCI
        segment by peer DMA into the scheduler card's memory (path B)."""
        producer_card = self.node.add_i960_card(segment=0)
        fs = producer_card.attach_disk()
        fs_file = fs.open(file.name, size_bytes=max(1, file.size_bytes))

        def producer() -> Generator:
            for i, frame in enumerate(file.frames):
                obs = self.env.obs
                sid, seq = frame.stream_id, frame.seqno
                track = f"stream:{sid}"
                sp = (
                    obs.begin("read", track=track, stream=sid, seq=seq)
                    if obs is not None
                    else None
                )
                got = yield from self._read_with_retry(fs_file, frame.size_bytes)
                if obs is not None:
                    obs.end(sp, bytes=got)
                if got == 0:
                    continue  # unreadable after retries: skip the frame
                if obs is not None:
                    sp = obs.begin("memwait", track=track, stream=sid, seq=seq)
                yield from self.runtime._reserve_frame_memory(frame)
                if obs is not None:
                    obs.end(sp)
                    sp = obs.begin("xfer", track=track, stream=sid, seq=seq)
                yield from producer_card.dma.peer_transfer(frame.size_bytes)
                if obs is not None:
                    obs.end(sp)
                yield from self._submit_with_backpressure(frame)
                if i >= prebuffer_frames:
                    yield self.env.timeout(inject_gap_us)

        self.env.process(producer(), name=f"producer:{file.name}")


class HostStreamingService(_BaseService):
    """DWCS as a host process on the time-shared Solaris host."""

    def __init__(
        self,
        env: Environment,
        node: ServerNode,
        switch: EthernetSwitch,
        nic_segment: int = 0,
        ctx: Optional[ArithmeticContext] = None,
        costs: Optional[DWCSCostModel] = None,
        bind_cpu: Optional[int] = None,
        priority: int = 120,
        admission: Optional[AdmissionController] = None,
        transport: str = "udp",
    ) -> None:
        super().__init__(env, switch, admission=admission, transport=transport)
        self.node = node
        self.nic = node.add_82557_nic(segment=nic_segment)
        switch.attach(self.nic.eth_port)
        self.wire: Optional[MediaWireSender] = None
        if self.transport != "udp":
            self.wire = MediaWireSender(
                env,
                self.nic.eth_port,
                self.transport,
                node.host_stack,
                self.books,
                name=node.name,
            )
        self.scheduler = DWCSScheduler(
            ctx=ctx if ctx is not None else FixedPointContext(),
            costs=costs if costs is not None else HOST_DWCS_COSTS,
            work_conserving=False,
        )
        self._txq: Store = Store(env, name=f"{node.name}.txq")
        self.engine = StreamingEngine(
            env, self.scheduler, node.host_cpu, self._transmit
        )
        # The prototype host DWCS process consumes CPU continuously enough
        # that the Solaris TS class decays it toward the bottom of the
        # priority range under load; fresh web workers are dispatched ahead
        # of it. We model the steady state of that decay by placing the
        # scheduler (and its transmit path) below the web pool's level —
        # the paper's "scheduler receives CPU at lower rates because of
        # increased service load".
        self.dwcs_task = node.host_os.spawn(
            "dwcs", self.engine.task_body, priority=priority, bound_cpu=bind_cpu
        )
        # tNet and the scheduler are ordinary time-sharing processes: on
        # the host they enjoy NO priority advantage over the Apache pool
        # (the structural reason Figures 7/8 degrade under load).
        self.net_task = node.host_os.spawn("tNet", self._net_task, priority=priority)

    def _transmit(self, desc: FrameDescriptor) -> Generator:
        yield self._txq.put(desc)

    def _net_task(self, task: Task) -> Generator:
        bridge = self.node.bridge_for(self.nic.segment)
        port = self.nic.eth_port
        while True:
            desc: FrameDescriptor = yield self._txq.get()
            obs = self.env.obs
            sid, seq = desc.stream_id, desc.frame.seqno
            sp = (
                obs.begin(
                    "stack",
                    track=f"cpu:{self.node.host_cpu.name}",
                    stream=sid,
                    seq=seq,
                )
                if obs is not None
                else None
            )
            # protocol processing on the (contended) host CPU
            yield task.compute(self.node.host_stack.cost_us(desc.size_bytes))
            if obs is not None:
                obs.end(sp)
                sp = obs.begin("txbridge", track=f"stream:{sid}", stream=sid, seq=seq)
            # frame body: host memory -> NIC across the bridge
            yield from bridge.transfer(desc.size_bytes)
            if obs is not None:
                obs.end(sp)
            dest = self._dest_of_stream[desc.stream_id]
            if self.wire is None:
                frame = NetFrame(
                    payload_bytes=desc.size_bytes,
                    stream_id=desc.stream_id,
                    seqno=desc.frame.seqno,
                    meta=desc.frame,
                )
                yield from port.send(frame, dest)
            else:
                yield from self.wire.send_media(desc, dest)

    def start_producer(
        self,
        file: MPEGFile,
        inject_gap_us: float = 1_000.0,
        segmentation_us: float = 150.0,
        prebuffer_frames: int = 0,
        prebuffer_gap_us: float = 80_000.0,
        priority: int = 100,
    ) -> None:
        """The MPEG segmentation process as a host thread: reads the file
        from a UFS volume, injects frames into host-memory queues.

        ``segmentation_us`` is the per-frame CPU cost of parsing the
        elementary stream; the Figure experiments use the calibrated value
        from :mod:`repro.experiments.calibration` to reproduce Figure 6's
        no-web-load utilization baseline.
        """
        controller = self.node.add_disk_controller(segment=0)
        fs = controller.mount_ufs()
        fs_file = fs.open(file.name, size_bytes=max(1, file.size_bytes))
        bridge = self.node.bridge_for(controller.segment)

        def producer(task: Task) -> Generator:
            for i, frame in enumerate(file.frames):
                obs = self.env.obs
                sid, seq = frame.stream_id, frame.seqno
                track = f"stream:{sid}"
                sp = (
                    obs.begin("read", track=track, stream=sid, seq=seq)
                    if obs is not None
                    else None
                )
                got = yield from self._read_with_retry(fs_file, frame.size_bytes)
                if obs is not None:
                    obs.end(sp, bytes=got)
                if got == 0:
                    continue  # unreadable after retries: skip the frame
                if obs is not None:
                    sp = obs.begin("xfer", track=track, stream=sid, seq=seq)
                yield from bridge.transfer(frame.size_bytes)
                if obs is not None:
                    obs.end(sp)
                    sp = obs.begin("seg", track=track, stream=sid, seq=seq)
                yield task.compute(segmentation_us)  # parse/segment the frame
                if obs is not None:
                    obs.end(sp)
                yield from self._submit_with_backpressure(frame)
                # prebuffer fills fast (but not CPU-saturating); then pace
                yield self.env.timeout(
                    inject_gap_us if i >= prebuffer_frames else prebuffer_gap_us
                )

        # The segmentation producers sleep most of their cycle (disk I/O +
        # pacing timers), so the Solaris TS class keeps them at boosted
        # priority; the DWCS process competes at the web pool's level —
        # the asymmetry behind Figures 7/8's degradation.
        self.node.host_os.spawn(f"mpeg_seg:{file.name}", producer, priority=priority)
