"""Cluster-scale assembly (Figure 1).

"This paper employs a server configured as 16 quad Pentium Pro nodes
connected via I2O-based NIs" — nodes whose i960 RD cards connect to a
system-area switch, with media streams flowing between nodes through the
NIs without host involvement. :class:`Cluster` builds that topology and
provides the inter-node frame path ("for distributed implementations of
media streams on the cluster server, traffic elimination also occurs for
media streams entering the NI from the network").
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.ethernet import EthernetSwitch, NetFrame
from repro.hw.nic import I960RDCard
from repro.sim import Environment, Event

from .node import ServerNode

__all__ = ["Cluster"]


class Cluster:
    """A switch plus N server nodes, each with one SAN-facing i960 card."""

    def __init__(
        self,
        env: Environment,
        n_nodes: int,
        n_cpus_per_node: int = 4,
        name: str = "cluster",
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.env = env
        self.name = name
        #: the system-area network switch (100 Mbps switched Ethernet here,
        #: standing in for the SAN of the paper's testbed)
        self.san = EthernetSwitch(env, name=f"{name}.san")
        self.nodes: list[ServerNode] = []
        self.san_cards: list[I960RDCard] = []
        for i in range(n_nodes):
            node = ServerNode(env, name=f"{name}.n{i}", n_cpus=n_cpus_per_node)
            card = node.add_i960_card(segment=0)
            # port 1 faces the SAN; port 0 stays free for client delivery
            self.san.attach(card.eth_ports[1])
            self.nodes.append(node)
            self.san_cards.append(card)
        #: frames that reached a SAN card after it crashed (lost at the NI)
        self.frames_lost_to_crash = 0

    def __len__(self) -> int:
        return len(self.nodes)

    def min_cross_latency_us(self) -> float:
        """Partition-boundary declaration: the minimum node-to-node latency
        across the SAN (per-node PDES partitions,
        :mod:`repro.pdes.boundary`).

        Every inter-node frame pays the source NI's fixed per-packet
        encapsulation cost before it reaches the wire, then the SAN
        switch's store-and-forward latency; wire time, decapsulation, and
        queueing only add to that."""
        stack_floor = min(card.stack.per_packet_us for card in self.san_cards)
        return stack_floor + self.san.min_cross_latency_us()

    def probe_node(self, node_idx: int) -> Generator[Event, None, bool]:
        """Process: PCI status probe of a node's SAN card (see
        :meth:`repro.hw.nic.I960RDCard.status_probe`) — the cluster-level
        health sweep a failure detector runs before declaring a node's NI
        dead rather than partitioned."""
        alive = yield from self.san_cards[node_idx].status_probe()
        return alive

    def san_port_name(self, node_idx: int) -> str:
        return self.san_cards[node_idx].eth_ports[1].name

    def send_between_nodes(
        self,
        src_idx: int,
        dst_idx: int,
        nbytes: int,
        stream_id: Optional[str] = None,
        seqno: int = 0,
    ) -> Generator[Event, None, float]:
        """Process: move a frame NI-to-NI across the SAN.

        The frame leaves the source card and enters the destination card
        without either host's CPU, memory, or system bus being involved —
        the cluster-scale version of traffic elimination. Returns latency.
        """
        if src_idx == dst_idx:
            raise ValueError("source and destination nodes must differ")
        env = self.env
        src, dst = self.san_cards[src_idx], self.san_cards[dst_idx]
        if src.crashed:
            # fail fast, like the host-side VCMPeerDown path: a wedged
            # source card cannot encapsulate, so don't charge wire time
            raise RuntimeError(f"{src.name}: source SAN card is down")
        start = env.now
        yield env.timeout(src.stack.cost_us(nbytes))  # NI-side encapsulation
        frame = NetFrame(payload_bytes=nbytes, stream_id=stream_id, seqno=seqno)
        yield from src.eth_ports[1].send(frame, self.san_port_name(dst_idx))
        if dst.crashed:
            # the wire delivered, the dead card didn't: frame lost at the
            # NI (drain the inbox so the port doesn't wedge)
            yield dst.eth_ports[1].receive()
            self.frames_lost_to_crash += 1
            return env.now - start
        yield env.timeout(dst.stack.cost_us(nbytes))  # NI-side decapsulation
        # drain the destination inbox (delivery complete)
        yield dst.eth_ports[1].receive()
        return env.now - start

    def host_bus_traffic(self) -> dict[str, int]:
        """Per-node host-system-bus byte counts (zero for NI-to-NI flows)."""
        return {node.name: node.system_bus.bytes_transferred for node in self.nodes}
