"""The three frame-transfer paths of Figure 3.

* **Path A** — Disk → host CPU/memory → I/O bus → (non-I2O) NI → network.
  Every frame crosses the host bridge twice (disk→memory, memory→NIC) and
  burns host CPU for filesystem and protocol work.
* **Path B** — Disk on one i960 RD card → PCI peer DMA → scheduler card →
  network. No host CPU, no host memory, no system bus.
* **Path C** — Disk and scheduler on the *same* i960 RD card → network.
  Not even the PCI bus is involved.

Each path is a process returning the end-to-end latency of one frame; the
Table 4 experiment runs them over 1000 transfers. They are also the
building blocks of the streaming services in :mod:`repro.server.streaming`.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.ethernet import CLIENT_STACK, EthernetPort, NetFrame
from repro.hw.filesystem import File
from repro.hw.nic import I960RDCard, Intel82557NIC
from repro.sim import Environment, Event

from .node import DiskController, ServerNode

__all__ = ["path_a_transfer", "path_b_transfer", "path_c_transfer", "deliver_to_client"]


def deliver_to_client(
    env: Environment,
    port: EthernetPort,
    dest: str,
    nbytes: int,
    stream_id: Optional[str] = None,
    seqno: int = 0,
) -> Generator[Event, None, None]:
    """Process: client-side receive handling included (Table 4 measures to
    the remote client through its protocol stack)."""
    frame = NetFrame(payload_bytes=nbytes, stream_id=stream_id, seqno=seqno)
    yield from port.send(frame, dest)
    yield env.timeout(CLIENT_STACK.cost_us(nbytes))


def path_a_transfer(
    node: ServerNode,
    controller: DiskController,
    file: File,
    nic: Intel82557NIC,
    dest: str,
    nbytes: int,
) -> Generator[Event, None, float]:
    """Process: one frame over path A; returns its latency in µs."""
    env = node.env
    start = env.now
    # 1. filesystem read: disk into controller, then DMA into host memory
    #    across the bridge (I/O bus -> system bus).
    got = yield from file.read_next(nbytes)
    if got == 0:
        return 0.0
    bridge = node.bridge_for(controller.segment)
    yield from bridge.transfer(got)
    # 2. host protocol processing (UDP/IP encapsulation on the host CPU).
    yield env.timeout(node.host_stack.cost_us(got))
    # 3. DMA from host memory to the NIC across the bridge again.
    nic_bridge = node.bridge_for(nic.segment)
    yield from nic_bridge.transfer(got)
    # 4. onto the wire, through the switch, into the client.
    yield from deliver_to_client(env, nic.eth_port, dest, got)
    return env.now - start


def path_b_transfer(
    producer_card: I960RDCard,
    scheduler_card: I960RDCard,
    file: File,
    dest: str,
    nbytes: int,
    eth_port: int = 0,
) -> Generator[Event, None, float]:
    """Process: one frame over path B; returns its latency in µs."""
    env = producer_card.env
    if producer_card.segment is not scheduler_card.segment:
        raise ValueError("path B requires both cards on one PCI segment")
    start = env.now
    # 1. producer card reads the frame from its own disk into card memory.
    got = yield from file.read_next(nbytes)
    if got == 0:
        return 0.0
    # 2. peer-to-peer DMA to the scheduler card: I/O bus only.
    yield from producer_card.dma.peer_transfer(got)
    # 3. scheduler card's protocol stack + wire + client.
    yield env.timeout(scheduler_card.stack.cost_us(got))
    yield from deliver_to_client(env, scheduler_card.eth_ports[eth_port], dest, got)
    return env.now - start


def path_c_transfer(
    card: I960RDCard,
    file: File,
    dest: str,
    nbytes: int,
    eth_port: int = 0,
) -> Generator[Event, None, float]:
    """Process: one frame over path C; returns its latency in µs."""
    env = card.env
    start = env.now
    # 1. frame from the card's own disk straight into card memory.
    got = yield from file.read_next(nbytes)
    if got == 0:
        return 0.0
    # 2. protocol stack on the card, wire, client. No bus domain crossed.
    yield env.timeout(card.stack.cost_us(got))
    yield from deliver_to_client(env, card.eth_ports[eth_port], dest, got)
    return env.now - start
