"""Server architectures: compute nodes, the Figure-3 frame-transfer paths,
host- and NI-based streaming service assemblies, the HA multi-card service,
and the cluster topology."""

from .cluster import Cluster
from .failover import HA_HEARTBEAT_INTERVAL_US, HAStreamingService
from .node import DiskController, ServerNode
from .paths import (
    deliver_to_client,
    path_a_transfer,
    path_b_transfer,
    path_c_transfer,
)
from .streaming import (
    HOST_DWCS_COSTS,
    HostStreamingService,
    NIStreamingService,
    SchedulerCardRuntime,
)

__all__ = [
    "ServerNode",
    "DiskController",
    "Cluster",
    "path_a_transfer",
    "path_b_transfer",
    "path_c_transfer",
    "deliver_to_client",
    "HostStreamingService",
    "NIStreamingService",
    "SchedulerCardRuntime",
    "HAStreamingService",
    "HA_HEARTBEAT_INTERVAL_US",
    "HOST_DWCS_COSTS",
]
