"""Server architectures: compute nodes, the Figure-3 frame-transfer paths,
host- and NI-based streaming service assemblies, and the cluster topology."""

from .cluster import Cluster
from .node import DiskController, ServerNode
from .paths import (
    deliver_to_client,
    path_a_transfer,
    path_b_transfer,
    path_c_transfer,
)
from .streaming import HOST_DWCS_COSTS, HostStreamingService, NIStreamingService

__all__ = [
    "ServerNode",
    "DiskController",
    "Cluster",
    "path_a_transfer",
    "path_b_transfer",
    "path_c_transfer",
    "deliver_to_client",
    "HostStreamingService",
    "NIStreamingService",
    "HOST_DWCS_COSTS",
]
