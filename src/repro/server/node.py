"""A server compute node: host CPUs, buses, slots, cards, disks.

Mirrors the paper's testbed: a quad Pentium Pro running a Solaris-like
time-sharing OS, 128 MB of memory, one or two PCI bus segments behind
host bridges, and a population of I2O i960 RD cards, plain Intel 82557
NICs, and host disk controllers in the slots.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.bus import Bus
from repro.hw.cpu import CPU, CPUSpec, PENTIUM_PRO_200
from repro.hw.disk import SCSIDisk
from repro.hw.ethernet import HOST_STACK, StackCosts
from repro.hw.filesystem import DosFS, Filesystem, UFS
from repro.hw.memory import MB, MemoryRegion
from repro.hw.nic import I960RDCard, Intel82557NIC
from repro.hw.pci import PCIBridge, PCISegment
from repro.rtos.solaris import SolarisHostOS
from repro.sim import Environment

__all__ = ["DiskController", "ServerNode"]


class DiskController:
    """A plain (non-I2O) SCSI controller card with one attached disk.

    Transfers between its disk and host memory cross the PCI segment *and*
    the host system bus — the path-A storage leg.
    """

    def __init__(self, env: Environment, segment: PCISegment, name: str = "scsi0") -> None:
        self.env = env
        self.segment = segment
        self.name = name
        self.disk = SCSIDisk(env, name=f"{name}.disk")
        segment.attach(self)

    def mount_ufs(self) -> UFS:
        """Mount the disk as a Solaris UFS volume."""
        return UFS(self.env, self.disk)

    def mount_dosfs(self) -> DosFS:
        """Mount the disk as a VxWorks dosFs volume on the host.

        The host has no cached FAT-chain integration for dosFs (the paper
        had to mount the VxWorks filesystem on Solaris to run Experiment
        I against the same volume) — hence ``chain_cached=False`` and a
        host-sized per-read overhead.
        """
        return DosFS(self.env, self.disk, chain_cached=False, per_read_overhead_us=300.0)


class ServerNode:
    """One cluster node (the paper's quad Pentium Pro server)."""

    def __init__(
        self,
        env: Environment,
        name: str = "node0",
        n_cpus: int = 4,
        memory_mb: int = 128,
        n_pci_segments: int = 1,
        cpu_spec: CPUSpec = PENTIUM_PRO_200,
        host_stack: StackCosts = HOST_STACK,
    ) -> None:
        if n_pci_segments < 1:
            raise ValueError("need at least one PCI segment")
        self.env = env
        self.name = name
        self.host_os = SolarisHostOS(env, n_cpus=n_cpus, cpu_spec=cpu_spec, name=f"{name}.os")
        #: host CPU instance for op-count → time conversion of host code
        self.host_cpu = CPU(cpu_spec, name=f"{name}.cpu")
        self.host_cpu.cache.enable()  # hosts run with caches on
        self.memory = MemoryRegion(memory_mb * MB, name=f"{name}.mem")
        self.system_bus = Bus(env, f"{name}.sysbus", bandwidth_mb_s=528.0)
        self.host_stack = host_stack
        self.segments = [
            PCISegment(env, name=f"{name}.pci{i}") for i in range(n_pci_segments)
        ]
        self.bridges = [
            PCIBridge(env, self.system_bus, seg) for seg in self.segments
        ]
        self.i960_cards: list[I960RDCard] = []
        self.nics: list[Intel82557NIC] = []
        self.disk_controllers: list[DiskController] = []

    # -- slot population ---------------------------------------------------------
    def add_i960_card(self, segment: int = 0, **kwargs) -> I960RDCard:
        card = I960RDCard(
            self.env,
            self.segments[segment],
            name=f"{self.name}.i2o{len(self.i960_cards)}",
            **kwargs,
        )
        self.i960_cards.append(card)
        return card

    def add_82557_nic(self, segment: int = 0) -> Intel82557NIC:
        nic = Intel82557NIC(
            self.env,
            self.segments[segment],
            name=f"{self.name}.eepro{len(self.nics)}",
        )
        self.nics.append(nic)
        return nic

    def add_disk_controller(self, segment: int = 0) -> DiskController:
        ctrl = DiskController(
            self.env,
            self.segments[segment],
            name=f"{self.name}.scsi{len(self.disk_controllers)}",
        )
        self.disk_controllers.append(ctrl)
        return ctrl

    def bridge_for(self, segment: PCISegment) -> PCIBridge:
        for bridge in self.bridges:
            if bridge.segment is segment:
                return bridge
        raise ValueError(f"{segment.name} is not a segment of {self.name}")

    def set_online_cpus(self, n: int) -> None:
        """Model 'psradm'-style offlining by rebuilding the host OS.

        The paper brings CPUs off-line per experiment ("two of the CPUs are
        brought off-line for a total of two on-line CPUs"). Must be called
        before tasks are spawned.
        """
        if self.host_os.tasks:
            raise RuntimeError("cannot offline CPUs after tasks were spawned")
        self.host_os = SolarisHostOS(
            self.env, n_cpus=n, cpu_spec=self.host_os.cpu_spec, name=f"{self.name}.os"
        )

    def __repr__(self) -> str:
        return (
            f"<ServerNode {self.name!r} cpus={self.host_os.n_cpus} "
            f"i960={len(self.i960_cards)} nics={len(self.nics)}>"
        )
