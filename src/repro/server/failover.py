"""The multi-card HA streaming service.

Composes N :class:`~repro.server.streaming.SchedulerCardRuntime` instances
(one dedicated i960 scheduler card each) and wires the full HA plane onto
every card:

* an I2O :class:`~repro.dvcm.messages.MessageQueuePair` + NI-side
  :class:`~repro.dvcm.runtime.VCMRuntime` with the
  :class:`~repro.ha.migration.HAExtension` loaded (``tVCM`` task);
* a :class:`~repro.ha.heartbeat.HeartbeatEmitter` (``tBeat`` task) and the
  host-side beat pump;
* a :class:`~repro.ha.watchdog.Watchdog` per card, its ``on_dead`` wired to
  the shared :class:`~repro.ha.migration.FailoverCoordinator`;
* a :class:`~repro.ha.checkpoint.CheckpointMirror` mirroring per-stream
  DWCS state to host memory on every engine epoch;
* a per-card :class:`~repro.core.admission.AdmissionController` — each
  card's utilization ledger is its own, which is what makes placement and
  failover capacity-aware.

Placement at ``open_stream`` picks the live card with the most admission
headroom (ties break to the lowest card index). Producers route each frame
through :meth:`HAStreamingService._route`, which follows the stream to its
current card — the splice point for live migration. Post-failover overload
sheds B-frames of degraded streams before it violates anyone's window.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.admission import AdmissionController
from repro.core.attributes import StreamSpec
from repro.core.costs import DWCSCostModel
from repro.dvcm.api import VCMInterface
from repro.dvcm.messages import MessageQueuePair
from repro.dvcm.runtime import VCMRuntime
from repro.ha import (
    CheckpointMirror,
    FailoverCoordinator,
    HAExtension,
    HeartbeatEmitter,
    Watchdog,
    attach_beat_pump,
)
from repro.ha.migration import DEFAULT_DEGRADED_FRACTION
from repro.hw.ethernet import EthernetSwitch
from repro.media.frames import FrameType, MediaFrame
from repro.media.mpeg import MPEGFile
from repro.media.adaptation import quality_ladder
from repro.metrics.perfmeter import RecoveryMeter
from repro.sim import Environment

from .node import ServerNode
from .streaming import SchedulerCardRuntime, _BaseService

__all__ = ["HAStreamingService", "HA_HEARTBEAT_INTERVAL_US"]

#: default beacon period for the service's watchdog plane
HA_HEARTBEAT_INTERVAL_US = 250_000.0

#: producer poll period while a stream is mid-migration (no card serves it)
ROUTE_POLL_US = 10_000.0


class _CardPlane:
    """The HA attachments of one scheduler card."""

    def __init__(
        self,
        env: Environment,
        runtime: SchedulerCardRuntime,
        heartbeat_interval_us: float,
        k_missed: int,
    ) -> None:
        card = runtime.card
        self.runtime = runtime
        self.mq = MessageQueuePair(env, card.segment, name=f"{card.name}.mq")
        self.vcm_runtime = VCMRuntime(
            env, self.mq, card.cpu, name=f"{card.name}.vcm", card=card
        )
        self.vcm_runtime.load_extension(HAExtension(runtime.scheduler))
        runtime.vxworks.spawn("tVCM", self.vcm_runtime.task_body, priority=60)
        self.emitter = HeartbeatEmitter(
            env, card, self.mq, runtime.vxworks, interval_us=heartbeat_interval_us
        )
        self.vcm = VCMInterface(env, self.mq, name=f"host:{card.name}", card=card)
        self.mirror = CheckpointMirror(env, runtime)
        self.watchdog = Watchdog(
            env, card, interval_us=heartbeat_interval_us, k_missed=k_missed
        )
        attach_beat_pump(env, self.mq, self.watchdog)


class HAStreamingService(_BaseService):
    """N scheduler cards, heartbeat-supervised, with live failover."""

    def __init__(
        self,
        env: Environment,
        node: ServerNode,
        switch: EthernetSwitch,
        n_cards: int = 2,
        scheduler_segment: int = 0,
        costs: Optional[DWCSCostModel] = None,
        utilization_bound: float = 0.85,
        heartbeat_interval_us: float = HA_HEARTBEAT_INTERVAL_US,
        k_missed: int = 3,
        transport: str = "udp",
    ) -> None:
        if n_cards < 2:
            raise ValueError("an HA service needs at least two scheduler cards")
        super().__init__(env, switch, admission=None, transport=transport)
        self.node = node
        self.meter = RecoveryMeter(env)
        self.coordinator = FailoverCoordinator(env, self, self.meter)
        self.runtimes: list[SchedulerCardRuntime] = []
        self.planes: list[_CardPlane] = []
        for _ in range(n_cards):
            runtime = SchedulerCardRuntime(
                env,
                node,
                switch,
                segment=scheduler_segment,
                costs=costs,
                admission=AdmissionController(utilization_bound=utilization_bound),
                dest_of_stream=self._dest_of_stream,
                transport=transport,
                books=self.books,
            )
            plane = _CardPlane(env, runtime, heartbeat_interval_us, k_missed)
            plane.watchdog.on_dead.append(
                lambda rt=runtime: self.coordinator.card_died(rt)
            )
            plane.watchdog.on_partition.append(self._on_partition)
            runtime.card.on_crash.append(self._on_any_crash)
            self.runtimes.append(runtime)
            self.planes.append(plane)
        self._plane_of = {id(rt): plane for rt, plane in zip(self.runtimes, self.planes)}
        #: stream id -> runtime currently serving it (the splice point)
        self._runtime_of: dict[str, SchedulerCardRuntime] = {}
        self._spec_of: dict[str, StreamSpec] = {}
        self._service_time_of: dict[str, float] = {}
        self._degraded_fraction: dict[str, float] = {}
        #: stream ids in admission order (FIFO tiebreak for migration)
        self.placement_order: list[str] = []
        self.degraded_streams: set[str] = set()
        self.parked_streams: set[str] = set()
        #: stream id -> cluster-wide correlation id (set by a cluster
        #: admit; empty for standalone services) — stitches the node-local
        #: splice/park instants into the stream's front-door trace track
        self.corr_of: dict[str, str] = {}
        self.b_frames_shed = 0
        self.frames_lost_in_migration = 0

    # -- HA plumbing ---------------------------------------------------------
    def _on_any_crash(self) -> None:
        self.meter.mark_fault(self.total_violations)
        obs = self.env.obs
        if obs is not None:
            obs.count("ha.faults")
            obs.instant("ha_fault", track="ha:failover")

    def _on_partition(self) -> None:
        self.meter.mark_partition()
        self.meter.mark_detected()
        obs = self.env.obs
        if obs is not None:
            obs.count("ha.partitions")
            obs.instant("ha_partition", track="ha:failover")

    @property
    def detection_budget_us(self) -> float:
        """Worst-case silence before a dead card is declared."""
        watchdog = self.planes[0].watchdog
        return watchdog.k_missed * watchdog.interval_us + watchdog.grace_us

    @property
    def total_violations(self) -> int:
        return sum(rt.scheduler.stats.violations for rt in self.runtimes)

    @property
    def frames_lost_to_crash(self) -> int:
        return sum(rt.frames_lost_to_crash for rt in self.runtimes)

    # -- coordinator accessors ----------------------------------------------
    def runtime_of(self, stream_id: str) -> Optional[SchedulerCardRuntime]:
        return self._runtime_of.get(stream_id)

    def mirror_of(self, runtime: SchedulerCardRuntime) -> CheckpointMirror:
        return self._plane_of[id(runtime)].mirror

    def vcm_of(self, runtime: SchedulerCardRuntime) -> VCMInterface:
        return self._plane_of[id(runtime)].vcm

    def loss_tolerance_of(self, stream_id: str) -> float:
        spec = self._spec_of[stream_id]
        return spec.loss_x / spec.loss_y if spec.loss_y else 0.0

    def service_time_of(self, stream_id: str) -> float:
        return self._service_time_of[stream_id]

    def degraded_fraction_of(self, stream_id: str) -> float:
        return self._degraded_fraction.get(stream_id, DEFAULT_DEGRADED_FRACTION)

    def surviving_runtimes(
        self, dead_runtime: SchedulerCardRuntime
    ) -> list[SchedulerCardRuntime]:
        """Live cards, most admission headroom first (index breaks ties)."""
        candidates = [
            (-rt.admission.headroom(), index, rt)
            for index, rt in enumerate(self.runtimes)
            if rt is not dead_runtime and not rt.card.crashed
        ]
        candidates.sort(key=lambda entry: (entry[0], entry[1]))
        return [rt for _, _, rt in candidates]

    def splice(
        self, stream_id: str, runtime: SchedulerCardRuntime, degraded: bool = False
    ) -> None:
        """Re-route the stream's send path to *runtime*'s card."""
        self._runtime_of[stream_id] = runtime
        if degraded:
            self.degraded_streams.add(stream_id)
        obs = self.env.obs
        if obs is not None:
            obs.count("ha.splices", card=runtime.card.name)
            fields = {
                "stream": stream_id,
                "card": runtime.card.name,
                "degraded": degraded,
            }
            corr = self.corr_of.get(stream_id)
            if corr:
                fields["corr"] = corr
            obs.instant("ha_splice", track="ha:failover", **fields)
        # first checkpoint on the new home
        self.mirror_of(runtime).capture(stream_id)

    def park(self, stream_id: str) -> None:
        self.parked_streams.add(stream_id)
        self._runtime_of.pop(stream_id, None)
        obs = self.env.obs
        if obs is not None:
            obs.count("ha.parked")
            fields = {"stream": stream_id}
            corr = self.corr_of.get(stream_id)
            if corr:
                fields["corr"] = corr
            obs.instant("ha_park", track="ha:failover", **fields)

    # -- stream setup --------------------------------------------------------
    def open_stream(
        self,
        spec: StreamSpec,
        client_name: str,
        service_time_us: Optional[float] = None,
    ) -> None:
        if client_name not in self.clients:
            raise KeyError(f"no client {client_name!r} attached")
        if service_time_us is None:
            raise ValueError("the HA service is admission-controlled: pass service_time_us")
        runtime = self._place(spec, service_time_us)
        if runtime is None:
            raise RuntimeError("admission refused: no scheduler card has headroom")
        runtime.scheduler.add_stream(spec)
        self._dest_of_stream[spec.stream_id] = client_name
        self._runtime_of[spec.stream_id] = runtime
        self._spec_of[spec.stream_id] = spec
        self._service_time_of[spec.stream_id] = service_time_us
        self.placement_order.append(spec.stream_id)
        # initial checkpoint: every admitted stream is restorable from t=0
        self.mirror_of(runtime).capture(spec.stream_id)

    def _place(
        self, spec: StreamSpec, service_time_us: float
    ) -> Optional[SchedulerCardRuntime]:
        order = sorted(
            range(len(self.runtimes)),
            key=lambda index: (-self.runtimes[index].admission.headroom(), index),
        )
        for index in order:
            runtime = self.runtimes[index]
            if runtime.card.crashed:
                continue
            if runtime.admission.admit(spec, service_time_us).admitted:
                return runtime
        return None

    # -- the producer path ---------------------------------------------------
    def start_producer(
        self,
        file: MPEGFile,
        inject_gap_us: float = 1_000.0,
        prebuffer_frames: int = 0,
    ) -> None:
        """Disk-attached peer-card producer that follows its stream.

        Identical to the single-card path-B producer except each frame is
        routed to the stream's *current* card — after a migration the peer
        DMA lands in the new card's memory without the producer noticing
        more than a short stall.
        """
        producer_card = self.node.add_i960_card(segment=0)
        fs = producer_card.attach_disk()
        fs_file = fs.open(file.name, size_bytes=max(1, file.size_bytes))
        stream_id = file.frames[0].stream_id if file.frames else None
        if stream_id is not None and file.frames:
            ladder = quality_ladder(file)
            anchors = next((r for r in ladder if r.name == "anchors"), None)
            if anchors is not None:
                self._degraded_fraction[stream_id] = len(anchors.frames) / len(file.frames)

        def producer() -> Generator:
            for i, frame in enumerate(file.frames):
                got = yield from self._read_with_retry(fs_file, frame.size_bytes)
                if got == 0:
                    continue  # unreadable after retries: skip the frame
                if (
                    frame.stream_id in self.degraded_streams
                    and frame.ftype is FrameType.B
                ):
                    # post-failover media adaptation: a degraded stream
                    # sends anchor frames only
                    self.b_frames_shed += 1
                    obs = self.env.obs
                    if obs is not None:
                        obs.count("ha.b_frames_shed", stream=frame.stream_id)
                    continue
                runtime = yield from self._route(frame.stream_id)
                if runtime is None:
                    return  # parked: the producer retires
                yield from runtime._reserve_frame_memory(frame)
                yield from producer_card.dma.peer_transfer(frame.size_bytes)
                yield from self._submit(runtime, frame)
                if i >= prebuffer_frames:
                    yield self.env.timeout(inject_gap_us)

        self.env.process(producer(), name=f"producer:{file.name}")

    def _route(self, stream_id: str) -> Generator:
        """Process: the runtime currently serving *stream_id*; stalls while
        the stream is between cards (migration in flight)."""
        while True:
            if stream_id in self.parked_streams:
                return None
            runtime = self._runtime_of.get(stream_id)
            if (
                runtime is not None
                and not runtime.card.crashed
                and stream_id in runtime.scheduler.streams
            ):
                return runtime
            yield self.env.timeout(ROUTE_POLL_US)

    def _submit(self, runtime: SchedulerCardRuntime, frame: MediaFrame) -> Generator:
        queue = runtime.scheduler.queues[frame.stream_id]
        while queue.full and not runtime.card.crashed:
            yield self.env.timeout(ROUTE_POLL_US)
        if runtime.card.crashed or frame.stream_id not in runtime.scheduler.streams:
            # the card died — or the stream was evicted/rescinded off this
            # card — between routing and submission; the frame body is lost
            self.frames_lost_in_migration += 1
            obs = self.env.obs
            if obs is not None:
                obs.count("ha.frames_lost_in_migration", stream=frame.stream_id)
            return
        runtime.engine.submit(frame)
