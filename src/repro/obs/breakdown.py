"""Latency-breakdown analyzer: fold datapath spans into per-hop tables.

Takes the raw span events a run collected and answers the paper's core
question per hop instead of per run: where did each frame's time go on
the disk → buffer → bridge → scheduler → stack → wire path, and how does
that split differ between the host-resident and NI-resident schedulers
(Fig. 7/8 told hop by hop)?

All statistics use nearest-rank percentiles over exact simulated-time
durations — no interpolation, no floating averaging tricks — so the
tables are byte-stable across same-seed runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..sim.trace import TraceEvent

__all__ = ["CompletedSpan", "HopStats", "CriticalPath", "LatencyBreakdown"]

#: canonical ordering of datapath hops for table/critical-path rendering;
#: hops not listed sort after these, alphabetically
HOP_ORDER = (
    "read",
    "fs",
    "xfer",
    "seg",
    "memwait",
    "squeue",
    "dispatch",
    "firmware",
    "i2o",
    "stack",
    "txbridge",
    "wire",
)


def _hop_rank(hop: str) -> tuple[int, str]:
    try:
        return (HOP_ORDER.index(hop), hop)
    except ValueError:
        return (len(HOP_ORDER), hop)


def percentile(sorted_values: list[float], pct: float) -> float:
    """Nearest-rank percentile over an ascending list (must be non-empty)."""
    if not sorted_values:
        raise ValueError("percentile of empty list")
    rank = max(1, math.ceil(pct / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class CompletedSpan:
    """A begin/end pair folded into one record."""

    span_id: int
    hop: str
    begin_us: float
    end_us: float
    fields: dict[str, Any]

    @property
    def duration_us(self) -> float:
        return self.end_us - self.begin_us

    @property
    def stream(self) -> Optional[str]:
        return self.fields.get("stream")

    @property
    def seq(self) -> Optional[int]:
        return self.fields.get("seq")


@dataclass
class HopStats:
    """Aggregate durations for one (stream, hop) or (all-streams, hop) cell."""

    hop: str
    durations_us: list[float] = field(default_factory=list)

    def add(self, duration_us: float) -> None:
        self.durations_us.append(duration_us)

    @property
    def count(self) -> int:
        return len(self.durations_us)

    @property
    def total_us(self) -> float:
        return sum(self.durations_us)

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def pct(self, p: float) -> float:
        return percentile(sorted(self.durations_us), p)

    def row(self) -> dict[str, Any]:
        return {
            "hop": self.hop,
            "count": self.count,
            "total_us": round(self.total_us, 3),
            "mean_us": round(self.mean_us, 3),
            "p50_us": round(self.pct(50), 3),
            "p95_us": round(self.pct(95), 3),
            "max_us": round(self.pct(100), 3),
        }


@dataclass
class CriticalPath:
    """One frame's ordered walk through the datapath.

    ``unattributed_us`` is the end-to-end wall minus the union coverage of
    its spans — genuine queueing/idle gaps no hop claims. Overlapping
    spans (a frame sitting in the scheduler queue while the previous frame
    transmits) are only counted once in the union.
    """

    stream: str
    seq: int
    begin_us: float
    end_us: float
    hops: list[tuple[str, float, float]]  # (hop, begin, end), time-ordered

    @property
    def end_to_end_us(self) -> float:
        return self.end_us - self.begin_us

    @property
    def covered_us(self) -> float:
        merged: list[list[float]] = []
        for _, b, e in sorted(self.hops, key=lambda h: (h[1], h[2])):
            if merged and b <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], e)
            else:
                merged.append([b, e])
        return sum(e - b for b, e in merged)

    @property
    def unattributed_us(self) -> float:
        return max(0.0, self.end_to_end_us - self.covered_us)


class LatencyBreakdown:
    """Fold a run's span events into tables and critical paths."""

    def __init__(self, events: Iterable[TraceEvent], label: str = "") -> None:
        self.label = label
        self.spans: list[CompletedSpan] = []
        self.unfinished = 0
        self._fold(events)

    def _fold(self, events: Iterable[TraceEvent]) -> None:
        open_spans: dict[int, TraceEvent] = {}
        for ev in events:
            ph = ev.fields.get("ph")
            sid = ev.fields.get("span")
            if ph == "B" and sid is not None:
                open_spans[sid] = ev
            elif ph == "E" and sid is not None:
                begin = open_spans.pop(sid, None)
                if begin is None:
                    continue  # begin fell off the ring; duration unknowable
                merged = {
                    k: v
                    for k, v in {**begin.fields, **ev.fields}.items()
                    if k not in ("ph", "span")
                }
                self.spans.append(
                    CompletedSpan(
                        span_id=sid,
                        hop=begin.name,
                        begin_us=begin.time_us,
                        end_us=ev.time_us,
                        fields=merged,
                    )
                )
        self.unfinished = len(open_spans)

    # -- tables -----------------------------------------------------------------
    def hops(self) -> list[str]:
        return sorted({s.hop for s in self.spans}, key=_hop_rank)

    def streams(self) -> list[str]:
        return sorted({s.stream for s in self.spans if s.stream is not None})

    def by_hop(self, stream: Optional[str] = None) -> list[HopStats]:
        """Per-hop stats, over all streams or one stream's spans only."""
        cells: dict[str, HopStats] = {}
        for s in self.spans:
            if stream is not None and s.stream != stream:
                continue
            cells.setdefault(s.hop, HopStats(s.hop)).add(s.duration_us)
        return [cells[h] for h in sorted(cells, key=_hop_rank)]

    def table_rows(self) -> list[dict[str, Any]]:
        """All-streams table plus one sub-table per stream, flattened with a
        ``scope`` column (``*`` = every stream)."""
        rows = []
        for stats in self.by_hop():
            rows.append({"scope": "*", **stats.row()})
        for stream in self.streams():
            for stats in self.by_hop(stream):
                rows.append({"scope": stream, **stats.row()})
        return rows

    # -- critical path -------------------------------------------------------------
    def frame_paths(self, stream: str) -> list[CriticalPath]:
        """Every (stream, seq) walk, ordered by seq."""
        frames: dict[int, list[CompletedSpan]] = {}
        for s in self.spans:
            if s.stream == stream and s.seq is not None:
                frames.setdefault(s.seq, []).append(s)
        paths = []
        for seq in sorted(frames):
            spans = sorted(frames[seq], key=lambda s: (s.begin_us, s.end_us))
            paths.append(
                CriticalPath(
                    stream=stream,
                    seq=seq,
                    begin_us=spans[0].begin_us,
                    end_us=max(s.end_us for s in spans),
                    hops=[(s.hop, s.begin_us, s.end_us) for s in spans],
                )
            )
        return paths

    def median_path(self, stream: str) -> Optional[CriticalPath]:
        """The frame whose end-to-end latency is the median — a
        representative walk, not the lucky best or unlucky worst."""
        paths = self.frame_paths(stream)
        if not paths:
            return None
        ordered = sorted(paths, key=lambda p: (p.end_to_end_us, p.seq))
        return ordered[(len(ordered) - 1) // 2]

    # -- rendering ----------------------------------------------------------------
    def render_table(self) -> str:
        header = f"{'scope':>8} {'hop':>9} {'count':>7} {'mean_us':>10} {'p50_us':>10} {'p95_us':>10} {'max_us':>10}"
        lines = [f"== latency breakdown: {self.label} ==" if self.label else "== latency breakdown ==", header]
        for row in self.table_rows():
            lines.append(
                f"{row['scope']:>8} {row['hop']:>9} {row['count']:>7} "
                f"{row['mean_us']:>10.1f} {row['p50_us']:>10.1f} "
                f"{row['p95_us']:>10.1f} {row['max_us']:>10.1f}"
            )
        return "\n".join(lines)

    def render_critical_path(self, stream: str) -> str:
        path = self.median_path(stream)
        title = f"critical path ({self.label}, stream {stream})" if self.label else f"critical path (stream {stream})"
        if path is None:
            return f"== {title} ==\n  (no frames observed)"
        lines = [
            f"== {title} ==",
            f"  frame seq={path.seq}  end-to-end={path.end_to_end_us:.1f}us  "
            f"unattributed={path.unattributed_us:.1f}us",
        ]
        for hop, b, e in path.hops:
            lines.append(
                f"  {hop:>9}  +{b - path.begin_us:>10.1f}us  dur={e - b:>10.1f}us"
            )
        return "\n".join(lines)
