"""Metrics registry: named counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` per observability plane collects every metric
the instrumented datapath produces, keyed by ``(name, sorted label set)``.
Labels are plain keyword arguments (``registry.count("nic.crashes",
card="rd0")``), so call sites stay one-liners. Snapshots are plain nested
dicts with deterministic ordering — same run, same seed, byte-identical
JSON — which is what the CI determinism smoke diffs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS_US"]

#: default latency buckets (µs) — tuned to the paper's timescales: PIO ops
#: are single-digit µs, DMA/bridge transfers tens to hundreds, scheduler
#: rounds and frame services milliseconds, failover tens of milliseconds
DEFAULT_BUCKETS_US = (
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
)

LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count (frames sent, faults injected...)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


@dataclass
class Gauge:
    """Last-write-wins instantaneous value (queue depth, window headroom)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> float:
        return self.value


@dataclass
class Histogram:
    """Fixed-bucket histogram with sum/count/min/max sidecars.

    ``buckets`` are upper bounds; an observation lands in the first bucket
    whose bound is >= the value, or the overflow slot past the last bound.
    """

    name: str
    buckets: tuple[float, ...] = DEFAULT_BUCKETS_US
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    observations: int = 0
    min_value: Optional[float] = None
    max_value: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.buckets:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"histogram {self.name!r} buckets must be ascending")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.observations += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.observations,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
        }


class MetricsRegistry:
    """Label-aware metric store with kind-conflict detection.

    A name is bound to one metric kind on first use; reusing it as a
    different kind raises immediately (a silent counter/gauge mixup would
    corrupt the snapshot rather than crash, which is worse).
    """

    def __init__(self) -> None:
        # name -> kind ("counter" | "gauge" | "histogram")
        self._kinds: dict[str, str] = {}
        # name -> {label_key: metric}
        self._metrics: dict[str, dict[LabelKey, Any]] = {}
        # name -> histogram bucket override
        self._buckets: dict[str, tuple[float, ...]] = {}

    # -- declaration ---------------------------------------------------------
    def declare_histogram(self, name: str, buckets: tuple[float, ...]) -> None:
        """Pin custom buckets for *name* before (or after first) use."""
        self._check_kind(name, "histogram")
        self._buckets[name] = tuple(buckets)

    def _check_kind(self, name: str, kind: str) -> None:
        bound = self._kinds.get(name)
        if bound is None:
            self._kinds[name] = kind
            self._metrics[name] = {}
        elif bound != kind:
            raise TypeError(f"metric {name!r} already registered as {bound}, not {kind}")

    def _series(self, name: str, kind: str, labels: dict[str, Any]) -> Any:
        self._check_kind(name, kind)
        key = _label_key(labels)
        series = self._metrics[name]
        metric = series.get(key)
        if metric is None:
            if kind == "counter":
                metric = Counter(name)
            elif kind == "gauge":
                metric = Gauge(name)
            else:
                metric = Histogram(name, buckets=self._buckets.get(name, DEFAULT_BUCKETS_US))
            series[key] = metric
        return metric

    # -- recording ------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        self._series(name, "counter", labels).inc(amount)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self._series(name, "gauge", labels).set(value)

    def gauge_add(self, name: str, delta: float, **labels: Any) -> None:
        self._series(name, "gauge", labels).add(delta)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self._series(name, "histogram", labels).observe(value)

    # -- reading ---------------------------------------------------------------
    def get(self, name: str, **labels: Any) -> Optional[Any]:
        series = self._metrics.get(name)
        if series is None:
            return None
        return series.get(_label_key(labels))

    def value(self, name: str, **labels: Any) -> float:
        """Counter/gauge value, or 0.0 when never recorded."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0.0
        snap = metric.snapshot()
        if isinstance(snap, dict):
            raise TypeError(f"metric {name!r} is a histogram; use get()")
        return snap

    def total(self, name: str) -> Optional[float]:
        """Sum of every series of *name* across label combinations
        (histograms contribute their observation counts); ``None`` when
        the name was never recorded."""
        series = self._metrics.get(name)
        if not series:
            return None
        out = 0.0
        for m in series.values():
            snap = m.snapshot()
            out += float(snap["count"]) if isinstance(snap, dict) else float(snap)
        return out

    def names(self) -> list[str]:
        return sorted(self._kinds)

    def snapshot(self) -> dict[str, Any]:
        """Nested plain-dict snapshot with fully deterministic ordering.

        Shape: ``{name: {"kind": ..., "series": [{"labels": {...},
        "value"|"hist": ...}, ...]}}`` — series sorted by label key so two
        same-seed runs serialize identically.
        """
        out: dict[str, Any] = {}
        for name in sorted(self._kinds):
            kind = self._kinds[name]
            series_out = []
            for key in sorted(self._metrics[name]):
                metric = self._metrics[name][key]
                entry: dict[str, Any] = {"labels": dict(key)}
                if kind == "histogram":
                    entry["hist"] = metric.snapshot()
                else:
                    entry["value"] = metric.snapshot()
                series_out.append(entry)
            out[name] = {"kind": kind, "series": series_out}
        return out

    def render(self, title: str = "metrics") -> str:
        """Human-readable snapshot table (counters/gauges only, one line
        per labeled series; histograms summarized as count/sum)."""
        lines = [f"== {title} ==" if title else "== metrics =="]
        for name in sorted(self._kinds):
            kind = self._kinds[name]
            for key in sorted(self._metrics[name]):
                metric = self._metrics[name][key]
                label_txt = ",".join(f"{k}={v}" for k, v in key)
                suffix = f"{{{label_txt}}}" if label_txt else ""
                if kind == "histogram":
                    snap = metric.snapshot()
                    lines.append(
                        f"  {name}{suffix}  count={snap['count']} sum={snap['sum']:.1f}"
                    )
                else:
                    lines.append(f"  {name}{suffix}  {metric.snapshot():g}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return sum(len(series) for series in self._metrics.values())
