"""The observability plane object installed as ``env.obs``.

Instrumented code follows one pattern everywhere::

    obs = self.env.obs
    sp = obs.begin("read", track="disk:sd0", stream=sid, seq=n) if obs else None
    ...  # the timed work
    if obs:
        obs.end(sp, bytes=frame.size_bytes)

``Environment.__init__`` pre-resolves the hook slot to ``None``, so with
no plane attached every datapath hook costs one plain attribute load (no
``getattr``-with-default machinery). With a plane attached but the span
category filtered out, ``begin`` returns ``None`` and ``end(None)`` is a
no-op — the same near-zero-cost contract the fault plane and
``Tracer.wants`` already set.

Span events live in category ``"span"``; instant markers (crashes,
failovers, drops) in ``"event"``. Both ride the ordinary
:class:`~repro.sim.trace.Tracer`, so the DWCS/TCP/fault categories that
existed before this plane land in the same ring and the same exports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional

from ..sim.trace import Tracer
from .registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.environment import Environment

__all__ = [
    "ObservabilityPlane",
    "SPAN_CATEGORY",
    "EVENT_CATEGORY",
    "CLUSTER_CATEGORY",
    "CLUSTER_CATEGORIES",
]

SPAN_CATEGORY = "span"
EVENT_CATEGORY = "event"

#: control-plane spans (admission, placement, RPC, failover, handoff) live
#: in their own category so a cluster run can record the stitched
#: cross-node story *without* paying for the millions of per-frame
#: datapath spans — pass ``categories=CLUSTER_CATEGORIES`` to the plane
#: and the datapath's ``begin()`` calls filter out in one predicate check.
CLUSTER_CATEGORY = "cluster"
CLUSTER_CATEGORIES = (CLUSTER_CATEGORY, EVENT_CATEGORY)


class ObservabilityPlane:
    """Bundles a span tracer and a metrics registry behind ``env.obs``.

    Parameters
    ----------
    env:
        The simulation environment to observe. ``install()`` binds the
        plane as ``env.obs``; components discover it at call time.
    capacity:
        Tracer ring bound. Instrumented full-length runs produce on the
        order of 10 events per frame hop, so the default is generous.
    categories:
        Optional tracer category filter; ``None`` records everything.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: int = 2_000_000,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        self.env = env
        self.tracer = Tracer(env, categories=categories, capacity=capacity)
        self.registry = MetricsRegistry()

    def install(self) -> "ObservabilityPlane":
        """Bind into the environment's hook slot (idempotent)."""
        self.env.obs = self
        self.env.hooks_changed()
        return self

    def uninstall(self) -> None:
        """Clear the hook slot (back to the uninstrumented ``None``)."""
        if self.env.obs is self:
            self.env.obs = None
            self.env.hooks_changed()

    # -- spans ----------------------------------------------------------------
    def begin(
        self,
        hop: str,
        track: Optional[str] = None,
        parent: Optional[int] = None,
        category: str = SPAN_CATEGORY,
        **fields: Any,
    ) -> Optional[int]:
        """Open a datapath-hop span; *track* names the Perfetto lane
        (``cpu:host0``, ``bus:pci1``, ``card:rd0``...). Control-plane
        emitters pass ``category=CLUSTER_CATEGORY`` so a filtered plane
        keeps them while shedding the per-frame datapath spans."""
        if track is not None:
            fields["track"] = track
        return self.tracer.begin_span(category, hop, parent=parent, **fields)

    def end(self, span_id: Optional[int], **fields: Any) -> None:
        self.tracer.end_span(span_id, **fields)

    def instant(
        self, name: str, track: Optional[str] = None, **fields: Any
    ) -> None:
        """Zero-duration marker (crash, failover, drop, violation)."""
        if track is not None:
            fields["track"] = track
        self.tracer.instant(EVENT_CATEGORY, name, **fields)

    # -- metrics ----------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        self.registry.count(name, amount, **labels)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.registry.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.registry.observe(name, value, **labels)

    # -- convenience -------------------------------------------------------------
    def span_events(self):
        return self.tracer.events(category=SPAN_CATEGORY)

    def cluster_events(self):
        """Control-plane spans (admission/placement/failover stitching)."""
        return self.tracer.events(category=CLUSTER_CATEGORY)

    def publish_queue_stats(self) -> None:
        """Export the event queue's structural stats as gauges.

        Heap runs get the pending depth; calendar runs additionally get
        bucket geometry, occupancy, day-width resizes, and the observed
        push-horizon statistics (``CalendarEventQueue.stats()`` /
        ``HorizonStats``) — the numbers queue-sizing decisions are made
        from, now visible in every metrics snapshot."""
        queue = self.env._queue
        if isinstance(queue, list):
            self.registry.gauge("sim.queue.pending", float(len(queue)), structure="heap")
            return
        stats = queue.stats()
        structure = stats.get("structure", type(queue).__name__)
        for key in ("pending", "day_width_us", "occupied_days", "mean_occupancy", "resizes"):
            if key in stats:
                self.registry.gauge(
                    f"sim.queue.{key}", float(stats[key]), structure=structure
                )
        horizon = stats.get("horizon", {})
        for key, val in sorted(horizon.items()):
            self.registry.gauge(
                f"sim.queue.horizon_{key}", float(val), structure=structure
            )

    def __repr__(self) -> str:
        return (
            f"<ObservabilityPlane {len(self.tracer)} events, "
            f"{len(self.registry)} metric series>"
        )
