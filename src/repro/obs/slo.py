"""Declarative SLO engine evaluated over the observability plane.

Every QoS budget this reproduction has accumulated — the 800 ms node-loss
detection bound, MTTR, *zero unaccounted streams*, the at-most-once
placement guarantee, QoS-violation ceilings — used to live as hand-rolled
assertions scattered through experiment runners and tests. This module
turns them into checked-in, machine-readable rules:

    SLO("detection-budget", metric("cluster.detection_ms"), "<", 800.0,
        unit="ms", description="node loss detected inside the budget")

An :class:`SLO` pairs a **selector** (where the measured value comes
from: a metric series, a sum over a metric's series, a tracer statistic,
or an explicit context value) with a **predicate** (comparison operator +
budget). :func:`evaluate` runs a rule set against an
:class:`SLOContext` — a metrics registry, an optional tracer, and any
extra values the runner supplies — and returns an :class:`SLOReport`
whose rendering is byte-deterministic (the ``SLO_report`` table the CI
``slo-smoke`` job double-runs and diffs).

Verdicts:

* ``PASS`` / ``FAIL`` — the predicate held / did not hold;
* ``MISSING`` — the selector found nothing (counts as not-ok: a budget
  that cannot be measured is a broken budget, not a passing one);
* ``SKIPPED`` — the rule's ``when`` gate said the rule does not apply to
  this run (e.g. an MTTR budget on a fault-free baseline scenario).

The shipped rule sets (:data:`CLUSTER_SLOS`, :data:`OBSERVE_SLOS`,
:data:`FAILOVER_SLOS`, :data:`CHAOS_SLOS`) are what the cluster /
observe / failover / chaos runners consume; the per-scenario QoS ceilings
ride along in :data:`CLUSTER_VIOLATION_CEILING`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.trace import Tracer
    from .registry import MetricsRegistry

__all__ = [
    "SLO",
    "SLOContext",
    "SLOReport",
    "Verdict",
    "evaluate",
    "metric",
    "metric_sum",
    "tracer_stat",
    "value",
    "nonzero",
    "cluster_slos",
    "CLUSTER_SLOS",
    "CLUSTER_VIOLATION_CEILING",
    "CLUSTER_DETECTION_BUDGET_MS",
    "OBSERVE_SLOS",
    "FAILOVER_SLOS",
    "CHAOS_SLOS",
    "render_slo_report",
    "write_slo_report",
]

#: predicate vocabulary; kept tiny so a rule renders as plain arithmetic
OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda v, b: v < b,
    "<=": lambda v, b: v <= b,
    "==": lambda v, b: v == b,
    "!=": lambda v, b: v != b,
    ">=": lambda v, b: v >= b,
    ">": lambda v, b: v > b,
}


class SLOContext:
    """What a rule set is evaluated against.

    Parameters
    ----------
    registry:
        Metrics source for :func:`metric` / :func:`metric_sum` selectors.
    tracer:
        Source for :func:`tracer_stat` selectors (``None`` is fine — the
        selectors then report MISSING).
    values:
        Runner-supplied extras for :func:`value` selectors (derived
        quantities that never became metrics).
    """

    def __init__(
        self,
        registry: Optional["MetricsRegistry"] = None,
        tracer: Optional["Tracer"] = None,
        values: Optional[dict[str, float]] = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.values = dict(values or {})

    # -- lookups (None = not present, never an exception) --------------------
    def metric_value(self, name: str, **labels: Any) -> Optional[float]:
        if self.registry is None:
            return None
        m = self.registry.get(name, **labels)
        if m is None:
            return None
        snap = m.snapshot()
        if isinstance(snap, dict):  # histogram: budgets compare the count
            return float(snap["count"])
        return float(snap)

    def metric_sum(self, name: str) -> Optional[float]:
        if self.registry is None:
            return None
        return self.registry.total(name)

    def tracer_stat(self, attr: str) -> Optional[float]:
        if self.tracer is None:
            return None
        got = getattr(self.tracer, attr, None)
        return None if got is None else float(got)

    def value(self, key: str) -> Optional[float]:
        got = self.values.get(key)
        return None if got is None else float(got)


@dataclass(frozen=True)
class Selector:
    """Deterministic value source; ``source`` is its rendered description."""

    kind: str  # "metric" | "metric_sum" | "tracer" | "value"
    name: str
    labels: tuple[tuple[str, Any], ...] = ()

    @property
    def source(self) -> str:
        if self.kind == "metric" and self.labels:
            lbl = ",".join(f"{k}={v}" for k, v in self.labels)
            return f"metric {self.name}{{{lbl}}}"
        if self.kind == "metric":
            return f"metric {self.name}"
        if self.kind == "metric_sum":
            return f"sum(metric {self.name})"
        if self.kind == "tracer":
            return f"tracer.{self.name}"
        return f"value {self.name}"

    def __call__(self, ctx: SLOContext) -> Optional[float]:
        if self.kind == "metric":
            return ctx.metric_value(self.name, **dict(self.labels))
        if self.kind == "metric_sum":
            return ctx.metric_sum(self.name)
        if self.kind == "tracer":
            return ctx.tracer_stat(self.name)
        return ctx.value(self.name)


def metric(name: str, **labels: Any) -> Selector:
    """Select one metric series' value (counter/gauge; histogram → count)."""
    return Selector("metric", name, tuple(sorted(labels.items())))


def metric_sum(name: str) -> Selector:
    """Select the sum of every series of *name* (all label combinations)."""
    return Selector("metric_sum", name)


def tracer_stat(attr: str) -> Selector:
    """Select a tracer counter (``discarded``, ``unbalanced_ends``...)."""
    return Selector("tracer", attr)


def value(key: str) -> Selector:
    """Select a runner-supplied context value."""
    return Selector("value", key)


def nonzero(selector: Selector) -> Callable[[SLOContext], bool]:
    """``when`` gate: the rule applies only when *selector* is nonzero."""

    def gate(ctx: SLOContext) -> bool:
        got = selector(ctx)
        return got is not None and got != 0.0

    return gate


@dataclass(frozen=True)
class SLO:
    """One declarative budget: selector ∘ predicate ∘ bound."""

    name: str
    selector: Selector
    op: str
    bound: float
    unit: str = ""
    description: str = ""
    #: applicability gate — when it returns falsy the verdict is SKIPPED
    when: Optional[Callable[[SLOContext], bool]] = None

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"unknown SLO op {self.op!r}; expected one of {sorted(OPS)}")


@dataclass(frozen=True)
class Verdict:
    """One evaluated rule."""

    slo: SLO
    status: str  # "PASS" | "FAIL" | "MISSING" | "SKIPPED"
    measured: Optional[float]

    @property
    def ok(self) -> bool:
        return self.status in ("PASS", "SKIPPED")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.slo.name,
            "source": self.slo.selector.source,
            "op": self.slo.op,
            "bound": self.slo.bound,
            "unit": self.slo.unit,
            "description": self.slo.description,
            "measured": self.measured,
            "status": self.status,
        }


@dataclass
class SLOReport:
    """Every verdict of one rule-set evaluation, in declaration order."""

    title: str
    verdicts: list[Verdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def failed(self) -> list[Verdict]:
        return [v for v in self.verdicts if not v.ok]

    def counts(self) -> dict[str, int]:
        out = {"PASS": 0, "FAIL": 0, "MISSING": 0, "SKIPPED": 0}
        for v in self.verdicts:
            out[v.status] += 1
        return out

    def verdict(self, name: str) -> Verdict:
        for v in self.verdicts:
            if v.slo.name == name:
                return v
        raise KeyError(f"no SLO {name!r} in report {self.title!r}")

    def require(self, name: str) -> Verdict:
        """The verdict for *name*, raising if it did not hold — the call
        runners and tests use instead of hand-rolled threshold checks."""
        v = self.verdict(name)
        if not v.ok:
            raise AssertionError(
                f"SLO {name!r} {v.status}: measured "
                f"{'-' if v.measured is None else repr(v.measured)} "
                f"vs {v.slo.op} {v.slo.bound!r} {v.slo.unit}".rstrip()
            )
        return v

    def summary_line(self) -> str:
        c = self.counts()
        return (
            f"SLO {self.title}: {c['PASS']} pass, {c['FAIL']} fail, "
            f"{c['MISSING']} missing, {c['SKIPPED']} skipped"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "title": self.title,
            "ok": self.ok,
            "counts": self.counts(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


def evaluate(
    slos: list[SLO],
    registry: Optional["MetricsRegistry"] = None,
    tracer: Optional["Tracer"] = None,
    values: Optional[dict[str, float]] = None,
    title: str = "run",
) -> SLOReport:
    """Run *slos* against one context; verdicts keep declaration order."""
    ctx = SLOContext(registry=registry, tracer=tracer, values=values)
    report = SLOReport(title=title)
    for slo in slos:
        if slo.when is not None and not slo.when(ctx):
            report.verdicts.append(Verdict(slo, "SKIPPED", None))
            continue
        measured = slo.selector(ctx)
        if measured is None:
            report.verdicts.append(Verdict(slo, "MISSING", None))
            continue
        held = OPS[slo.op](measured, slo.bound)
        report.verdicts.append(Verdict(slo, "PASS" if held else "FAIL", measured))
    return report


# -- rendering ---------------------------------------------------------------


def _fmt(x: Optional[float]) -> str:
    return "-" if x is None else f"{x:.6g}"


def render_slo_report(*reports: SLOReport) -> str:
    """The deterministic ``SLO_report`` table (one block per report)."""
    lines: list[str] = []
    for report in reports:
        lines.append(f"== SLO_report: {report.title} ==")
        if report.verdicts:
            name_w = max(len(v.slo.name) for v in report.verdicts)
            src_w = max(len(v.slo.selector.source) for v in report.verdicts)
            for v in report.verdicts:
                lines.append(
                    f"{v.status:<7}  {v.slo.name.ljust(name_w)}  "
                    f"{_fmt(v.measured):>12}  {v.slo.op:>2} {_fmt(v.slo.bound):>10}"
                    f"  {v.slo.unit:<3}  {v.slo.selector.source.ljust(src_w)}"
                    f"  {v.slo.description}".rstrip()
                )
        lines.append(report.summary_line())
    return "\n".join(lines) + "\n"


def write_slo_report(path, *reports: SLOReport) -> str:
    """Write the machine-readable ``SLO_report.json`` (sorted keys)."""
    doc = {
        "ok": all(r.ok for r in reports),
        "reports": [r.to_dict() for r in reports],
    }
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, sort_keys=True, indent=2) + "\n")
    return str(path)


# -- the shipped rule sets ---------------------------------------------------

#: per-scenario QoS-violation ceilings for the full-duration cluster runs.
#: Derived from the seed-42 measurements with ~2x headroom — a regression
#: that doubles the violation count trips the rule, seed-to-seed jitter
#: does not. ``None`` (unknown scenario) falls back to the default.
CLUSTER_VIOLATION_CEILING: dict[str, float] = {
    "baseline": 50.0,
    "node-crash": 200.0,
    "fd-partition": 50.0,
    "brownout": 400.0,
}
_CLUSTER_VIOLATION_DEFAULT = 400.0

#: per-scenario detection budgets, ms. The 800 ms bound is the watchdog's
#: node-*loss* budget (K missed beats + grace + one probe round trip) and
#: applies when the node goes silent outright. A brownout drops beats
#: probabilistically instead of silencing them, so the K-consecutive-miss
#: deadline keeps resetting — detection is bounded by the lossy-path odds,
#: not the beat schedule; seed-42 measures 1240.6 ms, budgeted at ~2x.
CLUSTER_DETECTION_BUDGET_MS: dict[str, float] = {
    "brownout": 2400.0,
}
_CLUSTER_DETECTION_DEFAULT_MS = 800.0


def cluster_slos(scenario: str) -> list[SLO]:
    """The cluster budgets, parameterized by scenario name."""
    ceiling = CLUSTER_VIOLATION_CEILING.get(scenario, _CLUSTER_VIOLATION_DEFAULT)
    detection_ms = CLUSTER_DETECTION_BUDGET_MS.get(
        scenario, _CLUSTER_DETECTION_DEFAULT_MS
    )
    return [
        SLO(
            "detection-budget",
            metric("cluster.detection_ms"),
            "<",
            detection_ms,
            unit="ms",
            description=f"node fault detected inside the watchdog budget ({scenario})",
            when=nonzero(metric("cluster.fault_marked")),
        ),
        SLO(
            "mttr-budget",
            metric("cluster.mttr_ms"),
            "<",
            1600.0,
            unit="ms",
            description="every victim re-homed (or parked) inside 2x detection",
            when=nonzero(metric("cluster.recovered")),
        ),
        SLO(
            "zero-unaccounted",
            metric("cluster.ledger", state="unaccounted"),
            "==",
            0.0,
            description="every stream ends placed, parked, or lost",
        ),
        SLO(
            "no-double-place",
            metric_sum("cluster.node.double_execs"),
            "==",
            0.0,
            description="no control token ever executed twice on a node",
        ),
        SLO(
            "rpc-at-most-once",
            metric("cluster.rpc.dups_unabsorbed"),
            "==",
            0.0,
            description="every duplicated delivery absorbed by a reply cache",
        ),
        SLO(
            "qos-violations",
            metric("cluster.violations"),
            "<=",
            ceiling,
            description=f"per-scenario deadline-violation ceiling ({scenario})",
        ),
        SLO(
            "trace-complete",
            tracer_stat("discarded"),
            "==",
            0.0,
            description="the trace ring evicted nothing (coverage is honest)",
        ),
        SLO(
            "trace-balanced",
            tracer_stat("unbalanced_ends"),
            "==",
            0.0,
            description="every end_span matched an open span",
        ),
    ]


#: evaluated once per cluster scenario run (see cluster_slos); this static
#: set exists for discovery/docs — the runner calls cluster_slos(name)
CLUSTER_SLOS: list[SLO] = cluster_slos("node-crash")

OBSERVE_SLOS: list[SLO] = [
    SLO(
        "trace-complete",
        tracer_stat("discarded"),
        "==",
        0.0,
        description="the trace ring evicted nothing",
    ),
    SLO(
        "trace-balanced",
        tracer_stat("unbalanced_ends"),
        "==",
        0.0,
        description="every end_span matched an open span",
    ),
    SLO(
        "frames-flowed",
        metric_sum("engine.frames_dispatched"),
        ">",
        0.0,
        description="the instrumented datapath actually dispatched frames",
    ),
    SLO(
        "spans-recorded",
        tracer_stat("emitted"),
        ">",
        0.0,
        description="instrumentation emitted events (the plane was installed)",
    ),
]

FAILOVER_SLOS: list[SLO] = [
    # Detection/MTTR budgets apply exactly when a card stayed lost — the
    # run-observable ground truth the runner supplies as a context value
    # (a flap that reset inside the deadline is *supposed* to go
    # undetected; a permanent crash that goes undetected reads MISSING,
    # which fails).
    SLO(
        "detection-budget",
        metric("failover.detection_ms"),
        "<",
        800.0,
        unit="ms",
        description="card crash detected inside K*interval + grace",
        when=nonzero(value("card_lost")),
    ),
    SLO(
        "mttr-budget",
        metric("failover.mttr_ms"),
        "<",
        1600.0,
        unit="ms",
        description="last stream restored on its new card inside the budget",
        when=nonzero(value("card_lost")),
    ),
    SLO(
        "partition-no-migration",
        metric("failover.migrated"),
        "==",
        0.0,
        description="a classified partition migrates nothing (no double-serve)",
        when=nonzero(metric("failover.partitions")),
    ),
    SLO(
        "no-frame-black-hole",
        metric("failover.frames_lost"),
        "<=",
        64.0,
        description="crash loses at most one card's in-flight window of frames",
    ),
]

CHAOS_SLOS: list[SLO] = [
    SLO(
        "faults-exercised",
        metric("chaos.faults_injected"),
        ">=",
        1.0,
        description="the campaign actually injected faults",
        when=nonzero(metric("chaos.fault_windows")),
    ),
    SLO(
        "streams-survived",
        metric("chaos.min_settled_bps"),
        ">",
        0.0,
        unit="bps",
        description="every stream still delivers after the fault window",
    ),
]
