"""Opt-in wall-clock self-profiler (host time, never simulated time).

The simulation's golden digests pin *simulated* results bit for bit; what
they cannot tell us is where the *host's* wall-clock seconds go — the
question ROADMAP item 3c (compiled kernel) needs answered before picking
targets. This profiler answers it without touching the simulation at
all: it reads host frames from outside the interpreted workload, so an
instrumented run is bit-identical to an uninstrumented one **by
construction** (and the bench proves it anyway by recomputing the golden
digests with the profiler armed).

Two cooperating mechanisms (the ``sys.setprofile``/sampling hybrid):

* a **sampling thread** wakes every ``interval_s`` of host time, grabs
  the profiled thread's current frame stack via ``sys._current_frames``,
  and tallies the collapsed stack — wall seconds attribute to whoever
  holds the frame, at ~zero overhead for the workload;
* an optional ``sys.setprofile`` hook counts exact **call events** per
  function (enable with ``call_counts=True`` / ``REPRO_PROFILE_CALLS=1``)
  — expensive (every call pays the hook), so it is off by default and
  meant for "how many times", not "how long".

Activation is env-flag driven so any entry point can opt in without
plumbing: ``REPRO_PROFILE=1`` makes :func:`maybe_profile` return a live
profiler (else an inert one). Artifacts:

* :meth:`WallClockProfiler.collapsed` — collapsed-stack text
  (``a;b;c <samples>`` per line), directly flamegraph.pl / speedscope /
  inferno compatible;
* :meth:`WallClockProfiler.hotspots` — the per-module table
  (``repro.core.dwcs``, ``repro.sim.environment``...) that lands in
  ``BENCH_sim.json`` as ``hotspots``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Optional

__all__ = [
    "WallClockProfiler",
    "maybe_profile",
    "PROFILE_ENV_VAR",
    "PROFILE_CALLS_ENV_VAR",
    "DEFAULT_INTERVAL_S",
]

#: set (to anything but ""/"0") to arm the profiler at supported entry points
PROFILE_ENV_VAR = "REPRO_PROFILE"

#: additionally count exact call events via sys.setprofile (expensive)
PROFILE_CALLS_ENV_VAR = "REPRO_PROFILE_CALLS"

#: sampling period, host seconds (500 Hz keeps overhead ~invisible while
#: resolving millisecond-scale hot loops over a multi-second workload)
DEFAULT_INTERVAL_S = 0.002


def _frame_label(frame) -> str:
    """``module:function`` for one frame (module falls back to filename)."""
    module = frame.f_globals.get("__name__") or os.path.basename(
        frame.f_code.co_filename
    )
    return f"{module}:{frame.f_code.co_name}"


class WallClockProfiler:
    """Sampling + call-count profiler for one thread of host execution.

    Use as a context manager around the workload::

        with WallClockProfiler() as prof:
            run_workload()
        print(prof.render_hotspots())

    An **inert** profiler (``enabled=False``) supports the same interface
    but records nothing — callers never need a conditional.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        call_counts: bool = False,
        enabled: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval_s = interval_s
        self.call_counts_enabled = call_counts
        self.enabled = enabled
        #: collapsed stack tuple -> sample tally
        self.stacks: dict[tuple[str, ...], int] = {}
        #: function label -> exact call-event count (setprofile mode only)
        self.calls: dict[str, int] = {}
        self.samples = 0
        self.wall_s = 0.0
        self._target_ident: Optional[int] = None
        self._sampler: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._t0 = 0.0

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "WallClockProfiler":
        """Begin profiling the *calling* thread."""
        if not self.enabled or self._sampler is not None:
            return self
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._t0 = time.perf_counter()
        if self.call_counts_enabled:
            sys.setprofile(self._profile_hook)
        self._sampler = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._sampler.start()
        return self

    def stop(self) -> "WallClockProfiler":
        if self._sampler is None:
            return self
        if self.call_counts_enabled:
            sys.setprofile(None)
        self._stop.set()
        self._sampler.join()
        self._sampler = None
        self.wall_s += time.perf_counter() - self._t0
        return self

    def __enter__(self) -> "WallClockProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- mechanisms ----------------------------------------------------------
    def _sample_loop(self) -> None:
        ident = self._target_ident
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(ident)
            if frame is None:
                continue
            stack: list[str] = []
            while frame is not None:
                stack.append(_frame_label(frame))
                frame = frame.f_back
            key = tuple(reversed(stack))
            self.stacks[key] = self.stacks.get(key, 0) + 1
            self.samples += 1

    def _profile_hook(self, frame, event: str, arg: Any) -> None:
        if event == "call":
            label = _frame_label(frame)
            self.calls[label] = self.calls.get(label, 0) + 1

    # -- analysis ------------------------------------------------------------
    def collapsed(self) -> str:
        """Collapsed-stack flamegraph text: ``frame;frame;... count``."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.stacks.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def hotspots(self, top: Optional[int] = 15) -> list[dict[str, Any]]:
        """Per-module attribution of sampled wall time.

        Each sample charges its **leaf** frame's module (self time). The
        rows carry sample counts, the share of all samples, and the
        estimated seconds (share x measured wall seconds) — sorted most
        expensive first, module name breaking ties.
        """
        by_module: dict[str, int] = {}
        for stack, count in self.stacks.items():
            module = stack[-1].split(":", 1)[0]
            by_module[module] = by_module.get(module, 0) + count
        total = self.samples or 1
        rows = [
            {
                "module": module,
                "samples": count,
                "share": count / total,
                "est_s": (count / total) * self.wall_s,
            }
            for module, count in by_module.items()
        ]
        rows.sort(key=lambda r: (-r["samples"], r["module"]))
        return rows[:top] if top is not None else rows

    def package_rollup(self) -> dict[str, float]:
        """Sample share per top-level package family — the ROADMAP-3c view
        (``repro.core`` / ``repro.sim`` / ``repro.dvcm`` / ...)."""
        families = ("repro.core", "repro.sim", "repro.dvcm", "repro.hw", "repro.obs")
        shares: dict[str, float] = {f: 0.0 for f in families}
        shares["other"] = 0.0
        total = self.samples or 1
        for stack, count in self.stacks.items():
            module = stack[-1].split(":", 1)[0]
            for fam in families:
                if module == fam or module.startswith(fam + "."):
                    shares[fam] += count / total
                    break
            else:
                shares["other"] += count / total
        return shares

    def render_hotspots(self, top: int = 15) -> str:
        lines = [
            f"== hotspots: {self.samples} samples over {self.wall_s:.2f} s =="
        ]
        for row in self.hotspots(top):
            lines.append(
                f"  {row['module']:<40} {row['samples']:>7} samples "
                f"{row['share']:>6.1%}  ~{row['est_s']:.2f} s"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        state = "live" if self._sampler is not None else "stopped"
        return f"<WallClockProfiler {state} samples={self.samples}>"


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


def maybe_profile(
    interval_s: float = DEFAULT_INTERVAL_S,
) -> WallClockProfiler:
    """The env-flag entry point: a live profiler when ``REPRO_PROFILE`` is
    set (``REPRO_PROFILE_CALLS`` additionally arms the setprofile hook),
    otherwise an inert one — callers wrap their workload unconditionally."""
    return WallClockProfiler(
        interval_s=interval_s,
        call_counts=_env_truthy(PROFILE_CALLS_ENV_VAR),
        enabled=_env_truthy(PROFILE_ENV_VAR),
    )
