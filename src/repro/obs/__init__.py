"""Observability plane: datapath spans, metrics registry, latency breakdown.

The plane (:class:`ObservabilityPlane`) installs itself as ``env.obs``;
instrumented components look it up at call time with
``getattr(self.env, "obs", None)`` — the same late-binding pattern the
fault plane uses — so an uninstrumented run pays one attribute probe per
hook and records nothing.
"""

from .breakdown import CriticalPath, HopStats, LatencyBreakdown
from .export import (
    render_breakdown_csv,
    render_chrome_trace,
    render_metrics_snapshot,
    write_observe_artifacts,
)
from .plane import ObservabilityPlane
from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "ObservabilityPlane",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyBreakdown",
    "HopStats",
    "CriticalPath",
    "render_chrome_trace",
    "render_breakdown_csv",
    "render_metrics_snapshot",
    "write_observe_artifacts",
]
