"""Observability plane: datapath spans, metrics registry, latency breakdown.

The plane (:class:`ObservabilityPlane`) installs itself into the
environment's pre-resolved hook slot (``env.obs``, ``None`` by default);
instrumented components read ``self.env.obs`` at call time, so an
uninstrumented run pays one plain attribute load per hook and records
nothing.
"""

from .breakdown import CriticalPath, HopStats, LatencyBreakdown
from .export import (
    render_breakdown_csv,
    render_chrome_trace,
    render_metrics_snapshot,
    write_observe_artifacts,
)
from .plane import ObservabilityPlane
from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "ObservabilityPlane",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyBreakdown",
    "HopStats",
    "CriticalPath",
    "render_chrome_trace",
    "render_breakdown_csv",
    "render_metrics_snapshot",
    "write_observe_artifacts",
]
