"""Observability plane: datapath spans, metrics registry, latency breakdown.

The plane (:class:`ObservabilityPlane`) installs itself into the
environment's pre-resolved hook slot (``env.obs``, ``None`` by default);
instrumented components read ``self.env.obs`` at call time, so an
uninstrumented run pays one plain attribute load per hook and records
nothing.
"""

from .breakdown import CriticalPath, HopStats, LatencyBreakdown
from .export import (
    render_breakdown_csv,
    render_chrome_trace,
    render_metrics_snapshot,
    write_observe_artifacts,
)
from .plane import (
    CLUSTER_CATEGORIES,
    CLUSTER_CATEGORY,
    ObservabilityPlane,
)
from .profile import WallClockProfiler, maybe_profile
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .slo import (
    CHAOS_SLOS,
    CLUSTER_DETECTION_BUDGET_MS,
    CLUSTER_SLOS,
    CLUSTER_VIOLATION_CEILING,
    FAILOVER_SLOS,
    OBSERVE_SLOS,
    SLO,
    SLOContext,
    SLOReport,
    cluster_slos,
    evaluate,
    metric,
    metric_sum,
    nonzero,
    render_slo_report,
    tracer_stat,
    value,
    write_slo_report,
)

__all__ = [
    "ObservabilityPlane",
    "CLUSTER_CATEGORY",
    "CLUSTER_CATEGORIES",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyBreakdown",
    "HopStats",
    "CriticalPath",
    "render_chrome_trace",
    "render_breakdown_csv",
    "render_metrics_snapshot",
    "write_observe_artifacts",
    "SLO",
    "SLOContext",
    "SLOReport",
    "evaluate",
    "metric",
    "metric_sum",
    "tracer_stat",
    "value",
    "nonzero",
    "render_slo_report",
    "write_slo_report",
    "cluster_slos",
    "CLUSTER_SLOS",
    "CLUSTER_DETECTION_BUDGET_MS",
    "CLUSTER_VIOLATION_CEILING",
    "OBSERVE_SLOS",
    "FAILOVER_SLOS",
    "CHAOS_SLOS",
    "WallClockProfiler",
    "maybe_profile",
]
