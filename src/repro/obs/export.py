"""Exporters: Chrome trace-event JSON (Perfetto), CSV tables, snapshots.

The Chrome trace maps simulated resources to Perfetto tracks: each span's
``track`` field (``cpu:host0``, ``bus:pci1``, ``card:rd0``...) becomes a
process/thread pair — the prefix is the process, the full track the
thread — so the UI shows one lane per simulated CPU, bus, and card.
Simulated microseconds pass through unchanged (the trace-event ``ts``
unit is already µs).

Everything here serializes with ``sort_keys=True`` and deterministic
track-id assignment (first appearance in the event ring), so two
same-seed runs produce byte-identical artifacts — the property the CI
observe smoke job diffs.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Iterable

from ..sim.trace import TraceEvent, Tracer
from .breakdown import LatencyBreakdown

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plane import ObservabilityPlane
    from .registry import MetricsRegistry

__all__ = [
    "render_chrome_trace",
    "render_breakdown_csv",
    "render_metrics_snapshot",
    "write_observe_artifacts",
]

DEFAULT_TRACK = "misc:events"


class _TrackMap:
    """Deterministic track -> (pid, tid) assignment by first appearance."""

    def __init__(self) -> None:
        self._pids: dict[str, int] = {}
        self._tids: dict[str, int] = {}

    def resolve(self, track: str) -> tuple[int, int]:
        process = track.split(":", 1)[0]
        if process not in self._pids:
            self._pids[process] = len(self._pids) + 1
        if track not in self._tids:
            self._tids[track] = len(self._tids) + 1
        return self._pids[process], self._tids[track]

    def metadata_events(self) -> list[dict[str, Any]]:
        events: list[dict[str, Any]] = []
        for process, pid in self._pids.items():
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": process},
                }
            )
        for track, tid in self._tids.items():
            pid = self._pids[track.split(":", 1)[0]]
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return events


def _span_args(fields: dict[str, Any]) -> dict[str, Any]:
    return {k: v for k, v in fields.items() if k not in ("ph", "span", "track")}


def render_chrome_trace(tracer: Tracer, label: str = "run") -> str:
    """Serialize a tracer's ring as Chrome trace-event JSON.

    Span begin/end pairs fold into ``"X"`` complete events; ``instant()``
    markers and every legacy point event (dwcs drops, tcp retransmits,
    fault injections) become ``"i"`` instants, so the whole pre-existing
    trace vocabulary lands in the same Perfetto view. Spans still open
    when the trace ends are closed at the last recorded timestamp and
    flagged ``"unfinished": true`` rather than silently dropped.
    """
    tracks = _TrackMap()
    trace_events: list[dict[str, Any]] = []
    open_spans: dict[int, TraceEvent] = {}
    last_ts = 0.0

    for ev in tracer.events():
        last_ts = max(last_ts, ev.time_us)
        ph = ev.fields.get("ph")
        sid = ev.fields.get("span")
        if ph == "B" and sid is not None:
            open_spans[sid] = ev
        elif ph == "E" and sid is not None:
            begin = open_spans.pop(sid, None)
            if begin is None:
                continue  # begin evicted from the ring: no duration to draw
            merged = {**begin.fields, **ev.fields}
            pid, tid = tracks.resolve(merged.get("track", DEFAULT_TRACK))
            trace_events.append(
                {
                    "ph": "X",
                    "ts": begin.time_us,
                    "dur": ev.time_us - begin.time_us,
                    "pid": pid,
                    "tid": tid,
                    "cat": begin.category,
                    "name": begin.name,
                    "args": _span_args(merged),
                }
            )
        else:
            track = ev.fields.get("track", f"{ev.category}:{ev.category}")
            pid, tid = tracks.resolve(track)
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "ts": ev.time_us,
                    "pid": pid,
                    "tid": tid,
                    "cat": ev.category,
                    "name": ev.name,
                    "args": _span_args(ev.fields),
                }
            )

    for sid in sorted(open_spans):
        begin = open_spans[sid]
        pid, tid = tracks.resolve(begin.fields.get("track", DEFAULT_TRACK))
        trace_events.append(
            {
                "ph": "X",
                "ts": begin.time_us,
                "dur": last_ts - begin.time_us,
                "pid": pid,
                "tid": tid,
                "cat": begin.category,
                "name": begin.name,
                "args": {**_span_args(begin.fields), "unfinished": True},
            }
        )

    doc = {
        "displayTimeUnit": "ms",
        "otherData": {"label": label, "events_discarded": tracer.discarded},
        "traceEvents": tracks.metadata_events() + trace_events,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def render_breakdown_csv(breakdown: LatencyBreakdown) -> str:
    columns = ("scope", "hop", "count", "total_us", "mean_us", "p50_us", "p95_us", "max_us")
    lines = [",".join(columns)]
    for row in breakdown.table_rows():
        lines.append(",".join(str(row[c]) for c in columns))
    return "\n".join(lines) + "\n"


def render_metrics_snapshot(registry: "MetricsRegistry") -> str:
    return json.dumps(registry.snapshot(), sort_keys=True, indent=2) + "\n"


def write_observe_artifacts(
    out_dir: str, runs: Iterable[tuple[str, "ObservabilityPlane"]]
) -> list[str]:
    """Write the full artifact set per instrumented run.

    For each ``(label, plane)``: ``trace_<label>.json`` (Perfetto),
    ``events_<label>.jsonl`` (raw ring), ``breakdown_<label>.csv``,
    ``metrics_<label>.json``. Returns the written paths in order.
    """
    os.makedirs(out_dir, exist_ok=True)
    written: list[str] = []

    def _write(name: str, content: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)
        written.append(path)

    for label, plane in runs:
        _write(f"trace_{label}.json", render_chrome_trace(plane.tracer, label=label))
        jsonl_path = os.path.join(out_dir, f"events_{label}.jsonl")
        plane.tracer.dump(jsonl_path)
        written.append(jsonl_path)
        breakdown = LatencyBreakdown(plane.span_events(), label=label)
        _write(f"breakdown_{label}.csv", render_breakdown_csv(breakdown))
        _write(f"metrics_{label}.json", render_metrics_snapshot(plane.registry))
    return written
