"""Shared experiment configuration.

Constants here come from the paper's *setup* prose (stream counts, frame
counts, CPU clocks, load profile shape), not from the result cells the
experiments reproduce. Every experiment accepts a seed and is fully
deterministic given it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.attributes import StreamSpec
from repro.core.dwcs import DWCSScheduler
from repro.core.queues import HardwareQueueRing
from repro.fixedpoint import ArithmeticContext
from repro.hw.memory import HardwareQueueFile
from repro.media.frames import FrameType, MediaFrame
from repro.media.mpeg import MPEGEncoder
from repro.sim import RandomStreams, S

__all__ = [
    "MICROBENCH_TOTAL_FRAMES",
    "MICROBENCH_STREAMS",
    "microbench_scheduler",
    "hardware_queue_factory",
    "figure_stream_specs",
    "figure_mpeg_file",
    "LOAD_PROFILES",
    "SIM_DURATION_US",
    "MPEG_FILE_BYTES",
]

# ---------------------------------------------------------------------------
# Tables 1-3: the drain-the-rings microbenchmark.
#
# The paper's totals/averages imply exactly 151 frames
# (19580.88 µs / 129.67 µs per frame = 151); we split them over four streams
# as the segmentation program does over a four-client run.
MICROBENCH_TOTAL_FRAMES = 151
MICROBENCH_STREAMS = 4

#: Table 5's bulk transfer: "MPEG File Transfer by DMA(773665 bytes)".
MPEG_FILE_BYTES = 773_665


def microbench_scheduler(
    ctx: ArithmeticContext,
    queue_factory: Optional[Callable] = None,
    total_frames: int = MICROBENCH_TOTAL_FRAMES,
    n_streams: int = MICROBENCH_STREAMS,
) -> DWCSScheduler:
    """Build a work-conserving scheduler with rings pre-filled (Tables 1-3)."""
    s = DWCSScheduler(ctx=ctx, queue_factory=queue_factory, work_conserving=True)
    per = [total_frames // n_streams] * n_streams
    for i in range(total_frames % n_streams):
        per[i] += 1
    for i in range(n_streams):
        s.add_stream(
            StreamSpec(f"s{i}", period_us=33_333.0, loss_x=1, loss_y=4)
        )
    for i, count in enumerate(per):
        for k in range(count):
            s.enqueue(MediaFrame(f"s{i}", k, FrameType.I, 1000, 0.0), 0.0)
    return s


def hardware_queue_factory(registers: Optional[HardwareQueueFile] = None, ring_size: int = 64):
    """Queue factory storing descriptors in the MMIO register file (Table 3).

    Streams carve consecutive register windows out of the shared
    1004-register file.
    """
    regs = registers if registers is not None else HardwareQueueFile()
    next_base = [0]

    def factory(stream_id: str) -> HardwareQueueRing:
        base = next_base[0]
        next_base[0] += ring_size
        return HardwareQueueRing(stream_id, regs, base=base, capacity=ring_size)

    return factory


# ---------------------------------------------------------------------------
# Figures 6-10: the server-loading experiments.

#: run length — the paper's plots span ~100 s
SIM_DURATION_US = 100 * S


def figure_stream_specs() -> list[StreamSpec]:
    """The two MPEG streams s1/s2 of Figures 7-10.

    ≈250 kbps at 3 fps (≈10 kB frames): Figure 8's x-axis reaches ~300
    frames over the ~100 s run, fixing the frame rate at ≈3 fps, and the
    ≈250 kbps settling bandwidth then fixes the frame size. Loss-tolerance
    1/2 is what bounds Figure 7's worst-case degradation at half the
    no-load bandwidth.
    """
    return [
        StreamSpec("s1", period_us=333_333.0, loss_x=1, loss_y=2),
        StreamSpec("s2", period_us=333_333.0, loss_x=1, loss_y=2),
    ]


def figure_mpeg_file(stream_id: str, seed: int = 0, n_frames: int = 2000) -> "MPEGEncoder":
    enc = MPEGEncoder(bitrate_bps=250_000.0, fps=3.0, rng=RandomStreams(seed))
    return enc.encode(stream_id, n_frames)


def _profile(points: list[tuple[float, float]]):
    """[(seconds, target fraction of CPU capacity), ...]"""
    return [(t * S, u) for t, u in points]


#: Figure 6's load shapes: targets are fractions of total CPU capacity that
#: the httperf rate is sized for. The labels are the paper's *average total
#: utilization* including the ~14 % streaming baseline, so the web
#: component is sized below the label; the '60 %-average' profile drives
#: the hosts near saturation in its 40-80 s window — the paper's own trace
#: shows utilization "in the excess of 80%" there.
LOAD_PROFILES: dict[str, list[tuple[float, float]]] = {
    "none": [],
    "45%": _profile([(0.0, 0.0), (10.0, 0.28), (40.0, 0.50), (80.0, 0.21)]),
    "60%": _profile([(0.0, 0.0), (10.0, 0.30), (40.0, 0.86), (80.0, 0.25)]),
}

#: Apache heavy-tail parameters for the loading experiments (late-90s web
#: mixes: mostly small static pages, occasional CGI holding a CPU for
#: hundreds of ms).
APACHE_HEAVY_TAIL = {"heavy_tail_prob": 0.04, "heavy_tail_mult": 80.0}

#: CPU cost (µs at 200 MHz) of segmenting one ~10 kB MPEG frame on the
#: host — the producer-side load visible in Figure 6's no-web-load
#: baseline (avg ≈15 %, peak ≈35 % while the players prebuffer).
HOST_SEGMENTATION_US = 40_000.0

#: Producer injection pacing. The segmentation process runs *ahead* of the
#: 16 fps playout but not unboundedly: ~18 fps of injection grows the
#: backlog at ~2 fps, which is what produces Figure 8/10's queuing-delay
#: ramps to ~10 s over a 100 s run (rather than an instant plateau).
HOST_INJECT_GAP_US = 260_000.0
NI_INJECT_GAP_US = 265_000.0

#: frames each player prebuffers at stream start — the constant ~4 s offset
#: at the left edge of the paper's queuing-delay plots, and (on the host)
#: the early utilization peak of Figure 6's no-load trace.
PREBUFFER_FRAMES = 12
