"""Wall-clock benchmark harness for the simulation kernel.

Times the headline workloads (Figure 9, chaos, failover, observe) end to
end — full duration, pinned seed, warm median of N repetitions — and
writes ``BENCH_sim.json`` at the repository root. Two guarantees ride
along with the numbers:

* **Fidelity**: before timing is trusted, every golden digest
  (:data:`~repro.experiments.golden.GOLDEN_IDS`) is recomputed and
  compared byte-for-byte against ``golden_digests.json``. A drift in any
  experiment fails the bench — a fast kernel that changes a scheduling
  decision is a broken kernel.
* **Provenance**: the pre-optimization baseline medians (measured on the
  same machine, same protocol, at the commit before the kernel fast-path
  work) are checked in at ``benchmarks/wallclock_baseline.json`` and
  copied into ``BENCH_sim.json`` next to the current medians, so the
  reported speedup is reproducible arithmetic, not a claim.

Usage::

    PYTHONPATH=src python -m repro.experiments bench          # full
    PYTHONPATH=src python -m repro.experiments bench --quick  # CI smoke
    PYTHONPATH=src python benchmarks/wallclock.py             # same, script

``--quick`` runs the short-duration workload set and verifies only the
short digest set — a couple of seconds, suitable for a CI smoke job.

Machine caveat: wall-clock numbers are only comparable against a baseline
measured on the same machine. The digest verification, by contrast, is
machine-independent.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Optional

from . import golden

__all__ = ["WORKLOADS", "run_bench", "main"]

#: seed every benchmark workload is pinned to (matches the golden set)
BENCH_SEED = 42

#: repo root (src/repro/experiments/bench.py -> three parents up from src/)
_REPO_ROOT = Path(__file__).resolve().parents[3]

#: default output path for the benchmark report
DEFAULT_OUT = _REPO_ROOT / "BENCH_sim.json"

#: checked-in pre-optimization medians (same machine/protocol provenance)
BASELINE_PATH = _REPO_ROOT / "benchmarks" / "wallclock_baseline.json"

#: the timed workloads: name -> experiment id run at full duration
WORKLOADS = ("figure9", "chaos", "failover", "observe")

#: the workload the >=1.5x acceptance target is pinned to
HEADLINE = "figure9"


#: the child timing program. Runs in a FRESH interpreter per workload so
#: one workload's heap growth (or the digest verification pass) cannot
#: leak into another's timings. Uses only the experiment REGISTRY +
#: inspect, so the identical program also times historical checkouts
#: (that is how the checked-in baseline was captured — see
#: ``benchmarks/wallclock_baseline.json``).
_CHILD_PROGRAM = r"""
import json, statistics, sys, time
t_import = time.perf_counter()
import inspect
from repro.experiments import REGISTRY
import_s = time.perf_counter() - t_import

name, seed, duration, reps = (
    sys.argv[1], int(sys.argv[2]), sys.argv[3], int(sys.argv[4])
)
runner = REGISTRY[name]
params = inspect.signature(runner).parameters
kwargs = {}
if "seed" in params:
    kwargs["seed"] = seed
if duration != "none" and "duration_us" in params:
    kwargs["duration_us"] = float(duration)
if "out_dir" in params:
    kwargs["out_dir"] = None
runner(**kwargs)  # warm: imports, allocator steady state, branch caches
samples = []
for _ in range(reps):
    t0 = time.perf_counter()
    runner(**kwargs)
    samples.append(time.perf_counter() - t0)
try:
    import resource
    peak_rss_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
except Exception:
    peak_rss_kb = 0
print(json.dumps({
    "median_s": statistics.median(samples),
    "samples_s": samples,
    "reps": reps,
    "import_s": import_s,
    "peak_rss_kb": peak_rss_kb,
}))
"""


def time_workload_isolated(
    name: str, reps: int, quick: bool = False, src_dir: Optional[Path] = None
) -> dict:
    """Time one workload in a fresh interpreter; returns the timing dict.

    ``src_dir`` points the child at an alternative source tree (used to
    re-capture the baseline from the pre-optimization commit with the
    exact same measurement program).
    """
    duration = str(golden.SHORT_DURATION_US) if quick else "none"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_dir if src_dir is not None else _REPO_ROOT / "src")
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_PROGRAM, name, str(BENCH_SEED), duration, str(reps)],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _verify_digests(quick: bool, jobs: int = 1) -> dict[str, str]:
    """Recompute the golden digests; returns name -> 'identical'|'drift'.

    ``jobs > 1`` fans the recomputation out over worker processes via the
    sweep runner (cache disabled — verification must recompute). The
    per-experiment digests are independent deterministic evaluations, so
    the fan-out cannot change a verdict, only the wall clock.
    """
    goldens = golden.load_goldens()
    section = "short" if quick else "full"
    duration = golden.SHORT_DURATION_US if quick else None
    wanted = goldens[section]["digests"]
    if jobs > 1:
        from repro.parallel import Job, SweepRunner

        specs = [
            Job(experiment=name, seed=BENCH_SEED, duration_us=duration)
            for name in wanted
        ]
        report = SweepRunner(workers=jobs, cache=None).run(specs)
        return {
            o.job.experiment: (
                "identical"
                if o.ok and o.result_digest == wanted[o.job.experiment]
                else ("drift" if o.ok else f"error: {o.error}")
            )
            for o in report.outcomes
        }
    verdicts: dict[str, str] = {}
    for name, want in wanted.items():
        got = golden.compute_digest(
            name, seed=BENCH_SEED, duration_us=duration, out_dir=None
        )
        verdicts[name] = "identical" if got == want else "drift"
    return verdicts


def run_bench(
    reps: int = 5,
    quick: bool = False,
    out_path: Optional[Path] = None,
    jobs: int = 1,
) -> dict:
    """Run the benchmark; writes the report and returns it as a dict.

    Raises :class:`RuntimeError` if any golden digest drifts — wall-clock
    numbers for a behaviourally different simulation are meaningless.

    ``jobs`` parallelizes only the digest-verification pass. The timed
    runs stay strictly serial, one fresh interpreter at a time — sharing
    cores between concurrent timed workloads would corrupt the medians.
    """
    out_path = Path(out_path) if out_path is not None else DEFAULT_OUT

    current: dict[str, dict] = {}
    for name in WORKLOADS:
        print(f"timing {name} ({reps} reps{', quick' if quick else ''}, isolated)...")
        current[name] = time_workload_isolated(name, reps, quick=quick)
        print(
            f"  median {current[name]['median_s']:.3f} s"
            f"  (peak RSS {current[name].get('peak_rss_kb', 0) / 1024:.0f} MB,"
            f" cold import {current[name].get('import_s', 0.0):.2f} s)"
        )

    print(
        f"verifying golden digests ({'short' if quick else 'full'} set"
        f"{f', {jobs} workers' if jobs > 1 else ''})..."
    )
    digests = _verify_digests(quick, jobs=jobs)
    drifted = sorted(n for n, v in digests.items() if v != "identical")
    for name, verdict in sorted(digests.items()):
        print(f"  {name:10s} {verdict}")

    baseline = None
    speedup = None
    if not quick and BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        speedup = {
            name: baseline["workloads"][name]["median_s"] / current[name]["median_s"]
            for name in WORKLOADS
            if name in baseline.get("workloads", {})
        }

    report = {
        "seed": BENCH_SEED,
        "quick": quick,
        "protocol": "fresh interpreter per workload; 1 warm run + median of N reps",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "digests": digests,
        "workloads": current,
        "baseline": baseline,
        "speedup": speedup,
        "headline": HEADLINE,
    }
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    if speedup is not None:
        for name in WORKLOADS:
            if name in speedup:
                print(f"  speedup {name:10s} {speedup[name]:.2f}x")

    if drifted:
        raise RuntimeError(
            f"golden digest drift in: {', '.join(drifted)} — simulated outputs "
            "changed; timings are not comparable (and the kernel is wrong)"
        )
    return report


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments bench",
        description="Wall-clock benchmark + golden-digest verification.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short-duration workloads + short digest set (CI smoke)",
    )
    parser.add_argument(
        "--reps", type=int, default=5, metavar="N", help="timed repetitions"
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="report path (default: BENCH_sim.json)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the digest-verification pass "
        "(timed runs always stay serial)",
    )
    args = parser.parse_args(argv)
    try:
        run_bench(reps=args.reps, quick=args.quick, out_path=args.out, jobs=args.jobs)
    except RuntimeError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
