"""Wall-clock benchmark harness for the simulation kernel.

Times the headline workloads (Figure 9, chaos, failover, observe, the
transport comparison) end to end — full duration, pinned seed, warm
median of N repetitions — and writes ``BENCH_sim.json`` at the
repository root. Two guarantees ride
along with the numbers:

* **Fidelity**: before timing is trusted, every golden digest
  (:data:`~repro.experiments.golden.GOLDEN_IDS`) is recomputed and
  compared byte-for-byte against ``golden_digests.json``. A drift in any
  experiment fails the bench — a fast kernel that changes a scheduling
  decision is a broken kernel.
* **Provenance**: the pre-optimization baseline medians (measured on the
  same machine, same protocol, at the commit before the kernel fast-path
  work) are checked in at ``benchmarks/wallclock_baseline.json`` and
  copied into ``BENCH_sim.json`` next to the current medians, so the
  reported speedup is reproducible arithmetic, not a claim. A speedup is
  only printed when the baseline's interpreter and machine match the
  current run (:func:`baseline_comparability`) — otherwise the report
  says *incomparable baseline* rather than publishing a bogus ×-figure.

Both event-queue structures are benchmarked by default (``--queue
both``): the binary-heap reference and the Brown calendar queue with
same-tick cohort dispatch (:mod:`repro.sim.calendar`). Each variant runs
under the same digest oracle; per-variant timings land in the report as
``workloads`` / ``workloads_calendar``.

Usage::

    PYTHONPATH=src python -m repro.experiments bench          # full
    PYTHONPATH=src python -m repro.experiments bench --quick  # CI smoke
    PYTHONPATH=src python benchmarks/wallclock.py             # same, script
    PYTHONPATH=src python -m repro.experiments bench --partitions 5

``--quick`` runs the short-duration workload set and verifies only the
short digest set — a couple of seconds, suitable for a CI smoke job.

``--partitions N`` times the partitioned-execution tentpole instead of
the workload set: the ``pdescluster`` cluster workload runs once on the
serial reference executor and once across N spawn workers, the two
result digests are compared byte-for-byte, and a ``partitions`` section
is merged into ``BENCH_sim.json`` (the rest of an existing report is
preserved). Because partitioned wall-clock only beats serial when the
machine has cores to spare, the section records *both* the measured
walls and a critical-path speedup derived from per-worker CPU seconds —
see :func:`run_partition_bench` for the arithmetic and its basis.

Machine caveat: wall-clock numbers are only comparable against a baseline
measured on the same machine. The digest verification, by contrast, is
machine-independent.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Optional

from repro.obs.profile import PROFILE_ENV_VAR, WallClockProfiler, maybe_profile

from . import golden

__all__ = [
    "WORKLOADS",
    "QUEUES",
    "PARTITION_TARGET_SPEEDUP",
    "baseline_comparability",
    "critical_path_seconds",
    "run_partition_bench",
    "run_bench",
    "main",
]

#: seed every benchmark workload is pinned to (matches the golden set)
BENCH_SEED = 42

#: repo root (src/repro/experiments/bench.py -> three parents up from src/)
_REPO_ROOT = Path(__file__).resolve().parents[3]

#: default output path for the benchmark report
DEFAULT_OUT = _REPO_ROOT / "BENCH_sim.json"

#: where the collapsed-stack flamegraph artifact lands when profiling
DEFAULT_FLAMEGRAPH = _REPO_ROOT / "out" / "bench" / "flamegraph.folded"

#: checked-in pre-optimization medians (same machine/protocol provenance)
BASELINE_PATH = _REPO_ROOT / "benchmarks" / "wallclock_baseline.json"

#: the timed workloads: name -> experiment id run at full duration
WORKLOADS = ("figure9", "chaos", "failover", "observe", "transport")

#: the event-queue structures the bench knows how to drive
QUEUES = ("heap", "calendar")

#: the workload the >=1.5x acceptance target is pinned to
HEADLINE = "figure9"

#: the critical-path speedup the partitioned cluster workload must clear
PARTITION_TARGET_SPEEDUP = 1.3


#: the child timing program. Runs in a FRESH interpreter per workload so
#: one workload's heap growth (or the digest verification pass) cannot
#: leak into another's timings. Uses only the experiment REGISTRY +
#: inspect, so the identical program also times historical checkouts
#: (that is how the checked-in baseline was captured — see
#: ``benchmarks/wallclock_baseline.json``). The queue structure is
#: selected via ``REPRO_EVENT_QUEUE`` in the child's environment, which
#: historical checkouts simply ignore.
_CHILD_PROGRAM = r"""
import json, statistics, sys, time
t_import = time.perf_counter()
import inspect
from repro.experiments import REGISTRY
import_s = time.perf_counter() - t_import

name, seed, duration, reps = (
    sys.argv[1], int(sys.argv[2]), sys.argv[3], int(sys.argv[4])
)
runner = REGISTRY[name]
params = inspect.signature(runner).parameters
kwargs = {}
if "seed" in params:
    kwargs["seed"] = seed
if duration != "none" and "duration_us" in params:
    kwargs["duration_us"] = float(duration)
if "out_dir" in params:
    kwargs["out_dir"] = None
runner(**kwargs)  # warm: imports, allocator steady state, branch caches
samples = []
for _ in range(reps):
    t0 = time.perf_counter()
    runner(**kwargs)
    samples.append(time.perf_counter() - t0)
try:
    import resource
    peak_rss_kb = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
except Exception:
    peak_rss_kb = 0
print(json.dumps({
    "median_s": statistics.median(samples),
    "samples_s": samples,
    "reps": reps,
    "import_s": import_s,
    "peak_rss_kb": peak_rss_kb,
}))
"""


def time_workload_isolated(
    name: str,
    reps: int,
    quick: bool = False,
    src_dir: Optional[Path] = None,
    queue: str = "heap",
) -> dict:
    """Time one workload in a fresh interpreter; returns the timing dict.

    ``src_dir`` points the child at an alternative source tree (used to
    re-capture the baseline from the pre-optimization commit with the
    exact same measurement program). ``queue`` selects the event-queue
    structure via ``REPRO_EVENT_QUEUE`` in the child's environment.
    """
    duration = str(golden.SHORT_DURATION_US) if quick else "none"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(src_dir if src_dir is not None else _REPO_ROOT / "src")
    env["REPRO_EVENT_QUEUE"] = queue
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_PROGRAM, name, str(BENCH_SEED), duration, str(reps)],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _verify_digests(quick: bool, jobs: int = 1, queue: str = "heap") -> dict[str, str]:
    """Recompute the golden digests; returns name -> 'identical'|'drift'.

    ``jobs > 1`` fans the recomputation out over worker processes via the
    sweep runner (cache disabled — verification must recompute). The
    per-experiment digests are independent deterministic evaluations, so
    the fan-out cannot change a verdict, only the wall clock. ``queue``
    selects the event-queue structure for the recomputation (spawned
    workers inherit it through the environment).
    """
    goldens = golden.load_goldens()
    section = "short" if quick else "full"
    duration = golden.SHORT_DURATION_US if quick else None
    wanted = goldens[section]["digests"]
    prev = os.environ.get("REPRO_EVENT_QUEUE")
    os.environ["REPRO_EVENT_QUEUE"] = queue
    try:
        if jobs > 1:
            from repro.parallel import Job, SweepRunner

            specs = [
                Job(experiment=name, seed=BENCH_SEED, duration_us=duration)
                for name in wanted
            ]
            report = SweepRunner(workers=jobs, cache=None).run(specs)
            return {
                o.job.experiment: (
                    "identical"
                    if o.ok and o.result_digest == wanted[o.job.experiment]
                    else ("drift" if o.ok else f"error: {o.error}")
                )
                for o in report.outcomes
            }
        verdicts: dict[str, str] = {}
        for name, want in wanted.items():
            got = golden.compute_digest(
                name, seed=BENCH_SEED, duration_us=duration, out_dir=None
            )
            verdicts[name] = "identical" if got == want else "drift"
        return verdicts
    finally:
        if prev is None:
            os.environ.pop("REPRO_EVENT_QUEUE", None)
        else:
            os.environ["REPRO_EVENT_QUEUE"] = prev


def baseline_comparability(
    baseline: Optional[dict],
    python: Optional[str] = None,
    machine: Optional[str] = None,
) -> tuple[bool, str]:
    """Decide whether the checked-in baseline supports a speedup claim.

    Wall-clock medians only divide meaningfully when baseline and current
    run share interpreter version and machine architecture. Returns
    ``(comparable, reason)`` where ``reason`` names every mismatched
    field (empty string when comparable).
    """
    if baseline is None:
        return False, "no baseline"
    python = python if python is not None else platform.python_version()
    machine = machine if machine is not None else platform.machine()
    mismatches = []
    base_python = baseline.get("python")
    base_machine = baseline.get("machine")
    if base_python != python:
        mismatches.append(f"python {base_python!r} != {python!r}")
    if base_machine != machine:
        mismatches.append(f"machine {base_machine!r} != {machine!r}")
    if mismatches:
        return False, "; ".join(mismatches)
    return True, ""


def critical_path_seconds(timing: dict) -> tuple[float, float]:
    """Fold a coordinator timing dict into ``(critical_path_s, coord_s)``.

    ``timing`` is the digest-exempt measurement block a partitioned
    :func:`repro.experiments.pdescluster.pdescluster` run emits:
    ``wall_s`` (coordinator wall), ``startup_s`` (spawn-pool bring-up
    wall), ``worker_build_cpu_s`` (per-worker interpreter-import +
    topology-build CPU) and ``worker_cpu_s`` (per-worker window-phase
    CPU), both measured in-worker with ``time.process_time``.

    The critical path is the wall-clock a worker-per-partition run
    attains once the machine has at least as many cores as workers.
    Worker bring-ups are independent processes, so they overlap and
    contribute only the *slowest* worker's build CPU; the lockstep
    window rounds likewise advance at the pace of the slowest worker,
    modeled here by the largest total window-phase CPU (exact when the
    same partition dominates every round, as the static round-robin
    assignment makes typical). The coordinator's own protocol CPU
    overlaps with neither and is recovered by subtraction: on a
    saturated box the measured wall is startup + the *sum* of window
    CPU + the coordinator share, so ``coord_s = wall - startup -
    sum(worker_cpu)``, clamped at zero for machines where the workers
    genuinely ran in parallel and the subtraction would double-count
    the overlap.
    """
    worker_cpu = timing.get("worker_cpu_s", {}) or {}
    build_cpu = timing.get("worker_build_cpu_s", {}) or {}
    startup = float(timing.get("startup_s", 0.0))
    coord_s = max(
        0.0, float(timing.get("wall_s", 0.0)) - startup - sum(worker_cpu.values())
    )
    critical = (
        max(build_cpu.values(), default=startup)
        + max(worker_cpu.values(), default=0.0)
        + coord_s
    )
    return critical, coord_s


def run_partition_bench(
    partitions: int,
    quick: bool = False,
    n_nodes: int = 4,
    out_path: Optional[Path] = None,
) -> dict:
    """Time the pdescluster workload serial vs partitioned; merge report.

    Runs the cluster-scale partitioned workload (front door + *n_nodes*
    node partitions across the SAN seam) twice — serial reference
    executor, then *partitions* spawn workers — under the same seed and
    duration, and proves the two byte-identical with the same digest
    oracle the sweep engine uses (:func:`golden.result_digest`). When
    the run matches a pinned golden configuration (seed 42, default
    node count), the digest is additionally checked against the
    checked-in set.

    The resulting ``partitions`` section is merged into the report at
    *out_path* (default ``BENCH_sim.json``) without disturbing the
    workload-timing sections a previous full bench wrote.

    Raises :class:`RuntimeError` on any digest mismatch — a partitioned
    run that changes one byte is a broken coordinator, and its timings
    are meaningless.
    """
    if partitions < 1:
        raise ValueError(
            f"partitions must be a positive worker count, got {partitions!r}; "
            "valid values are 1..N (or omit the flag for the workload bench)"
        )
    out_path = Path(out_path) if out_path is not None else DEFAULT_OUT
    import time

    from repro.experiments.pdescluster import pdescluster

    from .calibration import SIM_DURATION_US

    duration = golden.SHORT_DURATION_US if quick else SIM_DURATION_US
    logical = n_nodes + 1  # front door + one partition per node

    print(
        f"partition bench: pdescluster, {n_nodes} nodes ({logical} logical "
        f"partitions), {duration / 1e6:.0f} simulated seconds"
    )
    print("  serial reference executor...")
    serial_timing: dict = {}
    t0 = time.perf_counter()
    serial_result = pdescluster(
        duration_us=duration,
        seed=BENCH_SEED,
        n_nodes=n_nodes,
        partitions=None,
        out_dir=None,
        timing_sink=serial_timing,
    )
    serial_wall = time.perf_counter() - t0
    serial_digest = golden.result_digest(serial_result)
    print(f"    wall {serial_wall:.2f} s  digest {serial_digest[:12]}...")

    print(f"  {partitions} spawn workers...")
    part_timing: dict = {}
    t0 = time.perf_counter()
    part_result = pdescluster(
        duration_us=duration,
        seed=BENCH_SEED,
        n_nodes=n_nodes,
        partitions=partitions,
        out_dir=None,
        timing_sink=part_timing,
    )
    part_wall = time.perf_counter() - t0
    part_digest = golden.result_digest(part_result)
    print(f"    wall {part_wall:.2f} s  digest {part_digest[:12]}...")

    identical = serial_digest == part_digest

    # when this exact configuration is pinned, hold both runs to the
    # checked-in digest as well (the sweep engine's byte-identity oracle)
    pinned_match: Optional[bool] = None
    if n_nodes == 4 and BENCH_SEED == 42:
        section_name = "short" if quick else "full"
        pinned = (
            golden.load_goldens()
            .get(section_name, {})
            .get("digests", {})
            .get("pdescluster")
        )
        if pinned is not None:
            pinned_match = serial_digest == pinned and part_digest == pinned

    critical_s, coord_s = critical_path_seconds(part_timing)
    worker_cpu = part_timing.get("worker_cpu_s", {}) or {}
    build_cpu = part_timing.get("worker_build_cpu_s", {}) or {}
    serial_coord_wall = float(serial_timing.get("wall_s", serial_wall))
    speedup_measured = serial_coord_wall / float(
        part_timing.get("wall_s", part_wall)
    )
    speedup_critical = serial_coord_wall / critical_s if critical_s > 0 else 0.0
    cores = os.cpu_count() or 1

    section = {
        "workload": "pdescluster",
        "n_nodes": n_nodes,
        "logical_partitions": logical,
        "workers": partitions,
        "seed": BENCH_SEED,
        "duration_us": duration,
        "quick": quick,
        "cores": cores,
        "serial": {"wall_s": serial_coord_wall, "digest": serial_digest},
        "partitioned": {
            "wall_s": float(part_timing.get("wall_s", part_wall)),
            "startup_s": float(part_timing.get("startup_s", 0.0)),
            "worker_build_cpu_s": {
                str(k): v for k, v in sorted(build_cpu.items())
            },
            "worker_cpu_s": {str(k): v for k, v in sorted(worker_cpu.items())},
            "coordinator_s": coord_s,
            "critical_path_s": critical_s,
            "digest": part_digest,
        },
        "identical": identical,
        "pinned_digest_match": pinned_match,
        "speedup_measured": speedup_measured,
        "speedup_critical_path": speedup_critical,
        "target_speedup": PARTITION_TARGET_SPEEDUP,
        "target_met": speedup_critical >= PARTITION_TARGET_SPEEDUP,
        "basis": (
            "critical path = max per-worker bring-up CPU + max per-worker "
            "window CPU + coordinator CPU: the wall-clock a "
            "worker-per-partition run attains when cores >= workers "
            "(independent bring-ups overlap; lockstep windows advance at "
            f"the slowest worker's pace); this machine has {cores} "
            "core(s), so the measured partitioned wall serializes the "
            "workers and speedup_measured understates the protocol"
        ),
    }

    report = json.loads(out_path.read_text()) if out_path.exists() else {}
    report["partitions"] = section
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path} (partitions section)")
    print(
        f"  serial {serial_coord_wall:.2f} s | partitioned wall "
        f"{section['partitioned']['wall_s']:.2f} s (startup "
        f"{section['partitioned']['startup_s']:.2f} s, max bring-up CPU "
        f"{max(build_cpu.values(), default=0.0):.2f} s, max window CPU "
        f"{max(worker_cpu.values(), default=0.0):.2f} s, coordinator "
        f"{coord_s:.2f} s)"
    )
    print(
        f"  speedup: measured {speedup_measured:.2f}x, critical-path "
        f"{speedup_critical:.2f}x (target {PARTITION_TARGET_SPEEDUP}x "
        f"{'met' if section['target_met'] else 'NOT met'})"
    )

    if not identical:
        raise RuntimeError(
            f"partitioned digest {part_digest} != serial digest "
            f"{serial_digest} — the window protocol changed result bytes"
        )
    if pinned_match is False:
        raise RuntimeError(
            "pdescluster digest does not match the checked-in golden set — "
            "run the golden verify CLI to locate the drift"
        )
    return section


def run_bench(
    reps: int = 5,
    quick: bool = False,
    out_path: Optional[Path] = None,
    jobs: int = 1,
    queue: str = "both",
    profile: bool = False,
    flamegraph_path: Optional[Path] = None,
) -> dict:
    """Run the benchmark; writes the report and returns it as a dict.

    Raises :class:`RuntimeError` if any golden digest drifts under any
    benchmarked queue structure — wall-clock numbers for a behaviourally
    different simulation are meaningless.

    ``jobs`` parallelizes only the digest-verification pass. The timed
    runs stay strictly serial, one fresh interpreter at a time — sharing
    cores between concurrent timed workloads would corrupt the medians.

    ``queue`` is ``"heap"``, ``"calendar"``, or ``"both"`` (default):
    which event-queue structure(s) to time and digest-verify.

    ``profile`` (or ``REPRO_PROFILE=1``) arms the wall-clock self-profiler
    around the in-process digest-verification pass — the full workload
    set re-executes under the sampler while the digests are compared
    byte-for-byte, which *is* the bit-identity proof the profiler claims.
    Hotspots land in the report (``hotspots`` / ``profile``) and the
    collapsed stacks in ``out/bench/flamegraph.folded``. Meaningful
    attribution needs the serial pass, so profiling forces ``jobs=1``.
    """
    out_path = Path(out_path) if out_path is not None else DEFAULT_OUT
    profiler = WallClockProfiler() if profile else maybe_profile()
    if profiler.enabled and jobs > 1:
        print("profiling: forcing --jobs 1 (worker processes are unsampled)")
        jobs = 1
    queues = QUEUES if queue == "both" else (queue,)
    for q in queues:
        if q not in QUEUES:
            raise ValueError(f"unknown queue {q!r}; expected one of {QUEUES} or 'both'")

    current: dict[str, dict[str, dict]] = {q: {} for q in queues}
    for q in queues:
        for name in WORKLOADS:
            print(
                f"timing {name} [{q}] ({reps} reps{', quick' if quick else ''}, isolated)..."
            )
            current[q][name] = time_workload_isolated(name, reps, quick=quick, queue=q)
            print(
                f"  median {current[q][name]['median_s']:.3f} s"
                f"  (peak RSS {current[q][name].get('peak_rss_kb', 0) / 1024:.0f} MB,"
                f" cold import {current[q][name].get('import_s', 0.0):.2f} s)"
            )

    digests: dict[str, dict[str, str]] = {}
    drifted: list[str] = []
    with profiler:
        for q in queues:
            print(
                f"verifying golden digests [{q}] ({'short' if quick else 'full'} set"
                f"{f', {jobs} workers' if jobs > 1 else ''})..."
            )
            digests[q] = _verify_digests(quick, jobs=jobs, queue=q)
            drifted.extend(
                f"{n} [{q}]" for n, v in sorted(digests[q].items()) if v != "identical"
            )
            for name, verdict in sorted(digests[q].items()):
                print(f"  {name:10s} {verdict}")

    baseline = None
    comparable = False
    why_not = "quick mode (no baseline comparison)" if quick else "no baseline"
    if not quick and BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        comparable, reason = baseline_comparability(baseline)
        if not comparable:
            why_not = f"incomparable baseline: {reason}"

    speedups: dict[str, Optional[dict[str, float]]] = {}
    for q in queues:
        if baseline is not None and comparable:
            speedups[q] = {
                name: baseline["workloads"][name]["median_s"]
                / current[q][name]["median_s"]
                for name in WORKLOADS
                if name in baseline.get("workloads", {})
            }
        else:
            speedups[q] = None

    report = {
        "seed": BENCH_SEED,
        "quick": quick,
        "protocol": "fresh interpreter per workload; 1 warm run + median of N reps",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "queues": list(queues),
        "digests": digests.get("heap", digests.get("calendar", {})),
        "digests_calendar": digests.get("calendar"),
        "workloads": current.get("heap", current.get("calendar", {})),
        "workloads_calendar": current.get("calendar"),
        "baseline": baseline,
        "baseline_comparable": comparable,
        "baseline_incomparable_reason": None if comparable else why_not,
        "speedup": speedups.get("heap", speedups.get("calendar")),
        "speedup_calendar": speedups.get("calendar"),
        "headline": HEADLINE,
    }

    if profiler.enabled:
        flame = (
            Path(flamegraph_path) if flamegraph_path is not None else DEFAULT_FLAMEGRAPH
        )
        flame.parent.mkdir(parents=True, exist_ok=True)
        flame.write_text(profiler.collapsed())
        report["hotspots"] = profiler.hotspots(15)
        report["profile"] = {
            "samples": profiler.samples,
            "wall_s": profiler.wall_s,
            "interval_s": profiler.interval_s,
            "packages": profiler.package_rollup(),
            "flamegraph": str(flame),
            "scope": "digest-verification pass (all workloads, in-process)",
        }
        if profiler.call_counts_enabled:
            top_calls = sorted(profiler.calls.items(), key=lambda kv: (-kv[1], kv[0]))
            report["profile"]["top_calls"] = [
                {"function": fn, "calls": n} for fn, n in top_calls[:15]
            ]
        print(profiler.render_hotspots())
        print(f"wrote {flame}")

    # a previous `bench --partitions` section is provenance worth keeping:
    # the workload bench and the partition bench update disjoint keys
    if out_path.exists():
        try:
            prior = json.loads(out_path.read_text())
        except (OSError, json.JSONDecodeError):
            prior = {}
        if "partitions" in prior:
            report["partitions"] = prior["partitions"]

    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}")

    if baseline is not None and not comparable:
        print(f"  {why_not} — no speedup reported")
    for q in queues:
        if speedups[q] is not None:
            for name in WORKLOADS:
                if name in speedups[q]:
                    print(f"  speedup {name:10s} [{q}] {speedups[q][name]:.2f}x")

    if drifted:
        raise RuntimeError(
            f"golden digest drift in: {', '.join(drifted)} — simulated outputs "
            "changed; timings are not comparable (and the kernel is wrong)"
        )
    return report


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments bench",
        description="Wall-clock benchmark + golden-digest verification.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short-duration workloads + short digest set (CI smoke)",
    )
    parser.add_argument(
        "--reps", type=int, default=5, metavar="N", help="timed repetitions"
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None, help="report path (default: BENCH_sim.json)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the digest-verification pass "
        "(timed runs always stay serial)",
    )
    parser.add_argument(
        "--queue",
        choices=(*QUEUES, "both"),
        default="both",
        help="event-queue structure(s) to bench (default: both)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="arm the wall-clock self-profiler around the digest "
        f"verification (equivalent to {PROFILE_ENV_VAR}=1); writes "
        "hotspots into the report and a flamegraph .folded artifact",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="N",
        help="bench partitioned execution instead of the workload set: "
        "run the pdescluster workload serial vs across N spawn workers, "
        "prove the digests byte-identical, and merge a 'partitions' "
        "section into the report",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=4,
        metavar="M",
        help="node partitions for the --partitions workload (default 4: "
        "front door + 4 nodes = 5 logical partitions)",
    )
    args = parser.parse_args(argv)
    if args.partitions is not None:
        if args.partitions < 1:
            parser.error(
                f"--partitions must be a positive worker count, got "
                f"{args.partitions}; valid values are 1..N (or omit the "
                "flag for the workload bench)"
            )
        try:
            run_partition_bench(
                args.partitions,
                quick=args.quick,
                n_nodes=args.nodes,
                out_path=args.out,
            )
        except RuntimeError as err:
            print(f"FAIL: {err}", file=sys.stderr)
            return 1
        return 0
    try:
        run_bench(
            reps=args.reps,
            quick=args.quick,
            out_path=args.out,
            jobs=args.jobs,
            queue=args.queue,
            profile=args.profile,
        )
    except RuntimeError as err:
        print(f"FAIL: {err}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
