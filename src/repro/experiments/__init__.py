"""Experiment harness: one runner per table and figure of the paper.

``REGISTRY`` maps experiment ids to zero-argument callables returning
:class:`~repro.experiments.report.ExperimentResult`. ``run_all`` executes
everything (the figures are full 100-simulated-second runs; expect minutes
of wall time).
"""

from __future__ import annotations

from typing import Callable

from .chaos import chaos, run_chaos_scenario
from .cluster import cluster, run_cluster_scenario
from .failover import failover, run_failover_scenario
from .figures import (
    LoadedRun,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    run_loading_experiment,
)
from .extensions import admission_sweep, jitter_comparison, ni_balance, stream_scaling
from .headline import headline, scheduling_overhead
from .observe import observe, run_observed
from .pdescluster import pdescluster
from .report import ExperimentResult, Row, Series
from .sensitivity import cost_sensitivity, mechanism_knockouts
from .tables import table1, table2, table3, table4, table5
from .transport import transport

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "headline",
    "scheduling_overhead",
    "stream_scaling",
    "jitter_comparison",
    "admission_sweep",
    "ni_balance",
    "cost_sensitivity",
    "mechanism_knockouts",
    "chaos",
    "run_chaos_scenario",
    "transport",
    "cluster",
    "run_cluster_scenario",
    "failover",
    "run_failover_scenario",
    "observe",
    "run_observed",
    "pdescluster",
    "run_loading_experiment",
    "LoadedRun",
    "ExperimentResult",
    "Row",
    "Series",
    "REGISTRY",
    "run_all",
]

REGISTRY: dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "headline": headline,
    "ext_stream_scaling": stream_scaling,
    "ext_jitter": jitter_comparison,
    "ext_admission": admission_sweep,
    "ext_ni_balance": ni_balance,
    "sens_costs": cost_sensitivity,
    "sens_knockouts": mechanism_knockouts,
    "chaos": chaos,
    "cluster": cluster,
    "transport": transport,
    "failover": failover,
    "observe": observe,
    "pdescluster": pdescluster,
}


def run_all(verbose: bool = True) -> dict[str, ExperimentResult]:
    """Run every experiment; returns {id: result}."""
    results = {}
    for name, runner in REGISTRY.items():
        result = runner()
        results[name] = result
        if verbose:
            print(result.render())
            print()
    return results
