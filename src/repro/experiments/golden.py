"""Golden digests: compact fingerprints of experiment outputs.

The perf work on the simulation kernel claims to be *bit-identical*: a
faster event loop, hook table, or memoized cost conversion must not move a
single scheduling decision or delivered byte. The proof is a digest — a
SHA-256 over a canonical serialization of everything an experiment
reports (rows, series arrays, notes) — checked into the repository
(``golden_digests.json`` next to this module) and recomputed by the
regression tests and the wall-clock benchmark harness.

Two digest sets are kept:

* ``full`` — every headline experiment (tables 1–5, figures 6–10, chaos,
  failover, observe) at the paper's full 100-simulated-second duration,
  seed 42. Verified by ``python -m repro.experiments bench``.
* ``short`` — figure9 / chaos / failover at a 10-simulated-second
  duration, seed 42. Cheap enough for the tier-1 test suite
  (``tests/experiments/test_golden_digests.py``).

Refreshing after an *intentional* behaviour change::

    PYTHONPATH=src python -m repro.experiments.golden --refresh short
    PYTHONPATH=src python -m repro.experiments.golden --refresh full
"""

from __future__ import annotations

import hashlib
import inspect
import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .report import ExperimentResult

__all__ = [
    "GOLDEN_IDS",
    "SHORT_IDS",
    "SHORT_DURATION_US",
    "result_digest",
    "trace_digest",
    "compute_result",
    "compute_digest",
    "load_goldens",
    "save_goldens",
    "verify",
]

#: every experiment the bench harness pins byte-for-byte (full duration)
GOLDEN_IDS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "chaos",
    "cluster",
    "failover",
    "observe",
    # sensitivity runners are pinned too, so sweeping over them is
    # cache-safe: a cache entry is only ever as trustworthy as the
    # digest contract behind the experiment it stores
    "sens_costs",
    "sens_knockouts",
    "transport",
    "pdescluster",
)

#: the scaled-down set the tier-1 suite recomputes on every run
SHORT_IDS = (
    "figure9",
    "chaos",
    "failover",
    "cluster",
    "sens_costs",
    "sens_knockouts",
    "transport",
    "pdescluster",
)

#: 10 simulated seconds: long enough for streams to settle and every
#: chaos/failover fault window to open and clear, short enough for CI
SHORT_DURATION_US = 10_000_000.0

_GOLDEN_PATH = Path(__file__).with_name("golden_digests.json")


def result_digest(result: "ExperimentResult") -> str:
    """SHA-256 over a canonical serialization of *result*.

    Floats go through ``repr`` (exact round-trip), series arrays as raw
    float64 bytes — any single-bit drift in a computed value changes the
    digest.
    """
    h = hashlib.sha256()

    def feed(text: str) -> None:
        h.update(text.encode("utf-8"))
        h.update(b"\x00")

    feed(result.exp_id)
    feed(result.title)
    for r in result.rows:
        feed(r.label)
        feed(repr(r.measured))
        feed(r.unit)
        feed(repr(r.paper))
        feed(r.note)
    for s in result.series:
        feed(s.name)
        feed(s.x_label)
        feed(s.y_label)
        h.update(s.x.astype(float).tobytes())
        h.update(s.y.astype(float).tobytes())
    for note in result.notes:
        feed(note)
    return h.hexdigest()


def trace_digest(tracer) -> str:
    """SHA-256 of the sorted event log of a :class:`~repro.sim.trace.Tracer`.

    Events are serialized to sorted-key JSON and sorted as strings, so the
    digest is insensitive to emission order but pinned to every timestamp
    and field value.
    """
    lines = sorted(
        json.dumps(ev.to_dict(), sort_keys=True, default=repr)
        for ev in tracer.events()
    )
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def compute_result(
    name: str,
    seed: int = 42,
    duration_us: Optional[float] = None,
    **overrides,
) -> "ExperimentResult":
    """Run one registered experiment, passing only the kwargs it accepts."""
    from . import REGISTRY

    runner = REGISTRY[name]
    params = inspect.signature(runner).parameters
    kwargs = {}
    if "seed" in params:
        kwargs["seed"] = seed
    if duration_us is not None and "duration_us" in params:
        kwargs["duration_us"] = duration_us
    for key, value in overrides.items():
        if key in params:
            kwargs[key] = value
    return runner(**kwargs)


def compute_digest(
    name: str,
    seed: int = 42,
    duration_us: Optional[float] = None,
    **overrides,
) -> str:
    return result_digest(
        compute_result(name, seed=seed, duration_us=duration_us, **overrides)
    )


def load_goldens() -> dict:
    """The checked-in digest file ({} when absent, e.g. mid-refresh)."""
    if not _GOLDEN_PATH.exists():
        return {}
    return json.loads(_GOLDEN_PATH.read_text())


def save_goldens(goldens: dict) -> None:
    _GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")


def refresh(
    which: str = "short", seed: int = 42, verbose: bool = True, jobs: int = 1
) -> dict:
    """Recompute and store one digest set; returns the updated file dict.

    ``jobs > 1`` fans the recomputation out across worker processes (no
    cache — a refresh must recompute from scratch). Worker round-trips
    are digest-faithful by the serialization contract of
    :mod:`repro.experiments.report`, so the refreshed file is identical
    whichever worker count produced it.
    """
    goldens = load_goldens()
    if which == "short":
        ids, duration = SHORT_IDS, SHORT_DURATION_US
    elif which == "full":
        ids, duration = GOLDEN_IDS, None
    else:
        raise ValueError("which must be 'short' or 'full'")
    digests = {}
    if jobs > 1:
        from repro.parallel import Job, SweepRunner

        specs = [
            Job(experiment=name, seed=seed, duration_us=duration) for name in ids
        ]
        report = SweepRunner(workers=jobs, cache=None).run(specs)
        failed = [o for o in report.outcomes if not o.ok]
        if failed:
            raise RuntimeError(
                "refresh workers failed: "
                + ", ".join(f"{o.job.experiment} ({o.error})" for o in failed)
            )
        digests = {o.job.experiment: o.result_digest for o in report.outcomes}
        if verbose:
            for name in ids:
                print(f"{which}:{name} = {digests[name]}")
    else:
        for name in ids:
            # artifacts stay off disk during digest runs: the digest covers
            # the result object, not the exporter side effects
            digests[name] = compute_digest(
                name, seed=seed, duration_us=duration, out_dir=None
            )
            if verbose:
                print(f"{which}:{name} = {digests[name]}")
    goldens[which] = {
        "seed": seed,
        "duration_us": duration,
        "digests": digests,
    }
    save_goldens(goldens)
    return goldens


def verify(
    which: str = "short",
    seed: int = 42,
    partitions: Optional[int] = None,
    verbose: bool = True,
) -> list[str]:
    """Recompute one digest set and compare against the pinned file.

    Returns the ids whose digests do not match (empty list == verified).
    ``partitions`` routes every experiment through partitioned execution
    (:mod:`repro.pdes`): the campaign experiments fan their cells across
    that many worker processes, ``pdescluster`` runs its event-level
    window protocol on that many workers — and every digest must still
    equal the serially-pinned one. That is the tentpole's byte-identity
    proof::

        PYTHONPATH=src python -m repro.experiments.golden --verify short --partitions 2
    """
    goldens = load_goldens()
    if which == "short":
        ids, duration = SHORT_IDS, SHORT_DURATION_US
    elif which == "full":
        ids, duration = GOLDEN_IDS, None
    else:
        raise ValueError("which must be 'short' or 'full'")
    pinned = goldens.get(which, {}).get("digests", {})
    mismatches = []
    for name in ids:
        overrides: dict = {"out_dir": None}
        if partitions is not None:
            overrides["partitions"] = partitions
        digest = compute_digest(
            name, seed=seed, duration_us=duration, **overrides
        )
        ok = digest == pinned.get(name)
        if not ok:
            mismatches.append(name)
        if verbose:
            status = "OK" if ok else f"MISMATCH (pinned {pinned.get(name)})"
            print(f"{which}:{name} = {digest} {status}")
    return mismatches


if __name__ == "__main__":  # pragma: no cover - maintenance CLI
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="refresh or verify golden digests"
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--refresh", choices=["short", "full"])
    group.add_argument(
        "--verify", choices=["short", "full"],
        help="recompute the set and compare against the pinned digests "
        "(exit 1 on any mismatch)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="refresh: worker processes for the recomputation fan-out",
    )
    parser.add_argument(
        "--partitions", type=int, default=None, metavar="N",
        help="verify: run every experiment partitioned across N workers; "
        "the digests must still match the serially-pinned set",
    )
    args = parser.parse_args()
    if args.partitions is not None and args.partitions < 1:
        parser.error(
            f"--partitions must be a positive worker count, got "
            f"{args.partitions}; valid values are 1..N (or omit the flag "
            "for the serial path)"
        )
    if args.refresh:
        if args.partitions is not None:
            parser.error("--partitions applies to --verify, not --refresh")
        refresh(args.refresh, seed=args.seed, jobs=args.jobs)
    else:
        bad = verify(args.verify, seed=args.seed, partitions=args.partitions)
        if bad:
            print(f"MISMATCHED: {', '.join(bad)}", file=sys.stderr)
            sys.exit(1)
