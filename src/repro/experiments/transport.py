"""The transport comparison: offload vs host over udp / tcp / ttp.

Beyond the paper: the prototype wires media frames onto the switch as raw
datagrams (the modeled I2O board-resident UDP). This experiment replays
the Figure 7/9 loading cell ("60%" web load, both the host and the NI
configuration) over each media transport —

* ``udp``  — the historical raw path, byte-for-byte the shipped runs,
* ``tcp``  — the go-back-N TCP of :mod:`repro.net.tcp`,
* ``ttp``  — the TTPoE-style reliable L2 transport of
  :mod:`repro.net.ttp` (tagged 3-way open, NACK-driven go-back-N,
  NOC-style credit flow; see ``docs/ttp-spec.md``)

— and tabulates per-stream settled bandwidth, delivered frames, the
NI/host delivery ratio per transport, and (for the reliable transports)
the retransmission and zero-leak ledger accounting.

Runs are deterministic given a seed: the whole table is replayed
byte-identically by ``python -m repro.experiments transport --seed 42``
(the CI transport-smoke job diffs a double run).
"""

from __future__ import annotations

from typing import Optional

from repro.net.transport import VALID_TRANSPORTS, resolve_transport

from .calibration import SIM_DURATION_US
from .figures import LoadedRun, run_loading_experiment
from .report import ExperimentResult

__all__ = ["transport", "TRANSPORT_LOAD_LEVEL"]

#: the loading cell the comparison runs at (the paper's heavy web load)
TRANSPORT_LOAD_LEVEL = "60%"


def _delivered_frames(run: LoadedRun) -> int:
    return sum(c.total_frames for c in run.service.clients.values())


def transport(
    duration_us: float = SIM_DURATION_US,
    seed: int = 42,
    transports: Optional[list[str]] = None,
    partitions: Optional[int] = None,
) -> ExperimentResult:
    """Offload-vs-host comparison across the media transports.

    ``partitions`` fans the transports out across that many worker
    processes (one partition cell per transport) and reassembles a
    byte-identical result — see :mod:`repro.pdes.plan`."""
    if partitions is not None:
        from repro.pdes.plan import run_plan

        overrides: dict = {}
        if transports is not None:
            overrides["transports"] = transports
        return run_plan(
            "transport",
            seed=seed,
            duration_us=duration_us,
            partitions=partitions,
            **overrides,
        )
    names = (
        [resolve_transport(t) for t in transports]
        if transports is not None
        else list(VALID_TRANSPORTS)
    )
    result = ExperimentResult(
        exp_id="Transport",
        title=(
            f"Media transport comparison at {TRANSPORT_LOAD_LEVEL} web load "
            f"(seed {seed})"
        ),
    )
    for tname in names:
        runs: dict[str, LoadedRun] = {}
        for kind in ("host", "ni"):
            run = run_loading_experiment(
                kind,
                TRANSPORT_LOAD_LEVEL,
                duration_us=duration_us,
                seed=seed,
                transport=tname,
            )
            runs[kind] = run
            svc = run.service
            for sid in sorted(svc.engine.scheduler.queues):
                result.add_row(
                    f"{tname}/{kind}: {sid} settled bandwidth",
                    run.settled_bandwidth(sid),
                    unit="bps",
                )
            result.add_row(
                f"{tname}/{kind}: frames delivered",
                float(_delivered_frames(run)),
            )
            books = svc.books
            if books is not None:
                result.add_row(
                    f"{tname}/{kind}: records sent", float(len(books.sent_ids))
                )
                result.add_row(
                    f"{tname}/{kind}: retransmissions",
                    float(books.retransmissions),
                )
                result.add_row(
                    f"{tname}/{kind}: records lost",
                    float(len(books.lost_ids)),
                )
                result.add_row(
                    f"{tname}/{kind}: duplicate deliveries",
                    float(books.duplicate_deliveries),
                )
                result.add_row(
                    f"{tname}/{kind}: records unaccounted",
                    float(len(books.unaccounted())),
                    note=(
                        "MUST be 0: every sent record is delivered, lost, "
                        "or in flight"
                    ),
                )
        host_frames = _delivered_frames(runs["host"])
        ni_frames = _delivered_frames(runs["ni"])
        result.add_row(
            f"{tname}: NI/host delivery ratio",
            ni_frames / host_frames if host_frames else 0.0,
            note="the paper's offload advantage, per transport",
        )
    result.notes.append(
        "udp is the shipped raw-frame path; tcp/ttp carry each frame as "
        "one reliable record between the serving port and its client"
    )
    result.notes.append(
        "transport stacks charge their own per-packet protocol costs on "
        "top of the service's transmit-side stack charge"
    )
    result.notes.append(
        "deterministic: identical seed => identical rows across double runs"
    )
    return result
