"""The headline comparison: scheduling overhead, NI vs host.

"The scheduling overhead of the host-based DWCS scheduler ... is of the
order of ≈50 µs. This result was obtained on an UltraSPARC CPU (300 MHz)
with quiescent load. The scheduling overhead of the i960 RD I2O card
(66 MHz) based scheduler is around ≈65 µs. These results are comparable,
although the i960 RD is a much slower processor (factor of 4)."

Scheduling overhead = (avg frame time with scheduler) − (avg frame time
without), from the drain-the-rings microbenchmark, cache enabled.
"""

from __future__ import annotations

from typing import Optional

from repro.core.engine import MicrobenchEngine
from repro.fixedpoint import FixedPointContext
from repro.hw.cache import DataCache
from repro.hw.cpu import CPU, CPUSpec, I960RD_66, ULTRASPARC_300
from repro.server.streaming import HOST_DWCS_COSTS
from repro.sim import Environment

from .calibration import microbench_scheduler
from .report import ExperimentResult

__all__ = ["headline", "scheduling_overhead"]


def scheduling_overhead(cpu_spec: CPUSpec, costs=None, cache_enabled: bool = True) -> float:
    """Measured per-frame scheduling overhead (µs) on *cpu_spec*."""
    results = []
    for with_scheduler in (True, False):
        env = Environment()
        cpu = CPU(cpu_spec, cache=DataCache(enabled=cache_enabled))
        scheduler = microbench_scheduler(FixedPointContext())
        if costs is not None:
            scheduler.costs = costs
        engine = MicrobenchEngine(env, scheduler, cpu)
        gen = (
            engine.run_with_scheduler()
            if with_scheduler
            else engine.run_without_scheduler()
        )
        results.append(env.run(until=env.process(gen)))
    return results[0].avg_frame_us - results[1].avg_frame_us


def headline(partitions: Optional[int] = None) -> ExperimentResult:
    """NI (66 MHz i960, embedded build) vs host (300 MHz UltraSPARC,
    SysV-shared-memory build) scheduling overhead."""
    if partitions is not None:
        # single-unit partition plan: one worker, canonical round-trip
        from repro.pdes.plan import run_plan

        return run_plan("headline", partitions=partitions)
    result = ExperimentResult(
        exp_id="Headline", title="Scheduling Overhead: NI CoProcessor vs Host CPU"
    )
    ni = scheduling_overhead(I960RD_66)
    host = scheduling_overhead(ULTRASPARC_300, costs=HOST_DWCS_COSTS)
    result.add_row("i960 RD (66 MHz) scheduling overhead", ni, "µs", paper=65.0)
    result.add_row("UltraSPARC (300 MHz) host scheduling overhead", host, "µs", paper=50.0)
    result.add_row(
        "overhead ratio (NI/host)", ni / host, "", paper=65.0 / 50.0,
        note="comparable despite the ~4x clock gap",
    )
    result.add_row(
        "clock ratio (host/NI)", ULTRASPARC_300.clock_mhz / I960RD_66.clock_mhz, "",
        paper=4.0, note="paper: 'a much slower processor (factor of 4)'",
    )
    result.notes.append(
        "half an Ethernet frame time (~120 µs on 100 Mbps) comfortably covers "
        "the NI overhead"
    )
    return result
