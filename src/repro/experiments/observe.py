"""The observe runner: the Figure 9 workload replayed fully instrumented.

Both scheduler placements (host-resident and NI-resident) are rerun with an
:class:`~repro.obs.ObservabilityPlane` installed before the clock starts, so
every datapath hop — disk read, filesystem stripe, bridge transfer, DMA,
scheduler queue, dispatch, firmware, protocol stack, wire — emits spans into
one ring and counters into one registry. The result renders the per-hop
latency-breakdown tables and a representative (median) frame's critical
path for each configuration side by side, and writes the full artifact set
(Perfetto trace JSON, raw JSONL ring, breakdown CSV, metrics snapshot) to
``out/observe/``.

Determinism contract: same seed ⇒ byte-identical stdout and artifacts. The
plane adds no simulated time, so the instrumented run's delivered bytes and
scheduler decisions match the uninstrumented Figure 9 run exactly.

    python -m repro.experiments observe --seed 42
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.obs import (
    OBSERVE_SLOS,
    LatencyBreakdown,
    ObservabilityPlane,
    evaluate,
    render_slo_report,
    write_observe_artifacts,
    write_slo_report,
)

from .calibration import SIM_DURATION_US
from .figures import LoadedRun, run_loading_experiment
from .report import ExperimentResult

__all__ = ["ObservedRun", "run_observed", "observe", "DEFAULT_OUT_DIR"]

#: where the artifact set lands unless the caller overrides it
DEFAULT_OUT_DIR = os.path.join("out", "observe")


@dataclass
class ObservedRun:
    """One instrumented loading run plus its folded breakdown."""

    kind: str
    run: LoadedRun
    plane: ObservabilityPlane
    breakdown: LatencyBreakdown


def run_observed(
    kind: str,
    duration_us: float = SIM_DURATION_US,
    seed: int = 42,
    capacity: int = 2_000_000,
) -> ObservedRun:
    """Replay one Figure-9 cell (load level 'none') with the plane attached.

    The plane rides :func:`run_loading_experiment`'s ``chaos`` hook — the
    one call site that sees the assembled topology before the clock starts
    — and additionally hands its tracer to the DWCS scheduler, which holds
    no environment reference and so cannot discover ``env.obs`` itself.
    """
    holder: dict[str, ObservabilityPlane] = {}

    def install(env, service, **_ignored) -> None:
        plane = ObservabilityPlane(env, capacity=capacity).install()
        service.engine.scheduler.tracer = plane.tracer
        holder["plane"] = plane

    run = run_loading_experiment(
        kind, "none", duration_us=duration_us, seed=seed, chaos=install
    )
    plane = holder["plane"]
    breakdown = LatencyBreakdown(plane.span_events(), label=kind)
    return ObservedRun(kind=kind, run=run, plane=plane, breakdown=breakdown)


def observe(
    duration_us: float = SIM_DURATION_US,
    seed: int = 42,
    out_dir: Optional[str] = DEFAULT_OUT_DIR,
    kinds: Sequence[str] = ("host", "ni"),
    partitions: Optional[int] = None,
) -> ExperimentResult:
    """Run the instrumented host and NI configurations and tabulate them."""
    if partitions is not None:
        # single-unit partition plan: one worker, canonical round-trip
        from repro.pdes.plan import run_plan

        overrides: dict = {}
        if tuple(kinds) != ("host", "ni"):
            overrides["kinds"] = list(kinds)
        return run_plan(
            "observe",
            seed=seed,
            duration_us=duration_us,
            partitions=partitions,
            **overrides,
        )
    result = ExperimentResult(
        exp_id="Observe",
        title=f"Instrumented Figure 9 replay: frame-latency breakdown (seed {seed})",
    )
    observed = [
        run_observed(kind, duration_us=duration_us, seed=seed) for kind in kinds
    ]
    for orun in observed:
        kind, bd, tracer = orun.kind, orun.breakdown, orun.plane.tracer
        result.add_row(f"{kind}: trace events emitted", float(tracer.emitted))
        result.add_row(
            f"{kind}: trace events discarded",
            float(tracer.discarded),
            note="ring evictions; 0 means the full run fit",
        )
        result.add_row(f"{kind}: spans completed", float(len(bd.spans)))
        result.add_row(
            f"{kind}: spans unfinished",
            float(bd.unfinished),
            note="open at end of run (frames still in flight)",
        )
        result.add_row(f"{kind}: metric series", float(len(orun.plane.registry)))
        result.add_row(f"{kind}: datapath hops observed", float(len(bd.hops())))
        for sid in bd.streams():
            result.add_row(
                f"{kind}: {sid} frames dispatched",
                orun.plane.registry.value("engine.frames_dispatched", stream=sid),
            )
            path = bd.median_path(sid)
            if path is None:
                continue
            result.add_row(
                f"{kind}: {sid} median frame end-to-end",
                path.end_to_end_us / 1000.0,
                unit="ms",
            )
            result.add_row(
                f"{kind}: {sid} median frame unattributed",
                path.unattributed_us / 1000.0,
                unit="ms",
                note="e2e minus union span coverage: queueing no hop claims",
            )

    # the per-hop tables and a representative critical path per stream,
    # host and NI side by side — the issue's headline deliverable
    for orun in observed:
        result.notes.append(orun.breakdown.render_table())
        for sid in orun.breakdown.streams():
            result.notes.append(orun.breakdown.render_critical_path(sid))

    # event-queue structural gauges published only now — the digested
    # "metric series" rows above count the registry before these land
    for orun in observed:
        orun.plane.publish_queue_stats()
    slo_reports = [
        evaluate(
            OBSERVE_SLOS,
            registry=orun.plane.registry,
            tracer=orun.plane.tracer,
            title=f"observe:{orun.kind}",
        )
        for orun in observed
    ]

    if out_dir is not None:
        written = write_observe_artifacts(
            out_dir, [(orun.kind, orun.plane) for orun in observed]
        )
        slo_txt = os.path.join(out_dir, "SLO_report.txt")
        with open(slo_txt, "w", encoding="utf-8") as fh:
            fh.write(render_slo_report(*slo_reports))
        written.append(slo_txt)
        written.append(
            write_slo_report(os.path.join(out_dir, "SLO_report.json"), *slo_reports)
        )
        names = ", ".join(sorted(os.path.basename(p) for p in written))
        result.notes.append(f"artifacts in {out_dir}: {names}")
    result.notes.append(
        "deterministic: identical seed => identical stdout and artifacts "
        "(instrumentation adds no simulated time)"
    )
    for orun in observed:
        result.add_tracer_footer(orun.kind, orun.plane.tracer)
    result.footers.append(render_slo_report(*slo_reports).rstrip("\n"))
    return result
