"""Figures 6-10: the server-loading experiments.

One shared runner builds the paper's loading architecture (Figure 5): a
server node with the streaming service (host- or NI-based) delivering
streams s1/s2 to MPEG clients on one NI, while httperf web clients load an
Apache pool through another NI on a separate bus segment. Each figure
function extracts its series from such runs:

* Figure 6 — host CPU utilization vs time per load level;
* Figure 7 — host-scheduler per-stream bandwidth vs time per load level;
* Figure 8 — host-scheduler queuing delay vs frames sent per load level;
* Figure 9 — NI-scheduler bandwidth snapshot (load-immune);
* Figure 10 — NI-scheduler queuing delay snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.admission import AdmissionController
from repro.hw.ethernet import EthernetSwitch
from repro.metrics import Perfmeter
from repro.server.node import ServerNode
from repro.server.streaming import HostStreamingService, NIStreamingService
from repro.sim import Environment, RandomStreams, S
from repro.workload import ApacheServer, Httperf

from .calibration import (
    APACHE_HEAVY_TAIL,
    HOST_INJECT_GAP_US,
    HOST_SEGMENTATION_US,
    LOAD_PROFILES,
    NI_INJECT_GAP_US,
    PREBUFFER_FRAMES,
    SIM_DURATION_US,
    figure_mpeg_file,
    figure_stream_specs,
)
from .report import ExperimentResult, Series

__all__ = [
    "LoadedRun",
    "STREAM_SERVICE_TIME_US",
    "FIGURE_LEVELS",
    "FIGURE9_LEVELS",
    "FIGURE10_LEVELS",
    "run_loading_experiment",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure9_cell",
    "assemble_figure9",
    "figure10",
    "figure10_cell",
    "assemble_figure10",
]

#: load levels of the host-scheduler figures (6-8), in figure order
FIGURE_LEVELS = ("none", "45%", "60%")

#: load levels of the NI snapshot figures, in cell order
FIGURE9_LEVELS = ("none", "60%")
FIGURE10_LEVELS = ("60%", "none")


def _fan_out(name: str, seed: int, duration_us: float, partitions: int, levels):
    """Route a figure's ``partitions=N`` call to its partition plan."""
    from repro.pdes.plan import run_plan

    overrides: dict = {}
    if levels is not None:
        overrides["levels"] = levels
    return run_plan(
        name,
        seed=seed,
        duration_us=duration_us,
        partitions=partitions,
        **overrides,
    )


#: per-packet service time charged against the admission ledger for the
#: figure streams (~10 kB frame: protocol processing + wire time)
STREAM_SERVICE_TIME_US = 2_000.0


@dataclass
class LoadedRun:
    """Everything one loading run produced."""

    kind: str
    level: str
    service: object
    meter: Perfmeter
    duration_us: float

    def bandwidth_series(self, stream_id: str) -> Series:
        rec = self.service.reception(stream_id)
        return Series(
            name=f"{self.level}:{stream_id}:bw",
            x=rec.bandwidth_bps.times / S,
            y=rec.bandwidth_bps.values,
            y_label="bps",
        )

    def delay_series(self, stream_id: str) -> Series:
        ts = self.service.engine.queuing_delay_us.get(stream_id)
        if ts is None or len(ts) == 0:
            return Series(
                name=f"{self.level}:{stream_id}:qdelay",
                x=np.array([]),
                y=np.array([]),
                x_label="frame # sent",
                y_label="ms",
            )
        return Series(
            name=f"{self.level}:{stream_id}:qdelay",
            x=np.arange(1, len(ts) + 1, dtype=float),
            y=ts.values / 1000.0,
            x_label="frame # sent",
            y_label="ms",
        )

    def settled_bandwidth(self, stream_id: str, window=(0.5, 0.8)) -> float:
        """Delivered bps over a fraction-of-run window (the paper's
        'settling' value during the loaded period); exact byte count."""
        rec = self.service.reception(stream_id)
        return rec.mean_bandwidth_bps(
            window[0] * self.duration_us, window[1] * self.duration_us
        )


def run_loading_experiment(
    kind: str,
    level: str,
    duration_us: float = SIM_DURATION_US,
    seed: int = 0,
    frames_per_stream: Optional[int] = None,
    chaos: Optional[Callable[..., None]] = None,
    transport: str = "udp",
) -> LoadedRun:
    """Build Figure 5's architecture and run one (kind, level) cell.

    ``kind`` is 'host' or 'ni'; ``level`` indexes LOAD_PROFILES.

    ``chaos``, when given, is called once with the assembled topology
    (``env``, ``node``, ``service``, ``switch``, ``duration_us`` keywords)
    before the clock starts — the hook point where a
    :class:`~repro.faults.FaultPlane` schedules its fault campaign.
    """
    if kind not in ("host", "ni"):
        raise ValueError("kind must be 'host' or 'ni'")
    if level not in LOAD_PROFILES:
        raise ValueError(f"unknown load level {level!r}")
    env = Environment()
    # Host experiments run with 2 CPUs on-line, NI experiments with 1
    # ("one CPU is brought off-line"), as in the paper.
    n_cpus = 2 if kind == "host" else 1
    node = ServerNode(env, n_cpus=n_cpus, n_pci_segments=2)
    switch = EthernetSwitch(env)
    # the admission ledger is what failure handling sheds/re-admits through
    admission = AdmissionController()
    if kind == "host":
        service = HostStreamingService(
            env, node, switch, nic_segment=0, admission=admission,
            transport=transport,
        )
    else:
        service = NIStreamingService(
            env, node, switch, scheduler_segment=0, admission=admission,
            transport=transport,
        )

    n_frames = (
        frames_per_stream
        if frames_per_stream is not None
        else max(64, int(duration_us / 280_000.0) + 64)
    )
    for i, spec in enumerate(figure_stream_specs()):
        service.attach_client(f"client_{spec.stream_id}")
        service.open_stream(
            spec, f"client_{spec.stream_id}", service_time_us=STREAM_SERVICE_TIME_US
        )
        file = figure_mpeg_file(spec.stream_id, seed=seed + i, n_frames=n_frames)
        if kind == "host":
            service.start_producer(
                file,
                inject_gap_us=HOST_INJECT_GAP_US,
                segmentation_us=HOST_SEGMENTATION_US,
                prebuffer_frames=PREBUFFER_FRAMES,
            )
        else:
            service.start_producer(
                file,
                inject_gap_us=NI_INJECT_GAP_US,
                prebuffer_frames=PREBUFFER_FRAMES,
            )

    profile = LOAD_PROFILES[level]
    if profile:
        web = ApacheServer(
            env, node.host_os, rng=RandomStreams(seed + 100), **APACHE_HEAVY_TAIL
        )
        capacity_rate = node.host_os.n_cpus * 1e6 / web.effective_mean_service_us
        rate_profile = [(t, frac * capacity_rate) for t, frac in profile]
        Httperf(
            env,
            web,
            rate_per_s=0.001,
            rate_profile=rate_profile,
            total_calls=10**9,
            rng=RandomStreams(seed + 200),
        )
    if chaos is not None:
        chaos(
            env=env,
            node=node,
            service=service,
            switch=switch,
            duration_us=duration_us,
        )
    meter = Perfmeter(env, node.host_os, period_us=1 * S)
    env.run(until=duration_us)
    return LoadedRun(
        kind=kind, level=level, service=service, meter=meter, duration_us=duration_us
    )


def figure6(
    duration_us: float = SIM_DURATION_US,
    seed: int = 0,
    levels: Optional[list[str]] = None,
    partitions: Optional[int] = None,
) -> ExperimentResult:
    """CPU utilization variation with server load (host-based runs).

    ``levels`` restricts the run to a subset of :data:`FIGURE_LEVELS`
    (the partition plan's cell axis); ``partitions`` fans the levels out
    across worker processes — see :mod:`repro.pdes.plan`."""
    if partitions is not None:
        return _fan_out("figure6", seed, duration_us, partitions, levels)
    result = ExperimentResult(
        exp_id="Figure 6", title="CPU Utilization Variation with Server Load"
    )
    paper_avg = {"none": 15.0, "45%": 45.0, "60%": 60.0}
    for level in levels if levels is not None else FIGURE_LEVELS:
        run = run_loading_experiment("host", level, duration_us=duration_us, seed=seed)
        result.series.append(
            Series(
                name=f"util:{level}",
                x=run.meter.series.times / S,
                y=run.meter.series.values,
                y_label="CPU util (%)",
            )
        )
        result.add_row(
            f"average utilization ({level})",
            run.meter.average(),
            "%",
            paper=paper_avg[level],
        )
        result.add_row(f"peak utilization ({level})", run.meter.peak(), "%",
                       paper=35.0 if level == "none" else None)
    result.notes.append(
        "the 60% profile bursts past 80% utilization in its 40-80s window, "
        "matching the paper's trace"
    )
    return result


def figure7(
    duration_us: float = SIM_DURATION_US,
    seed: int = 0,
    levels: Optional[list[str]] = None,
    partitions: Optional[int] = None,
) -> ExperimentResult:
    """Host-scheduler bandwidth variation with load (streams s1, s2)."""
    if partitions is not None:
        return _fan_out("figure7", seed, duration_us, partitions, levels)
    result = ExperimentResult(
        exp_id="Figure 7", title="Bandwidth Distribution with Load Variation (host DWCS)"
    )
    paper_settled = {"none": 250_000.0, "45%": 230_000.0, "60%": 125_000.0}
    for level in levels if levels is not None else FIGURE_LEVELS:
        run = run_loading_experiment("host", level, duration_us=duration_us, seed=seed)
        for sid in ("s1", "s2"):
            result.series.append(run.bandwidth_series(sid))
        result.add_row(
            f"settling bandwidth s1 ({level})",
            run.settled_bandwidth("s1"),
            "bps",
            paper=paper_settled[level],
        )
    result.notes.append(
        "who-wins shape: no-load > 45% > 60%; worst case bounded at half by "
        "the streams' 1/2 loss-tolerance"
    )
    return result


def figure8(
    duration_us: float = SIM_DURATION_US,
    seed: int = 0,
    levels: Optional[list[str]] = None,
    partitions: Optional[int] = None,
) -> ExperimentResult:
    """Host-scheduler queuing delay vs frames sent, per load level."""
    if partitions is not None:
        return _fan_out("figure8", seed, duration_us, partitions, levels)
    result = ExperimentResult(
        exp_id="Figure 8", title="Queuing Delay vs Frames Sent with Load Variation (host DWCS)"
    )
    paper_max = {"none": 10_000.0, "45%": 12_000.0, "60%": 30_000.0}
    for level in levels if levels is not None else FIGURE_LEVELS:
        run = run_loading_experiment("host", level, duration_us=duration_us, seed=seed)
        for sid in ("s1", "s2"):
            result.series.append(run.delay_series(sid))
        stats = run.service.engine.delay_stats.get("s1")
        result.add_row(
            f"max queuing delay s1 ({level})",
            (stats.max / 1000.0) if stats else 0.0,
            "ms",
            paper=paper_max[level],
        )
    result.notes.append("delays ramp with backlog; load multiplies the ramp")
    return result


def figure9_cell(
    duration_us: float = SIM_DURATION_US, seed: int = 0, level: str = "none"
) -> ExperimentResult:
    """One NI loading run of Figure 9: its bandwidth series + settled s1.

    The fragment's row label is internal — :func:`assemble_figure9`
    rebuilds the published rows; only the measured values ride through
    (exactly: the result serialization round-trips floats by repr)."""
    run = run_loading_experiment("ni", level, duration_us=duration_us, seed=seed)
    frag = ExperimentResult(exp_id="Figure 9", title=f"cell: ni load {level}")
    for sid in ("s1", "s2"):
        frag.series.append(run.bandwidth_series(sid))
    frag.add_row(f"settled s1 ({level})", run.settled_bandwidth("s1"), "bps")
    return frag


def assemble_figure9(fragments) -> ExperimentResult:
    """Reassemble Figure 9 from its per-level cells (FIGURE9_LEVELS order)."""
    cells = dict(zip(FIGURE9_LEVELS, fragments))
    result = ExperimentResult(
        exp_id="Figure 9", title="NI Bandwidth Distribution: Unaffected by System Load"
    )
    for level in FIGURE9_LEVELS:
        result.series.extend(cells[level].series)
    loaded = cells["60%"].rows[0].measured
    unloaded = cells["none"].rows[0].measured
    result.add_row("settling bandwidth s1 (60% load)", loaded, "bps", paper=260_000.0)
    result.add_row("settling bandwidth s1 (no load)", unloaded, "bps")
    result.add_row(
        "loaded/unloaded bandwidth ratio", loaded / unloaded, "", paper=1.0,
        note="immunity: paper reports NI scheduler 'completely immune'",
    )
    return result


def figure9(
    duration_us: float = SIM_DURATION_US,
    seed: int = 0,
    partitions: Optional[int] = None,
) -> ExperimentResult:
    """NI-scheduler bandwidth snapshot: unaffected by system load.

    Serial and partitioned runs share the same cells and assembly, so
    ``--partitions`` is byte-identical by construction (and pinned by
    the golden digest)."""
    if partitions is not None:
        return _fan_out("figure9", seed, duration_us, partitions, None)
    return assemble_figure9(
        [
            figure9_cell(duration_us=duration_us, seed=seed, level=level)
            for level in FIGURE9_LEVELS
        ]
    )


def figure10_cell(
    duration_us: float = SIM_DURATION_US, seed: int = 0, level: str = "60%"
) -> ExperimentResult:
    """One NI loading run of Figure 10: its delay series + max delay s1."""
    run = run_loading_experiment("ni", level, duration_us=duration_us, seed=seed)
    frag = ExperimentResult(exp_id="Figure 10", title=f"cell: ni load {level}")
    for sid in ("s1", "s2"):
        frag.series.append(run.delay_series(sid))
    stats = run.service.engine.delay_stats.get("s1")
    frag.add_row(
        f"max delay s1 ({level})", (stats.max / 1000.0) if stats else 0.0, "ms"
    )
    return frag


def assemble_figure10(fragments) -> ExperimentResult:
    """Reassemble Figure 10 from its cells (FIGURE10_LEVELS order)."""
    cells = dict(zip(FIGURE10_LEVELS, fragments))
    result = ExperimentResult(
        exp_id="Figure 10", title="NI Queuing Delay: Unaffected by System Load"
    )
    # only the loaded run's delay trace is published; the baseline cell
    # contributes its max-delay row alone, as the paper's figure does
    result.series.extend(cells["60%"].series)
    result.add_row(
        "max queuing delay s1 (60% load)",
        cells["60%"].rows[0].measured,
        "ms",
        paper=11_000.0,
    )
    result.add_row(
        "max queuing delay s1 (no load)", cells["none"].rows[0].measured, "ms"
    )
    result.notes.append(
        "NI delays track the backlog ramp only — host load leaves no imprint"
    )
    return result


def figure10(
    duration_us: float = SIM_DURATION_US,
    seed: int = 0,
    partitions: Optional[int] = None,
) -> ExperimentResult:
    """NI-scheduler queuing delay snapshot under 60% host load."""
    if partitions is not None:
        return _fan_out("figure10", seed, duration_us, partitions, None)
    return assemble_figure10(
        [
            figure10_cell(duration_us=duration_us, seed=seed, level=level)
            for level in FIGURE10_LEVELS
        ]
    )
