"""Figures 6-10: the server-loading experiments.

One shared runner builds the paper's loading architecture (Figure 5): a
server node with the streaming service (host- or NI-based) delivering
streams s1/s2 to MPEG clients on one NI, while httperf web clients load an
Apache pool through another NI on a separate bus segment. Each figure
function extracts its series from such runs:

* Figure 6 — host CPU utilization vs time per load level;
* Figure 7 — host-scheduler per-stream bandwidth vs time per load level;
* Figure 8 — host-scheduler queuing delay vs frames sent per load level;
* Figure 9 — NI-scheduler bandwidth snapshot (load-immune);
* Figure 10 — NI-scheduler queuing delay snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.admission import AdmissionController
from repro.hw.ethernet import EthernetSwitch
from repro.metrics import Perfmeter
from repro.server.node import ServerNode
from repro.server.streaming import HostStreamingService, NIStreamingService
from repro.sim import Environment, RandomStreams, S
from repro.workload import ApacheServer, Httperf

from .calibration import (
    APACHE_HEAVY_TAIL,
    HOST_INJECT_GAP_US,
    HOST_SEGMENTATION_US,
    LOAD_PROFILES,
    NI_INJECT_GAP_US,
    PREBUFFER_FRAMES,
    SIM_DURATION_US,
    figure_mpeg_file,
    figure_stream_specs,
)
from .report import ExperimentResult, Series

__all__ = [
    "LoadedRun",
    "STREAM_SERVICE_TIME_US",
    "run_loading_experiment",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
]


#: per-packet service time charged against the admission ledger for the
#: figure streams (~10 kB frame: protocol processing + wire time)
STREAM_SERVICE_TIME_US = 2_000.0


@dataclass
class LoadedRun:
    """Everything one loading run produced."""

    kind: str
    level: str
    service: object
    meter: Perfmeter
    duration_us: float

    def bandwidth_series(self, stream_id: str) -> Series:
        rec = self.service.reception(stream_id)
        return Series(
            name=f"{self.level}:{stream_id}:bw",
            x=rec.bandwidth_bps.times / S,
            y=rec.bandwidth_bps.values,
            y_label="bps",
        )

    def delay_series(self, stream_id: str) -> Series:
        ts = self.service.engine.queuing_delay_us.get(stream_id)
        if ts is None or len(ts) == 0:
            return Series(
                name=f"{self.level}:{stream_id}:qdelay",
                x=np.array([]),
                y=np.array([]),
                x_label="frame # sent",
                y_label="ms",
            )
        return Series(
            name=f"{self.level}:{stream_id}:qdelay",
            x=np.arange(1, len(ts) + 1, dtype=float),
            y=ts.values / 1000.0,
            x_label="frame # sent",
            y_label="ms",
        )

    def settled_bandwidth(self, stream_id: str, window=(0.5, 0.8)) -> float:
        """Delivered bps over a fraction-of-run window (the paper's
        'settling' value during the loaded period); exact byte count."""
        rec = self.service.reception(stream_id)
        return rec.mean_bandwidth_bps(
            window[0] * self.duration_us, window[1] * self.duration_us
        )


def run_loading_experiment(
    kind: str,
    level: str,
    duration_us: float = SIM_DURATION_US,
    seed: int = 0,
    frames_per_stream: Optional[int] = None,
    chaos: Optional[Callable[..., None]] = None,
    transport: str = "udp",
) -> LoadedRun:
    """Build Figure 5's architecture and run one (kind, level) cell.

    ``kind`` is 'host' or 'ni'; ``level`` indexes LOAD_PROFILES.

    ``chaos``, when given, is called once with the assembled topology
    (``env``, ``node``, ``service``, ``switch``, ``duration_us`` keywords)
    before the clock starts — the hook point where a
    :class:`~repro.faults.FaultPlane` schedules its fault campaign.
    """
    if kind not in ("host", "ni"):
        raise ValueError("kind must be 'host' or 'ni'")
    if level not in LOAD_PROFILES:
        raise ValueError(f"unknown load level {level!r}")
    env = Environment()
    # Host experiments run with 2 CPUs on-line, NI experiments with 1
    # ("one CPU is brought off-line"), as in the paper.
    n_cpus = 2 if kind == "host" else 1
    node = ServerNode(env, n_cpus=n_cpus, n_pci_segments=2)
    switch = EthernetSwitch(env)
    # the admission ledger is what failure handling sheds/re-admits through
    admission = AdmissionController()
    if kind == "host":
        service = HostStreamingService(
            env, node, switch, nic_segment=0, admission=admission,
            transport=transport,
        )
    else:
        service = NIStreamingService(
            env, node, switch, scheduler_segment=0, admission=admission,
            transport=transport,
        )

    n_frames = (
        frames_per_stream
        if frames_per_stream is not None
        else max(64, int(duration_us / 280_000.0) + 64)
    )
    for i, spec in enumerate(figure_stream_specs()):
        service.attach_client(f"client_{spec.stream_id}")
        service.open_stream(
            spec, f"client_{spec.stream_id}", service_time_us=STREAM_SERVICE_TIME_US
        )
        file = figure_mpeg_file(spec.stream_id, seed=seed + i, n_frames=n_frames)
        if kind == "host":
            service.start_producer(
                file,
                inject_gap_us=HOST_INJECT_GAP_US,
                segmentation_us=HOST_SEGMENTATION_US,
                prebuffer_frames=PREBUFFER_FRAMES,
            )
        else:
            service.start_producer(
                file,
                inject_gap_us=NI_INJECT_GAP_US,
                prebuffer_frames=PREBUFFER_FRAMES,
            )

    profile = LOAD_PROFILES[level]
    if profile:
        web = ApacheServer(
            env, node.host_os, rng=RandomStreams(seed + 100), **APACHE_HEAVY_TAIL
        )
        capacity_rate = node.host_os.n_cpus * 1e6 / web.effective_mean_service_us
        rate_profile = [(t, frac * capacity_rate) for t, frac in profile]
        Httperf(
            env,
            web,
            rate_per_s=0.001,
            rate_profile=rate_profile,
            total_calls=10**9,
            rng=RandomStreams(seed + 200),
        )
    if chaos is not None:
        chaos(
            env=env,
            node=node,
            service=service,
            switch=switch,
            duration_us=duration_us,
        )
    meter = Perfmeter(env, node.host_os, period_us=1 * S)
    env.run(until=duration_us)
    return LoadedRun(
        kind=kind, level=level, service=service, meter=meter, duration_us=duration_us
    )


def figure6(
    duration_us: float = SIM_DURATION_US, seed: int = 0
) -> ExperimentResult:
    """CPU utilization variation with server load (host-based runs)."""
    result = ExperimentResult(
        exp_id="Figure 6", title="CPU Utilization Variation with Server Load"
    )
    paper_avg = {"none": 15.0, "45%": 45.0, "60%": 60.0}
    for level in ("none", "45%", "60%"):
        run = run_loading_experiment("host", level, duration_us=duration_us, seed=seed)
        result.series.append(
            Series(
                name=f"util:{level}",
                x=run.meter.series.times / S,
                y=run.meter.series.values,
                y_label="CPU util (%)",
            )
        )
        result.add_row(
            f"average utilization ({level})",
            run.meter.average(),
            "%",
            paper=paper_avg[level],
        )
        result.add_row(f"peak utilization ({level})", run.meter.peak(), "%",
                       paper=35.0 if level == "none" else None)
    result.notes.append(
        "the 60% profile bursts past 80% utilization in its 40-80s window, "
        "matching the paper's trace"
    )
    return result


def figure7(
    duration_us: float = SIM_DURATION_US, seed: int = 0
) -> ExperimentResult:
    """Host-scheduler bandwidth variation with load (streams s1, s2)."""
    result = ExperimentResult(
        exp_id="Figure 7", title="Bandwidth Distribution with Load Variation (host DWCS)"
    )
    paper_settled = {"none": 250_000.0, "45%": 230_000.0, "60%": 125_000.0}
    for level in ("none", "45%", "60%"):
        run = run_loading_experiment("host", level, duration_us=duration_us, seed=seed)
        for sid in ("s1", "s2"):
            result.series.append(run.bandwidth_series(sid))
        result.add_row(
            f"settling bandwidth s1 ({level})",
            run.settled_bandwidth("s1"),
            "bps",
            paper=paper_settled[level],
        )
    result.notes.append(
        "who-wins shape: no-load > 45% > 60%; worst case bounded at half by "
        "the streams' 1/2 loss-tolerance"
    )
    return result


def figure8(
    duration_us: float = SIM_DURATION_US, seed: int = 0
) -> ExperimentResult:
    """Host-scheduler queuing delay vs frames sent, per load level."""
    result = ExperimentResult(
        exp_id="Figure 8", title="Queuing Delay vs Frames Sent with Load Variation (host DWCS)"
    )
    paper_max = {"none": 10_000.0, "45%": 12_000.0, "60%": 30_000.0}
    for level in ("none", "45%", "60%"):
        run = run_loading_experiment("host", level, duration_us=duration_us, seed=seed)
        for sid in ("s1", "s2"):
            result.series.append(run.delay_series(sid))
        stats = run.service.engine.delay_stats.get("s1")
        result.add_row(
            f"max queuing delay s1 ({level})",
            (stats.max / 1000.0) if stats else 0.0,
            "ms",
            paper=paper_max[level],
        )
    result.notes.append("delays ramp with backlog; load multiplies the ramp")
    return result


def figure9(
    duration_us: float = SIM_DURATION_US, seed: int = 0
) -> ExperimentResult:
    """NI-scheduler bandwidth snapshot: unaffected by system load."""
    result = ExperimentResult(
        exp_id="Figure 9", title="NI Bandwidth Distribution: Unaffected by System Load"
    )
    runs = {
        level: run_loading_experiment("ni", level, duration_us=duration_us, seed=seed)
        for level in ("none", "60%")
    }
    for level, run in runs.items():
        for sid in ("s1", "s2"):
            result.series.append(run.bandwidth_series(sid))
    loaded = runs["60%"].settled_bandwidth("s1")
    unloaded = runs["none"].settled_bandwidth("s1")
    result.add_row("settling bandwidth s1 (60% load)", loaded, "bps", paper=260_000.0)
    result.add_row("settling bandwidth s1 (no load)", unloaded, "bps")
    result.add_row(
        "loaded/unloaded bandwidth ratio", loaded / unloaded, "", paper=1.0,
        note="immunity: paper reports NI scheduler 'completely immune'",
    )
    return result


def figure10(
    duration_us: float = SIM_DURATION_US, seed: int = 0
) -> ExperimentResult:
    """NI-scheduler queuing delay snapshot under 60% host load."""
    result = ExperimentResult(
        exp_id="Figure 10", title="NI Queuing Delay: Unaffected by System Load"
    )
    run = run_loading_experiment("ni", "60%", duration_us=duration_us, seed=seed)
    for sid in ("s1", "s2"):
        result.series.append(run.delay_series(sid))
    stats = run.service.engine.delay_stats.get("s1")
    result.add_row(
        "max queuing delay s1 (60% load)",
        (stats.max / 1000.0) if stats else 0.0,
        "ms",
        paper=11_000.0,
    )
    baseline = run_loading_experiment("ni", "none", duration_us=duration_us, seed=seed)
    base_stats = baseline.service.engine.delay_stats.get("s1")
    result.add_row(
        "max queuing delay s1 (no load)",
        (base_stats.max / 1000.0) if base_stats else 0.0,
        "ms",
    )
    result.notes.append(
        "NI delays track the backlog ramp only — host load leaves no imprint"
    )
    return result
