"""The sweep CLI: the evaluation matrix on N cores with a result cache.

Three matrix presets, all riding :class:`~repro.parallel.SweepRunner`:

* ``replicate`` (default) — experiments × seeds, merged into mean ± 95 %
  CI rows per cell. ``sweep --jobs $(nproc)`` runs the 4-workload ×
  5-seed matrix the acceptance bar names.
* ``sensitivity`` — the cost-constant perturbation grid
  (``sens_costs`` × scales) plus the mechanism-knockout runs
  (``sens_knockouts`` × seeds).
* ``scenarios`` — the chaos and failover campaign matrices, one job per
  named scenario.

Two artifacts land in ``--out`` (default ``out/sweep/``):

* ``SWEEP_result.txt`` — the merged :class:`ExperimentResult` rendering
  plus its golden digest. Deterministic: byte-identical across runs,
  worker counts, and cache states (CI diffs it).
* ``SWEEP_report.json`` — execution telemetry (wall clock, per-job
  compute seconds / peak RSS / cold-import time, cache hit/miss/eviction
  counts). Volatile by nature; never diffed.

The single summary line printed last (jobs, hits, wall, est. speedup) is
the CI-log breadcrumb.

    python -m repro.experiments sweep --jobs 4
    python -m repro.experiments sweep scenarios --duration 10000000 --jobs 2
"""

from __future__ import annotations

import argparse
import json
import math
import os
import statistics
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.parallel import Job, ResultCache, SweepReport, SweepRunner

from .report import ExperimentResult

__all__ = [
    "DEFAULT_SWEEP_EXPERIMENTS",
    "DEFAULT_SEEDS",
    "DEFAULT_SCALES",
    "parse_partition_axis",
    "replicate_jobs",
    "sensitivity_jobs",
    "scenario_jobs",
    "transport_jobs",
    "cluster_jobs",
    "DEFAULT_NODE_GRID",
    "merge_replicate",
    "merge_matrix",
    "sweep_metrics_registry",
    "write_sweep_artifacts",
    "main",
]

#: the acceptance matrix: the four bench workloads
DEFAULT_SWEEP_EXPERIMENTS = ("figure9", "chaos", "failover", "observe")

#: replication factor for the default matrix
DEFAULT_SEEDS = 5

#: the cost-constant perturbation grid swept by ``sweep sensitivity``
DEFAULT_SCALES = (1.25, 1.5, 1.75, 2.0)

#: the node-count grid swept by ``sweep cluster``
DEFAULT_NODE_GRID = (2, 3, 4)

#: where the sweep artifacts land unless the caller overrides it
DEFAULT_OUT_DIR = os.path.join("out", "sweep")


# -- job matrices ------------------------------------------------------------


def parse_partition_axis(values: Sequence[str]) -> list[Optional[int]]:
    """Validate ``--partitions`` axis tokens: 'serial' or positive ints.

    Raises :class:`ValueError` naming the offending token and the valid
    set, so the CLI can surface it verbatim (PR-7 convention)."""
    axis: list[Optional[int]] = []
    for token in values:
        if token == "serial":
            axis.append(None)
            continue
        try:
            count = int(token)
        except ValueError:
            count = 0
        if count < 1:
            raise ValueError(
                f"unknown partition-axis value {token!r}: valid values are "
                "'serial' or a positive worker count (e.g. serial,2)"
            )
        axis.append(count)
    return axis


def replicate_jobs(
    experiments: Sequence[str],
    seeds: int,
    seed_base: int = 42,
    duration_us: Optional[float] = None,
    partition_axis: Optional[Sequence[Optional[int]]] = None,
) -> list[Job]:
    """experiments × seeds (× partition axis), seed-major per experiment.

    ``partition_axis`` entries are ``None`` (serial) or a worker count;
    each value adds a matrix column running the same cell through
    :mod:`repro.pdes` partitioned execution — the per-job digests in the
    provenance notes prove identity across the axis."""
    axis = list(partition_axis) if partition_axis else [None]
    return [
        Job(
            experiment=exp,
            seed=seed_base + k,
            duration_us=duration_us,
            config={} if p is None else {"partitions": p},
        )
        for exp in experiments
        for k in range(seeds)
        for p in axis
    ]


def sensitivity_jobs(
    scales: Sequence[float] = DEFAULT_SCALES,
    seeds: int = 2,
    seed_base: int = 42,
    duration_us: Optional[float] = None,
) -> list[Job]:
    """The perturbation grid: sens_costs × scales + sens_knockouts × seeds."""
    jobs = [
        Job(experiment="sens_costs", seed=seed_base, config={"scale": float(s)})
        for s in scales
    ]
    jobs += [
        Job(experiment="sens_knockouts", seed=seed_base + k, duration_us=duration_us)
        for k in range(seeds)
    ]
    return jobs


def scenario_jobs(
    seed: int = 42, duration_us: Optional[float] = None
) -> list[Job]:
    """The chaos + failover + cluster campaigns, one job per scenario."""
    from repro.cluster import CLUSTER_SCENARIOS
    from repro.faults import FAILOVER_SCENARIOS, SCENARIOS

    jobs = [
        Job(
            experiment="chaos",
            seed=seed,
            duration_us=duration_us,
            config={"scenarios": [name]},
        )
        for name in SCENARIOS
    ]
    jobs += [
        Job(
            experiment="failover",
            seed=seed,
            duration_us=duration_us,
            config={"scenarios": [name]},
        )
        for name in FAILOVER_SCENARIOS
    ]
    jobs += [
        Job(
            experiment="cluster",
            seed=seed,
            duration_us=duration_us,
            config={"scenarios": [name]},
        )
        for name in CLUSTER_SCENARIOS
    ]
    return jobs


def transport_jobs(
    transports: Optional[Sequence[str]] = None,
    seed: int = 42,
    duration_us: Optional[float] = None,
) -> list[Job]:
    """The media-transport axis: the offload-vs-host comparison per
    transport, plus the full chaos campaign over each reliable transport
    (the zero-leak audit under fire)."""
    from repro.net.transport import VALID_TRANSPORTS, resolve_transport

    names = (
        [resolve_transport(t) for t in transports]
        if transports is not None
        else list(VALID_TRANSPORTS)
    )
    jobs = [
        Job(
            experiment="transport",
            seed=seed,
            duration_us=duration_us,
            config={"transports": [name]},
        )
        for name in names
    ]
    jobs += [
        Job(
            experiment="chaos",
            seed=seed,
            duration_us=duration_us,
            config={"transport": name},
        )
        for name in names
        if name != "udp"  # the raw path's chaos cells are the scenarios mode
    ]
    return jobs


def cluster_jobs(
    nodes: Sequence[int] = DEFAULT_NODE_GRID,
    seed: int = 42,
    duration_us: Optional[float] = None,
    scenarios: Sequence[str] = ("baseline", "node-crash"),
) -> list[Job]:
    """The scale-out axis: served streams vs node count.

    One cluster job per (node count, scenario) cell — ``baseline`` shows
    how many streams the front door serves as nodes are added,
    ``node-crash`` how the recovery metrics hold up at each scale."""
    return [
        Job(
            experiment="cluster",
            seed=seed,
            duration_us=duration_us,
            config={"n_nodes": int(n), "scenarios": [name]},
        )
        for n in nodes
        for name in scenarios
    ]


# -- deterministic merges ----------------------------------------------------


def _provenance_notes(result: ExperimentResult, report: SweepReport) -> None:
    """Pin every job's digest into the merged notes (input job order), so
    the merged result's own digest covers each cell byte for byte."""
    for o in report.outcomes:
        if o.ok:
            result.notes.append(f"job {o.job.label}: result digest {o.result_digest}")
        else:
            result.notes.append(f"job {o.job.label}: FAILED ({o.error})")


def merge_replicate(report: SweepReport, title: str) -> ExperimentResult:
    """Mean ± 95 % CI per row label across an experiment's seed replicas.

    Deterministic and order-independent: outcomes arrive in input job
    order regardless of completion order, values are reduced with plain
    float arithmetic, and failed replicas are excluded (and recorded in
    the notes) rather than poisoning the mean.
    """
    merged = ExperimentResult(exp_id="Sweep: replicate", title=title)
    by_exp: dict[str, list] = {}
    order: list[str] = []
    for o in report.outcomes:
        key = o.job.experiment
        if key not in by_exp:
            by_exp[key] = []
            order.append(key)
        if o.ok:
            by_exp[key].append(o.result)
    for exp in order:
        results = by_exp[exp]
        if not results:
            merged.notes.append(f"{exp}: every replica failed")
            continue
        template = results[0]
        for row in template.rows:
            values = []
            for r in results:
                try:
                    values.append(r.row(row.label).measured)
                except KeyError:
                    pass
            n = len(values)
            mean = statistics.fmean(values)
            ci = (
                1.96 * statistics.stdev(values) / math.sqrt(n) if n > 1 else 0.0
            )
            merged.add_row(
                f"{exp}: {row.label}",
                mean,
                unit=row.unit,
                paper=row.paper,
                note=f"mean of {n} seeds, 95% CI +/-{ci:.6g}",
            )
    _provenance_notes(merged, report)
    return merged


def merge_matrix(report: SweepReport, exp_id: str, title: str) -> ExperimentResult:
    """Concatenate each cell's rows, prefixed by its job label."""
    merged = ExperimentResult(exp_id=exp_id, title=title)
    for o in report.outcomes:
        if not o.ok:
            continue
        for row in o.result.rows:
            merged.add_row(
                f"[{o.job.label}] {row.label}",
                row.measured,
                unit=row.unit,
                paper=row.paper,
                note=row.note,
            )
    _provenance_notes(merged, report)
    return merged


# -- artifacts ---------------------------------------------------------------


def sweep_metrics_registry(report: SweepReport):
    """The sweep's execution telemetry as a metrics registry.

    Re-expresses ``SWEEP_report.json``'s worker/cache numbers in the same
    labeled-series snapshot format every other runner exports
    (``render_metrics_snapshot``), so one dashboard vocabulary covers
    simulation metrics and sweep-execution metrics alike. Counters for
    job statuses, retries, and executor-side deadline kills; histograms
    for per-job compute seconds and peak RSS; gauges for the wall clock,
    worker count, speedup estimate, and cache hit/miss/eviction state.
    """
    from repro.obs import MetricsRegistry

    reg = MetricsRegistry()
    for o in report.outcomes:
        reg.count("sweep.jobs", status=o.status, experiment=o.job.experiment)
        if o.attempts > 1:
            reg.count("sweep.retries", float(o.attempts - 1))
        if o.error and "JobTimeout" in o.error:
            reg.count("sweep.deadline_kills")
        reg.observe("sweep.compute_s", o.compute_s, status=o.status)
        if o.peak_rss_kb:
            reg.observe("sweep.peak_rss_kb", float(o.peak_rss_kb))
    reg.gauge("sweep.workers", float(report.workers))
    reg.gauge("sweep.wall_s", report.wall_s)
    reg.gauge("sweep.serial_estimate_s", report.serial_estimate_s)
    reg.gauge("sweep.speedup_estimate", report.speedup_estimate)
    for key, val in (report.cache_stats or {}).items():
        reg.gauge("sweep.cache", float(val), stat=key)
    return reg


def write_sweep_artifacts(
    out_dir: str,
    merged: ExperimentResult,
    report: SweepReport,
    args_echo: dict,
) -> list[str]:
    """Write SWEEP_result.txt (deterministic) + SWEEP_report.json (telemetry)."""
    from repro.parallel.cache import code_digest

    from .golden import result_digest

    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    merged_digest = result_digest(merged)

    result_path = directory / "SWEEP_result.txt"
    result_path.write_text(merged.render() + f"\nmerged digest: {merged_digest}\n")

    report_path = directory / "SWEEP_report.json"
    payload = {
        "args": args_echo,
        "code_digest": code_digest(),
        "merged_digest": merged_digest,
        "workers": report.workers,
        "wall_s": report.wall_s,
        "serial_estimate_s": report.serial_estimate_s,
        "speedup_estimate": report.speedup_estimate,
        "cache": report.cache_stats,
        "metrics": sweep_metrics_registry(report).snapshot(),
        "summary": report.summary_line(),
        "jobs": [
            {
                "label": o.job.label,
                "job_digest": o.job.digest,
                "experiment": o.job.experiment,
                "seed": o.job.seed,
                "duration_us": o.job.duration_us,
                "config": o.job.config,
                "status": o.status,
                "attempts": o.attempts,
                "compute_s": o.compute_s,
                "import_s": o.import_s,
                "peak_rss_kb": o.peak_rss_kb,
                "result_digest": o.result_digest,
                "error": o.error,
            }
            for o in report.outcomes
        ],
    }
    report_path.write_text(json.dumps(payload, indent=2) + "\n")
    return [str(result_path), str(report_path)]


# -- CLI ---------------------------------------------------------------------


def _csv(text: str) -> list[str]:
    return [t for t in (s.strip() for s in text.split(",")) if t]


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments sweep",
        description="Multi-core experiment fan-out with a content-addressed "
        "result cache.",
    )
    parser.add_argument(
        "mode",
        nargs="?",
        choices=["replicate", "sensitivity", "scenarios", "cluster", "transport"],
        default="replicate",
        help="which matrix to sweep (default: replicate)",
    )
    parser.add_argument(
        "--nodes",
        default=",".join(str(n) for n in DEFAULT_NODE_GRID),
        metavar="N,M,...",
        help="cluster mode: node-count grid (served streams vs node count)",
    )
    parser.add_argument(
        "--experiments",
        default=",".join(DEFAULT_SWEEP_EXPERIMENTS),
        metavar="A,B,...",
        help="replicate mode: experiment ids to replicate",
    )
    parser.add_argument(
        "--seeds", type=int, default=DEFAULT_SEEDS, metavar="N",
        help="replications per experiment (seed-base, seed-base+1, ...)",
    )
    parser.add_argument("--seed-base", type=int, default=42, metavar="S")
    parser.add_argument(
        "--scales",
        default=",".join(str(s) for s in DEFAULT_SCALES),
        metavar="X,Y,...",
        help="sensitivity mode: cost-constant scale grid",
    )
    parser.add_argument(
        "--transports",
        default=None,
        metavar="T,U,...",
        help="transport mode: media transports to compare "
        "(default: udp,tcp,ttp)",
    )
    parser.add_argument(
        "--partitions",
        default=None,
        metavar="P,Q,...",
        help="replicate mode: partition axis — 'serial' or positive worker "
        "counts (e.g. serial,2); each value adds a matrix column running "
        "the cell through partitioned execution, byte-identical by digest",
    )
    parser.add_argument(
        "--duration", type=float, default=None, metavar="US",
        help="override simulated duration in µs (default: full runs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: all cores)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="recompute every cell"
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache root (default: out/cache)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT_DIR, metavar="DIR",
        help="artifact directory; 'none' writes nothing",
    )
    parser.add_argument(
        "--timeout", type=float, default=900.0, metavar="S",
        help="per-job wall-clock budget in seconds",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-runs granted to a failed/crashed job",
    )
    parser.add_argument("--quiet", action="store_true", help="no progress lines")
    args = parser.parse_args(argv)

    if args.partitions is not None and args.mode != "replicate":
        parser.error(
            f"--partitions applies to the replicate mode, not {args.mode!r}"
        )
    if args.mode == "replicate":
        experiments = _csv(args.experiments)
        partition_axis = None
        if args.partitions is not None:
            try:
                partition_axis = parse_partition_axis(_csv(args.partitions))
            except ValueError as exc:
                parser.error(str(exc))
        jobs = replicate_jobs(
            experiments,
            args.seeds,
            args.seed_base,
            args.duration,
            partition_axis=partition_axis,
        )
        title = (
            f"{'x'.join(experiments)} x {args.seeds} seeds "
            f"(base {args.seed_base})"
        )
        if partition_axis is not None:
            title += f" x partitions ({args.partitions})"
    elif args.mode == "sensitivity":
        jobs = sensitivity_jobs(
            [float(s) for s in _csv(args.scales)],
            seeds=max(1, args.seeds // 2),
            seed_base=args.seed_base,
            duration_us=args.duration,
        )
        title = "cost-constant grid + mechanism knockouts"
    elif args.mode == "cluster":
        jobs = cluster_jobs(
            [int(n) for n in _csv(args.nodes)],
            seed=args.seed_base,
            duration_us=args.duration,
        )
        title = f"cluster scale-out: nodes x scenarios (grid {args.nodes})"
    elif args.mode == "transport":
        try:
            jobs = transport_jobs(
                _csv(args.transports) if args.transports else None,
                seed=args.seed_base,
                duration_us=args.duration,
            )
        except ValueError as exc:
            parser.error(str(exc))
        title = "media transport matrix: offload-vs-host + chaos per transport"
    else:
        jobs = scenario_jobs(seed=args.seed_base, duration_us=args.duration)
        title = "chaos + failover + cluster campaign matrix"

    cache = None
    if not args.no_cache:
        cache = ResultCache(root=Path(args.cache_dir)) if args.cache_dir else ResultCache()
    runner = SweepRunner(
        workers=args.jobs,
        cache=cache,
        timeout_s=args.timeout,
        retries=args.retries,
        verbose=not args.quiet,
    )
    report = runner.run(jobs)

    if args.mode == "replicate":
        merged = merge_replicate(report, title)
    elif args.mode == "sensitivity":
        merged = merge_matrix(report, "Sweep: sensitivity", title)
    elif args.mode == "cluster":
        merged = merge_matrix(report, "Sweep: cluster", title)
    elif args.mode == "transport":
        merged = merge_matrix(report, "Sweep: transport", title)
    else:
        merged = merge_matrix(report, "Sweep: scenarios", title)

    print(merged.render())
    if args.out and args.out != "none":
        args_echo = {
            "mode": args.mode,
            "experiments": _csv(args.experiments),
            "seeds": args.seeds,
            "seed_base": args.seed_base,
            "duration_us": args.duration,
            "no_cache": args.no_cache,
            "partitions": args.partitions,
        }
        written = write_sweep_artifacts(args.out, merged, report, args_echo)
        print(f"wrote {', '.join(written)}")
    print(report.summary_line())

    for outcome in report.failed:
        print(f"FAILED {outcome.job.label}: {outcome.error}", file=sys.stderr)
    return 1 if report.failed else 0


if __name__ == "__main__":
    sys.exit(main())
