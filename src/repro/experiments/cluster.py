"""The cluster experiment: node loss under load behind the front door.

Beyond the paper's single-box measurements: N server nodes (each the
Figure-9 host + NI configuration, doubled up with the PR-2 HA plane)
behind the fault-tolerant admission front door of :mod:`repro.cluster`,
replayed against the node-scale chaos campaigns of
:mod:`repro.cluster.scenarios`:

* ``baseline``  — no faults; every node serves its Figure-9-shaped load,
* ``node-crash`` — one node's cards all die; the front door must detect
  inside the 800 ms budget and re-admit or park every ledgered stream,
* ``fd-partition`` — the control link to one node goes black; classify
  partitioned, stop new placements, migrate nothing,
* ``brownout``  — a slow node: lossy control path, 20x slower disks.

Reported per scenario: per-stream settled bandwidth, the recovery
milestones (detection latency, MTTR), the ledger census (placed /
degraded / parked / lost / **unaccounted** — the last must be zero), the
per-node placement spread, and the control-RPC telemetry (retries,
timeouts, duplicate deliveries absorbed, rescinds). A static
placement-policy comparison table shows how the three policies spread
the same stream population.

Runs are deterministic given a seed — byte-identical rows across
repeats and across ``--jobs`` fan-out — which is what the CI
``cluster-smoke`` job diffs.

    python -m repro.experiments cluster --seed 42
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster import (
    CLUSTER_SCENARIOS,
    POLICIES,
    ClusterPlane,
    NodeView,
    make_policy,
)
from repro.core.attributes import StreamSpec
from repro.faults import FaultPlane
from repro.faults.scenarios import ChaosScenario, resolve_scenario
from repro.obs import (
    CLUSTER_CATEGORIES,
    ObservabilityPlane,
    SLOReport,
    cluster_slos,
    evaluate,
    render_chrome_trace,
    render_metrics_snapshot,
    render_slo_report,
    write_slo_report,
)
from repro.sim import Environment, RandomStreams

from .calibration import (
    NI_INJECT_GAP_US,
    PREBUFFER_FRAMES,
    SIM_DURATION_US,
    figure_mpeg_file,
)
from .figures import STREAM_SERVICE_TIME_US, run_loading_experiment
from .report import ExperimentResult

__all__ = ["ClusterRun", "run_cluster_scenario", "cluster", "cluster_stream_specs"]

#: fraction of the run at which the late admission wave arrives — inside
#: every fault window, so backpressure is exercised while degraded
LATE_WAVE_FRAC = 0.55

#: where the cluster artifact set (Perfetto traces, metrics snapshots,
#: SLO_report) lands unless the caller overrides it; digest paths pass None
DEFAULT_OUT_DIR = os.path.join("out", "cluster")

#: control-plane spans + instants only (CLUSTER_CATEGORIES filters the
#: per-frame datapath out at the begin() predicate), so this bound holds
#: the full-duration run with plenty of slack — the trace-complete SLO
#: proves it stayed unevicted
TRACE_CAPACITY = 200_000


def cluster_stream_specs(n_nodes: int) -> list[StreamSpec]:
    """The initial stream population: two Figure-9-shaped streams per
    node, grouped by content title (``g<k>-s<j>`` shares group ``g<k>``,
    which is what the locality policy keys on)."""
    return [
        StreamSpec(f"g{k}-s{j}", period_us=333_333.0, loss_x=1, loss_y=2)
        for k in range(n_nodes)
        for j in (1, 2)
    ]


def _late_wave_specs() -> list[StreamSpec]:
    return [
        StreamSpec(f"late-s{j}", period_us=333_333.0, loss_x=1, loss_y=2)
        for j in (1, 2)
    ]


@dataclass
class ClusterRun:
    """One cluster scenario's outcome."""

    scenario: ChaosScenario
    plane: ClusterPlane
    fault_plane: FaultPlane
    duration_us: float
    specs: list[StreamSpec] = field(default_factory=list)
    #: the observability plane of an instrumented run (None when the run
    #: was deliberately uninstrumented — the bit-identity tests compare)
    obs: Optional[ObservabilityPlane] = None
    #: the evaluated cluster budgets (None when uninstrumented)
    slo: Optional[SLOReport] = None

    @property
    def frontdoor(self):
        return self.plane.frontdoor

    @property
    def meter(self):
        return self.plane.meter

    @property
    def violations(self) -> int:
        return self.plane.total_violations

    @property
    def injected(self) -> int:
        return self.fault_plane.total_injected

    def settled_bandwidth(self, stream_id: str, window=(0.7, 0.95)) -> float:
        """Delivered bps on the stream's *current* node over a late
        window (post-recovery for every scenario); 0.0 when parked."""
        service = self.plane.service_of(stream_id)
        if service is None:
            return 0.0
        return service.reception(stream_id).mean_bandwidth_bps(
            window[0] * self.duration_us, window[1] * self.duration_us
        )


def run_cluster_scenario(
    name: str,
    duration_us: float = SIM_DURATION_US,
    seed: int = 42,
    n_nodes: int = 3,
    policy: str = "least-loaded",
    instrument: bool = True,
) -> ClusterRun:
    """Replay one node-scale chaos campaign against a full cluster.

    ``instrument`` (the default) installs an
    :class:`~repro.obs.ObservabilityPlane` filtered to the control-plane
    categories before the clock starts, so the whole admit → place →
    crash → migrate story lands on stitched trace tracks and the cluster
    SLO set gets evaluated at end of run. Instrumentation spends no
    simulated time: an ``instrument=False`` run is bit-identical.
    """
    scenario = resolve_scenario(name, CLUSTER_SCENARIOS, kind="cluster")
    env = Environment()
    obs = None
    if instrument:
        obs = ObservabilityPlane(
            env, capacity=TRACE_CAPACITY, categories=CLUSTER_CATEGORIES
        ).install()
    rng = RandomStreams(seed + 3000)
    plane = ClusterPlane(env, n_nodes=n_nodes, policy=policy, rng=rng)
    fault_plane = FaultPlane(env, seed=seed + 2000)
    specs = cluster_stream_specs(n_nodes)
    late = _late_wave_specs()
    n_frames = max(64, int(duration_us / 280_000.0) + 64)
    files = {
        spec.stream_id: figure_mpeg_file(spec.stream_id, seed=seed + i, n_frames=n_frames)
        for i, spec in enumerate(specs + late)
    }

    def admit_wave(wave: list[StreamSpec]):
        def proc():
            for spec in wave:
                yield from plane.frontdoor.admit_stream(
                    spec,
                    STREAM_SERVICE_TIME_US,
                    files[spec.stream_id],
                    inject_gap_us=NI_INJECT_GAP_US,
                    prebuffer_frames=PREBUFFER_FRAMES,
                )
        return proc

    env.process(admit_wave(specs)(), name="cluster.admit:initial")
    env.schedule_callback(
        LATE_WAVE_FRAC * duration_us,
        lambda: env.process(admit_wave(late)(), name="cluster.admit:late"),
        name="cluster.admit:late-wave",
    )
    scenario.install(fault_plane, plane, duration_us)
    env.run(until=duration_us)
    # the ledger self-check: incremental counters must equal a recount
    plane.ledger.check()
    slo_report = None
    if obs is not None:
        obs.publish_queue_stats()
        plane.publish_metrics()
        slo_report = evaluate(
            cluster_slos(name),
            registry=obs.registry,
            tracer=obs.tracer,
            title=f"cluster:{name}",
        )
    return ClusterRun(
        scenario=scenario,
        plane=plane,
        fault_plane=fault_plane,
        duration_us=duration_us,
        specs=specs + late,
        obs=obs,
        slo=slo_report,
    )


def _policy_comparison_rows(result: ExperimentResult, n_nodes: int) -> None:
    """Static placement spread of each policy over equal empty nodes.

    Pure function of the policy — no simulation — so the table isolates
    *where* each policy sends the same stream population before load or
    faults skew anything."""
    views = [
        NodeView(index=i, name=f"cluster.n{i}", headroom=2.0, streams=0)
        for i in range(n_nodes)
    ]
    stream_ids = [spec.stream_id for spec in cluster_stream_specs(n_nodes)]
    for name in sorted(POLICIES):
        policy = make_policy(name)
        first_choice = {sid: policy.order(sid, views)[0] for sid in stream_ids}
        spread = len(set(first_choice.values()))
        placing = " ".join(f"{sid}->n{first_choice[sid]}" for sid in stream_ids)
        result.add_row(
            f"policy {name}: first-choice spread",
            float(spread),
            note=placing,
        )


def cluster(
    duration_us: float = SIM_DURATION_US,
    seed: int = 42,
    scenarios: Optional[list[str]] = None,
    n_nodes: int = 3,
    policy: str = "least-loaded",
    out_dir: Optional[str] = DEFAULT_OUT_DIR,
    include_control: bool = True,
    partitions: Optional[int] = None,
) -> ExperimentResult:
    """Run every cluster campaign and tabulate recovery + accounting.

    ``include_control=False`` skips the control block and the static
    policy-comparison table — used by the partition plan, whose
    dedicated control cell already produces those rows. ``partitions``
    fans the campaign out across that many worker processes and
    reassembles a byte-identical result (cells run with artifacts off;
    only footers differ) — see :mod:`repro.pdes.plan`."""
    if partitions is not None:
        from repro.pdes.plan import run_plan

        overrides: dict = {}
        if scenarios is not None:
            overrides["scenarios"] = scenarios
        if n_nodes != 3:
            overrides["n_nodes"] = n_nodes
        if policy != "least-loaded":
            overrides["policy"] = policy
        if not include_control:
            overrides["include_control"] = include_control
        return run_plan(
            "cluster",
            seed=seed,
            duration_us=duration_us,
            partitions=partitions,
            **overrides,
        )
    result = ExperimentResult(
        exp_id="Cluster",
        title=(
            f"cluster front door: {n_nodes} nodes, policy {policy}, "
            f"node-loss chaos (seed {seed})"
        ),
    )

    # -- control: the single-node Figure 9 path, untouched ------------------
    if include_control:
        control = run_loading_experiment(
            "ni", "none", duration_us=duration_us, seed=seed
        )
        for sid in sorted(control.service.engine.scheduler.queues):
            result.add_row(
                f"control: {sid} settled bandwidth",
                control.settled_bandwidth(sid),
                unit="bps",
                note="plain single-node Figure 9 run (per-node reference)",
            )

        _policy_comparison_rows(result, n_nodes)

    names = scenarios if scenarios is not None else list(CLUSTER_SCENARIOS)
    runs: list[ClusterRun] = []
    for name in names:
        run = run_cluster_scenario(
            name, duration_us=duration_us, seed=seed, n_nodes=n_nodes, policy=policy
        )
        runs.append(run)
        fd = run.frontdoor
        for spec in run.specs:
            sid = spec.stream_id
            entry = run.plane.ledger.entry(sid)
            state = entry.state if entry is not None else "absent"
            result.add_row(
                f"{name}: {sid} settled bandwidth",
                run.settled_bandwidth(sid),
                unit="bps",
                note=(run.scenario.description if spec is run.specs[0] else state),
            )
        for label, value, unit, note in run.meter.rows(run.violations):
            result.add_row(f"{name}: {label}", value, unit=unit, note=note)
        for label, value in sorted(run.plane.account().items()):
            result.add_row(f"{name}: ledger {label}", float(value))
        for node in run.plane.nodes:
            result.add_row(
                f"{name}: {node.name} streams placed",
                float(run.plane.ledger.placed_count(node.name)),
            )
        result.add_row(f"{name}: violations (total)", float(run.violations))
        result.add_row(f"{name}: faults injected", float(run.injected))
        for key, value in run.plane.rpc.telemetry().items():
            result.add_row(f"{name}: rpc {key}", float(value))
        result.add_row(
            f"{name}: rpc dups absorbed",
            float(sum(node.dup_suppressed for node in run.plane.nodes)),
        )
        result.add_row(f"{name}: ambiguous admits", float(fd.ambiguous_admits))
        result.add_row(f"{name}: rescind parks", float(fd.rescind_parks))
        result.add_row(
            f"{name}: breaker opens",
            float(sum(b.opens for b in fd.breakers)),
        )
    result.notes.append(
        "zero unaccounted: every stream ends placed, parked, or lost — "
        "'streams unaccounted' rows must read 0"
    )
    result.notes.append(
        "at-most-once placement: an admit whose every retry timed out is "
        "rescinded before any other node is tried; unresolvable rescinds park"
    )
    result.notes.append(
        "deterministic: identical seed => identical placement, detection, "
        "and accounting rows (byte-identical across --jobs fan-out)"
    )

    # -- observability footers + artifact set (NOT part of the digest) -------
    reports = [run.slo for run in runs if run.slo is not None]
    for run in runs:
        if run.obs is not None:
            result.add_tracer_footer(run.scenario.name, run.obs.tracer)
    if reports:
        result.footers.append(render_slo_report(*reports).rstrip("\n"))
    if out_dir is not None and runs and runs[0].obs is not None:
        os.makedirs(out_dir, exist_ok=True)
        written = []
        for run in runs:
            label = run.scenario.name
            trace_path = os.path.join(out_dir, f"trace_{label}.json")
            with open(trace_path, "w", encoding="utf-8") as fh:
                fh.write(render_chrome_trace(run.obs.tracer, label=label))
            written.append(trace_path)
            metrics_path = os.path.join(out_dir, f"metrics_{label}.json")
            with open(metrics_path, "w", encoding="utf-8") as fh:
                fh.write(render_metrics_snapshot(run.obs.registry))
            written.append(metrics_path)
        slo_txt = os.path.join(out_dir, "SLO_report.txt")
        with open(slo_txt, "w", encoding="utf-8") as fh:
            fh.write(render_slo_report(*reports))
        written.append(slo_txt)
        written.append(write_slo_report(os.path.join(out_dir, "SLO_report.json"), *reports))
        names_note = ", ".join(sorted(os.path.basename(p) for p in written))
        result.footers.append(f"artifacts in {out_dir}: {names_note}")
    return result
