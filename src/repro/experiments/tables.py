"""Tables 1-5: microbenchmarks, critical paths, and PCI primitives.

Each ``table*`` function runs the corresponding measurement on the
simulated platform and returns an :class:`ExperimentResult` whose rows
carry both the measured value and the paper's reported cell.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.engine import MicrobenchEngine
from repro.fixedpoint import ArithmeticContext, FixedPointContext, SoftwareFloatContext
from repro.hw.cache import DataCache
from repro.hw.cpu import CPU, I960RD_66
from repro.hw.ethernet import EthernetPort, EthernetSwitch
from repro.hw.pci import PCISegment
from repro.server.node import ServerNode
from repro.server.paths import path_a_transfer, path_b_transfer, path_c_transfer
from repro.sim import Environment

from .calibration import (
    MPEG_FILE_BYTES,
    hardware_queue_factory,
    microbench_scheduler,
)
from .report import ExperimentResult

__all__ = ["table1", "table2", "table3", "table4", "table5"]


def _microbench(
    ctx_factory: Callable[[], ArithmeticContext],
    cache_enabled: bool,
    queue_factory_builder: Optional[Callable] = None,
) -> tuple[float, float, float, float]:
    """(total_with, avg_with, total_without, avg_without) in µs."""
    results = []
    for with_scheduler in (True, False):
        env = Environment()
        cpu = CPU(I960RD_66, cache=DataCache(enabled=cache_enabled))
        qf = queue_factory_builder() if queue_factory_builder else None
        scheduler = microbench_scheduler(ctx_factory(), queue_factory=qf)
        engine = MicrobenchEngine(env, scheduler, cpu)
        gen = (
            engine.run_with_scheduler()
            if with_scheduler
            else engine.run_without_scheduler()
        )
        results.append(env.run(until=env.process(gen)))
    w, wo = results
    return w.total_us, w.avg_frame_us, wo.total_us, wo.avg_frame_us


def _microbench_table(
    exp_id: str,
    title: str,
    cache_enabled: bool,
    paper: dict[str, tuple[float, float]],
) -> ExperimentResult:
    """Shared shape of Tables 1 and 2 (software FP and fixed point columns)."""
    result = ExperimentResult(exp_id=exp_id, title=title)
    for label, ctx_factory in (
        ("Software FP", SoftwareFloatContext),
        ("Fixed Point", FixedPointContext),
    ):
        tw, aw, two, awo = _microbench(ctx_factory, cache_enabled)
        p_total, p_avg, p_total_wo, p_avg_wo = paper[label]
        result.add_row(f"Total Sched time ({label})", tw, "µs", paper=p_total)
        result.add_row(f"Avg frame Sched time ({label})", aw, "µs", paper=p_avg)
        result.add_row(f"Total time w/o Scheduler ({label})", two, "µs", paper=p_total_wo)
        result.add_row(f"Avg frame time w/o Scheduler ({label})", awo, "µs", paper=p_avg_wo)
    return result



def _fan_out(name: str, partitions: int, **overrides):
    """Route ``partitions=N`` to the single-unit partition plan: the whole
    table computed in one worker process and round-tripped through the
    canonical result serialization (see :mod:`repro.pdes.plan`)."""
    from repro.pdes.plan import run_plan

    return run_plan(name, partitions=partitions, **overrides)


def table1(partitions: Optional[int] = None) -> ExperimentResult:
    """Scheduler microbenchmarks, data cache **disabled**."""
    if partitions is not None:
        return _fan_out("table1", partitions)
    return _microbench_table(
        "Table 1",
        "Scheduler Microbenchmarks (Data Cache Disabled)",
        cache_enabled=False,
        paper={
            "Software FP": (19580.88, 129.67, 5210.88, 34.60),
            "Fixed Point": (16425.36, 108.48, 4583.28, 30.35),
        },
    )


def table2(partitions: Optional[int] = None) -> ExperimentResult:
    """Scheduler microbenchmarks, data cache **enabled**."""
    if partitions is not None:
        return _fan_out("table2", partitions)
    result = _microbench_table(
        "Table 2",
        "Scheduler Microbenchmarks (Data Cache Enabled)",
        cache_enabled=True,
        paper={
            "Software FP": (17398.56, 115.20, 4776.48, 31.40),
            "Fixed Point": (14295.60, 94.60, 4195.68, 27.78),
        },
    )
    result.notes.append(
        "paper: cache saves ~14.47/13.88 µs per frame (SW FP / fixed point) vs Table 1"
    )
    return result


def table3(partitions: Optional[int] = None) -> ExperimentResult:
    """'Hardware queue' build: descriptors in MMIO registers, fixed point,
    data cache enabled."""
    if partitions is not None:
        return _fan_out("table3", partitions)
    tw, aw, two, awo = _microbench(
        FixedPointContext,
        cache_enabled=True,
        queue_factory_builder=lambda: hardware_queue_factory(),
    )
    result = ExperimentResult(
        exp_id="Table 3",
        title="Scheduler Microbenchmarks, Hardware Queues (Data Cache Enabled)",
    )
    result.add_row("Total Sched time (Fixed Point)", tw, "µs", paper=14569.68)
    # the paper prints two values for this cell ("72.48, 96.48"); we compare
    # against the one consistent with its own total (14569.68/151 = 96.5)
    result.add_row("Avg frame Sched time (Fixed Point)", aw, "µs", paper=96.48)
    result.add_row("Total time w/o Scheduler (Fixed Point)", two, "µs", paper=4199.04)
    result.add_row("Avg frame time w/o Scheduler (Fixed Point)", awo, "µs", paper=27.80)
    result.notes.append(
        "paper: register-file and pinned-memory descriptor costs are comparable"
    )
    return result


def table4(
    transfers: int = 1000, partitions: Optional[int] = None
) -> ExperimentResult:
    """Critical-path benchmarks: 1000-byte frame, disk → remote client."""
    if partitions is not None:
        overrides = {} if transfers == 1000 else {"transfers": transfers}
        return _fan_out("table4", partitions, **overrides)
    frame = 1000
    result = ExperimentResult(
        exp_id="Table 4", title="Critical Path Benchmarks (1000-byte frame)"
    )

    def run_many(env, make_gen, n):
        def runner():
            total = 0.0
            for _ in range(n):
                total += yield from make_gen()
            return total / n

        return env.run(until=env.process(runner()))

    # -- Experiment I, path A, two filesystem variants ---------------------
    for fs_kind, paper_ms in (("ufs", 1.0), ("dosfs", 8.0)):
        env = Environment()
        node = ServerNode(env)
        switch = EthernetSwitch(env)
        client = EthernetPort(env, "client")
        switch.attach(client)
        ctrl = node.add_disk_controller()
        nic = node.add_82557_nic()
        switch.attach(nic.eth_port)
        fs = ctrl.mount_ufs() if fs_kind == "ufs" else ctrl.mount_dosfs()
        f = fs.open("movie.mpg", size_bytes=transfers * frame + frame)
        avg = run_many(
            env,
            lambda: path_a_transfer(node, ctrl, f, nic, "client", frame),
            transfers,
        )
        label = "I: Disk-Host CPU-I/O Bus-Network" + (
            " (ufs)" if fs_kind == "ufs" else " (VxWorks fs)"
        )
        result.add_row(label, avg / 1000.0, "ms", paper=paper_ms)

    # -- Experiment II, path C ------------------------------------------------
    env = Environment()
    node = ServerNode(env)
    switch = EthernetSwitch(env)
    client = EthernetPort(env, "client")
    switch.attach(client)
    card = node.add_i960_card()
    fs = card.attach_disk()
    switch.attach(card.eth_ports[0])
    f = fs.open("movie.mpg", size_bytes=transfers * frame + frame)
    avg = run_many(
        env, lambda: path_c_transfer(card, f, "client", frame), transfers
    )
    result.add_row("II: NI Disk-NI CPU-Network", avg / 1000.0, "ms", paper=5.4)

    # -- Experiment III, path B ------------------------------------------------
    env = Environment()
    node = ServerNode(env)
    switch = EthernetSwitch(env)
    client = EthernetPort(env, "client")
    switch.attach(client)
    producer = node.add_i960_card()
    scheduler_card = node.add_i960_card()
    fs = producer.attach_disk()
    switch.attach(scheduler_card.eth_ports[0])
    f = fs.open("movie.mpg", size_bytes=transfers * frame + frame)
    avg = run_many(
        env,
        lambda: path_b_transfer(producer, scheduler_card, f, "client", frame),
        transfers,
    )
    result.add_row("III: Disk-I/O Bus-NI CPU-Network", avg / 1000.0, "ms", paper=5.415)

    # -- component decomposition of Experiment III ------------------------------
    env = Environment()
    seg = PCISegment(env)
    disk_env = Environment()
    from repro.hw.disk import SCSIDisk

    disk = SCSIDisk(disk_env)
    disk_lat = disk_env.run(until=disk_env.process(disk.read(frame)))
    pci_lat = env.run(until=env.process(seg.transfer(frame)))
    result.add_row("III component: disk", disk_lat / 1000.0, "ms", paper=4.2)
    result.add_row("III component: pci", pci_lat / 1000.0, "ms", paper=0.015)
    return result


def table5(partitions: Optional[int] = None) -> ExperimentResult:
    """PCI card-to-card transfer primitives."""
    if partitions is not None:
        return _fan_out("table5", partitions)
    result = ExperimentResult(exp_id="Table 5", title="PCI Card-to-Card Transfer Benchmarks")
    env = Environment()
    seg = PCISegment(env)
    dma_us = env.run(until=env.process(seg.transfer(MPEG_FILE_BYTES)))
    result.add_row(
        f"MPEG File Transfer by DMA ({MPEG_FILE_BYTES} bytes)",
        dma_us,
        "µs",
        paper=11673.84,
    )
    result.add_row("DMA effective bandwidth", MPEG_FILE_BYTES / dma_us, "MB/s", paper=66.27)
    env = Environment()
    seg = PCISegment(env)
    result.add_row(
        "Memory Word Read (PIO)",
        env.run(until=env.process(seg.pio_read())),
        "µs",
        paper=3.6,
    )
    env = Environment()
    seg = PCISegment(env)
    result.add_row(
        "Memory Word Write (PIO)",
        env.run(until=env.process(seg.pio_write())),
        "µs",
        paper=3.1,
    )
    return result
