"""Sensitivity analysis and mechanism knockouts.

Executable versions of docs/CALIBRATION.md's claims:

* :func:`cost_sensitivity` — perturb each fitted cost constant ±50 % and
  measure how the Table-1/2 cells move. Because each constant was a
  one-equation fit, the response should be smooth and roughly linear —
  and confined to the cells that constant explains.
* :func:`mechanism_knockouts` — turn the figure-level mechanisms off one
  at a time. The finding: the scheduler's decayed TS priority is the
  *necessary* mechanism (fresh priority ⇒ no degradation at all); the
  heavy tail shapes where degradation begins, but at a saturating window
  even dense small requests starve a decayed scheduler.

These are the falsifiability checks: if a knockout did *not* change the
result, the mechanism story in DESIGN.md would be wrong.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from repro.core.costs import DWCSCostModel
from repro.core.engine import MicrobenchEngine
from repro.fixedpoint import FixedPointContext, SoftwareFloatContext
from repro.hw.cache import DataCache
from repro.hw.cpu import CPU, CPUSpec, I960RD_66
from repro.sim import Environment, S

from .calibration import microbench_scheduler
from .report import ExperimentResult

__all__ = ["cost_sensitivity", "mechanism_knockouts"]


def _avg_frame_us(
    ctx_factory: Callable,
    cpu_spec: CPUSpec,
    cache_enabled: bool,
    costs: DWCSCostModel | None = None,
    seed: int = 0,
) -> float:
    # the seed is pinned into the environment's ambient RNG family. The
    # microbench drains deterministic pre-filled rings, so today the run is
    # seed-invariant by construction — but the plumbing is explicit end to
    # end so sweep cache keys over (experiment, seed) are honest, and any
    # future stochastic component inherits the pin instead of free-running.
    env = Environment(seed=seed)
    cpu = CPU(cpu_spec, cache=DataCache(enabled=cache_enabled))
    scheduler = microbench_scheduler(ctx_factory())
    if costs is not None:
        scheduler.costs = costs
    engine = MicrobenchEngine(env, scheduler, cpu)
    return env.run(until=env.process(engine.run_with_scheduler())).avg_frame_us


def cost_sensitivity(
    scale: float = 1.5, seed: int = 0, partitions: Optional[int] = None
) -> ExperimentResult:
    """Scale each fitted constant by *scale* and report the cell movement."""
    if partitions is not None:
        # single-unit partition plan: one worker, canonical round-trip
        from repro.pdes.plan import run_plan

        return run_plan(
            "sens_costs", seed=seed, partitions=partitions, scale=scale
        )
    result = ExperimentResult(
        exp_id="Sensitivity: cost constants",
        title=f"Table-cell response to x{scale} on each fitted constant",
    )
    base_fixed = _avg_frame_us(
        FixedPointContext, I960RD_66, cache_enabled=False, seed=seed
    )
    base_soft = _avg_frame_us(
        SoftwareFloatContext, I960RD_66, cache_enabled=False, seed=seed
    )
    base_cached = _avg_frame_us(
        FixedPointContext, I960RD_66, cache_enabled=True, seed=seed
    )
    result.add_row("baseline avg frame (fixed, cache off)", base_fixed, "µs")

    # 1. software-FP emulation cost: moves only the software-FP build
    spec = replace(
        I960RD_66, fp_emulation_cycles=I960RD_66.fp_emulation_cycles * scale
    )
    soft = _avg_frame_us(SoftwareFloatContext, spec, cache_enabled=False, seed=seed)
    fixed = _avg_frame_us(FixedPointContext, spec, cache_enabled=False, seed=seed)
    result.add_row(
        f"software-FP cell under x{scale} fp_emulation_cycles", soft, "µs",
        note=f"moved {soft - base_soft:+.1f}µs",
    )
    result.add_row(
        f"fixed-point cell under x{scale} fp_emulation_cycles", fixed, "µs",
        note=f"moved {fixed - base_fixed:+.1f}µs (should be ~0)",
    )

    # 2. uncached memory cost: moves the cache-off cells, not cache-on ones
    spec = replace(
        I960RD_66, mem_uncached_cycles=I960RD_66.mem_uncached_cycles * scale
    )
    off = _avg_frame_us(FixedPointContext, spec, cache_enabled=False, seed=seed)
    on = _avg_frame_us(FixedPointContext, spec, cache_enabled=True, seed=seed)
    result.add_row(
        f"cache-off cell under x{scale} mem_uncached_cycles", off, "µs",
        note=f"moved {off - base_fixed:+.1f}µs",
    )
    result.add_row(
        f"cache-on cell under x{scale} mem_uncached_cycles", on, "µs",
        note=f"moved {on - base_cached:+.1f}µs (partial: misses remain)",
    )

    # 3. decision base: moves everything with-scheduler, uniformly
    costs = replace(
        DWCSCostModel(),
        decision_base_int_ops=int(DWCSCostModel().decision_base_int_ops * scale),
    )
    bumped = _avg_frame_us(FixedPointContext, I960RD_66, False, costs=costs, seed=seed)
    result.add_row(
        f"cache-off cell under x{scale} decision_base", bumped, "µs",
        note=f"moved {bumped - base_fixed:+.1f}µs",
    )
    result.notes.append(
        "each constant moves its own cells and leaves the others' nearly "
        "still — the fits are orthogonal"
    )
    return result


def mechanism_knockouts(
    duration_us: float = 60 * S, seed: int = 0, partitions: Optional[int] = None
) -> ExperimentResult:
    """Figure-7 degradation with its mechanisms disabled one at a time."""
    if partitions is not None:
        # single-unit partition plan: one worker, canonical round-trip
        from repro.pdes.plan import run_plan

        return run_plan(
            "sens_knockouts",
            seed=seed,
            duration_us=duration_us,
            partitions=partitions,
        )
    # imported here: the loading machinery pulls in the whole server stack
    from repro.hw.ethernet import EthernetSwitch
    from repro.metrics import Perfmeter
    from repro.server.node import ServerNode
    from repro.server.streaming import HostStreamingService
    from repro.sim import Environment, RandomStreams
    from repro.workload import ApacheServer, Httperf

    from .calibration import (
        APACHE_HEAVY_TAIL,
        HOST_INJECT_GAP_US,
        HOST_SEGMENTATION_US,
        LOAD_PROFILES,
        PREBUFFER_FRAMES,
        figure_mpeg_file,
        figure_stream_specs,
    )

    def run(heavy_tail: bool, decayed_priority: bool) -> float:
        env = Environment(seed=seed)
        node = ServerNode(env, n_cpus=2, n_pci_segments=2)
        switch = EthernetSwitch(env)
        svc = HostStreamingService(
            env, node, switch, priority=120 if decayed_priority else 110
        )
        n_frames = int(duration_us / 280_000.0) + 64
        for i, spec in enumerate(figure_stream_specs()):
            svc.attach_client(f"c{i}")
            svc.open_stream(spec, f"c{i}")
            svc.start_producer(
                figure_mpeg_file(spec.stream_id, seed=seed + i, n_frames=n_frames),
                inject_gap_us=HOST_INJECT_GAP_US,
                segmentation_us=HOST_SEGMENTATION_US,
                prebuffer_frames=PREBUFFER_FRAMES,
            )
        tail = APACHE_HEAVY_TAIL if heavy_tail else {"heavy_tail_prob": 0.0}
        web = ApacheServer(env, node.host_os, rng=RandomStreams(seed + 100), **tail)
        capacity = node.host_os.n_cpus * 1e6 / web.effective_mean_service_us
        Httperf(
            env,
            web,
            rate_per_s=0.001,
            rate_profile=[(t, f * capacity) for t, f in LOAD_PROFILES["60%"]],
            total_calls=10**9,
            rng=RandomStreams(seed + 200),
        )
        env.run(until=duration_us)
        return svc.reception("s1").mean_bandwidth_bps(
            0.72 * duration_us, duration_us
        )

    result = ExperimentResult(
        exp_id="Sensitivity: mechanism knockouts",
        title="Figure-7 '60%' degradation with mechanisms disabled",
    )
    full = run(heavy_tail=True, decayed_priority=True)
    no_tail = run(heavy_tail=False, decayed_priority=True)
    fresh_prio = run(heavy_tail=True, decayed_priority=False)
    neither = run(heavy_tail=False, decayed_priority=False)
    result.add_row("full model (both mechanisms)", full, "bps")
    result.add_row("heavy tail knocked out", no_tail, "bps")
    result.add_row("priority decay knocked out", fresh_prio, "bps")
    result.add_row("both knocked out", neither, "bps")
    result.notes.append(
        "the decayed scheduler priority is the NECESSARY mechanism: knock it "
        "out and full bandwidth returns even under the saturating window. "
        "The heavy tail shapes where degradation begins (it creates the "
        "transient stalls at the sub-saturated '45%' level) but at a "
        "saturating window, dense small requests starve a decayed scheduler "
        "just as hard — or harder"
    )
    return result
