"""Command-line experiment runner.

    python -m repro.experiments                # run everything
    python -m repro.experiments table1 figure7 # run selected experiments
    python -m repro.experiments --list         # show experiment ids
    python -m repro.experiments figure7 --plots out/   # + ASCII plot files
    python -m repro.experiments bench          # wall-clock benchmark
    python -m repro.experiments bench --quick  # CI smoke benchmark
    python -m repro.experiments sweep --jobs 4 # parallel sweep + cache
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path

from . import REGISTRY
from .report import ExperimentResult


def _scenario_registry(experiment: str):
    """The scenario registry behind a scenario-driven experiment id
    (None for experiments that are not scenario-driven). Imports lazily —
    ``--list`` must stay cheap."""
    if experiment == "chaos":
        from repro.faults.scenarios import SCENARIOS

        return SCENARIOS
    if experiment == "failover":
        from repro.faults.scenarios import FAILOVER_SCENARIOS

        return FAILOVER_SCENARIOS
    if experiment == "cluster":
        from repro.cluster import CLUSTER_SCENARIOS

        return CLUSTER_SCENARIOS
    return None


def _partition_axis(experiment: str) -> str:
    """Human description of an experiment's partition axis (for --list)."""
    runner = REGISTRY[experiment]
    if "partitions" not in inspect.signature(runner).parameters:
        return "(not partition-capable)"
    if experiment == "pdescluster":
        from repro.pdes.cluster import SAN_LOOKAHEAD_US

        return (
            "event-level: front door + node partitions across the SAN seam "
            f"(lookahead {SAN_LOOKAHEAD_US:.0f} us, windowed coordinator)"
        )
    from repro.pdes.plan import plans

    plan = plans().get(experiment)
    if plan is None:
        return "single-unit (whole experiment in one worker)"
    return plan.axis


def _partition_capable() -> list[str]:
    return [
        name
        for name, runner in REGISTRY.items()
        if "partitions" in inspect.signature(runner).parameters
    ]


def _write_artifacts(result: ExperimentResult, directory: Path, name: str) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    parts = [result.render()]
    for series in result.series:
        if len(series.x):
            parts.append("")
            parts.append(result.ascii_plot(series.name))
    (directory / f"{name}.txt").write_text("\n".join(parts) + "\n")


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "bench":
        # the benchmark harness owns its own CLI (see bench.py)
        from .bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "sweep":
        # the parallel sweep engine owns its own CLI (see sweep.py)
        from .sweep import main as sweep_main

        return sweep_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list experiment ids; with experiment ids given, list the "
        "scenarios of each scenario-driven experiment instead",
    )
    parser.add_argument(
        "--scenarios",
        metavar="A,B",
        default=None,
        help="comma-separated scenario names for scenario-driven "
        "experiments (chaos, failover, cluster); see --list",
    )
    parser.add_argument(
        "--transport",
        metavar="T[,T]",
        default=None,
        help="media transport(s) for experiments that accept one: "
        "udp, tcp, ttp (comma-separated for the transport comparison)",
    )
    parser.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="N",
        help="partitioned execution across N worker processes; the result "
        "is byte-identical to the serial run (see --list for each "
        "experiment's partition axis)",
    )
    parser.add_argument(
        "--plots",
        metavar="DIR",
        help="also write per-experiment text artifacts (tables + ASCII plots)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="override the RNG seed for experiments that accept one "
        "(e.g. chaos; same seed => identical results)",
    )
    args = parser.parse_args(argv)

    if args.list:
        if args.experiments:
            unknown = [n for n in args.experiments if n not in REGISTRY]
            if unknown:
                parser.error(f"unknown experiment(s): {', '.join(unknown)}")
            for name in args.experiments:
                registry = _scenario_registry(name)
                if registry is None:
                    print(f"{name}: (not scenario-driven)")
                else:
                    print(f"{name}:")
                    for scenario in registry.values():
                        print(f"  {scenario.name:14s} {scenario.description}")
                print(f"  partitions: {_partition_axis(name)}")
        else:
            for name in REGISTRY:
                print(name)
        return 0

    names = args.experiments or list(REGISTRY)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    if args.partitions is not None and args.partitions < 1:
        parser.error(
            f"--partitions must be a positive worker count, got "
            f"{args.partitions}; valid values are 1..N (or omit the flag "
            "for the serial path)"
        )
    scenario_names = (
        [s for s in args.scenarios.split(",") if s] if args.scenarios else None
    )
    transport_names = None
    if args.transport is not None:
        from repro.net.transport import resolve_transport

        transport_names = [t for t in args.transport.split(",") if t]
        try:
            for tname in transport_names:
                resolve_transport(tname)
        except ValueError as exc:
            parser.error(str(exc))
    for name in names:
        runner = REGISTRY[name]
        params = inspect.signature(runner).parameters
        kwargs = {}
        if args.seed is not None and "seed" in params:
            kwargs["seed"] = args.seed
        if scenario_names is not None:
            if "scenarios" not in params:
                parser.error(f"experiment {name!r} does not take --scenarios")
            registry = _scenario_registry(name)
            if registry is not None:
                from repro.faults.scenarios import resolve_scenario

                try:
                    for scenario in scenario_names:
                        resolve_scenario(scenario, registry, kind=name)
                except ValueError as exc:
                    parser.error(str(exc))
            kwargs["scenarios"] = scenario_names
        if transport_names is not None:
            if "transports" in params:
                kwargs["transports"] = transport_names
            elif "transport" in params:
                if len(transport_names) != 1:
                    parser.error(
                        f"experiment {name!r} takes a single --transport"
                    )
                kwargs["transport"] = transport_names[0]
            else:
                parser.error(f"experiment {name!r} does not take --transport")
        if args.partitions is not None:
            if "partitions" not in params:
                parser.error(
                    f"experiment {name!r} does not take --partitions; "
                    f"partition-capable: {', '.join(_partition_capable())}"
                )
            kwargs["partitions"] = args.partitions
        result = runner(**kwargs)
        print(result.render())
        print()
        if args.plots:
            _write_artifacts(result, Path(args.plots), name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
