"""Experiment result structures, text rendering, and serialization.

Every experiment returns an :class:`ExperimentResult`: a set of rows, each
pairing a measured value with the paper's reported value (when the paper
reports one), plus optional time series for figures. ``render()`` prints
the same rows the paper's table/figure reports, with a paper-vs-measured
column — the format EXPERIMENTS.md records.

``to_dict``/``from_dict`` give an exact JSON round-trip — Python floats
survive JSON's shortest-repr encoding bit for bit, and series arrays go
through ``tolist()``/``asarray`` losslessly — so a result computed in a
sweep worker process and reloaded from the on-disk cache reproduces the
same golden digest as the in-process original. That property is what
lets the parallel sweep engine prove itself bit-identical to serial
execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

__all__ = ["Row", "Series", "ExperimentResult"]


@dataclass
class Row:
    """One reported quantity."""

    label: str
    measured: float
    unit: str = ""
    #: the paper's value for the same cell (None when the paper gives no
    #: number, e.g. qualitative immunity claims)
    paper: Optional[float] = None
    note: str = ""

    @property
    def ratio(self) -> float:
        """measured / paper (nan when no paper value)."""
        if self.paper in (None, 0):
            return math.nan
        return self.measured / self.paper

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "measured": self.measured,
            "unit": self.unit,
            "paper": self.paper,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Row":
        return cls(
            label=d["label"],
            measured=d["measured"],
            unit=d.get("unit", ""),
            paper=d.get("paper"),
            note=d.get("note", ""),
        )


@dataclass
class Series:
    """A figure's data series."""

    name: str
    x: np.ndarray
    y: np.ndarray
    x_label: str = "time (s)"
    y_label: str = ""

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.x.shape != self.y.shape:
            raise ValueError("series x and y must have equal length")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "x": self.x.tolist(),
            "y": self.y.tolist(),
            "x_label": self.x_label,
            "y_label": self.y_label,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Series":
        return cls(
            name=d["name"],
            x=d["x"],
            y=d["y"],
            x_label=d.get("x_label", "time (s)"),
            y_label=d.get("y_label", ""),
        )


@dataclass
class ExperimentResult:
    """Everything one table/figure reproduction produced."""

    exp_id: str
    title: str
    rows: list[Row] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: trailing summary lines (tracer-ring health, SLO verdicts...) printed
    #: after the notes. Deliberately NOT part of the golden digest
    #: (:func:`repro.experiments.golden.result_digest` skips them), so
    #: observability summaries can grow without invalidating pinned rows —
    #: but they ARE deterministic and land in rendered artifacts, so the CI
    #: double-run diffs still cover them.
    footers: list[str] = field(default_factory=list)

    def row(self, label: str) -> Row:
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(f"no row {label!r} in {self.exp_id}")

    def add_row(
        self,
        label: str,
        measured: float,
        unit: str = "",
        paper: Optional[float] = None,
        note: str = "",
    ) -> Row:
        r = Row(label, measured, unit=unit, paper=paper, note=note)
        self.rows.append(r)
        return r

    def add_tracer_footer(self, label: str, tracer) -> None:
        """One ring-health line per tracer: emitted / discarded / unbalanced.

        A nonzero ``discarded`` means the ring evicted spans — coverage
        claims built on that trace silently lie — so the line carries an
        explicit WARNING marker the smoke jobs and readers can grep."""
        line = (
            f"trace ring [{label}]: emitted={tracer.emitted} "
            f"discarded={tracer.discarded} unbalanced_ends={tracer.unbalanced_ends}"
        )
        if tracer.discarded:
            line += " WARNING: ring evicted events; raise the tracer capacity"
        self.footers.append(line)

    # -- serialization (exact JSON round-trip; see module docstring) ---------
    def to_dict(self) -> dict:
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "rows": [r.to_dict() for r in self.rows],
            "series": [s.to_dict() for s in self.series],
            "notes": list(self.notes),
            "footers": list(self.footers),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentResult":
        return cls(
            exp_id=d["exp_id"],
            title=d["title"],
            rows=[Row.from_dict(r) for r in d.get("rows", [])],
            series=[Series.from_dict(s) for s in d.get("series", [])],
            notes=list(d.get("notes", [])),
            footers=list(d.get("footers", [])),
        )

    # -- rendering -----------------------------------------------------------
    def render(self) -> str:
        lines = [f"== {self.exp_id}: {self.title} =="]
        if self.rows:
            label_w = max(len(r.label) for r in self.rows)
            lines.append(
                f"{'quantity'.ljust(label_w)}  {'measured':>12}  {'paper':>12}  "
                f"{'meas/paper':>10}  unit"
            )
            for r in self.rows:
                paper = f"{r.paper:.2f}" if r.paper is not None else "-"
                ratio = f"{r.ratio:.2f}" if not math.isnan(r.ratio) else "-"
                note = f"  ({r.note})" if r.note else ""
                lines.append(
                    f"{r.label.ljust(label_w)}  {r.measured:>12.2f}  {paper:>12}  "
                    f"{ratio:>10}  {r.unit}{note}"
                )
        for s in self.series:
            lines.append(
                f"series {s.name!r}: {len(s.x)} points, "
                f"x=[{s.x.min() if s.x.size else 0:.2f}, {s.x.max() if s.x.size else 0:.2f}] {s.x_label}, "
                f"y=[{np.nanmin(s.y) if s.y.size else 0:.1f}, {np.nanmax(s.y) if s.y.size else 0:.1f}] {s.y_label}"
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        lines.extend(self.footers)
        return "\n".join(lines)

    def ascii_plot(self, series_name: str, width: int = 72, height: int = 16) -> str:
        """Quick-look ASCII rendering of one series (figures)."""
        s = next((x for x in self.series if x.name == series_name), None)
        if s is None:
            raise KeyError(f"no series {series_name!r}")
        mask = ~np.isnan(s.y)
        x, y = s.x[mask], s.y[mask]
        if x.size == 0:
            return "(empty series)"
        ymin, ymax = float(y.min()), float(y.max())
        span = (ymax - ymin) or 1.0
        grid = [[" "] * width for _ in range(height)]
        xmin, xmax = float(x.min()), float(x.max())
        xspan = (xmax - xmin) or 1.0
        for xi, yi in zip(x, y):
            col = int((xi - xmin) / xspan * (width - 1))
            row = int((yi - ymin) / span * (height - 1))
            grid[height - 1 - row][col] = "*"
        lines = [f"{series_name} [{ymin:.0f} .. {ymax:.0f}] {s.y_label}"]
        lines += ["|" + "".join(row) for row in grid]
        lines.append("+" + "-" * width)
        lines.append(f" {xmin:.1f} .. {xmax:.1f} {s.x_label}")
        return "\n".join(lines)
