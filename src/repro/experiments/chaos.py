"""The chaos harness: Figure 9 under injected faults.

Beyond the paper: the NI configuration's robustness plane under fire. Each
named scenario from :mod:`repro.faults.scenarios` is replayed against the
Figure-9 architecture (NI-based DWCS, no web load) with a seeded
:class:`~repro.faults.FaultPlane`, and the run is scored on

* **steady bandwidth** per stream before the fault (the Figure 9 value),
* **dip** — the worst binned delivery rate inside the fault window,
* **recovery time** — from fault clearance until delivery is back within
  90% of the pre-fault rate,
* DWCS violation/drop counts and the plane's injection tally.

Runs are deterministic given a seed: the plane draws from its own named
substreams, so the same seed replays byte-identical fault timings, and the
``baseline`` scenario (a plane with no windows) must reproduce the
plane-less Figure 9 run exactly.

    python -m repro.experiments chaos --seed 42
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults import ChaosScenario, FaultPlane, SCENARIOS, resolve_scenario
from repro.obs import CHAOS_SLOS, MetricsRegistry, SLOReport, evaluate, render_slo_report
from repro.sim import S

from .calibration import SIM_DURATION_US
from .figures import LoadedRun, run_loading_experiment
from .report import ExperimentResult

__all__ = ["ChaosRun", "run_chaos_scenario", "chaos", "CHAOS_BIN_US"]

#: bandwidth is scored in bins of this width (2 simulated seconds)
CHAOS_BIN_US = 2 * S

#: delivery counts as recovered once a bin reaches this fraction of the
#: pre-fault rate
RECOVERY_FRACTION = 0.9


@dataclass
class ChaosRun:
    """One scenario's scored outcome."""

    scenario: ChaosScenario
    run: LoadedRun
    plane: FaultPlane
    fault_start_us: float
    fault_end_us: float
    #: per-stream pre-fault delivery rate (bps)
    ref_bps: dict[str, float]
    #: per-stream worst binned rate inside the fault window (bps)
    dip_bps: dict[str, float]
    #: per-stream time from fault clearance to recovery (µs); None when
    #: the stream never got back to RECOVERY_FRACTION of ref by run end
    recovery_us: dict[str, Optional[float]]

    @property
    def violations(self) -> int:
        return self.run.service.engine.scheduler.stats.violations

    @property
    def dropped(self) -> int:
        return self.run.service.engine.scheduler.stats.dropped

    @property
    def injected(self) -> int:
        return self.plane.total_injected

    def slo_report(self) -> SLOReport:
        """Evaluate the chaos budgets: faults actually fired inside the
        window, and every stream still delivers once the dust settles."""
        reg = MetricsRegistry()
        reg.gauge(
            "chaos.fault_windows",
            1.0 if self.fault_end_us > self.fault_start_us else 0.0,
        )
        reg.gauge("chaos.faults_injected", float(self.injected))
        if self.ref_bps:
            reg.gauge(
                "chaos.min_settled_bps",
                min(self.run.settled_bandwidth(sid) for sid in sorted(self.ref_bps)),
            )
        return evaluate(CHAOS_SLOS, registry=reg, title=f"chaos:{self.scenario.name}")


def _binned_bps(run: LoadedRun, stream_id: str, start_us: float, end_us: float):
    """(bin_end_us, mean_bps) per CHAOS_BIN_US bin over [start, end).

    A window shorter than one bin still yields a single partial bin, so
    short fault windows (scaled-down test runs) are scored rather than
    silently skipped.
    """
    rec = run.service.reception(stream_id)
    out = []
    t = start_us
    while t + CHAOS_BIN_US <= end_us:
        out.append((t + CHAOS_BIN_US, rec.mean_bandwidth_bps(t, t + CHAOS_BIN_US)))
        t += CHAOS_BIN_US
    if not out and end_us > start_us:
        out.append((end_us, rec.mean_bandwidth_bps(start_us, end_us)))
    return out


def run_chaos_scenario(
    name: str,
    duration_us: float = SIM_DURATION_US,
    seed: int = 42,
    transport: str = "udp",
) -> ChaosRun:
    """Replay one named scenario against the Figure-9 configuration.

    ``transport`` selects the media wire path; every scenario runs
    unmodified over any of them (link loss and partitions hit the switch,
    msg-drop/dup hit whichever stack owns the serving port's name)."""
    scenario = resolve_scenario(name, SCENARIOS, kind="chaos")
    fault_start_us, fault_end_us = scenario.fault_window_us(duration_us)
    holder: dict[str, FaultPlane] = {}

    def install(env, service, duration_us, **_ignored) -> None:
        plane = FaultPlane(env, seed=seed + 1000)
        scenario.install(plane, service, duration_us)
        holder["plane"] = plane

    run = run_loading_experiment(
        "ni",
        "none",
        duration_us=duration_us,
        seed=seed,
        chaos=install,
        transport=transport,
    )
    plane = holder["plane"]

    ref_bps: dict[str, float] = {}
    dip_bps: dict[str, float] = {}
    recovery_us: dict[str, Optional[float]] = {}
    for sid in sorted(run.service.engine.scheduler.queues):
        rec = run.service.reception(sid)
        warmup_us = 0.2 * duration_us
        ref = rec.mean_bandwidth_bps(warmup_us, max(fault_start_us, warmup_us + CHAOS_BIN_US))
        ref_bps[sid] = ref
        fault_bins = _binned_bps(run, sid, fault_start_us, fault_end_us)
        dip_bps[sid] = min((bps for _t, bps in fault_bins), default=ref)
        if fault_start_us == fault_end_us:
            recovery_us[sid] = 0.0  # no fault window: nothing to recover from
        else:
            recovery_us[sid] = None
            for bin_end, bps in _binned_bps(run, sid, fault_end_us, duration_us):
                if bps >= RECOVERY_FRACTION * ref:
                    recovery_us[sid] = bin_end - fault_end_us
                    break
    return ChaosRun(
        scenario=scenario,
        run=run,
        plane=plane,
        fault_start_us=fault_start_us,
        fault_end_us=fault_end_us,
        ref_bps=ref_bps,
        dip_bps=dip_bps,
        recovery_us=recovery_us,
    )


def chaos(
    duration_us: float = SIM_DURATION_US,
    seed: int = 42,
    scenarios: Optional[list[str]] = None,
    transport: str = "udp",
    partitions: Optional[int] = None,
) -> ExperimentResult:
    """Run every named chaos scenario and tabulate the robustness scores.

    With a non-default ``transport`` each scenario also audits the
    zero-leak ledger (unaccounted records must be 0) and reports the
    transport's retransmission work; the default output stays
    byte-identical to the historical raw-UDP run.

    ``partitions`` fans the scenarios out across that many worker
    processes (one partition cell per scenario) and reassembles a
    byte-identical result — see :mod:`repro.pdes.plan`."""
    if partitions is not None:
        from repro.pdes.plan import run_plan

        overrides: dict = {}
        if scenarios is not None:
            overrides["scenarios"] = scenarios
        if transport != "udp":
            overrides["transport"] = transport
        return run_plan(
            "chaos",
            seed=seed,
            duration_us=duration_us,
            partitions=partitions,
            **overrides,
        )
    result = ExperimentResult(
        exp_id="Chaos",
        title=f"Fault injection against the NI configuration (seed {seed})",
    )
    names = scenarios if scenarios is not None else list(SCENARIOS)
    slo_reports = []
    for name in names:
        cr = run_chaos_scenario(
            name, duration_us=duration_us, seed=seed, transport=transport
        )
        slo_reports.append(cr.slo_report())
        for sid in sorted(cr.ref_bps):
            result.add_row(
                f"{name}: {sid} pre-fault bandwidth",
                cr.ref_bps[sid],
                unit="bps",
                note=cr.scenario.description if sid == min(cr.ref_bps) else "",
            )
            result.add_row(f"{name}: {sid} worst dip", cr.dip_bps[sid], unit="bps")
            rec_us = cr.recovery_us[sid]
            result.add_row(
                f"{name}: {sid} recovery time",
                -1.0 if rec_us is None else rec_us / 1000.0,
                unit="ms",
                note="never recovered" if rec_us is None else "",
            )
            series = cr.run.bandwidth_series(sid)
            series.name = f"{name}:{sid}:bw"
            result.series.append(series)
        result.add_row(f"{name}: violations", float(cr.violations))
        result.add_row(f"{name}: drops", float(cr.dropped))
        result.add_row(f"{name}: faults injected", float(cr.injected))
        books = cr.run.service.books
        if books is not None:
            result.add_row(
                f"{name}: transport retransmissions",
                float(books.retransmissions),
            )
            result.add_row(
                f"{name}: transport records lost", float(len(books.lost_ids))
            )
            result.add_row(
                f"{name}: transport duplicate deliveries",
                float(books.duplicate_deliveries),
            )
            result.add_row(
                f"{name}: transport records unaccounted",
                float(len(books.unaccounted())),
                note="MUST be 0: every sent record is delivered, lost, or in flight",
            )
    if transport != "udp":
        result.notes.append(f"media wire path: transport={transport}")
    result.notes.append(
        f"fault windows per scenario: "
        + ", ".join(
            f"{n}=[{SCENARIOS[n].start_frac:.2f},{SCENARIOS[n].end_frac:.2f}]xT"
            for n in names
        )
    )
    result.notes.append(
        "deterministic: identical seed => identical rows (plane draws from "
        "named substreams only while a fault window is active)"
    )
    result.footers.append(render_slo_report(*slo_reports).rstrip("\n"))
    return result
