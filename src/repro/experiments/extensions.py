"""Beyond the paper's evaluation: its stated future work and claims that
were asserted without a figure.

* :func:`stream_scaling` — "Experimentation is underway for studying
  bandwidth allocations for a large number of streams streamed by the
  scheduler" (§6 Future Work): sweep the stream count on one NI scheduler
  and report per-stream delivered bandwidth fairness and decision cost.
* :func:`jitter_comparison` — §4.2.3's qualitative claim: "jitter-sensitive
  traffic may experience more uniform jitter-delay variation" on the NI.
  Measures client-side inter-arrival jitter for host vs NI schedulers under
  load.
* :func:`admission_sweep` — how many streams of a given QoS class one NI
  admits under the (1 − x/y)·C/T bound, versus what it can actually carry.
"""

from __future__ import annotations

import numpy as np

from repro.core.admission import AdmissionController
from repro.core.attributes import StreamSpec
from repro.core.engine import MicrobenchEngine
from repro.fixedpoint import FixedPointContext
from repro.hw.cache import DataCache
from repro.hw.cpu import CPU, I960RD_66
from repro.hw.ethernet import EthernetSwitch
from repro.media.mpeg import MPEGEncoder
from repro.server.node import ServerNode
from repro.server.streaming import NIStreamingService
from repro.sim import Environment, RandomStreams, S

from .calibration import microbench_scheduler
from .figures import run_loading_experiment
from .report import ExperimentResult, Series

__all__ = ["stream_scaling", "jitter_comparison", "admission_sweep", "ni_balance"]


def stream_scaling(
    stream_counts: tuple[int, ...] = (2, 4, 8, 16, 32),
    duration_us: float = 40 * S,
    seed: int = 0,
) -> ExperimentResult:
    """N equal streams through one NI scheduler: fairness and decision cost.

    Streams are sized so the aggregate stays within the 100 Mbps port
    (N × 200 kbps ≤ 6.4 Mbps at N=32); what scales with N is the
    *scheduler's* work per frame.
    """
    result = ExperimentResult(
        exp_id="Extension: stream scaling",
        title="Per-stream bandwidth and decision cost vs stream count (NI)",
    )
    fairness = []
    for n in stream_counts:
        env = Environment()
        node = ServerNode(env, n_cpus=1)
        switch = EthernetSwitch(env)
        service = NIStreamingService(env, node, switch)
        enc = MPEGEncoder(bitrate_bps=200_000.0, fps=4.0, rng=RandomStreams(seed))
        n_frames = int(duration_us / 200_000.0) + 16
        for i in range(n):
            sid = f"s{i}"
            service.attach_client(f"c{i}")
            service.open_stream(
                StreamSpec(sid, period_us=250_000.0, loss_x=1, loss_y=4), f"c{i}"
            )
            service.start_producer(
                enc.encode(sid, n_frames), inject_gap_us=150_000.0
            )
        env.run(until=duration_us)
        rates = np.array(
            [
                service.reception(f"s{i}").mean_bandwidth_bps(
                    0.3 * duration_us, duration_us
                )
                for i in range(n)
            ]
        )
        # Jain's fairness index over delivered per-stream bandwidth
        jain = float(rates.sum() ** 2 / (n * (rates**2).sum())) if rates.any() else 0.0
        fairness.append(jain)
        result.add_row(
            f"mean per-stream bandwidth (n={n})", float(rates.mean()), "bps",
            paper=200_000.0, note="target: every stream at its natural rate",
        )
        result.add_row(f"Jain fairness index (n={n})", jain, "", paper=1.0)
    # decision cost vs n from the microbenchmark engine (drain mode)
    costs = []
    for n in stream_counts:
        env = Environment()
        cpu = CPU(I960RD_66, cache=DataCache(enabled=True))
        sched = microbench_scheduler(
            FixedPointContext(), total_frames=8 * n, n_streams=n
        )
        engine = MicrobenchEngine(env, sched, cpu)
        r = env.run(until=env.process(engine.run_with_scheduler()))
        costs.append(r.avg_frame_us)
        result.add_row(f"per-frame scheduling time (n={n})", r.avg_frame_us, "µs")
    result.series.append(
        Series(
            name="decision-cost",
            x=np.array(stream_counts, dtype=float),
            y=np.array(costs),
            x_label="streams",
            y_label="µs/frame",
        )
    )
    result.notes.append(
        "per-frame scheduling time grows with n under the embedded "
        "descriptor-loop build — the scalability ceiling the paper's future "
        "work targets (see the structure-driven miss-scan ablation)"
    )
    return result


def jitter_comparison(
    duration_us: float = 100 * S, seed: int = 0
) -> ExperimentResult:
    """Client-side inter-arrival jitter, host vs NI scheduler, under load."""
    result = ExperimentResult(
        exp_id="Extension: jitter",
        title="Inter-arrival jitter under 60% load: host vs NI scheduler",
    )
    for kind in ("host", "ni"):
        run = run_loading_experiment(kind, "60%", duration_us=duration_us, seed=seed)
        rec = run.service.reception("s1")
        result.add_row(
            f"{kind}: inter-arrival stdev", rec.interarrival_us.stdev / 1000.0, "ms"
        )
        result.add_row(
            f"{kind}: mean inter-arrival", rec.interarrival_us.mean / 1000.0, "ms"
        )
    host_stdev = result.row("host: inter-arrival stdev").measured
    ni_stdev = result.row("ni: inter-arrival stdev").measured
    result.add_row(
        "jitter ratio (host/ni)", host_stdev / ni_stdev if ni_stdev else float("inf"),
        "", note="paper §4.2.3: NI delivery shows 'more uniform jitter-delay variation'",
    )
    return result


def ni_balance(
    stream_counts: tuple[int, ...] = (8, 16, 32),
    duration_us: float = 20 * S,
    seed: int = 0,
) -> ExperimentResult:
    """One vs two scheduler NIs as the offered stream count grows.

    §6: "Given the limited I/O slot real-estate, careful balance between
    NIs dedicated for scheduling and stream sourcing is required." A single
    i960's protocol+scheduling work caps the frames/second one card can
    ship; splitting the stream population over two scheduler cards doubles
    that ceiling. This sweep finds the crossover.

    Streams: 1 Mbps at 62.5 fps (2 kB frames). The i960's per-packet
    protocol cost (~0.8 ms) plus scheduling (~0.12 ms) caps one card near
    17 such streams — far below the 100 Mbps link — so the card CPU is the
    binding resource, exactly the balance §6 worries about.
    """
    result = ExperimentResult(
        exp_id="Extension: NI balance",
        title="Aggregate delivered bandwidth: one vs two scheduler NIs",
    )
    period_us = 16_000.0
    per_stream_bps = 1_000_000.0

    def run(n_streams: int, n_schedulers: int) -> float:
        env = Environment()
        node = ServerNode(env, n_cpus=1)
        switch = EthernetSwitch(env)
        services = [
            NIStreamingService(env, node, switch) for _ in range(n_schedulers)
        ]
        enc = MPEGEncoder(
            bitrate_bps=per_stream_bps, fps=1_000_000.0 / period_us,
            rng=RandomStreams(seed),
        )
        n_frames = int(duration_us / (period_us * 0.9)) + 8
        for i in range(n_streams):
            svc = services[i % n_schedulers]
            sid = f"s{i}"
            svc.attach_client(f"c{i}")
            svc.open_stream(
                StreamSpec(sid, period_us=period_us, loss_x=1, loss_y=2), f"c{i}"
            )
            # inject comfortably ahead of playout: the disk read (~2
            # clusters) plus this gap stays under the 16 ms period
            svc.start_producer(
                enc.encode(sid, n_frames), inject_gap_us=period_us * 0.3
            )
        env.run(until=duration_us)
        total = 0.0
        for i in range(n_streams):
            svc = services[i % n_schedulers]
            try:
                total += svc.reception(f"s{i}").mean_bandwidth_bps(
                    0.4 * duration_us, duration_us
                )
            except KeyError:
                pass  # stream never delivered anything: counts as zero
        return total

    for n in stream_counts:
        one = run(n, 1)
        two = run(n, 2)
        offered = n * per_stream_bps
        result.add_row(f"offered (n={n})", offered, "bps")
        result.add_row(f"delivered, 1 scheduler NI (n={n})", one, "bps")
        result.add_row(f"delivered, 2 scheduler NIs (n={n})", two, "bps")
    result.notes.append(
        "one card saturates once per-frame NI work (stack + scheduling) "
        "exceeds the frame period budget; a second scheduler card doubles "
        "the ceiling — slot real-estate buys streaming capacity"
    )
    return result


def admission_sweep(
    utilization_bound: float = 0.85,
    service_time_us: float = 95.0,
) -> ExperimentResult:
    """Admitted stream counts per QoS class under the utilization bound.

    ``service_time_us`` defaults to the measured cache-on per-frame
    scheduling time (Table 2's fixed-point column).
    """
    result = ExperimentResult(
        exp_id="Extension: admission",
        title="Streams admitted per QoS class (utilization-bound admission)",
    )
    classes = [
        ("zero-loss 30fps", StreamSpec("t", period_us=33_333.0, loss_x=0, loss_y=1)),
        ("1/4-loss 30fps", StreamSpec("t", period_us=33_333.0, loss_x=1, loss_y=4)),
        ("1/2-loss 30fps", StreamSpec("t", period_us=33_333.0, loss_x=1, loss_y=2)),
        ("1/2-loss 4fps", StreamSpec("t", period_us=250_000.0, loss_x=1, loss_y=2)),
    ]
    for label, template in classes:
        ac = AdmissionController(utilization_bound=utilization_bound)
        count = 0
        while True:
            spec = StreamSpec(
                f"{label}:{count}",
                period_us=template.period_us,
                loss_x=template.loss_x,
                loss_y=template.loss_y,
            )
            if not ac.admit(spec, service_time_us).admitted:
                break
            count += 1
            if count > 100_000:  # pragma: no cover - guard
                break
        result.add_row(f"admitted streams ({label})", count, "streams")
    result.notes.append(
        "looser loss-tolerance and longer periods buy admission headroom — "
        "the 'pre-negotiated bound on service degradation' knob"
    )
    return result
