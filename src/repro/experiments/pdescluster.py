"""The pdescluster experiment: one cluster run, partitioned or serial.

The tentpole demonstration of :mod:`repro.pdes`: a front-door partition
plus N node partitions (each a full Figure-9 NI streaming cell with its
own web load) coupled only by admission waves, acks, and bandwidth
reports across the SAN seam. The coordinator advances all partitions
through conservative windows bounded by the SAN's declared minimum
latency and the harnesses' earliest-output-time promises.

``partitions`` selects the executor, *not* the decomposition — the run
is always cut into 1 + N logical partitions; ``partitions=None`` (the
default) executes them serially in-process, ``partitions=K`` fans them
across K spawn worker processes. The result is byte-identical either
way — that is the whole point, and the golden digest pins it:

    python -m repro.experiments pdescluster --seed 42
    python -m repro.experiments pdescluster --seed 42 --partitions 2

The wall-clock benefit of ``--partitions`` on this workload is measured
by ``python -m repro.experiments bench --partitions`` (BENCH_sim.json).
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.pdes import run_partitioned
from repro.pdes.cluster import (
    REPORT_PERIOD_US,
    SAN_LOOKAHEAD_US,
    pdescluster_specs,
)

from .calibration import SIM_DURATION_US
from .report import ExperimentResult

__all__ = ["pdescluster", "DEFAULT_OUT_DIR"]

#: where the partitioned-run report lands unless overridden; digest runs
#: pass None (the digest covers the result object, not exporter output)
DEFAULT_OUT_DIR = os.path.join("out", "pdes")


def pdescluster(
    duration_us: float = SIM_DURATION_US,
    seed: int = 42,
    n_nodes: int = 4,
    partitions: Optional[int] = None,
    out_dir: Optional[str] = DEFAULT_OUT_DIR,
    timing_sink: Optional[dict] = None,
) -> ExperimentResult:
    """Run the partitioned cluster workload and tabulate the fragments.

    ``timing_sink``, when given, receives the coordinator's digest-exempt
    timing measurements (``wall_s``, ``startup_s``, per-worker
    ``worker_cpu_s``) — the bench harness reads them to compute the
    critical-path speedup without touching digest-bearing content.
    """
    if partitions is not None and partitions < 1:
        raise ValueError(
            f"partitions must be a positive worker count or None for the "
            f"serial executor, got {partitions!r}"
        )
    workers = partitions
    outcome = run_partitioned(
        pdescluster_specs(duration_us, seed=seed, n_nodes=n_nodes),
        until=duration_us,
        workers=workers,
    )
    fragments = outcome["fragments"]
    stats = outcome["stats"]
    if timing_sink is not None:
        timing_sink.update(outcome["timing"])

    result = ExperimentResult(
        exp_id="PDEScluster",
        title=(
            f"partitioned cluster: front door + {n_nodes} node partitions "
            f"across the SAN seam (seed {seed})"
        ),
    )

    fd = fragments[0]
    result.add_row("frontdoor: admits sent", float(fd["admits_sent"]))
    result.add_row(
        "frontdoor: acks received",
        float(len(fd["acks"])),
        note="one per admitted stream, across the seam and back",
    )
    result.add_row("frontdoor: reports received", float(fd["reports_received"]))
    if fd["acks"]:
        result.add_row(
            "frontdoor: last ack", fd["acks"][-1][2] / 1_000_000.0, unit="s"
        )

    for node in range(1, n_nodes + 1):
        frag = fragments[node]
        result.add_row(
            f"node{node}: cpu utilization",
            frag["cpu_util_pct"],
            unit="%",
            note=f"web load level {frag['level']}",
        )
        for sid, rec in frag["streams"].items():
            result.add_row(
                f"node{node}: {sid} settled bandwidth",
                rec["settled_bps"],
                unit="bps",
            )
            result.add_row(
                f"node{node}: {sid} frames delivered",
                float(rec["frames_received"]),
            )

    # window-protocol accounting — a pure function of the partition specs,
    # so these rows are identical under every executor and safely pinned
    result.add_row("coordinator: partitions", float(stats["partitions"]))
    result.add_row("coordinator: windows", float(stats["windows"]))
    result.add_row("coordinator: cross messages", float(stats["messages"]))

    result.notes.append(
        f"seam: node <-> node across the SAN, lookahead "
        f"{SAN_LOOKAHEAD_US:.0f} us (NI per-packet stack + switch); "
        f"reports every {REPORT_PERIOD_US / 1_000_000.0:.0f} s collapse "
        "windows far past the raw lookahead"
    )
    result.notes.append(
        "byte-identical for every --partitions value: the window schedule "
        "is a pure function of the specs and each partition is a "
        "deterministic single-threaded kernel"
    )
    # worker count is execution detail, not result content: footers stay
    # out of the digest so serial and partitioned runs pin the same bytes
    result.footers.append(
        f"executor: {'serial (in-process)' if not workers else f'{workers} spawn workers'}"
    )
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "PDES_report.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "stats": stats,
                    "partition_stats": {
                        str(k): v for k, v in sorted(outcome["partition_stats"].items())
                    },
                    "fragments": {str(k): v for k, v in sorted(fragments.items())},
                },
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
        result.footers.append(f"artifacts in {out_dir}: PDES_report.json")
    return result
