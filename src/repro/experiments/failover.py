"""The failover experiment: NI card death under the HA plane.

Beyond the paper: the multi-card HA service of
:mod:`repro.server.failover` replayed against the failover fault
campaigns of :mod:`repro.faults.scenarios` — a permanent card crash
(detect → migrate → resume), a heartbeat partition (classify, do NOT
migrate), and a card flap inside the detection budget (ride it out).

Reported per scenario:

* per-stream delivered bandwidth before the fault and after recovery,
* **detection latency** — crash instant to the watchdog's dead
  declaration (must sit inside the heartbeat budget
  K·interval + grace),
* **MTTR** — crash instant to the last stream restored on its new card,
* the migration order, degraded/parked streams, post-fault violations,
  and the fault plane's injection tally.

The ``control`` block is a plain single-card Figure 9 run — literally the
same code path as ``figure9`` — so the no-fault baseline's byte-identity
to Figure 9 holds by construction and is asserted by the test suite.

Runs are deterministic given a seed: same seed ⇒ identical migration
order, detection time, and violation counts.

    python -m repro.experiments failover --seed 42
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults import FAILOVER_SCENARIOS, ChaosScenario, FaultPlane, resolve_scenario
from repro.hw.ethernet import EthernetSwitch
from repro.obs import FAILOVER_SLOS, MetricsRegistry, SLOReport, evaluate, render_slo_report
from repro.server.failover import HAStreamingService
from repro.server.node import ServerNode
from repro.sim import Environment

from .calibration import (
    NI_INJECT_GAP_US,
    PREBUFFER_FRAMES,
    SIM_DURATION_US,
    figure_mpeg_file,
    figure_stream_specs,
)
from .figures import STREAM_SERVICE_TIME_US, run_loading_experiment
from .report import ExperimentResult

__all__ = ["FailoverRun", "run_failover_scenario", "failover"]


@dataclass
class FailoverRun:
    """One failover scenario's outcome."""

    scenario: ChaosScenario
    service: HAStreamingService
    plane: FaultPlane
    duration_us: float

    @property
    def meter(self):
        return self.service.meter

    @property
    def violations(self) -> int:
        return self.service.total_violations

    @property
    def injected(self) -> int:
        return self.plane.total_injected

    def delivered_bps(self, stream_id: str, start_frac: float, end_frac: float) -> float:
        rec = self.service.reception(stream_id)
        return rec.mean_bandwidth_bps(
            start_frac * self.duration_us, end_frac * self.duration_us
        )

    def slo_report(self) -> SLOReport:
        """Evaluate the failover budgets for this run.

        The recovery milestones become a small metrics registry;
        ``card_lost`` (a card still crashed at end of run) is the ground
        truth that decides whether the detection/MTTR budgets apply — a
        ridden-out flap skips them, a permanent crash must measure them.
        """
        reg = MetricsRegistry()
        meter = self.meter
        reg.gauge("failover.fault_marked", 0.0 if meter.fault_at_us is None else 1.0)
        reg.gauge("failover.recovered", 0.0 if meter.recovered_at_us is None else 1.0)
        det = meter.detection_latency_us
        if det is not None:
            reg.gauge("failover.detection_ms", det / 1000.0)
        mttr = meter.mttr_us
        if mttr is not None:
            reg.gauge("failover.mttr_ms", mttr / 1000.0)
        reg.gauge("failover.migrated", float(len(meter.migrated)))
        reg.gauge("failover.partitions", float(meter.partitions))
        reg.gauge(
            "failover.frames_lost",
            float(
                self.service.frames_lost_to_crash
                + self.service.frames_lost_in_migration
            ),
        )
        card_lost = any(rt.card.crashed for rt in self.service.runtimes)
        return evaluate(
            FAILOVER_SLOS,
            registry=reg,
            values={"card_lost": 1.0 if card_lost else 0.0},
            title=f"failover:{self.scenario.name}",
        )


def run_failover_scenario(
    name: str,
    duration_us: float = SIM_DURATION_US,
    seed: int = 42,
    n_cards: int = 2,
    transport: str = "udp",
) -> FailoverRun:
    """Replay one failover campaign against the HA service."""
    scenario = resolve_scenario(name, FAILOVER_SCENARIOS, kind="failover")
    env = Environment()
    # Figure 9's host configuration ("one CPU is brought off-line"), with a
    # second scheduler card as the failover target.
    node = ServerNode(env, n_cpus=1, n_pci_segments=2)
    switch = EthernetSwitch(env)
    service = HAStreamingService(
        env, node, switch, n_cards=n_cards, transport=transport
    )
    n_frames = max(64, int(duration_us / 280_000.0) + 64)
    for i, spec in enumerate(figure_stream_specs()):
        service.attach_client(f"client_{spec.stream_id}")
        service.open_stream(
            spec, f"client_{spec.stream_id}", service_time_us=STREAM_SERVICE_TIME_US
        )
        file = figure_mpeg_file(spec.stream_id, seed=seed + i, n_frames=n_frames)
        service.start_producer(
            file, inject_gap_us=NI_INJECT_GAP_US, prebuffer_frames=PREBUFFER_FRAMES
        )
    plane = FaultPlane(env, seed=seed + 2000)
    scenario.install(plane, service, duration_us)
    env.run(until=duration_us)
    return FailoverRun(
        scenario=scenario, service=service, plane=plane, duration_us=duration_us
    )


def failover(
    duration_us: float = SIM_DURATION_US,
    seed: int = 42,
    scenarios: Optional[list[str]] = None,
    transport: str = "udp",
    include_control: bool = True,
    partitions: Optional[int] = None,
) -> ExperimentResult:
    """Run every failover campaign and tabulate recovery metrics.

    ``include_control=False`` skips the no-fault Figure 9 control block —
    used by the partition plan, whose dedicated control cell already
    produces those rows. ``partitions`` fans the campaign out across
    that many worker processes and reassembles a byte-identical result —
    see :mod:`repro.pdes.plan`."""
    if partitions is not None:
        from repro.pdes.plan import run_plan

        overrides: dict = {}
        if scenarios is not None:
            overrides["scenarios"] = scenarios
        if transport != "udp":
            overrides["transport"] = transport
        if not include_control:
            overrides["include_control"] = include_control
        return run_plan(
            "failover",
            seed=seed,
            duration_us=duration_us,
            partitions=partitions,
            **overrides,
        )
    result = ExperimentResult(
        exp_id="Failover",
        title=f"NI failover: detection, migration, recovery (seed {seed})",
    )

    # -- control: the single-card Figure 9 path, untouched ------------------
    if include_control:
        control = run_loading_experiment(
            "ni", "none", duration_us=duration_us, seed=seed, transport=transport
        )
        for sid in sorted(control.service.engine.scheduler.queues):
            result.add_row(
                f"control: {sid} settled bandwidth",
                control.settled_bandwidth(sid),
                unit="bps",
                note="plain Figure 9 run (no HA plane, no faults)",
            )

    names = scenarios if scenarios is not None else list(FAILOVER_SCENARIOS)
    slo_reports = []
    for name in names:
        fr = run_failover_scenario(
            name, duration_us=duration_us, seed=seed, transport=transport
        )
        slo_reports.append(fr.slo_report())
        scenario = fr.scenario
        pre_end = min(scenario.start_frac, 0.4)
        for sid in sorted(fr.service._spec_of):
            result.add_row(
                f"{name}: {sid} pre-fault bandwidth",
                fr.delivered_bps(sid, 0.2, max(pre_end, 0.21)),
                unit="bps",
                note=scenario.description if sid == min(fr.service._spec_of) else "",
            )
            result.add_row(
                f"{name}: {sid} post-fault bandwidth",
                fr.delivered_bps(sid, 0.7, 0.95),
                unit="bps",
            )
        for label, value, unit, note in fr.meter.rows(fr.violations):
            result.add_row(f"{name}: {label}", value, unit=unit, note=note)
        result.add_row(f"{name}: violations (total)", float(fr.violations))
        result.add_row(f"{name}: B-frames shed", float(fr.service.b_frames_shed))
        result.add_row(
            f"{name}: frames lost to crash",
            float(fr.service.frames_lost_to_crash + fr.service.frames_lost_in_migration),
        )
        result.add_row(f"{name}: faults injected", float(fr.injected))
        result.add_row(
            f"{name}: checkpoint bytes mirrored",
            float(sum(p.mirror.bytes_mirrored for p in fr.service.planes)),
            unit="B",
        )
        books = fr.service.books
        if books is not None:
            result.add_row(
                f"{name}: transport retransmissions",
                float(books.retransmissions),
            )
            result.add_row(
                f"{name}: transport records lost", float(len(books.lost_ids))
            )
            result.add_row(
                f"{name}: transport records unaccounted",
                float(len(books.unaccounted())),
                note="MUST be 0: every sent record is delivered, lost, or in flight",
            )
    if transport != "udp":
        result.notes.append(f"media wire path: transport={transport}")
    result.notes.append(
        "detection budget = K·heartbeat interval + grace "
        "(card-crash detection latency must sit inside it)"
    )
    result.notes.append(
        "deterministic: identical seed => identical migration order, "
        "detection time, and violation counts"
    )
    result.footers.append(render_slo_report(*slo_reports).rstrip("\n"))
    return result
