"""repro — full-system reproduction of "A Network Co-Processor-Based
Approach to Scalable Media Streaming in Servers" (ICPP 2000).

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event simulation kernel (µs time base).
``repro.fixedpoint``
    Fraction/Q16.16 arithmetic and the op-counting contexts.
``repro.hw``
    The 1999 platform: i960 RD I2O cards, PCI, SCSI disks, filesystems,
    switched 100 Mbps Ethernet, CPU cycle-cost models.
``repro.rtos``
    VxWorks 'wind' and Solaris-like time-sharing OS models.
``repro.dvcm``
    The Distributed Virtual Communication Machine (host API, NI runtime,
    loadable extensions).
``repro.core``
    The contribution: the DWCS media scheduler and its embedded builds.
``repro.media`` / ``repro.server`` / ``repro.workload`` / ``repro.metrics``
    MPEG substrate, server architectures (paths A/B/C, clusters),
    Apache/httperf load, measurement.
``repro.experiments``
    One runner per paper table/figure plus beyond-the-paper extensions
    (``python -m repro.experiments``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
